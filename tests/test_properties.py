"""Property-based tests (hypothesis) for core invariants.

These exercise randomised shapes/values beyond the hand-picked unit
cases: algebraic identities of the numeric algorithms, exactness of the
word/limb discipline, and monotonicity/additivity of the cost model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TCUMachine
from repro.arith.intmul import int_multiply
from repro.arith.polyeval import batch_polyeval
from repro.core.ledger import CostLedger
from repro.core.systolic import SystolicArray
from repro.core.words import int_to_limbs, limbs_to_int
from repro.matmul.dense import matmul, tensor_call_count
from repro.matmul.strassen import CLASSICAL_2X2, STRASSEN_2X2, strassen_like_mm
from repro.transform.dft import batched_dft, dft, idft
from repro.transform.stencil import stencil_direct, stencil_tcu, unrolled_weights

SMALL_FLOATS = st.floats(
    min_value=-100, max_value=100, allow_nan=False, allow_infinity=False, width=32
)


def square(side, seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((side, side))


# ----------------------------------------------------------------------
# dense matmul
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(
    p=st.integers(1, 20),
    q=st.integers(1, 20),
    r=st.integers(1, 20),
    seed=st.integers(0, 2**16),
)
def test_matmul_matches_numpy_any_shape(p, q, r, seed):
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16, ell=3.0)
    A = rng.standard_normal((p, q))
    B = rng.standard_normal((q, r))
    assert np.allclose(matmul(tcu, A, B), A @ B, atol=1e-9)


@settings(deadline=None, max_examples=25)
@given(p=st.integers(1, 32), q=st.integers(1, 32), r=st.integers(1, 32))
def test_tensor_call_count_formula(p, q, r):
    tcu = TCUMachine(m=16)
    rng = np.random.default_rng(0)
    matmul(tcu, rng.standard_normal((p, q)), rng.standard_normal((q, r)))
    assert tcu.ledger.tensor_calls == tensor_call_count(p, q, r, 4)


@settings(deadline=None, max_examples=15)
@given(side=st.integers(1, 24), seed=st.integers(0, 2**16))
def test_matmul_identity_property(side, seed):
    tcu = TCUMachine(m=16)
    A = square(side, seed)
    assert np.allclose(matmul(tcu, A, np.eye(side)), A, atol=1e-12)


@settings(deadline=None, max_examples=15)
@given(
    side=st.integers(2, 16),
    seed=st.integers(0, 2**16),
    alpha=st.floats(-3, 3, allow_nan=False),
)
def test_matmul_linearity(side, seed, alpha):
    """(alpha A1 + A2) B == alpha A1 B + A2 B."""
    tcu = TCUMachine(m=16)
    A1, A2, B = square(side, seed), square(side, seed + 1), square(side, seed + 2)
    lhs = matmul(tcu, alpha * A1 + A2, B)
    rhs = alpha * matmul(tcu, A1, B) + matmul(tcu, A2, B)
    assert np.allclose(lhs, rhs, atol=1e-8)


# ----------------------------------------------------------------------
# strassen-like
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=15)
@given(
    side=st.integers(2, 33),
    seed=st.integers(0, 2**16),
    use_strassen=st.booleans(),
)
def test_strassen_like_matches_numpy(side, seed, use_strassen):
    tcu = TCUMachine(m=16)
    alg = STRASSEN_2X2 if use_strassen else CLASSICAL_2X2
    A, B = square(side, seed), square(side, seed + 7)
    C = strassen_like_mm(tcu, A, B, algorithm=alg, cutoff=8)
    assert np.allclose(C, A @ B, atol=1e-8)


# ----------------------------------------------------------------------
# systolic array
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=20)
@given(s=st.integers(1, 6), n=st.integers(1, 12), seed=st.integers(0, 2**16))
def test_systolic_always_exact_and_on_schedule(s, n, seed):
    rng = np.random.default_rng(seed)
    arr = SystolicArray(s)
    A = rng.integers(-9, 9, (n, s))
    B = rng.integers(-9, 9, (s, s))
    C, stats = arr.matmul(A, B)
    assert np.array_equal(C, A @ B)
    expect = np.add.outer(np.arange(n), np.arange(s)) + s - 1
    assert np.array_equal(stats.emit_step, expect)


# ----------------------------------------------------------------------
# DFT
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=20)
@given(
    logn=st.integers(0, 9),
    seed=st.integers(0, 2**16),
)
def test_dft_roundtrip(logn, seed):
    n = 2**logn
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    assert np.allclose(idft(tcu, dft(tcu, x)), x, atol=1e-9)


@settings(deadline=None, max_examples=15)
@given(logn=st.integers(1, 8), seed=st.integers(0, 2**16))
def test_dft_linearity(logn, seed):
    n = 2**logn
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16)
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    assert np.allclose(
        dft(tcu, x + 2 * y), dft(tcu, x) + 2 * dft(tcu, y), atol=1e-8
    )


@settings(deadline=None, max_examples=10)
@given(
    batch=st.integers(1, 8), logn=st.integers(1, 6), seed=st.integers(0, 2**16)
)
def test_batched_dft_equals_rowwise(batch, logn, seed):
    n = 2**logn
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16)
    X = rng.standard_normal((batch, n))
    assert np.allclose(batched_dft(tcu, X), np.fft.fft(X, axis=1), atol=1e-8)


# ----------------------------------------------------------------------
# stencil
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=10)
@given(
    rows=st.integers(4, 20),
    cols=st.integers(4, 20),
    k=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_stencil_tcu_equals_direct(rows, cols, k, seed):
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16)
    A = rng.standard_normal((rows, cols))
    W3 = rng.standard_normal((3, 3)) * 0.2
    want = stencil_direct(tcu, A, W3, k)
    got = stencil_tcu(tcu, A, W3, k)
    assert np.allclose(got, want, atol=1e-7)


@settings(deadline=None, max_examples=10)
@given(k=st.integers(1, 10), seed=st.integers(0, 2**16))
def test_unrolled_weights_mass(k, seed):
    """sum(P^k) = (sum P)^k for any kernel."""
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16)
    W3 = rng.standard_normal((3, 3)) * 0.3
    Wk = unrolled_weights(tcu, W3, k)
    assert np.isclose(Wk.sum(), W3.sum() ** k, rtol=1e-6, atol=1e-9)


# ----------------------------------------------------------------------
# integers and words
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=40)
@given(value=st.integers(0, 2**512), bits=st.integers(1, 32))
def test_limb_roundtrip(value, bits):
    assert limbs_to_int(int_to_limbs(value, bits), bits) == value


@settings(deadline=None, max_examples=30)
@given(a=st.integers(0, 2**600), b=st.integers(0, 2**600))
def test_int_multiply_exact(a, b):
    tcu = TCUMachine(m=16, kappa=32, check_overflow=True)
    assert int_multiply(tcu, a, b) == a * b


@settings(deadline=None, max_examples=20)
@given(
    n=st.integers(1, 40),
    p=st.integers(1, 10),
    seed=st.integers(0, 2**16),
)
def test_polyeval_matches_horner(n, p, seed):
    rng = np.random.default_rng(seed)
    tcu = TCUMachine(m=16)
    coeffs = rng.standard_normal(n)
    pts = rng.uniform(-1, 1, p)
    want = np.polyval(coeffs[::-1], pts)
    assert np.allclose(batch_polyeval(tcu, coeffs, pts), want, atol=1e-8)


# ----------------------------------------------------------------------
# cost model invariants
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=25)
@given(
    charges=st.lists(
        st.tuples(st.integers(4, 64), st.floats(0, 100, allow_nan=False)),
        min_size=1,
        max_size=20,
    )
)
def test_ledger_additivity(charges):
    """Total time is exactly the sum of individual charge returns."""
    led = CostLedger()
    total = 0.0
    for n, ell in charges:
        total += led.charge_tensor(n, 4, ell)
    total += led.charge_cpu(17)
    assert np.isclose(led.total_time, total)


@settings(deadline=None, max_examples=10)
@given(side=st.integers(8, 24), seed=st.integers(0, 2**16))
def test_time_monotone_in_ell(side, seed):
    """Same algorithm, higher latency -> no smaller model time."""
    A, B = square(side, seed), square(side, seed + 1)
    times = []
    for ell in (0.0, 10.0, 1000.0):
        tcu = TCUMachine(m=16, ell=ell)
        matmul(tcu, A, B)
        times.append(tcu.time)
    assert times[0] <= times[1] <= times[2]


@settings(deadline=None, max_examples=10)
@given(side=st.integers(16, 40), seed=st.integers(0, 2**16))
def test_tensor_time_decreases_with_m(side, seed):
    """A larger unit never increases the tensor-throughput time."""
    A, B = square(side, seed), square(side, seed + 1)
    tensor_times = []
    for m in (16, 64):
        tcu = TCUMachine(m=m)
        matmul(tcu, A, B)
        tensor_times.append(tcu.ledger.tensor_time)
    assert tensor_times[1] <= tensor_times[0] * 1.01
