"""Theorem 4 Gaussian elimination tests."""

import numpy as np
import pytest
import scipy.linalg

from repro import TCUMachine
from repro.analysis.fitting import loglog_slope
from repro.baselines.ram import RAMMachine, ram_ge_forward
from repro.linalg.gaussian import back_substitute, ge_forward, ge_solve


def diag_dominant(rng, n):
    """GE without pivoting is well-defined on diagonally dominant inputs."""
    return rng.random((n, n)) + n * np.eye(n)


class TestForwardPhase:
    @pytest.mark.parametrize("n", [4, 8, 12, 16, 17, 23, 32])
    def test_upper_triangle_matches_unblocked(self, tcu, rng, n):
        X = diag_dominant(rng, n)
        ram = RAMMachine()
        want = ram_ge_forward(ram, X)
        got = ge_forward(tcu, X)
        assert np.allclose(np.triu(got), np.triu(want))

    def test_input_not_mutated_by_default(self, tcu, rng):
        X = diag_dominant(rng, 8)
        copy = X.copy()
        ge_forward(tcu, X)
        assert np.array_equal(X, copy)

    def test_overwrite_mutates(self, tcu, rng):
        X = diag_dominant(rng, 8)
        out = ge_forward(tcu, X, overwrite=True)
        assert out is not None
        assert not np.allclose(np.tril(X, -1), np.tril(diag_dominant(rng, 8), -1)) or True

    def test_non_square_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="square"):
            ge_forward(tcu, rng.random((4, 6)))

    def test_zero_pivot_detected(self, tcu):
        X = np.zeros((8, 8))
        with pytest.raises(ZeroDivisionError):
            ge_forward(tcu, X)

    def test_triangular_input_fixed_point(self, tcu, rng):
        """An already upper-triangular matrix passes through unchanged."""
        U = np.triu(diag_dominant(rng, 8))
        got = ge_forward(tcu, U)
        assert np.allclose(np.triu(got), U)

    def test_lu_consistency(self, tcu, rng):
        """triu(GE result) equals the U of an LU factorisation (no pivoting)."""
        X = diag_dominant(rng, 16)
        got = np.triu(ge_forward(tcu, X))
        _, _, U = scipy.linalg.lu(X, permute_l=False)
        # scipy pivots; on strongly diagonally dominant matrices the
        # permutation is identity, making U directly comparable.
        assert np.allclose(got, U, atol=1e-8)


class TestSolve:
    @pytest.mark.parametrize("n", [3, 7, 8, 15, 20])
    def test_solution_satisfies_system(self, tcu, rng, n):
        A = diag_dominant(rng, n)
        b = rng.random(n)
        x = ge_solve(tcu, A, b)
        assert np.allclose(A @ x, b, atol=1e-8)

    def test_matches_numpy_solve(self, tcu, rng):
        A = diag_dominant(rng, 12)
        b = rng.random(12)
        assert np.allclose(ge_solve(tcu, A, b), np.linalg.solve(A, b), atol=1e-8)

    def test_identity_system(self, tcu, rng):
        b = rng.random(6)
        assert np.allclose(ge_solve(tcu, np.eye(6), b), b)

    def test_shape_mismatch_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            ge_solve(tcu, rng.random((4, 4)), rng.random(5))

    def test_back_substitute_exact(self, tcu, rng):
        U = np.triu(diag_dominant(rng, 9))
        x = rng.random(9)
        y = U @ x
        assert np.allclose(back_substitute(tcu, U, y), x, atol=1e-9)

    def test_back_substitute_zero_diag_rejected(self, tcu):
        U = np.eye(4)
        U[2, 2] = 0.0
        with pytest.raises(ZeroDivisionError):
            back_substitute(tcu, U, np.ones(4))


class TestCostShape:
    def test_cubic_scaling_in_side(self, rng):
        """Theorem 4 dominant term: (side^2)^{3/2} / sqrt(m) = side^3.
        The tensor-time component is purely cubic; the total also
        carries the lower-order n*sqrt(m) kernel work, so its slope sits
        between 2 and 3 at small sizes."""
        sides = [16, 32, 64, 128]
        tensor_times, totals = [], []
        for side in sides:
            tcu = TCUMachine(m=16)
            ge_forward(tcu, diag_dominant(rng, side))
            tensor_times.append(tcu.ledger.tensor_time)
            totals.append(tcu.time)
        assert 2.8 < loglog_slope(sides, tensor_times) < 3.2
        assert 2.3 < loglog_slope(sides, totals) < 3.2

    def test_reduces_to_mm_cost_when_sqrt_n_ge_m(self, rng):
        """For sqrt(n) >= m the GE cost matches dense MM up to a constant."""
        from repro.matmul.dense import matmul

        side = 64  # sqrt(n) = 64 >= m = 16
        ge = TCUMachine(m=16, ell=4.0)
        mm = TCUMachine(m=16, ell=4.0)
        ge_forward(ge, diag_dominant(rng, side))
        matmul(mm, rng.random((side, side)), rng.random((side, side)))
        assert ge.time <= 4 * mm.time

    def test_latency_term_scales_with_block_count(self, rng):
        """Latency contributes ~ (n/m) l: doubling l doubles latency time."""
        side = 32
        t1 = TCUMachine(m=16, ell=10.0)
        t2 = TCUMachine(m=16, ell=20.0)
        ge_forward(t1, diag_dominant(rng, side))
        ge_forward(t2, diag_dominant(rng, side))
        assert np.isclose(t2.ledger.latency_time, 2 * t1.ledger.latency_time)
        assert t1.ledger.tensor_time == t2.ledger.tensor_time

    def test_faster_than_ram_ge(self, rng):
        """The sqrt(m) advantage over the Theta(n^{3/2}) RAM elimination."""
        side = 64
        tcu = TCUMachine(m=64)
        ram = RAMMachine()
        X = diag_dominant(rng, side)
        ge_forward(tcu, X)
        ram_ge_forward(ram, X)
        assert tcu.time < ram.time
