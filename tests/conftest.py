"""Shared fixtures: machines of a few sizes and a seeded RNG."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TCUMachine


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20200709)  # the paper's arXiv v2 date


@pytest.fixture
def tcu() -> TCUMachine:
    """Small unit (sqrt(m)=4) with a visible latency."""
    return TCUMachine(m=16, ell=4.0)


@pytest.fixture
def tcu_free() -> TCUMachine:
    """Latency-free small unit."""
    return TCUMachine(m=16, ell=0.0)


@pytest.fixture
def tcu_big() -> TCUMachine:
    """A larger unit (sqrt(m)=8) for crossover-style tests."""
    return TCUMachine(m=64, ell=16.0)


@pytest.fixture
def tcu_int() -> TCUMachine:
    """Integer-flavoured machine with kappa=32 words and overflow checks."""
    return TCUMachine(m=16, ell=4.0, kappa=32, check_overflow=True)
