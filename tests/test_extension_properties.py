"""Property-based tests for the §6 extension machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import ParallelTCUMachine
from repro.core.quantize import QuantizedTCUMachine, quantize_array


# ----------------------------------------------------------------------
# parallel scheduling invariants
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=30)
@given(
    units=st.integers(1, 16),
    heights=st.lists(st.integers(4, 64), min_size=1, max_size=12),
    seed=st.integers(0, 2**16),
)
def test_makespan_bounds(units, heights, seed):
    """max job <= makespan <= serial, and the schedule satisfies
    Graham's list-scheduling bound serial/p + (1 - 1/p) * max job.

    (The (4/3 - 1/3p) LPT factor is relative to the true optimum, not
    the trivial lower bound max(max job, serial/p) — five equal jobs on
    four units already separate the two, so bounding against the lower
    bound is not a valid property.)"""
    rng = np.random.default_rng(seed)
    machine = ParallelTCUMachine(m=16, ell=5.0, units=units)
    jobs = [(rng.random((h, 4)), rng.random((4, 4))) for h in heights]
    machine.mm_batch(jobs)
    stats = machine.last_batch
    costs = [h * 4 + 5.0 for h in heights]
    assert stats.makespan >= max(costs) - 1e-9
    assert stats.makespan <= stats.serial_time + 1e-9
    graham = stats.serial_time / units + (1 - 1 / units) * max(costs)
    assert stats.makespan <= graham + 1e-9


@settings(deadline=None, max_examples=20)
@given(
    heights=st.lists(st.integers(4, 32), min_size=1, max_size=10),
    seed=st.integers(0, 2**16),
)
def test_more_units_never_slower(heights, seed):
    rng = np.random.default_rng(seed)
    jobs = [(rng.random((h, 4)), rng.random((4, 4))) for h in heights]
    makespans = []
    for units in (1, 2, 4, 32):
        machine = ParallelTCUMachine(m=16, ell=3.0, units=units)
        machine.mm_batch([(a.copy(), b.copy()) for a, b in jobs])
        makespans.append(machine.last_batch.makespan)
    assert all(a >= b - 1e-9 for a, b in zip(makespans, makespans[1:]))


@settings(deadline=None, max_examples=20)
@given(
    heights=st.lists(st.integers(4, 32), min_size=1, max_size=8),
    seed=st.integers(0, 2**16),
)
def test_batch_results_exact(heights, seed):
    rng = np.random.default_rng(seed)
    machine = ParallelTCUMachine(m=16, units=4)
    jobs = [(rng.random((h, 4)), rng.random((4, 4))) for h in heights]
    for (A, B), C in zip(jobs, machine.mm_batch(jobs)):
        assert np.allclose(C, A @ B)


# ----------------------------------------------------------------------
# quantisation invariants
# ----------------------------------------------------------------------
@settings(deadline=None, max_examples=40)
@given(
    seed=st.integers(0, 2**16),
    scale=st.floats(0.1, 1e2, allow_nan=False),
)
def test_fp16_elementwise_error_bound(seed, scale):
    """fp16 rounding is within half an ulp — rel err <= 2^-11 per
    element — for values in fp16's *normal* range (subnormals below
    ~6e-5 lose precision gracefully but violate the ulp bound)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(64) * scale
    x = np.where(np.abs(x) < 1e-3, 1e-3, x)  # keep clear of subnormals
    q = quantize_array(x, "fp16")
    rel = np.abs(q - x) / np.maximum(np.abs(x), 1e-300)
    assert rel.max() <= 2.0**-11 + 1e-12


@settings(deadline=None, max_examples=40)
@given(seed=st.integers(0, 2**16))
def test_int8_error_bound(seed):
    """Symmetric int8: absolute error <= max|x|/254 per element."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(64)
    q = quantize_array(x, "int8")
    assert np.abs(q - x).max() <= np.abs(x).max() / 254.0 + 1e-12


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 2**16), fmt=st.sampled_from(["fp16", "bf16", "int8"]))
def test_quantization_idempotent(seed, fmt):
    """Quantising an already-quantised array changes nothing (fixed point)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(32)
    once = quantize_array(x, fmt)
    twice = quantize_array(once, fmt)
    assert np.allclose(once, twice, rtol=1e-12, atol=1e-15)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 2**16))
def test_quantized_mm_error_tracked(seed):
    rng = np.random.default_rng(seed)
    machine = QuantizedTCUMachine(m=16, precision="fp16")
    A, B = rng.random((8, 4)), rng.random((4, 4))
    C = machine.mm(A, B)
    exact = A @ B
    recorded = machine.error_stats.errors[-1]
    direct = np.linalg.norm(C - exact) / np.linalg.norm(exact)
    assert np.isclose(recorded, direct)
