"""Chrome-trace / Perfetto and Prometheus export gates."""

import json

import pytest

from repro.core.presets import TPU_V1
from repro.obs import (
    MetricsRegistry,
    ObsError,
    SloBurnMonitor,
    Tracer,
    chrome_trace_json,
    prometheus_text,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.serve import ServingEngine, chaos_injector, interactive_batch_mix


@pytest.fixture(scope="module")
def chaos_trace():
    tracer = Tracer(
        detail="level",
        sample_every=2e5,
        monitors=[
            SloBurnMonitor(
                "interactive-burn", target=0.99, window=5e6,
                priority=2, min_count=4,
            )
        ],
    )
    machine = TPU_V1.create(execute="cost-only", trace_calls=True)
    workload = interactive_batch_mix(
        60, 3, interactive_load=0.6, batch_rows=2048,
        interactive_slo=5e5, seed=3,
    )
    result = ServingEngine(
        machine,
        "continuous",
        faults=chaos_injector(
            fail_rate=0.05, crash_every=9.0, repair_for=0.4,
            straggle_rate=0.1, straggle_factor=2.5, seed=103,
        ),
        retry="fixed",
        recovery="checkpoint",
        preempt=True,
        tracer=tracer,
    ).serve(workload)
    return tracer, result


class TestChromeTrace:
    def test_valid_and_self_checking(self, chaos_trace):
        tracer, _ = chaos_trace
        trace = to_chrome_trace(tracer)
        validate_chrome_trace(trace)

    def test_lanes_cover_classes_units_requests(self, chaos_trace):
        tracer, result = chaos_trace
        events = to_chrome_trace(tracer)["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {1, 2, 3, 4, 5} <= pids
        # one async b/e pair per completed request
        begins = [e for e in events if e["ph"] == "b"]
        ends = [e for e in events if e["ph"] == "e"]
        assert len(begins) == len(ends)
        assert len(begins) >= len(result.requests)
        # level spans run on the unit lanes
        unit_x = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
        assert unit_x

    def test_fault_instants_present(self, chaos_trace):
        tracer, result = chaos_trace
        events = to_chrome_trace(tracer)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        faults = [e for e in instants if e["name"].startswith("fault:")]
        assert len(faults) == result.faults

    def test_metric_counters_exported(self, chaos_trace):
        tracer, _ = chaos_trace
        events = to_chrome_trace(tracer)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "sampler rows must land as counter events"

    def test_json_bytes_deterministic(self, chaos_trace):
        tracer, _ = chaos_trace
        assert chrome_trace_json(tracer) == chrome_trace_json(tracer)

    def test_write_round_trips(self, chaos_trace, tmp_path):
        tracer, _ = chaos_trace
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        validate_chrome_trace(trace)

    def test_validate_rejects_malformed(self):
        with pytest.raises(ObsError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ObsError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 0, "ts": 0}]}
            )


class TestPrometheusText:
    def test_renders_all_metric_kinds(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "served requests").inc(3)
        reg.gauge("queue_depth", "queued rows").set(7)
        h = reg.histogram("latency", (1.0, 10.0), "request latency")
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg)
        assert "# HELP requests_total served requests" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert "queue_depth 7" in text
        # cumulative buckets + +Inf + sum/count
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="10"} 2' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_sum 5.5" in text
        assert "latency_count 2" in text

    def test_labels_rendered_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("slo", labels={"class": "2", "az": "a"}).set(0.5)
        text = prometheus_text(reg)
        assert 'slo{az="a",class="2"} 0.5' in text

    def test_from_live_run(self, chaos_trace):
        tracer, result = chaos_trace
        text = prometheus_text(tracer.registry)
        assert "requests_completed" in text
        assert "ledger_tensor_time" in text
        lines = [line for line in text.splitlines() if line]
        assert all(line.startswith("#") or " " in line for line in lines)
