"""The PR 9 bit-identity and reconciliation gates.

A tracer must be a pure *observer*: attaching one never changes a
single ledger charge, the final clock, or any completion time — across
machine shapes and under the harshest chaos scenario — and the spans it
records must reconcile against the engine's accounting bit-exactly
(``sum(segment durs) == busy_time``, per batch against
``BatchRecord.service``).  Two replays of a traced run export
byte-identical Chrome trace JSON.
"""

import pytest

from repro.analysis.report import trace_table
from repro.core.machine import TCUMachine
from repro.core.parallel import ParallelTCUMachine
from repro.core.presets import TPU_V1
from repro.obs import ObsError, SloBurnMonitor, Tracer, chrome_trace_json
from repro.serve import (
    PoissonWorkload,
    ServingEngine,
    chaos_injector,
    interactive_batch_mix,
)

ELL = 512.0

MACHINE_CONFIGS = {
    "serial-numeric": lambda: TCUMachine(m=16, ell=ELL),
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "serial-max-rows": lambda: TCUMachine(m=16, ell=ELL, max_rows=16),
    "parallel-3": lambda: ParallelTCUMachine(m=16, ell=ELL, units=3),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}

CHAOS_SEEDS = list(range(10))


def _plain_run(config, tracer=None):
    machine = MACHINE_CONFIGS[config]()
    workload = PoissonWorkload(rate=2e-4, total=50, kind="matmul", rows=8, seed=1)
    result = ServingEngine(machine, "timeout", tracer=tracer).serve(workload)
    return machine, result


def _chaos_run(seed, tracer=None, requests=60):
    machine = TPU_V1.create(execute="cost-only", trace_calls=True)
    workload = interactive_batch_mix(
        requests, 3, interactive_load=0.6, batch_rows=2048,
        interactive_slo=5e5, seed=seed,
    )
    engine = ServingEngine(
        machine,
        "continuous",
        faults=chaos_injector(
            fail_rate=0.05, crash_every=9.0, repair_for=0.4,
            straggle_rate=0.1, straggle_factor=2.5, seed=seed + 100,
        ),
        retry="fixed",
        recovery="checkpoint",
        preempt=True,
        tracer=tracer,
    )
    return machine, engine.serve(workload)


def _identical(plain_m, plain, traced_m, traced):
    return (
        plain_m.ledger.snapshot() == traced_m.ledger.snapshot()
        and plain.clock == traced.clock
        and plain.busy_time == traced.busy_time
        and len(plain.requests) == len(traced.requests)
        and all(
            a.completion == b.completion
            for a, b in zip(plain.requests, traced.requests)
        )
    )


# ----------------------------------------------------------------------
# bit-identity: tracing must not perturb the run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
def test_tracing_is_charge_invisible_per_config(config):
    plain_m, plain = _plain_run(config)
    traced_m, traced = _plain_run(config, tracer=Tracer())
    assert _identical(plain_m, plain, traced_m, traced)


@pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
def test_level_detail_keeps_charges_identical(config):
    """detail='level' forces stepwise execution; charges must not move
    (stepwise parity is a standing engine gate)."""
    plain_m, plain = _plain_run(config)
    tr = Tracer(detail="level")
    traced_m, traced = _plain_run(config, tracer=tr)
    assert _identical(plain_m, plain, traced_m, traced)
    assert tr.levels, "level detail must record per-level spans"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_sweep_bit_identity(seed):
    plain_m, plain = _chaos_run(seed)
    traced_m, traced = _chaos_run(seed, tracer=Tracer())
    assert _identical(plain_m, plain, traced_m, traced)
    assert plain.faults == traced.faults
    assert plain.wasted_time == traced.wasted_time
    assert plain.reload_time == traced.reload_time


# ----------------------------------------------------------------------
# reconciliation: spans == ledger accounting, bit-exact
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CHAOS_SEEDS[:5])
def test_span_totals_reconcile_exactly(seed):
    tr = Tracer()
    _, result = _chaos_run(seed, tracer=tr)
    assert tr.exec_time() == result.busy_time
    per_batch = tr.exec_time_by_batch()
    for batch in result.batches:
        assert per_batch[batch.index] == batch.service
    totals = tr.span_totals()
    completed = {b.index for b in result.batches}
    assert totals["service"] == sum(b.service for b in result.batches)
    assert totals["reload"] == sum(b.reload_time for b in result.batches)
    # every completed request accounted once, with its batch linked
    done = [r for r in tr.requests if r[3] == "done"]
    assert len(done) == len(result.requests)
    assert all(r[7] in completed for r in done)


def test_trace_covers_faults_and_sheds():
    tr = Tracer()
    _, result = _chaos_run(4, tracer=tr)
    fault_instants = [i for i in tr.instants if i[0].startswith("fault:")]
    assert len(fault_instants) == result.faults
    outcomes = {r[3] for r in tr.requests}
    assert "done" in outcomes
    assert len([r for r in tr.requests if r[3] == "abandoned"]) == len(
        result.abandoned
    )
    assert len(tr.waits) == result.retries
    assert tr.events_total() > 0


def test_replay_exports_identical_bytes():
    runs = []
    for _ in range(2):
        tr = Tracer(sample_every=2e5)
        _chaos_run(7, tracer=tr)
        runs.append(chrome_trace_json(tr))
    assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# tracer lifecycle and guard rails
# ----------------------------------------------------------------------
def test_engine_rejects_non_tracer():
    machine = MACHINE_CONFIGS["serial-numeric"]()
    with pytest.raises(ValueError, match="tracer"):
        ServingEngine(machine, "timeout", tracer=object())


def test_unknown_detail_rejected():
    with pytest.raises(ObsError, match="detail"):
        Tracer(detail="verbose")


def test_ledger_hook_is_exclusive_and_released():
    machine = MACHINE_CONFIGS["serial-numeric"]()
    tr = Tracer()
    tr.bind_ledger(machine.ledger)
    with pytest.raises(ObsError, match="already carries"):
        Tracer().bind_ledger(machine.ledger)
    tr.unbind_ledger(machine.ledger)
    assert machine.ledger.on_charge is None


def test_engine_releases_hook_after_serve():
    tr = Tracer()
    machine, _ = _plain_run("serial-numeric", tracer=tr)
    assert machine.ledger.on_charge is None
    # ledger counters mirrored the charge stream
    tensor = tr.registry.get("ledger_tensor_time").value
    assert tensor > 0.0


def test_monitors_fire_into_trace():
    tr = Tracer(
        monitors=[
            SloBurnMonitor(
                "interactive-burn", target=0.99, window=5e6,
                priority=2, min_count=4,
            )
        ]
    )
    _, result = _chaos_run(3, tracer=tr)
    assert tr.alerts, "tight SLO under chaos must trip the burn monitor"
    names = {a[0] for a in tr.alerts}
    assert names == {"interactive-burn"}
    alert_instants = [i for i in tr.instants if i[0].startswith("alert:")]
    assert len(alert_instants) == len(tr.alerts)


# ----------------------------------------------------------------------
# trace_table rides on the tracer
# ----------------------------------------------------------------------
def test_trace_table_reports_zero_deviation():
    tr = Tracer()
    _, result = _chaos_run(2, tracer=tr)
    text = trace_table(tr, result, limit=5)
    assert "deviation 0\n" in text or text.endswith("deviation 0")
    assert "critical path" in text
