"""Unit tests for the metrics registry, sampler and burn-rate monitor."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsError,
    Sampler,
    SloBurnMonitor,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increment(self):
        c = Counter("requests_total")
        with pytest.raises(ObsError, match="cannot decrease"):
            c.inc(-1.0)

    def test_invalid_name_rejected(self):
        with pytest.raises(ObsError, match="invalid metric name"):
            Counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("queue_depth")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4.0


class TestHistogram:
    def test_bucketing_and_quantiles(self):
        h = Histogram("latency", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(560.5)
        assert h.counts == [1, 2, 1, 1]
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == math.inf

    def test_empty_quantile_is_nan(self):
        h = Histogram("latency", bounds=(1.0,))
        assert math.isnan(h.quantile(0.5))

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ObsError, match="sorted"):
            Histogram("latency", bounds=(10.0, 1.0))

    def test_quantile_range_checked(self):
        h = Histogram("latency", bounds=(1.0,))
        with pytest.raises(ObsError, match="outside"):
            h.quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_live_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("hits")
        b = reg.counter("hits")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_labels_key_distinct_metrics(self):
        reg = MetricsRegistry()
        a = reg.gauge("slo", labels={"class": "0"})
        b = reg.gauge("slo", labels={"class": "2"})
        assert a is not b
        assert a.full_name == 'slo{class="0"}'

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObsError, match="already registered as counter"):
            reg.gauge("x")

    def test_get_unknown_lists_names(self):
        reg = MetricsRegistry()
        reg.counter("known")
        with pytest.raises(ValueError, match="registered:.*known"):
            reg.get("unknown")

    def test_snapshot_is_sorted_and_scalar(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1)
        h = reg.histogram("c", bounds=(1.0,))
        h.observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c_count", "c_sum"]
        assert snap["c_count"] == 1.0 and snap["c_sum"] == 0.5


class TestSampler:
    def test_event_driven_grid(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        s = Sampler(10.0)
        for t in (0.0, 3.0, 12.0, 13.0, 47.0):
            c.inc()
            if s.due(t):
                s.sample(reg, ts=t)
        # samples land on the first event at/after each grid point
        assert [t for t, _ in s.rows] == [0.0, 12.0, 47.0]
        times, values = s.series("n")
        assert list(values) == [1.0, 3.0, 5.0]

    def test_force_flush_records_off_grid(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        s = Sampler(100.0)
        s.sample(reg, ts=1.0)  # grid point 0 -> records
        s.sample(reg, ts=2.0)  # before next grid point -> skipped
        s.sample(reg, ts=2.0, force=True)
        assert [t for t, _ in s.rows] == [1.0, 2.0]

    def test_windowed_rate(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        s = Sampler(1.0)
        for t in range(5):
            c.inc(2)
            s.sample(reg, ts=float(t))
        times, rate = s.windowed_rate("n", window=2.0)
        # steady 2/sec counter: trailing-2s increase / 2 converges to 2
        assert rate[-1] == pytest.approx(2.0)

    def test_invalid_pitch_and_window(self):
        with pytest.raises(ObsError, match="positive"):
            Sampler(0.0)
        s = Sampler(1.0)
        with pytest.raises(ObsError, match="positive"):
            s.windowed_rate("x", window=0.0)


class TestSloBurnMonitor:
    def test_fires_and_resolves_on_transitions_only(self):
        mon = SloBurnMonitor("m", target=0.5, window=100.0, min_count=4)
        out = []
        ts = 0.0
        for met in [True, True, False, False, False, False, True, True, True, True]:
            ts += 1.0
            got = mon.observe(met, ts=ts)
            if got is not None:
                out.append(got[0])
        assert out == ["firing", "resolved"]

    def test_min_count_gates_alerting(self):
        mon = SloBurnMonitor("m", target=0.9, window=10.0, min_count=8)
        for i in range(7):
            assert mon.observe(False, ts=float(i)) is None

    def test_window_expiry_forgets_old_misses(self):
        mon = SloBurnMonitor("m", target=0.5, window=5.0, min_count=1)
        state = mon.observe(False, ts=0.0)
        assert state is not None and state[0] == "firing"
        # the miss ages out of the window; fresh successes resolve
        got = mon.observe(True, ts=10.0)
        assert got is not None and got[0] == "resolved"

    def test_parameter_validation(self):
        with pytest.raises(ObsError, match="target"):
            SloBurnMonitor("m", target=1.5, window=1.0)
        with pytest.raises(ObsError, match="window"):
            SloBurnMonitor("m", target=0.5, window=0.0)
        with pytest.raises(ObsError, match="threshold"):
            SloBurnMonitor("m", target=0.5, window=1.0, threshold=0.0)
