"""Theorem 5 transitive closure tests."""

import networkx as nx
import numpy as np
import pytest

from repro import TCUMachine
from repro.analysis.fitting import loglog_slope
from repro.baselines.ram import RAMMachine, ram_transitive_closure
from repro.graph.closure import transitive_closure


def random_digraph(rng, n, p):
    A = (rng.random((n, n)) < p).astype(np.int64)
    np.fill_diagonal(A, 0)
    return A


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(4, 0.5), (8, 0.3), (12, 0.2), (16, 0.15), (21, 0.1), (32, 0.08)])
    def test_matches_figure5_reference(self, tcu, rng, n, p):
        A = random_digraph(rng, n, p)
        ram = RAMMachine()
        assert np.array_equal(
            transitive_closure(tcu, A), ram_transitive_closure(ram, A)
        )

    def test_matches_networkx(self, tcu, rng):
        A = random_digraph(rng, 14, 0.15)
        got = transitive_closure(tcu, A)
        G = nx.from_numpy_array(A, create_using=nx.DiGraph)
        closure = nx.transitive_closure(G, reflexive=False)
        want = nx.to_numpy_array(closure, dtype=np.int64, nodelist=range(14))
        assert np.array_equal(got, want)

    def test_empty_graph(self, tcu):
        A = np.zeros((8, 8), dtype=np.int64)
        assert transitive_closure(tcu, A).sum() == 0

    def test_complete_graph_stays_complete(self, tcu):
        n = 8
        A = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
        C = transitive_closure(tcu, A)
        # every vertex reaches every vertex including itself (cycles)
        assert C.sum() == n * n

    def test_directed_path(self, tcu):
        """0 -> 1 -> 2 -> 3: closure is the strict upper triangle."""
        n = 4
        A = np.zeros((n, n), dtype=np.int64)
        for i in range(n - 1):
            A[i, i + 1] = 1
        C = transitive_closure(tcu, A)
        assert np.array_equal(C, np.triu(np.ones((n, n), dtype=np.int64), 1))

    def test_cycle_reaches_itself(self, tcu):
        n = 5
        A = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            A[i, (i + 1) % n] = 1
        C = transitive_closure(tcu, A)
        assert (np.diag(C) == 1).all()
        assert C.sum() == n * n

    def test_two_components_disconnected(self, tcu):
        A = np.zeros((8, 8), dtype=np.int64)
        A[0, 1] = A[1, 0] = 1
        A[5, 6] = 1
        C = transitive_closure(tcu, A)
        assert C[0, 5] == 0 and C[5, 0] == 0
        assert C[5, 6] == 1 and C[6, 5] == 0

    def test_output_is_binary(self, tcu, rng):
        """The D-kernel clamp keeps entries 0/1 despite integer products."""
        A = random_digraph(rng, 20, 0.4)  # dense: many parallel paths
        C = transitive_closure(tcu, A)
        assert set(np.unique(C)) <= {0, 1}

    def test_non_binary_input_rejected(self, tcu):
        A = np.full((4, 4), 2, dtype=np.int64)
        with pytest.raises(ValueError, match="0/1"):
            transitive_closure(tcu, A)

    def test_non_square_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="square"):
            transitive_closure(tcu, np.zeros((3, 4)))

    def test_closure_is_idempotent(self, tcu, rng):
        A = random_digraph(rng, 12, 0.2)
        C1 = transitive_closure(tcu, A)
        C2 = transitive_closure(tcu, C1)
        assert np.array_equal(C1, C2)


class TestCostShape:
    def test_cubic_scaling(self, rng):
        times = []
        ns = [8, 16, 32, 64]
        for n in ns:
            tcu = TCUMachine(m=16)
            transitive_closure(tcu, random_digraph(rng, n, 0.2))
            times.append(tcu.time)
        slope = loglog_slope(ns, times)
        assert 2.6 < slope < 3.3

    def test_latency_term(self, rng):
        n = 16
        t0 = TCUMachine(m=16, ell=0.0)
        t1 = TCUMachine(m=16, ell=100.0)
        A = random_digraph(rng, n, 0.2)
        transitive_closure(t0, A)
        transitive_closure(t1, A)
        # same tensor throughput, latency only in the ell > 0 machine
        assert t0.ledger.tensor_time == t1.ledger.tensor_time
        assert t1.ledger.latency_time == 100.0 * t1.ledger.tensor_calls

    def test_tensor_calls_quadratic_in_blocks(self, rng):
        """Figure 7 issues ~2 tall calls per (k, j) pair: Theta((n/sqrt(m))^2)."""
        tcu = TCUMachine(m=16)
        n = 32  # 8 blocks
        transitive_closure(tcu, random_digraph(rng, n, 0.2))
        nb = n // 4
        assert tcu.ledger.tensor_calls <= 2 * nb * nb
        assert tcu.ledger.tensor_calls >= nb * (nb - 1)
