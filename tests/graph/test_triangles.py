"""Triangle counting tests."""

import networkx as nx
import numpy as np
import pytest

from repro import TCUMachine
from repro.graph.triangles import count_triangles, triangles_per_vertex
from repro.matmul.strassen import CLASSICAL_2X2


def adjacency(G, n):
    return nx.to_numpy_array(G, dtype=np.int64, nodelist=range(n))


class TestCounting:
    @pytest.mark.parametrize("n,p,seed", [(10, 0.3, 1), (20, 0.25, 2), (40, 0.15, 3)])
    def test_matches_networkx(self, tcu, n, p, seed):
        G = nx.gnp_random_graph(n, p, seed=seed)
        A = adjacency(G, n)
        want = sum(nx.triangles(G).values()) // 3
        assert count_triangles(tcu, A) == want

    def test_per_vertex_matches_networkx(self, tcu):
        G = nx.gnp_random_graph(25, 0.3, seed=9)
        A = adjacency(G, 25)
        per = triangles_per_vertex(tcu, A)
        ref = nx.triangles(G)
        assert all(per[v] == ref[v] for v in range(25))

    def test_triangle_free_graph(self, tcu):
        G = nx.complete_bipartite_graph(4, 5)
        A = adjacency(G, 9)
        assert count_triangles(tcu, A) == 0

    def test_complete_graph(self, tcu):
        n = 8
        A = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
        assert count_triangles(tcu, A) == n * (n - 1) * (n - 2) // 6

    def test_single_triangle(self, tcu):
        A = np.zeros((5, 5), dtype=np.int64)
        for u, v in ((0, 1), (1, 2), (2, 0)):
            A[u, v] = A[v, u] = 1
        assert count_triangles(tcu, A) == 1
        per = triangles_per_vertex(tcu, A)
        assert list(per) == [1, 1, 1, 0, 0]

    def test_empty_graph(self, tcu):
        assert count_triangles(tcu, np.zeros((6, 6), dtype=np.int64)) == 0

    def test_zero_vertices(self, tcu):
        assert triangles_per_vertex(tcu, np.zeros((0, 0))).size == 0

    def test_classical_scheme_agrees(self, tcu):
        G = nx.gnp_random_graph(16, 0.3, seed=4)
        A = adjacency(G, 16)
        assert count_triangles(tcu, A) == count_triangles(
            tcu, A, algorithm=CLASSICAL_2X2
        )

    def test_directed_rejected(self, tcu):
        A = np.zeros((4, 4), dtype=np.int64)
        A[0, 1] = 1
        with pytest.raises(ValueError, match="undirected"):
            count_triangles(tcu, A)

    def test_self_loop_rejected(self, tcu):
        A = np.eye(4, dtype=np.int64)
        with pytest.raises(ValueError, match="self-loops"):
            count_triangles(tcu, A)

    def test_cost_is_one_product_plus_linear(self, rng):
        """Tensor calls equal a single Strassen product's call count."""
        from repro.matmul.strassen import STRASSEN_2X2, strassen_like_mm

        n = 32
        G = nx.gnp_random_graph(n, 0.2, seed=5)
        A = adjacency(G, n)
        t_count = TCUMachine(m=16)
        count_triangles(t_count, A)
        t_mm = TCUMachine(m=16)
        strassen_like_mm(t_mm, A, A, algorithm=STRASSEN_2X2)
        assert t_count.ledger.tensor_calls == t_mm.ledger.tensor_calls
