"""Theorem 6 Seidel APSD tests."""

import networkx as nx
import numpy as np
import pytest

from repro import TCUMachine
from repro.graph.apsd import SeidelStats, apsd, seidel


def gnp_adjacency(n, p, seed):
    G = nx.gnp_random_graph(n, p, seed=seed)
    return nx.to_numpy_array(G, dtype=np.int64), G


def nx_distances(G, n):
    D = np.full((n, n), np.inf)
    for u, lengths in nx.all_pairs_shortest_path_length(G):
        for v, d in lengths.items():
            D[u, v] = d
    return D


class TestSeidelConnected:
    @pytest.mark.parametrize("n,p,seed", [(8, 0.5, 1), (12, 0.4, 2), (16, 0.3, 3), (24, 0.25, 4)])
    def test_matches_bfs(self, tcu, n, p, seed):
        A, G = gnp_adjacency(n, p, seed)
        if not nx.is_connected(G):
            pytest.skip("need a connected sample")
        D = seidel(tcu, A)
        assert np.array_equal(D, nx_distances(G, n))

    def test_path_graph(self, tcu):
        n = 9
        G = nx.path_graph(n)
        A = nx.to_numpy_array(G, dtype=np.int64)
        D = seidel(tcu, A)
        want = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        assert np.array_equal(D, want)

    def test_cycle_graph(self, tcu):
        n = 8
        A = nx.to_numpy_array(nx.cycle_graph(n), dtype=np.int64)
        D = seidel(tcu, A)
        idx = np.arange(n)
        want = np.minimum((idx[:, None] - idx) % n, (idx - idx[:, None]) % n)
        assert np.array_equal(D, want)

    def test_complete_graph_base_case(self, tcu):
        n = 6
        A = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
        stats = SeidelStats()
        D = seidel(tcu, A, stats=stats)
        assert np.array_equal(D, A)
        assert stats.products == 0  # immediate base case

    def test_star_graph(self, tcu):
        n = 10
        A = nx.to_numpy_array(nx.star_graph(n - 1), dtype=np.int64)
        D = seidel(tcu, A)
        assert D.max() == 2

    def test_single_vertex(self, tcu):
        assert seidel(tcu, np.zeros((1, 1), dtype=np.int64)) == np.zeros((1, 1))

    def test_two_vertices_edge(self, tcu):
        A = np.array([[0, 1], [1, 0]], dtype=np.int64)
        assert np.array_equal(seidel(tcu, A), A)

    def test_disconnected_rejected(self, tcu):
        A = np.zeros((6, 6), dtype=np.int64)
        A[0, 1] = A[1, 0] = 1  # second component isolated
        with pytest.raises(ValueError, match="disconnected"):
            seidel(tcu, A)

    def test_asymmetric_rejected(self, tcu):
        A = np.zeros((4, 4), dtype=np.int64)
        A[0, 1] = 1
        with pytest.raises(ValueError, match="undirected"):
            seidel(tcu, A)

    def test_non_binary_rejected(self, tcu):
        A = np.full((4, 4), 3, dtype=np.int64)
        with pytest.raises(ValueError, match="0/1"):
            seidel(tcu, A)


class TestApsdComponents:
    def test_disconnected_gets_inf(self, tcu):
        A = np.zeros((5, 5), dtype=np.int64)
        A[0, 1] = A[1, 0] = 1
        A[2, 3] = A[3, 2] = 1
        D = apsd(tcu, A)
        assert D[0, 1] == 1 and D[2, 3] == 1
        assert np.isinf(D[0, 2]) and np.isinf(D[4, 0])
        assert D[4, 4] == 0

    @pytest.mark.parametrize("n,p,seed", [(14, 0.1, 7), (20, 0.08, 8), (24, 0.3, 9)])
    def test_matches_networkx_any_graph(self, tcu, n, p, seed):
        A, G = gnp_adjacency(n, p, seed)
        assert np.array_equal(apsd(tcu, A), nx_distances(G, n))

    def test_stats_records_components(self, tcu):
        A = np.zeros((6, 6), dtype=np.int64)
        A[0, 1] = A[1, 0] = 1
        A[2, 3] = A[3, 2] = 1
        stats = SeidelStats()
        apsd(tcu, A, stats=stats)
        assert sorted(stats.component_sizes) == [1, 1, 2, 2]

    def test_empty_graph(self, tcu):
        D = apsd(tcu, np.zeros((0, 0)))
        assert D.shape == (0, 0)


class TestRecursionDepth:
    def test_depth_logarithmic(self, tcu):
        """Theorem 6's log n factor: recursion depth <= ceil(log2 diameter)+1."""
        n = 32
        A = nx.to_numpy_array(nx.path_graph(n), dtype=np.int64)
        stats = SeidelStats()
        seidel(tcu, A, stats=stats)
        assert stats.depth <= int(np.ceil(np.log2(n))) + 1
        assert stats.products <= 2 * (stats.depth + 1)

    def test_products_two_per_level(self, tcu):
        """Each non-base level performs one squaring + one parity product."""
        n = 16
        A = nx.to_numpy_array(nx.path_graph(n), dtype=np.int64)
        stats = SeidelStats()
        seidel(tcu, A, stats=stats)
        assert stats.products == 2 * stats.depth

    def test_model_time_grows_with_depth(self):
        """A path (large diameter) costs more levels than a clique."""
        n = 16
        path = nx.to_numpy_array(nx.path_graph(n), dtype=np.int64)
        clique = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
        t_path = TCUMachine(m=16)
        t_clique = TCUMachine(m=16)
        seidel(t_path, path)
        seidel(t_clique, clique)
        assert t_path.time > t_clique.time
