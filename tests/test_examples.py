"""Every example script must run to completion from a clean process.

Examples are documentation that executes; a broken one is worse than no
example.  Each runs as a subprocess (so import side effects and
__main__ guards are exercised exactly as a user would hit them) with a
generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 7, "the paper reproduction promises >= 7 examples"


def test_serving_walkthrough_registered():
    """PR4 ships an online-serving walkthrough; keep it in the suite."""
    assert "serving_sim.py" in {path.name for path in EXAMPLES}


def test_two_class_overload_demo_registered():
    """PR5 extends the walkthrough with the interactive-vs-batch
    preemption demo; keep it wired into the script it documents."""
    source = (EXAMPLES_DIR / "serving_sim.py").read_text()
    assert "interactive_batch_mix" in source
    assert "two_class_overload_demo" in source
    assert "preempt=preempt" in source


def test_trace_explore_registered():
    """PR9 ships the observability walkthrough: tracing the chaos run,
    Perfetto export, Prometheus text and byte-identical replay."""
    assert "trace_explore.py" in {path.name for path in EXAMPLES}
    source = (EXAMPLES_DIR / "trace_explore.py").read_text()
    assert "Tracer" in source
    assert "trace_table" in source
    assert "write_chrome_trace" in source
    assert "prometheus_text" in source
    assert "chrome_trace_json(tracer) == chrome_trace_json(replay)" in source


def test_fault_tolerance_demo_registered():
    """PR7 adds the chaos act: seeded fault injection with checkpoint
    vs restart recovery; keep it wired into the script it documents."""
    source = (EXAMPLES_DIR / "serving_sim.py").read_text()
    assert "fault_tolerance_demo" in source
    assert "chaos_injector" in source
    assert "check_conservation" in source


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{proc.stdout[-2000:]}"
        f"\n--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring(script):
    source = script.read_text()
    head = source.lstrip()
    assert head.startswith(('"""', "'''", "#!")), (
        f"{script.name} must open with a shebang or docstring"
    )
    assert '"""' in source, f"{script.name} must document what it shows"
