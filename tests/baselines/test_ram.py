"""RAM baseline tests (these are the oracles, so test them carefully)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.ram import (
    RAMMachine,
    ram_apsd_bfs,
    ram_dft_naive,
    ram_fft,
    ram_ge_forward,
    ram_horner,
    ram_matmul,
    ram_schoolbook_intmul,
    ram_stencil_sweeps,
    ram_transitive_closure,
)
from repro.transform.stencil import HEAT_3X3


class TestMatmul:
    def test_correct(self, rng):
        ram = RAMMachine()
        A = rng.random((5, 7))
        B = rng.random((7, 3))
        assert np.allclose(ram_matmul(ram, A, B), A @ B)

    def test_cost_is_2pqr(self, rng):
        ram = RAMMachine()
        ram_matmul(ram, rng.random((5, 7)), rng.random((7, 3)))
        assert ram.time == 2 * 5 * 7 * 3

    def test_shape_check(self, rng):
        with pytest.raises(ValueError):
            ram_matmul(RAMMachine(), rng.random((2, 3)), rng.random((4, 2)))


class TestGE:
    def test_upper_triangular_result(self, rng):
        ram = RAMMachine()
        X = rng.random((6, 6)) + 6 * np.eye(6)
        U = np.triu(ram_ge_forward(ram, X))
        # U must satisfy: solving U against the transformed rhs works.
        assert np.allclose(np.tril(U, -1), 0)

    def test_zero_pivot(self):
        with pytest.raises(ZeroDivisionError):
            ram_ge_forward(RAMMachine(), np.zeros((3, 3)))

    def test_cubic_cost(self, rng):
        ram = RAMMachine()
        ram_ge_forward(ram, rng.random((8, 8)) + 8 * np.eye(8))
        assert 3 * (7 * 7 + 6 * 6) < ram.time < 3 * 8**3


class TestClosureAndAPSD:
    def test_closure_matches_networkx(self, rng):
        n = 10
        A = (rng.random((n, n)) < 0.2).astype(np.int64)
        np.fill_diagonal(A, 0)
        ram = RAMMachine()
        got = ram_transitive_closure(ram, A)
        G = nx.from_numpy_array(A, create_using=nx.DiGraph)
        want = nx.to_numpy_array(
            nx.transitive_closure(G, reflexive=False), dtype=np.int64, nodelist=range(n)
        )
        assert np.array_equal(got, want)

    def test_apsd_matches_networkx(self, rng):
        n = 12
        G = nx.gnp_random_graph(n, 0.25, seed=5)
        A = nx.to_numpy_array(G, dtype=np.int64)
        ram = RAMMachine()
        D = ram_apsd_bfs(ram, A)
        for u, lengths in nx.all_pairs_shortest_path_length(G):
            for v in range(n):
                assert D[u, v] == lengths.get(v, np.inf)

    def test_apsd_disconnected_inf(self):
        A = np.zeros((4, 4), dtype=np.int64)
        ram = RAMMachine()
        D = ram_apsd_bfs(ram, A)
        assert np.isinf(D[0, 1])
        assert D[2, 2] == 0


class TestTransforms:
    @pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
    def test_fft_matches_numpy(self, rng, n):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(ram_fft(RAMMachine(), x), np.fft.fft(x))

    def test_fft_requires_power_of_two(self, rng):
        with pytest.raises(ValueError):
            ram_fft(RAMMachine(), rng.standard_normal(12))

    def test_naive_dft_matches_numpy(self, rng):
        x = rng.standard_normal(16)
        assert np.allclose(ram_dft_naive(RAMMachine(), x), np.fft.fft(x))

    def test_fft_cheaper_than_naive(self, rng):
        x = rng.standard_normal(256)
        fast, slow = RAMMachine(), RAMMachine()
        ram_fft(fast, x)
        ram_dft_naive(slow, x)
        assert fast.time < slow.time

    def test_stencil_sweeps_match_tcu_direct(self, rng):
        from repro import TCUMachine
        from repro.transform.stencil import stencil_direct

        A = rng.standard_normal((8, 8))
        ram = RAMMachine()
        got = ram_stencil_sweeps(ram, A, HEAT_3X3, 3)
        want = stencil_direct(TCUMachine(m=16), A, HEAT_3X3, 3)
        assert np.allclose(got, want)
        assert ram.time > 0


class TestArith:
    @pytest.mark.parametrize("kappa", [8, 16, 64])
    def test_schoolbook_exact(self, kappa):
        a, b = 2**77 - 1, 2**93 + 5
        assert ram_schoolbook_intmul(RAMMachine(), a, b, kappa) == a * b

    def test_schoolbook_signs(self):
        assert ram_schoolbook_intmul(RAMMachine(), -7, 8) == -56

    def test_schoolbook_zero(self):
        assert ram_schoolbook_intmul(RAMMachine(), 0, 5) == 0

    def test_horner_matches_polyval(self, rng):
        coeffs = rng.standard_normal(12)
        pts = rng.uniform(-2, 2, 5)
        got = ram_horner(RAMMachine(), coeffs, pts)
        assert np.allclose(got, np.polyval(coeffs[::-1], pts))

    def test_horner_cost(self, rng):
        ram = RAMMachine()
        ram_horner(ram, rng.standard_normal(12), rng.uniform(-1, 1, 5))
        assert ram.time == 2 * 5 * 12
