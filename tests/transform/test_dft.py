"""Theorem 7 DFT tests."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.analysis.fitting import loglog_slope
from repro.transform.dft import (
    batched_dft,
    batched_idft,
    dft,
    dft_matrix,
    dft_recursion_depth,
    idft,
)


class TestDftMatrix:
    def test_unitary_up_to_scale(self):
        for n in (2, 4, 8):
            W = dft_matrix(n)
            assert np.allclose(W @ W.conj().T, n * np.eye(n))

    def test_symmetric(self):
        W = dft_matrix(8)
        assert np.allclose(W, W.T)

    def test_size_one(self):
        assert dft_matrix(1).shape == (1, 1)
        assert dft_matrix(1)[0, 0] == 1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            dft_matrix(0)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 32, 64, 256, 1024])
    def test_matches_numpy_fft(self, tcu, rng, n):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(dft(tcu, x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_real_input(self, tcu, rng, n):
        x = rng.standard_normal(n)
        assert np.allclose(dft(tcu, x), np.fft.fft(x))

    @pytest.mark.parametrize("n", [2, 8, 64, 256])
    def test_inverse_roundtrip(self, tcu, rng, n):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(idft(tcu, dft(tcu, x)), x)

    def test_batched_matches_rowwise(self, tcu, rng):
        X = rng.standard_normal((6, 64)) + 1j * rng.standard_normal((6, 64))
        assert np.allclose(batched_dft(tcu, X), np.fft.fft(X, axis=1))

    def test_batched_idft(self, tcu, rng):
        X = rng.standard_normal((4, 32)).astype(np.complex128)
        assert np.allclose(batched_idft(tcu, np.fft.fft(X, axis=1)), X)

    def test_non_smooth_size_rejected(self, tcu, rng):
        # m=16: sqrt(m)=4; 24 > 4 and 24 % 4 == 0 -> next level 6 > 4, 6 % 4 != 0
        with pytest.raises(ValueError, match="smooth"):
            dft(tcu, rng.standard_normal(24))

    def test_delta_transforms_to_ones(self, tcu):
        x = np.zeros(16)
        x[0] = 1.0
        assert np.allclose(dft(tcu, x), np.ones(16))

    def test_constant_transforms_to_delta(self, tcu):
        x = np.ones(16)
        y = dft(tcu, x)
        assert np.isclose(y[0], 16)
        assert np.allclose(y[1:], 0)

    def test_parseval(self, tcu, rng):
        x = rng.standard_normal(64)
        y = dft(tcu, x)
        assert np.isclose(np.sum(np.abs(x) ** 2), np.sum(np.abs(y) ** 2) / 64)

    def test_1d_required(self, tcu, rng):
        with pytest.raises(ValueError, match="1-D"):
            dft(tcu, rng.standard_normal((4, 4)))

    def test_2d_required_for_batched(self, tcu, rng):
        with pytest.raises(ValueError, match="2-D"):
            batched_dft(tcu, rng.standard_normal(16))


class TestCostShape:
    def test_depth_counter(self):
        assert dft_recursion_depth(16, 16) == 1
        assert dft_recursion_depth(64, 16) == 2
        assert dft_recursion_depth(256, 16) == 3
        assert dft_recursion_depth(4096, 256) == 2

    def test_near_linear_scaling(self, rng):
        """Theorem 7: (n + l) log_m n — near-linear in n."""
        ns = [64, 256, 1024, 4096]
        times = []
        for n in ns:
            tcu = TCUMachine(m=16)
            dft(tcu, rng.standard_normal(n))
            times.append(tcu.time)
        slope = loglog_slope(ns, times)
        assert 1.0 < slope < 1.35

    def test_larger_m_fewer_levels(self, rng):
        n = 4096
        t_small = TCUMachine(m=16)
        t_large = TCUMachine(m=64)
        x = rng.standard_normal(n)
        dft(t_small, x)
        dft(t_large, x)
        assert t_large.time < t_small.time

    def test_batching_amortises_latency(self, rng):
        """B vectors in one batch pay far less latency than B separate calls."""
        B, n = 16, 64
        together = TCUMachine(m=16, ell=1000.0)
        separate = TCUMachine(m=16, ell=1000.0)
        X = rng.standard_normal((B, n))
        batched_dft(together, X)
        for row in X:
            dft(separate, row)
        assert together.ledger.latency_time < separate.ledger.latency_time / 4

    def test_latency_enters_once_per_level(self, rng):
        n = 256
        t0 = TCUMachine(m=16, ell=0.0)
        t1 = TCUMachine(m=16, ell=500.0)
        x = rng.standard_normal(n)
        dft(t0, x)
        dft(t1, x)
        depth = dft_recursion_depth(n, 16)
        extra_latency = t1.time - t0.time
        # a handful of calls per level, each paying ell once
        assert extra_latency <= 500.0 * 4 * depth
