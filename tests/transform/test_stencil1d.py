"""1-D stencil tests (the d = O(1) generality claim of Section 4.6)."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.transform.stencil1d import (
    stencil1d_direct,
    stencil1d_tcu,
    unrolled_weights_1d,
)

HEAT_1D = np.array([0.25, 0.5, 0.25])  # 1-D heat kernel


class TestDirect:
    def test_zero_sweeps_identity(self, tcu, rng):
        x = rng.standard_normal(10)
        assert np.array_equal(stencil1d_direct(tcu, x, HEAT_1D, 0), x)

    def test_one_sweep_interior(self, tcu, rng):
        x = rng.standard_normal(10)
        out = stencil1d_direct(tcu, x, HEAT_1D, 1)
        i = 5
        assert np.isclose(out[i], 0.25 * x[i - 1] + 0.5 * x[i] + 0.25 * x[i + 1])

    def test_mass_conserved_with_headroom(self, tcu, rng):
        x = rng.random(10)
        big = np.zeros(10 + 12)
        big[6:16] = x
        out = stencil1d_direct(tcu, big, HEAT_1D, 3)
        assert np.isclose(out.sum(), x.sum())

    def test_linearity(self, tcu, rng):
        a = rng.standard_normal(12)
        b = rng.standard_normal(12)
        lhs = stencil1d_direct(tcu, a + 3 * b, HEAT_1D, 2)
        rhs = stencil1d_direct(tcu, a, HEAT_1D, 2) + 3 * stencil1d_direct(
            tcu, b, HEAT_1D, 2
        )
        assert np.allclose(lhs, rhs)

    def test_bad_kernel_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="3 taps"):
            stencil1d_direct(tcu, rng.random(5), np.ones(5), 1)


class TestUnrolledWeights:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 13, 32])
    def test_matches_direct_unrolling(self, tcu, k):
        """P^k via squaring equals k repeated 3-tap convolutions."""
        Wk = unrolled_weights_1d(tcu, HEAT_1D, k)
        ref = np.array([1.0])
        for _ in range(k):
            ref = np.convolve(ref, HEAT_1D)
        assert Wk.shape == (2 * k + 1,)
        assert np.allclose(Wk, ref, atol=1e-10)

    def test_k1_is_kernel(self, tcu):
        assert np.allclose(unrolled_weights_1d(tcu, HEAT_1D, 1), HEAT_1D)

    def test_shift_kernel(self, tcu):
        W = np.array([0.0, 0.0, 1.0])  # pure shift
        Wk = unrolled_weights_1d(tcu, W, 4)
        expect = np.zeros(9)
        expect[8] = 1.0
        assert np.allclose(Wk, expect)

    def test_invalid_k(self, tcu):
        with pytest.raises(ValueError):
            unrolled_weights_1d(tcu, HEAT_1D, 0)


class TestTCUStencil:
    @pytest.mark.parametrize("n,k", [(8, 1), (20, 2), (33, 4), (100, 8), (7, 5)])
    def test_matches_direct(self, tcu, rng, n, k):
        x = rng.standard_normal(n)
        want = stencil1d_direct(tcu, x, HEAT_1D, k)
        got = stencil1d_tcu(tcu, x, HEAT_1D, k)
        assert np.allclose(got, want, atol=1e-9)

    def test_asymmetric_kernel(self, tcu, rng):
        W = np.array([0.7, 0.2, 0.1])
        x = rng.standard_normal(40)
        assert np.allclose(
            stencil1d_tcu(tcu, x, W, 3),
            stencil1d_direct(tcu, x, W, 3),
            atol=1e-9,
        )

    def test_precomputed_weights(self, tcu, rng):
        x = rng.standard_normal(30)
        k = 4
        W = unrolled_weights_1d(tcu, HEAT_1D, k)
        got = stencil1d_tcu(tcu, x, HEAT_1D, k, precomputed_W=W)
        assert np.allclose(got, stencil1d_direct(tcu, x, HEAT_1D, k), atol=1e-9)

    def test_wrong_precomputed_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="taps"):
            stencil1d_tcu(tcu, rng.random(10), HEAT_1D, 3, precomputed_W=np.ones(3))

    def test_sublinear_in_k(self, rng):
        """Same shape as the 2-D Theorem 8: multiplying k by 8 costs
        far less than 8x once the FFT route engages."""
        x = rng.standard_normal(8192)
        times = {}
        for k in (8, 64):
            tcu = TCUMachine(m=16)
            stencil1d_tcu(tcu, x, HEAT_1D, k)
            times[k] = tcu.time
        assert times[64] / times[8] < 4.0
