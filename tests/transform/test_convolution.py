"""Convolution primitive tests."""

import numpy as np
import pytest

from repro.transform.convolution import (
    batched_circular_convolve2d,
    circular_convolve,
    dft2,
    embed_centered_kernel_1d,
    embed_centered_kernel_2d,
    idft2,
)


def naive_centered_correlate2d(tile, W):
    """Direct evaluation of out[i,j] = sum tile[(i+a)%S,(j+b)%S] W[k+a,k+b]."""
    S = tile.shape[0]
    k = W.shape[0] // 2
    out = np.zeros_like(tile, dtype=np.float64)
    for i in range(S):
        for j in range(S):
            acc = 0.0
            for a in range(-k, k + 1):
                for b in range(-k, k + 1):
                    acc += tile[(i + a) % S, (j + b) % S] * W[k + a, k + b]
            out[i, j] = acc
    return out


class TestCircularConvolve1D:
    @pytest.mark.parametrize("n", [4, 8, 16, 64])
    def test_matches_fft_reference(self, tcu, rng, n):
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        ref = np.real(np.fft.ifft(np.fft.fft(a) * np.fft.fft(b)))
        assert np.allclose(circular_convolve(tcu, a, b), ref)

    def test_convolution_with_delta_is_identity(self, tcu, rng):
        n = 16
        a = rng.standard_normal(n)
        delta = np.zeros(n)
        delta[0] = 1.0
        assert np.allclose(circular_convolve(tcu, a, delta), a)

    def test_commutative(self, tcu, rng):
        a = rng.standard_normal(8)
        b = rng.standard_normal(8)
        assert np.allclose(
            circular_convolve(tcu, a, b), circular_convolve(tcu, b, a)
        )

    def test_shift_theorem(self, tcu, rng):
        """Convolving with a shifted delta rotates the signal."""
        n = 16
        a = rng.standard_normal(n)
        delta3 = np.zeros(n)
        delta3[3] = 1.0
        assert np.allclose(circular_convolve(tcu, a, delta3), np.roll(a, 3))

    def test_length_mismatch_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            circular_convolve(tcu, rng.standard_normal(8), rng.standard_normal(16))


class Test2DTransforms:
    def test_dft2_matches_numpy(self, tcu, rng):
        X = rng.standard_normal((3, 16, 16))
        assert np.allclose(dft2(tcu, X), np.fft.fft2(X, axes=(1, 2)))

    def test_idft2_roundtrip(self, tcu, rng):
        X = rng.standard_normal((2, 8, 8)) + 1j * rng.standard_normal((2, 8, 8))
        assert np.allclose(idft2(tcu, dft2(tcu, X)), X)

    def test_requires_square(self, tcu, rng):
        with pytest.raises(ValueError):
            dft2(tcu, rng.standard_normal((2, 8, 4)))


class TestEmbeddedKernels:
    def test_1d_layout(self):
        W = np.array([1.0, 2.0, 3.0])  # offsets -1, 0, +1
        ker = embed_centered_kernel_1d(W, 8)
        assert ker[0] == 2.0  # centre at offset 0
        assert ker[1] == 3.0  # offset +1
        assert ker[7] == 1.0  # offset -1 wraps
        assert (ker[2:7] == 0).all()

    def test_2d_layout(self):
        W = np.arange(9, dtype=np.float64).reshape(3, 3)
        ker = embed_centered_kernel_2d(W, 6)
        assert ker[0, 0] == W[1, 1]
        assert ker[1, 1] == W[2, 2]
        assert ker[5, 5] == W[0, 0]
        assert ker[0, 5] == W[1, 0]

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            embed_centered_kernel_1d(np.ones(4), 8)

    def test_too_small_size_rejected(self):
        with pytest.raises(ValueError):
            embed_centered_kernel_2d(np.ones((5, 5)), 4)


class TestBatchedCorrelate2D:
    @pytest.mark.parametrize("S,k", [(8, 1), (16, 2), (16, 3)])
    def test_matches_naive(self, tcu, rng, S, k):
        tiles = rng.standard_normal((3, S, S))
        W = rng.standard_normal((2 * k + 1, 2 * k + 1))
        got = batched_circular_convolve2d(tcu, tiles, W)
        for t in range(3):
            want = naive_centered_correlate2d(tiles[t], W)
            assert np.allclose(got[t], want, atol=1e-9)

    def test_delta_kernel_is_identity(self, tcu, rng):
        tiles = rng.standard_normal((2, 8, 8))
        W = np.zeros((3, 3))
        W[1, 1] = 1.0
        assert np.allclose(batched_circular_convolve2d(tcu, tiles, W), tiles)

    def test_linear_in_kernel(self, tcu, rng):
        tiles = rng.standard_normal((1, 8, 8))
        W1 = rng.standard_normal((3, 3))
        W2 = rng.standard_normal((3, 3))
        lhs = batched_circular_convolve2d(tcu, tiles, W1 + W2)
        rhs = batched_circular_convolve2d(tcu, tiles, W1) + batched_circular_convolve2d(
            tcu, tiles, W2
        )
        assert np.allclose(lhs, rhs)

    def test_bad_shapes_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            batched_circular_convolve2d(tcu, rng.standard_normal((8, 8)), np.ones((3, 3)))
