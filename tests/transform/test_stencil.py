"""Theorem 8 stencil tests."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.transform.stencil import (
    HEAT_3X3,
    heat_equation_weights,
    stencil_direct,
    stencil_tcu,
    unrolled_weights,
    unrolled_weights_direct,
)


class TestHeatWeights:
    def test_row_sums_to_one(self):
        """The heat kernel conserves total mass."""
        assert np.isclose(heat_equation_weights(0.2).sum(), 1.0)

    def test_symmetry(self):
        W = heat_equation_weights(0.15)
        assert np.allclose(W, W.T)
        assert np.allclose(W, W[::-1, ::-1])

    def test_anisotropic(self):
        W = heat_equation_weights(0.1, dx=1.0, dy=2.0)
        assert W[0, 1] != W[1, 0]


class TestDirectSweeps:
    def test_zero_steps_is_identity(self, tcu, rng):
        A = rng.standard_normal((6, 6))
        assert np.array_equal(stencil_direct(tcu, A, HEAT_3X3, 0), A)

    def test_one_step_interior_matches_formula(self, tcu, rng):
        A = rng.standard_normal((8, 8))
        out = stencil_direct(tcu, A, HEAT_3X3, 1)
        i, j = 4, 4
        want = sum(
            HEAT_3X3[1 + a, 1 + b] * A[i + a, j + b]
            for a in (-1, 0, 1)
            for b in (-1, 0, 1)
        )
        assert np.isclose(out[i, j], want)

    def test_mass_conserved_on_large_pad(self, tcu, rng):
        """Free-space heat evolution conserves total mass exactly."""
        A = rng.random((10, 10))
        k = 3
        # evolve with enough padding that nothing escapes
        big = np.zeros((10 + 4 * k, 10 + 4 * k))
        big[2 * k : 2 * k + 10, 2 * k : 2 * k + 10] = A
        out = stencil_direct(tcu, big, HEAT_3X3, k)
        assert np.isclose(out.sum(), A.sum())

    def test_linearity(self, tcu, rng):
        A = rng.standard_normal((6, 6))
        B = rng.standard_normal((6, 6))
        k = 2
        lhs = stencil_direct(tcu, A + 2 * B, HEAT_3X3, k)
        rhs = stencil_direct(tcu, A, HEAT_3X3, k) + 2 * stencil_direct(
            tcu, B, HEAT_3X3, k
        )
        assert np.allclose(lhs, rhs)

    def test_negative_k_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            stencil_direct(tcu, rng.random((4, 4)), HEAT_3X3, -1)


class TestUnrolledWeights:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6, 7, 9, 16])
    def test_lemma2_matches_direct_unrolling(self, tcu, k):
        W3 = heat_equation_weights(0.12)
        fast = unrolled_weights(tcu, W3, k)
        slow = unrolled_weights_direct(tcu, W3, k)
        assert fast.shape == (2 * k + 1, 2 * k + 1)
        assert np.allclose(fast, slow, atol=1e-9)

    def test_k1_is_kernel_itself(self, tcu):
        W3 = heat_equation_weights(0.1)
        assert np.allclose(unrolled_weights(tcu, W3, 1), W3)

    def test_weight_sum_preserved(self, tcu):
        """sum(W_k) = (sum W)^k: the stencil's constant-mode gain."""
        W3 = heat_equation_weights(0.1) * 1.1
        k = 5
        Wk = unrolled_weights(tcu, W3, k)
        assert np.isclose(Wk.sum(), W3.sum() ** k)

    def test_asymmetric_kernel(self, tcu):
        W3 = np.zeros((3, 3))
        W3[1, 2] = 1.0  # pure shift right
        Wk = unrolled_weights(tcu, W3, 4)
        want = np.zeros((9, 9))
        want[4, 8] = 1.0  # shifted 4 cells
        assert np.allclose(Wk, want)

    def test_bad_k_rejected(self, tcu):
        with pytest.raises(ValueError):
            unrolled_weights(tcu, HEAT_3X3, 0)

    def test_bad_kernel_shape_rejected(self, tcu):
        with pytest.raises(ValueError, match="3x3"):
            unrolled_weights(tcu, np.ones((5, 5)), 2)


class TestStencilTCU:
    @pytest.mark.parametrize(
        "shape,k", [((8, 8), 1), ((12, 12), 2), ((16, 20), 3), ((9, 9), 4), ((24, 24), 6)]
    )
    def test_matches_direct(self, tcu, rng, shape, k):
        A = rng.standard_normal(shape)
        want = stencil_direct(tcu, A, HEAT_3X3, k)
        got = stencil_tcu(tcu, A, HEAT_3X3, k)
        assert np.allclose(got, want, atol=1e-8)

    def test_asymmetric_kernel_end_to_end(self, tcu, rng):
        W3 = np.zeros((3, 3))
        W3[0, 1] = 0.5
        W3[1, 1] = 0.5
        A = rng.standard_normal((10, 10))
        k = 3
        assert np.allclose(
            stencil_tcu(tcu, A, W3, k), stencil_direct(tcu, A, W3, k), atol=1e-9
        )

    def test_precomputed_weights_accepted(self, tcu, rng):
        A = rng.standard_normal((8, 8))
        k = 2
        W = unrolled_weights(tcu, HEAT_3X3, k)
        got = stencil_tcu(tcu, A, HEAT_3X3, k, precomputed_W=W)
        assert np.allclose(got, stencil_direct(tcu, A, HEAT_3X3, k), atol=1e-9)

    def test_wrong_precomputed_shape_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="unrolled kernel"):
            stencil_tcu(tcu, rng.random((8, 8)), HEAT_3X3, 3, precomputed_W=np.ones((3, 3)))

    def test_k_must_be_positive(self, tcu, rng):
        with pytest.raises(ValueError):
            stencil_tcu(tcu, rng.random((8, 8)), HEAT_3X3, 0)


class TestCostShape:
    def test_beats_direct_sweeps_for_large_k(self, rng):
        """Theorem 8: n log_m k beats the direct n*k for big k."""
        n_side, k = 64, 16
        A = rng.standard_normal((n_side, n_side))
        t_direct = TCUMachine(m=16)
        t_tcu = TCUMachine(m=16)
        stencil_direct(t_direct, A, HEAT_3X3, k)
        stencil_tcu(t_tcu, A, HEAT_3X3, k)
        assert t_tcu.time < t_direct.time

    def test_direct_cheaper_for_k1(self, rng):
        """One sweep is cheap; the spectral machinery has overhead."""
        A = rng.standard_normal((16, 16))
        t_direct = TCUMachine(m=16)
        t_tcu = TCUMachine(m=16)
        stencil_direct(t_direct, A, HEAT_3X3, 1)
        stencil_tcu(t_tcu, A, HEAT_3X3, 1)
        assert t_direct.time < t_tcu.time

    def test_sublinear_growth_in_k(self, rng):
        """TCU stencil time grows far slower than the direct method's
        linear-in-k cost: multiplying k by 8 costs much less than 8x."""
        n_side = 128
        A = rng.standard_normal((n_side, n_side))
        times = {}
        for k in (4, 32):
            tcu = TCUMachine(m=16)
            stencil_tcu(tcu, A, HEAT_3X3, k)
            times[k] = tcu.time
        assert times[32] / times[4] < 4.0  # direct would be ~8x
