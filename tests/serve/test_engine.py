"""Engine conservation invariants and exact batch-replay parity.

These pin the PR's acceptance criteria: for any workload / policy /
machine, (1) per-request wait + service latencies are consistent with
the engine clock, and (2) the total tensor/latency charges of a served
run are bit-identical to the same batches replayed serially — through
``mm_batch`` on a one-unit parallel machine, through the fused serial
path, and through a cost-only machine.
"""

import math

import pytest

from repro import (
    ParallelTCUMachine,
    PoissonWorkload,
    TCUMachine,
    replay_batches,
)
from repro.serve import (
    BurstyWorkload,
    ClosedLoopWorkload,
    ServeError,
    ServingEngine,
    SizeBatcher,
    TimeoutBatcher,
    Workload,
)
from repro.serve.workload import Request

ELL = 32.0


def poisson(kind="matmul", total=80, rate=1e-3, seed=1, rows=8, slo=None):
    return PoissonWorkload(rate=rate, total=total, kind=kind, rows=rows, seed=seed, slo=slo)


MACHINE_CONFIGS = {
    "serial-numeric": lambda: TCUMachine(m=16, ell=ELL),
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "serial-max-rows": lambda: TCUMachine(m=16, ell=ELL, max_rows=16),
    "parallel-3": lambda: ParallelTCUMachine(m=16, ell=ELL, units=3),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}


class TestConservation:
    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    @pytest.mark.parametrize("policy_name", ["continuous", "size", "timeout"])
    def test_clock_conservation_everywhere(self, config, policy_name):
        machine = MACHINE_CONFIGS[config]()
        result = ServingEngine(machine, policy_name).serve(poisson(seed=3))
        result.check_conservation()  # raises on violation
        assert result.completed == 80
        # busy time is exactly the ledger-clock span of the run
        assert result.busy_time == pytest.approx(result.ledger_time, rel=1e-12)
        # the engine never idles a ready machine past a release point
        assert result.clock >= result.busy_time

    def test_completion_is_launch_plus_service_bitwise(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(poisson(seed=5))
        for request in result.requests:
            batch = result.batches[request.batch]
            assert request.completion == batch.launch + batch.service
            assert request.launch == batch.launch
            assert request.rid in batch.rids

    def test_latency_sum_matches_engine_clock_identity(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, SizeBatcher(size=8)).serve(poisson(seed=7))
        total_latency = sum(r.latency for r in result.requests)
        total_wait = sum(r.wait for r in result.requests)
        total_service = sum(b.size * b.service for b in result.batches)
        assert total_latency == pytest.approx(total_wait + total_service, rel=1e-12)

    def test_batches_are_serial_on_the_engine(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "timeout").serve(poisson(seed=11, rate=5e-3))
        for prev, cur in zip(result.batches, result.batches[1:]):
            assert cur.launch >= prev.completion

    def test_final_clock_is_last_completion(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(poisson(seed=13))
        assert result.clock == result.batches[-1].completion
        assert result.clock == max(r.completion for r in result.requests)

    def test_validation_detects_corruption(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(poisson(seed=17, total=10))
        result.requests[0].completion += 1.0
        with pytest.raises(ServeError):
            result.check_conservation()

    def test_empty_workload(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(
            PoissonWorkload(rate=1e-3, total=0)
        )
        result.check_conservation()
        assert result.completed == 0 and result.clock == 0.0


class TestReplayParity:
    """Served charges == the same batches replayed serially (acceptance)."""

    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    @pytest.mark.parametrize("kind", ["matmul", "mlp", "dft"])
    def test_served_equals_serial_replay(self, config, kind):
        machine = MACHINE_CONFIGS[config]()
        result = ServingEngine(machine, TimeoutBatcher(timeout=2e3, max_size=16)).serve(
            poisson(kind=kind, total=40, seed=19)
        )
        served = machine.ledger

        # (a) fused serial path, numeric
        serial = TCUMachine(m=16, ell=ELL, max_rows=machine.max_rows)
        replay_batches(result.batches, serial)
        # (b) mm_batch path: a one-unit parallel machine replays every
        #     level of every batch through the scheduled batch executor
        via_mm_batch = ParallelTCUMachine(m=16, ell=ELL, max_rows=machine.max_rows, units=1)
        replay_batches(result.batches, via_mm_batch)
        # (c) cost-only serial
        cost_only = TCUMachine(
            m=16, ell=ELL, max_rows=machine.max_rows, execute="cost-only"
        )
        replay_batches(result.batches, cost_only)

        reference = served.call_shape_totals()

        def streamed_rows(totals):
            return sum(n * count for (n, _), (count, _, _) in totals.items())

        if getattr(machine, "units", 1) > 1:
            # The auto-splitter reads ``p`` at plan time, so a multi-unit
            # serve may issue differently shaped sibling chunks than a
            # one-unit replay.  Exact call-shape parity holds against a
            # units-matched fork twin; the serial replays conserve the
            # streamed row totals.
            twin = machine.fork()
            replay_batches(result.batches, twin)
            assert twin.ledger.call_shape_totals() == reference
            assert twin.ledger.tensor_calls == served.tensor_calls
            for replayed in (serial.ledger, via_mm_batch.ledger, cost_only.ledger):
                assert streamed_rows(replayed.call_shape_totals()) == streamed_rows(
                    reference
                )
        else:
            for replayed in (serial.ledger, via_mm_batch.ledger, cost_only.ledger):
                assert replayed.call_shape_totals() == reference
                assert replayed.tensor_calls == served.tensor_calls
        # serial replays also agree on the raw tensor/latency columns
        assert serial.ledger.tensor_time == via_mm_batch.ledger.tensor_time
        assert serial.ledger.latency_time == via_mm_batch.ledger.latency_time
        assert serial.ledger.tensor_time == cost_only.ledger.tensor_time
        assert serial.ledger.latency_time == cost_only.ledger.latency_time

    def test_serial_served_run_is_bit_identical_to_replay(self):
        """On a serial machine the served ledger *is* the replay ledger."""
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, SizeBatcher(size=4)).serve(
            poisson(total=32, seed=23)
        )
        fork = machine.fork()
        replay_batches(result.batches, fork)
        assert fork.ledger.tensor_time == machine.ledger.tensor_time
        assert fork.ledger.latency_time == machine.ledger.latency_time
        assert fork.ledger.tensor_calls == machine.ledger.tensor_calls
        assert fork.ledger.call_shape_totals() == machine.ledger.call_shape_totals()

    def test_parallel_trace_records_true_hardware_work(self):
        """The parallel engine's clock advances by makespans, but the
        trace keeps serial-cost rows: summing them reproduces the
        serial replay's tensor+latency time exactly."""
        machine = ParallelTCUMachine(m=16, ell=ELL, units=4)
        result = ServingEngine(machine, SizeBatcher(size=8)).serve(
            poisson(kind="mlp", total=48, seed=29)
        )
        _, _, times, lats = machine.ledger.calls.as_arrays()
        serial = TCUMachine(m=16, ell=ELL)
        replay_batches(result.batches, serial)
        assert float(times.sum()) == serial.ledger.tensor_time + serial.ledger.latency_time
        assert float(lats.sum()) == serial.ledger.latency_time


class TestEngineBehaviour:
    def test_closed_loop_in_flight_bound(self):
        clients = 3
        workload = ClosedLoopWorkload(
            clients=clients, total=30, think=50.0, kind="matmul", rows=8, seed=31
        )
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(workload)
        assert result.completed == 30
        # sweep the timeline: never more than `clients` requests between
        # arrival and completion at once
        events = []
        for request in result.requests:
            events.append((request.arrival, 1))
            events.append((request.completion, -1))
        in_flight = peak = 0
        for _, delta in sorted(events, key=lambda e: (e[0], -e[1])):
            in_flight += delta
            peak = max(peak, in_flight)
        assert peak <= clients

    def test_simultaneous_arrivals_batch_together(self):
        """Arrivals at the exact release instant join the batch instead
        of being split into a size-1 batch plus a remainder."""

        class Burst(Workload):
            def requests(self):
                for rid in range(8):
                    yield Request(rid=rid, kind="matmul", arrival=100.0, rows=8)

        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(Burst())
        assert len(result.batches) == 1
        assert result.batches[0].size == 8

    def test_zero_think_closed_loop_batches_whole_population(self):
        """think=0 re-arrivals land exactly at the completion instant
        and must re-batch as a full population, not 1 + (clients-1)."""
        clients = 4
        workload = ClosedLoopWorkload(
            clients=clients, total=20, think=0.0, kind="matmul", rows=8, seed=43
        )
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(workload)
        assert result.completed == 20
        assert all(b.size == clients for b in result.batches)

    def test_bursty_workload_serves_to_completion(self):
        workload = BurstyWorkload(
            5e-3, 5e-5, 120, dwell=2e4, kind="matmul", rows=8, seed=37
        )
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "timeout").serve(workload)
        result.check_conservation()
        assert result.completed == 120

    def test_mixed_kind_queues_partition_batches(self):
        class Mixed(Workload):
            def requests(self):
                for rid in range(20):
                    kind = "matmul" if rid % 2 == 0 else "dft"
                    rows = 8 if kind == "matmul" else 4
                    yield Request(rid=rid, kind=kind, arrival=float(rid), rows=rows)

        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous").serve(Mixed())
        assert result.completed == 20
        assert {b.kind for b in result.batches} == {"matmul", "dft"}
        by_rid = {r.rid: r for r in result.requests}
        for batch in result.batches:
            # no batch mixes kinds
            assert {by_rid[rid].kind for rid in batch.rids} == {batch.kind}

    def test_non_monotone_arrivals_rejected(self):
        class Broken(Workload):
            def requests(self):
                yield Request(rid=0, kind="matmul", arrival=10.0, rows=8)
                yield Request(rid=1, kind="matmul", arrival=5.0, rows=8)

        machine = TCUMachine(m=16, ell=ELL)
        with pytest.raises(ServeError, match="not time-ordered"):
            ServingEngine(machine, "continuous").serve(Broken())

    def test_draining_refusal_detected(self):
        class Stubborn(SizeBatcher):
            name = "stubborn"

            def release_time(self, queue, now, draining):
                if len(queue) >= self.size:
                    return now
                return math.inf  # ignores draining: cannot finish

        machine = TCUMachine(m=16, ell=ELL)
        with pytest.raises(ServeError, match="refused to drain"):
            ServingEngine(machine, Stubborn(size=64)).serve(poisson(total=10, seed=41))

    def test_unknown_policy_or_kind_fail_loudly(self):
        machine = TCUMachine(m=16, ell=ELL)
        with pytest.raises(ValueError, match="unknown batching policy"):
            ServingEngine(machine, "nope")

        class Bad(Workload):
            def requests(self):
                yield Request(rid=0, kind="unregistered-kind", arrival=0.0, rows=8)

        with pytest.raises(ValueError, match="unknown request type"):
            ServingEngine(machine, "continuous").serve(Bad())
