"""ServeMetrics computation and the latency_table renderer."""

import numpy as np
import pytest

from repro import ParallelTCUMachine, PoissonWorkload, TCUMachine, compute_metrics
from repro.analysis.report import latency_table
from repro.serve import ServingEngine, SizeBatcher
from repro.serve.engine import BatchRecord, ServeResult
from repro.serve.workload import Request


def synthetic_result():
    """Two hand-built batches with known arithmetic."""
    machine = TCUMachine(m=16, ell=0.0)
    requests = [
        Request(rid=0, kind="matmul", arrival=0.0, rows=8, slo=30.0,
                launch=10.0, completion=20.0, batch=0),
        Request(rid=1, kind="matmul", arrival=5.0, rows=8, slo=30.0,
                launch=10.0, completion=20.0, batch=0),
        Request(rid=2, kind="matmul", arrival=12.0, rows=8, slo=30.0,
                launch=20.0, completion=100.0, batch=1),
    ]
    batches = [
        BatchRecord(index=0, kind="matmul", rids=(0, 1), rows=(8, 8),
                    launch=10.0, service=10.0),
        BatchRecord(index=1, kind="matmul", rids=(2,), rows=(8,),
                    launch=20.0, service=80.0),
    ]
    return ServeResult(
        requests=requests,
        batches=batches,
        clock=100.0,
        busy_time=90.0,
        ledger_time=90.0,
        policy="test",
        machine=machine,
    )


class TestComputeMetrics:
    def test_known_arithmetic(self):
        m = compute_metrics(synthetic_result())
        assert m.requests == 3 and m.batches == 2
        assert m.clock == 100.0
        assert m.throughput == pytest.approx(0.03)
        # latencies: 20, 15, 88
        assert m.latency_mean == pytest.approx((20 + 15 + 88) / 3)
        assert m.latency_max == 88.0
        assert m.latency_p50 == pytest.approx(np.percentile([20, 15, 88], 50))
        assert m.wait_mean == pytest.approx((10 + 5 + 8) / 3)
        assert m.batch_size_mean == pytest.approx(1.5)
        assert m.utilization == pytest.approx(0.9)

    def test_slo_attainment_and_goodput(self):
        m = compute_metrics(synthetic_result())
        # per-request slo=30: requests 0 and 1 meet it, request 2 misses
        assert m.slo_attainment == pytest.approx(2 / 3)
        assert m.goodput == pytest.approx(2 / 100.0)
        # the uniform per-request objective is surfaced as metrics.slo
        assert m.slo == 30.0

    def test_mixed_per_request_slos_leave_slo_none(self):
        result = synthetic_result()
        result.requests[0].slo = 40.0
        m = compute_metrics(result)
        assert m.slo is None
        assert m.slo_attainment is not None

    def test_fallback_slo_applies_to_unmarked_requests(self):
        result = synthetic_result()
        for request in result.requests:
            request.slo = None
        assert compute_metrics(result).slo_attainment is None
        m = compute_metrics(result, slo=16.0)
        assert m.slo_attainment == pytest.approx(1 / 3)

    def test_empty_result(self):
        machine = TCUMachine(m=16, ell=0.0)
        empty = ServeResult(
            requests=[], batches=[], clock=0.0, busy_time=0.0,
            ledger_time=0.0, policy="test", machine=machine,
        )
        m = compute_metrics(empty)
        assert m.requests == 0 and m.throughput == 0.0
        assert m.slo_attainment is None and m.unit_busy_share is None

    def test_unit_busy_share_from_trace(self):
        machine = ParallelTCUMachine(m=16, ell=16.0, units=3)
        workload = PoissonWorkload(rate=2e-3, total=60, kind="mlp", rows=8, seed=2)
        result = ServingEngine(machine, SizeBatcher(size=8)).serve(workload)
        m = compute_metrics(result)
        assert m.unit_busy_share is not None
        assert set(m.unit_busy_share) <= {-1, 0, 1, 2}
        # busy shares are fractions of the engine clock
        assert all(0.0 <= share <= 1.0 for share in m.unit_busy_share.values())
        # some batched work actually landed on a unit
        assert any(unit >= 0 for unit in m.unit_busy_share)

    def test_unit_busy_share_absent_for_serial_machines(self):
        machine = TCUMachine(m=16, ell=16.0)
        workload = PoissonWorkload(rate=2e-3, total=20, kind="matmul", rows=8, seed=3)
        result = ServingEngine(machine, "continuous").serve(workload)
        assert compute_metrics(result).unit_busy_share is None

    def test_kind_time_reads_ledger_sections(self):
        machine = TCUMachine(m=16, ell=16.0)
        workload = PoissonWorkload(rate=2e-3, total=20, kind="matmul", rows=8, seed=4)
        result = ServingEngine(machine, "continuous").serve(workload)
        m = compute_metrics(result)
        assert m.kind_time["matmul"] == pytest.approx(result.ledger_time)

    def test_machine_reuse_does_not_double_count(self):
        """Sections and traces are cumulative on the ledger; metrics for
        each run must report only that run's share."""
        machine = ParallelTCUMachine(m=16, ell=16.0, units=2)
        engine = ServingEngine(machine, SizeBatcher(size=4))

        def one_run(seed):
            workload = PoissonWorkload(rate=2e-3, total=20, kind="mlp", rows=8, seed=seed)
            return engine.serve(workload)

        first = one_run(5)
        m1_before = compute_metrics(first)
        second = one_run(6)
        m1_after = compute_metrics(first)
        m2 = compute_metrics(second)
        assert m2.kind_time["mlp"] == pytest.approx(second.ledger_time)
        assert m1_after.kind_time["mlp"] == pytest.approx(first.ledger_time)
        # the first run's trace window is closed: metrics computed after
        # a later run are identical to metrics computed right away
        assert first.trace_end <= second.trace_start
        assert m1_after.unit_busy_share == m1_before.unit_busy_share
        assert m1_after.kind_time == m1_before.kind_time


class TestLatencyTable:
    def test_renders_all_columns(self):
        m = compute_metrics(synthetic_result())
        table = latency_table([("baseline", m)], title="sweep")
        assert "sweep" in table
        for header in ("scenario", "throughput", "p50", "p95", "p99", "goodput", "util"):
            assert header in table
        assert "baseline" in table

    def test_accepts_dict_and_missing_goodput(self):
        result = synthetic_result()
        for request in result.requests:
            request.slo = None
        m = compute_metrics(result)
        table = latency_table({"no-slo": m})
        assert "n/a" in table


class TestClassAndShedMetrics:
    def _two_class_result(self):
        from repro.serve import MixedWorkload, QueueCapAdmission

        machine = TCUMachine(m=16, ell=32.0)
        hot = PoissonWorkload(
            rate=5e-3, total=40, kind="matmul", rows=8, seed=1, priority=2, slo=5e5
        )
        bulk = PoissonWorkload(rate=5e-3, total=40, kind="matmul", rows=8, seed=2)
        engine = ServingEngine(
            machine, "size", admission=QueueCapAdmission(cap=4), preempt=True
        )
        return engine.serve(MixedWorkload(hot, bulk))

    def test_per_class_breakdown_sums_to_run(self):
        result = self._two_class_result()
        m = compute_metrics(result)
        assert set(m.per_class) == {0, 2}
        assert sum(c.requests for c in m.per_class.values()) == m.requests
        assert sum(c.shed for c in m.per_class.values()) == m.shed
        assert m.shed == len(result.shed)
        assert m.shed_rate == pytest.approx(result.shed_rate)
        # only the hot class carried SLOs
        assert m.per_class[2].slo_attainment is not None
        assert m.per_class[0].slo_attainment is None

    def test_preemption_and_reload_counters_surface(self):
        result = self._two_class_result()
        m = compute_metrics(result)
        assert m.preemptions == result.preemptions
        assert m.reload_time == pytest.approx(result.reload_time)

    def test_latency_table_renders_class_rows_and_new_columns(self):
        from repro.analysis.report import latency_table

        m = compute_metrics(self._two_class_result())
        table = latency_table([("mixed", m)])
        for header in ("shed", "preempt"):
            assert header in table
        assert "mixed[p2]" in table and "mixed[p0]" in table
        flat = latency_table([("mixed", m)], per_class=False)
        assert "mixed[p2]" not in flat

    def test_all_shed_run_still_reports_per_class(self):
        """Total overload — every request shed — must still break the
        sheds down by class (the case admission studies measure)."""
        from repro.serve import DeadlineAdmission

        machine = TCUMachine(m=16, ell=8.0)
        engine = ServingEngine(
            machine, "continuous", admission=DeadlineAdmission(est_service=1e18)
        )
        result = engine.serve(
            PoissonWorkload(
                rate=1e-3, total=10, kind="matmul", rows=8,
                deadline=1.0, priority=3, seed=1,
            )
        )
        assert result.completed == 0 and len(result.shed) == 10
        m = compute_metrics(result)
        assert m.per_class[3].shed == 10
        assert m.per_class[3].shed_rate == 1.0
        assert m.per_class[3].requests == 0
