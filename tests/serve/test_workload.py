"""Workload generators and the request-type registry."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.serve import (
    BurstyWorkload,
    ClosedLoopWorkload,
    MatmulRequestType,
    PoissonWorkload,
    RequestType,
    available_request_types,
    get_request_type,
    register_request_type,
)


def arrivals(workload):
    return [r.arrival for r in workload.requests()]


class TestRegistry:
    def test_builtin_kinds_registered(self):
        names = available_request_types()
        for kind in ("matmul", "mlp", "dft", "stencil"):
            assert kind in names

    def test_get_by_name_and_instance(self):
        rtype = get_request_type("matmul")
        assert rtype.name == "matmul"
        assert get_request_type(rtype) is rtype

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown request type"):
            get_request_type("no-such-kind")

    def test_custom_registration(self):
        class Custom(RequestType):
            name = "custom-nop"
            default_rows = 4

            def serve(self, machine, rows):
                machine.charge_cpu(float(sum(rows)))

        register_request_type(Custom())
        assert "custom-nop" in available_request_types()
        machine = TCUMachine(m=16, ell=0.0)
        get_request_type("custom-nop").serve(machine, [4, 4])
        assert machine.ledger.cpu_time == 8.0


class TestRequestTypeCharging:
    def test_cost_only_matches_numeric(self):
        rows = [8, 4, 12]
        for kind in ("matmul", "mlp", "dft", "stencil"):
            numeric = TCUMachine(m=16, ell=8.0)
            cost = TCUMachine(m=16, ell=8.0, execute="cost-only")
            get_request_type(kind).serve(numeric, rows)
            get_request_type(kind).serve(cost, rows)
            assert numeric.ledger.snapshot() == cost.ledger.snapshot(), kind

    def test_matmul_kind_charges_shape_only(self):
        a = TCUMachine(m=16, ell=8.0)
        b = TCUMachine(m=16, ell=8.0)
        rtype = MatmulRequestType(name="mm-test", width=16, default_rows=8)
        rtype.serve(a, [8, 8])
        rtype.serve(b, [16])  # same total rows -> same stacked stream
        assert a.ledger.snapshot() == b.ledger.snapshot()

    def test_empty_batch_charges_nothing(self):
        machine = TCUMachine(m=16, ell=8.0)
        get_request_type("matmul").serve(machine, [])
        assert machine.ledger.total_time == 0.0


class TestPoisson:
    def test_seeded_determinism(self):
        wl = PoissonWorkload(rate=0.01, total=50, seed=7)
        assert arrivals(wl) == arrivals(PoissonWorkload(rate=0.01, total=50, seed=7))
        assert arrivals(wl) != arrivals(PoissonWorkload(rate=0.01, total=50, seed=8))

    def test_monotone_and_counted(self):
        times = arrivals(PoissonWorkload(rate=0.05, total=200, seed=1))
        assert len(times) == 200
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_mean_gap_tracks_rate(self):
        times = np.array(arrivals(PoissonWorkload(rate=0.02, total=4000, seed=3)))
        mean_gap = float(np.diff(times, prepend=0.0).mean())
        assert mean_gap == pytest.approx(50.0, rel=0.1)

    def test_rows_choices_drawn_from_set(self):
        wl = PoissonWorkload(rate=0.01, total=100, rows=(4, 8, 16), seed=2)
        rows = {r.rows for r in wl.requests()}
        assert rows <= {4, 8, 16} and len(rows) > 1

    def test_default_rows_come_from_kind(self):
        req = next(iter(PoissonWorkload(rate=0.01, total=1, kind="dft", seed=0).requests()))
        assert req.rows == get_request_type("dft").default_rows

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoissonWorkload(rate=0.0, total=10)
        with pytest.raises(ValueError):
            PoissonWorkload(rate=1.0, total=-1)


class TestBursty:
    def test_seeded_determinism_and_order(self):
        wl = BurstyWorkload(0.05, 0.005, 300, dwell=500.0, seed=11)
        times = arrivals(wl)
        assert times == arrivals(BurstyWorkload(0.05, 0.005, 300, dwell=500.0, seed=11))
        assert len(times) == 300
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_burstier_than_poisson(self):
        """Gap dispersion of an MMPP exceeds the exponential's CV of 1."""
        times = np.array(arrivals(BurstyWorkload(0.1, 0.001, 2000, dwell=2000.0, seed=5)))
        gaps = np.diff(times, prepend=0.0)
        cv = float(gaps.std() / gaps.mean())
        assert cv > 1.3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyWorkload(0.0, 0.1, 10, dwell=10.0)
        with pytest.raises(ValueError):
            BurstyWorkload(0.1, 0.1, 10, dwell=0.0)


class TestClosedLoop:
    def test_initial_population(self):
        wl = ClosedLoopWorkload(clients=4, total=20, think=10.0, seed=1)
        initial = list(wl.requests())
        assert len(initial) == 4
        assert all(r.arrival == 0.0 for r in initial)

    def test_on_complete_issues_until_total(self):
        wl = ClosedLoopWorkload(clients=2, total=5, think=3.0, seed=1)
        initial = list(wl.requests())
        issued = list(initial)
        now = 10.0
        while True:
            new = wl.on_complete(issued[0], now)
            if not new:
                break
            assert new[0].arrival == now + 3.0
            issued.extend(new)
            now += 1.0
        assert len(issued) == 5
        assert sorted(r.rid for r in issued) == list(range(5))

    def test_requests_rearms_the_counter(self):
        wl = ClosedLoopWorkload(clients=1, total=2, think=0.0, seed=1)
        first = list(wl.requests())
        assert len(wl.on_complete(first[0], 1.0)) == 1
        assert wl.on_complete(first[0], 2.0) == []
        again = list(wl.requests())  # re-armed
        assert len(again) == 1
        assert len(wl.on_complete(again[0], 1.0)) == 1
