"""Workload generators and the request-type registry."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.serve import (
    BurstyWorkload,
    ClosedLoopWorkload,
    DiurnalWorkload,
    MatmulRequestType,
    MixedWorkload,
    MLPRequestType,
    PoissonWorkload,
    RequestType,
    TraceWorkload,
    available_request_types,
    get_request_type,
    register_request_type,
)


def arrivals(workload):
    return [r.arrival for r in workload.requests()]


class TestRegistry:
    def test_builtin_kinds_registered(self):
        names = available_request_types()
        for kind in ("matmul", "mlp", "dft", "stencil"):
            assert kind in names

    def test_get_by_name_and_instance(self):
        rtype = get_request_type("matmul")
        assert rtype.name == "matmul"
        assert get_request_type(rtype) is rtype

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown request type"):
            get_request_type("no-such-kind")

    def test_custom_registration(self):
        class Custom(RequestType):
            name = "custom-nop"
            default_rows = 4

            def serve(self, machine, rows):
                machine.charge_cpu(float(sum(rows)))

        register_request_type(Custom())
        assert "custom-nop" in available_request_types()
        machine = TCUMachine(m=16, ell=0.0)
        get_request_type("custom-nop").serve(machine, [4, 4])
        assert machine.ledger.cpu_time == 8.0


class TestRequestTypeCharging:
    def test_cost_only_matches_numeric(self):
        rows = [8, 4, 12]
        for kind in ("matmul", "mlp", "dft", "stencil"):
            numeric = TCUMachine(m=16, ell=8.0)
            cost = TCUMachine(m=16, ell=8.0, execute="cost-only")
            get_request_type(kind).serve(numeric, rows)
            get_request_type(kind).serve(cost, rows)
            assert numeric.ledger.snapshot() == cost.ledger.snapshot(), kind

    def test_matmul_kind_charges_shape_only(self):
        a = TCUMachine(m=16, ell=8.0)
        b = TCUMachine(m=16, ell=8.0)
        rtype = MatmulRequestType(name="mm-test", width=16, default_rows=8)
        rtype.serve(a, [8, 8])
        rtype.serve(b, [16])  # same total rows -> same stacked stream
        assert a.ledger.snapshot() == b.ledger.snapshot()

    def test_empty_batch_charges_nothing(self):
        machine = TCUMachine(m=16, ell=8.0)
        get_request_type("matmul").serve(machine, [])
        assert machine.ledger.total_time == 0.0


class TestSeedDerivation:
    """Resident weights are derived from the type *name*; the digest must
    be order-sensitive so anagram names never alias the same weights."""

    def test_anagram_matmul_types_get_distinct_weights(self):
        machine = TCUMachine(m=16, ell=8.0)
        ab = MatmulRequestType(name="ab", width=8, default_rows=4)
        ba = MatmulRequestType(name="ba", width=8, default_rows=4)
        assert not np.array_equal(ab._resident(machine), ba._resident(machine))

    def test_anagram_mlp_types_get_distinct_layers(self):
        machine = TCUMachine(m=16, ell=8.0)
        ab = MLPRequestType(name="ab", dims=(8, 8, 8), default_rows=4)
        ba = MLPRequestType(name="ba", dims=(8, 8, 8), default_rows=4)
        assert any(
            not np.array_equal(x, y)
            for x, y in zip(ab._layers(machine), ba._layers(machine))
        )

    def test_weights_stable_across_instances(self):
        machine = TCUMachine(m=16, ell=8.0)
        one = MatmulRequestType(name="pin", width=8, default_rows=4)
        two = MatmulRequestType(name="pin", width=8, default_rows=4)
        assert np.array_equal(one._resident(machine), two._resident(machine))

    def test_charges_unchanged_by_reseeding(self):
        # charges are shape-only, so the seed-derivation fix must not
        # move a single ledger entry
        for name in ("ab", "ba"):
            numeric = TCUMachine(m=16, ell=8.0)
            cost = TCUMachine(m=16, ell=8.0, execute="cost-only")
            rtype = MatmulRequestType(name=name, width=16, default_rows=8)
            rtype.serve(numeric, [8, 4])
            rtype.serve(cost, [8, 4])
            assert numeric.ledger.snapshot() == cost.ledger.snapshot()


class TestPoisson:
    def test_seeded_determinism(self):
        wl = PoissonWorkload(rate=0.01, total=50, seed=7)
        assert arrivals(wl) == arrivals(PoissonWorkload(rate=0.01, total=50, seed=7))
        assert arrivals(wl) != arrivals(PoissonWorkload(rate=0.01, total=50, seed=8))

    def test_monotone_and_counted(self):
        times = arrivals(PoissonWorkload(rate=0.05, total=200, seed=1))
        assert len(times) == 200
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_mean_gap_tracks_rate(self):
        times = np.array(arrivals(PoissonWorkload(rate=0.02, total=4000, seed=3)))
        mean_gap = float(np.diff(times, prepend=0.0).mean())
        assert mean_gap == pytest.approx(50.0, rel=0.1)

    def test_rows_choices_drawn_from_set(self):
        wl = PoissonWorkload(rate=0.01, total=100, rows=(4, 8, 16), seed=2)
        rows = {r.rows for r in wl.requests()}
        assert rows <= {4, 8, 16} and len(rows) > 1

    def test_default_rows_come_from_kind(self):
        req = next(iter(PoissonWorkload(rate=0.01, total=1, kind="dft", seed=0).requests()))
        assert req.rows == get_request_type("dft").default_rows

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PoissonWorkload(rate=0.0, total=10)
        with pytest.raises(ValueError):
            PoissonWorkload(rate=1.0, total=-1)


class TestBursty:
    def test_seeded_determinism_and_order(self):
        wl = BurstyWorkload(0.05, 0.005, 300, dwell=500.0, seed=11)
        times = arrivals(wl)
        assert times == arrivals(BurstyWorkload(0.05, 0.005, 300, dwell=500.0, seed=11))
        assert len(times) == 300
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_burstier_than_poisson(self):
        """Gap dispersion of an MMPP exceeds the exponential's CV of 1."""
        times = np.array(arrivals(BurstyWorkload(0.1, 0.001, 2000, dwell=2000.0, seed=5)))
        gaps = np.diff(times, prepend=0.0)
        cv = float(gaps.std() / gaps.mean())
        assert cv > 1.3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyWorkload(0.0, 0.1, 10, dwell=10.0)
        with pytest.raises(ValueError):
            BurstyWorkload(0.1, 0.1, 10, dwell=0.0)


class TestClosedLoop:
    def test_initial_population(self):
        wl = ClosedLoopWorkload(clients=4, total=20, think=10.0, seed=1)
        initial = list(wl.requests())
        assert len(initial) == 4
        assert all(r.arrival == 0.0 for r in initial)

    def test_on_complete_issues_until_total(self):
        wl = ClosedLoopWorkload(clients=2, total=5, think=3.0, seed=1)
        initial = list(wl.requests())
        issued = list(initial)
        now = 10.0
        while True:
            new = wl.on_complete(issued[0], now)
            if not new:
                break
            assert new[0].arrival == now + 3.0
            issued.extend(new)
            now += 1.0
        assert len(issued) == 5
        assert sorted(r.rid for r in issued) == list(range(5))

    def test_requests_rearms_the_counter(self):
        wl = ClosedLoopWorkload(clients=1, total=2, think=0.0, seed=1)
        first = list(wl.requests())
        assert len(wl.on_complete(first[0], 1.0)) == 1
        assert wl.on_complete(first[0], 2.0) == []
        again = list(wl.requests())  # re-armed
        assert len(again) == 1
        assert len(wl.on_complete(again[0], 1.0)) == 1


class TestTraceWorkload:
    def test_replays_array_timestamps(self):
        times = [0.0, 5.0, 5.0, 12.0, 40.0]
        wl = TraceWorkload(times, kind="matmul", rows=8)
        reqs = list(wl.requests())
        assert [r.arrival for r in reqs] == times
        assert [r.rid for r in reqs] == list(range(5))
        assert all(r.rows == 8 for r in reqs)

    def test_scale_and_start_transform_stamps(self):
        wl = TraceWorkload([1.0, 2.0], start=100.0, scale=10.0)
        assert arrivals(wl) == [110.0, 120.0]

    def test_loads_npy_and_text_files(self, tmp_path):
        times = np.array([0.5, 1.5, 9.0])
        npy = tmp_path / "trace.npy"
        np.save(npy, times)
        txt = tmp_path / "trace.txt"
        txt.write_text("\n".join(str(t) for t in times))
        assert arrivals(TraceWorkload(npy)) == times.tolist()
        assert arrivals(TraceWorkload(str(txt))) == times.tolist()

    def test_rejects_unsorted_and_bad_scale(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceWorkload([3.0, 1.0])
        with pytest.raises(ValueError, match="scale"):
            TraceWorkload([1.0], scale=0.0)

    def test_rows_are_seeded_deterministic(self):
        a = TraceWorkload([0.0] * 50, rows=(4, 8, 16), seed=3)
        b = TraceWorkload([0.0] * 50, rows=(4, 8, 16), seed=3)
        assert [r.rows for r in a.requests()] == [r.rows for r in b.requests()]

    def test_serves_end_to_end(self):
        from repro.serve import ServingEngine

        machine = TCUMachine(m=16, ell=8.0)
        wl = TraceWorkload(np.linspace(0.0, 1e4, 20), kind="matmul", rows=8)
        result = ServingEngine(machine, "continuous").serve(wl)
        result.check_conservation()
        assert result.completed == 20


class TestDiurnalWorkload:
    def test_mean_rate_tracks_parameter(self):
        wl = DiurnalWorkload(rate=0.02, total=6000, period=5e4, amplitude=0.8, seed=1)
        times = np.array(arrivals(wl))
        mean_gap = float(np.diff(times, prepend=0.0).mean())
        assert mean_gap == pytest.approx(50.0, rel=0.15)

    def test_peak_window_denser_than_trough(self):
        period = 4e4
        wl = DiurnalWorkload(rate=0.05, total=8000, period=period, amplitude=1.0, seed=2)
        times = np.array(arrivals(wl))
        phase = (times % period) / period
        peak = int(((phase > 0.05) & (phase < 0.45)).sum())   # sin > 0
        trough = int(((phase > 0.55) & (phase < 0.95)).sum())  # sin < 0
        assert peak > 3 * trough

    def test_monotone_and_deterministic(self):
        wl = DiurnalWorkload(rate=0.01, total=500, period=1e4, seed=5)
        times = arrivals(wl)
        assert times == arrivals(DiurnalWorkload(rate=0.01, total=500, period=1e4, seed=5))
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DiurnalWorkload(rate=0.0, total=10, period=1.0)
        with pytest.raises(ValueError):
            DiurnalWorkload(rate=1.0, total=10, period=0.0)
        with pytest.raises(ValueError):
            DiurnalWorkload(rate=1.0, total=10, period=1.0, amplitude=1.5)


class TestMixedWorkload:
    def test_merges_in_time_order_with_fresh_rids(self):
        a = PoissonWorkload(rate=0.01, total=30, kind="matmul", seed=1, priority=2)
        b = PoissonWorkload(rate=0.02, total=40, kind="dft", seed=2, priority=0)
        merged = list(MixedWorkload(a, b).requests())
        assert len(merged) == 70
        assert [r.rid for r in merged] == list(range(70))
        times = [r.arrival for r in merged]
        assert times == sorted(times)
        assert {r.priority for r in merged} == {0, 2}
        assert {r.kind for r in merged} == {"matmul", "dft"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MixedWorkload()

    def test_accepts_an_iterable(self):
        parts = [PoissonWorkload(rate=0.01, total=5, seed=s) for s in (1, 2)]
        assert len(list(MixedWorkload(parts).requests())) == 10


class TestPriorityAndDeadlineStamping:
    def test_poisson_stamps_class_and_absolute_deadline(self):
        wl = PoissonWorkload(rate=0.01, total=20, priority=3, deadline=100.0, seed=1)
        for req in wl.requests():
            assert req.priority == 3
            assert req.deadline == pytest.approx(req.arrival + 100.0)

    def test_deadline_defaults_to_none(self):
        req = next(iter(PoissonWorkload(rate=0.01, total=1, seed=0).requests()))
        assert req.priority == 0 and req.deadline is None


class TestPlanLowering:
    """RequestType.plan is the serve() one-shot, decomposed."""

    def test_plan_charges_equal_serve(self):
        rows = [8, 4, 12]
        for kind in ("matmul", "mlp", "dft", "stencil"):
            one_shot = TCUMachine(m=16, ell=8.0)
            stepped = TCUMachine(m=16, ell=8.0)
            get_request_type(kind).serve(one_shot, rows)
            plan = get_request_type(kind).plan(stepped, rows)
            assert plan is not None
            from repro.core.program import ExecutionCursor

            cursor = ExecutionCursor(plan, stepped)
            cursor.run()
            assert stepped.ledger.snapshot() == one_shot.ledger.snapshot(), kind

    def test_plans_have_checkpoint_boundaries(self):
        machine = TCUMachine(m=16, ell=8.0)
        for kind, rows, floor in (("mlp", [16], 4), ("dft", [8], 6)):
            plan = get_request_type(kind).plan(machine, rows)
            assert len(plan.levels) >= floor, kind

    def test_stencil_plans_and_matches_legacy_atomic_charges(self):
        # the default stencil kind now lowers through the program IR;
        # the legacy_atomic escape hatch keeps the old opaque serve()
        # and is the charge-parity oracle for the lowering
        from repro.serve.workload import StencilRequestType

        legacy = StencilRequestType(name="stencil-atomic-test", legacy_atomic=True)
        assert legacy.plan(TCUMachine(m=16, ell=8.0), [8]) is None
        for rows in ([8], [8, 12, 8]):
            planned_m = TCUMachine(m=16, ell=8.0)
            legacy_m = TCUMachine(m=16, ell=8.0)
            plan = get_request_type("stencil").plan(planned_m, rows)
            assert plan is not None and len(plan.levels) >= 4
            from repro.core.program import ExecutionCursor

            ExecutionCursor(plan, planned_m).run()
            legacy.serve(legacy_m, rows)
            assert planned_m.ledger.snapshot() == legacy_m.ledger.snapshot(), rows
            assert (
                planned_m.ledger.call_shape_totals()
                == legacy_m.ledger.call_shape_totals()
            ), rows

    def test_legacy_type_without_serve_or_plan_fails_loudly(self):
        class Hollow(RequestType):
            name = "hollow"

        machine = TCUMachine(m=16, ell=8.0)
        with pytest.raises(NotImplementedError, match="neither plan"):
            Hollow().serve(machine, [4])
