"""Admission control: shedding, conservation with sheds, registry, and
the rel_tol plumbing of ServeResult.check_conservation."""

import math

import pytest

from repro import PoissonWorkload, TCUMachine
from repro.serve import (
    DeadlineAdmission,
    QueueCapAdmission,
    ServeError,
    ServingEngine,
    UnboundedAdmission,
    available_admissions,
    get_admission,
)

ELL = 32.0


def overload(total=120, seed=1, **kwargs):
    """An offered load far past the unit's capacity (rate >> 1/service)."""
    return PoissonWorkload(rate=5e-3, total=total, kind="matmul", rows=8, seed=seed, **kwargs)


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = available_admissions()
        for name in ("unbounded", "queue-cap", "deadline"):
            assert name in names

    def test_get_by_name_and_instance(self):
        policy = get_admission("queue-cap")
        assert policy.name == "queue-cap"
        assert get_admission(policy) is policy

    def test_unknown_policy_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            get_admission("nope")
        machine = TCUMachine(m=16, ell=ELL)
        with pytest.raises(ValueError, match="unknown admission policy"):
            ServingEngine(machine, admission="nope")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueueCapAdmission(cap=0)
        with pytest.raises(ValueError):
            DeadlineAdmission(est_service=-1.0)


class TestQueueCap:
    def test_overload_sheds_and_conserves(self):
        machine = TCUMachine(m=16, ell=ELL)
        engine = ServingEngine(machine, "size", admission=QueueCapAdmission(cap=4))
        result = engine.serve(overload())
        result.check_conservation()  # sheds included in the invariants
        assert result.shed, "queue cap never tripped at overload"
        assert result.completed + len(result.shed) == 120
        assert 0.0 < result.shed_rate < 1.0
        for req in result.shed:
            assert math.isnan(req.launch) and not req.done

    def test_light_load_sheds_nothing(self):
        machine = TCUMachine(m=16, ell=ELL)
        engine = ServingEngine(machine, "continuous", admission=QueueCapAdmission(cap=4))
        workload = PoissonWorkload(rate=2e-5, total=40, kind="matmul", rows=8, seed=2)
        result = engine.serve(workload)
        assert result.shed == [] and result.shed_rate == 0.0
        assert result.completed == 40

    def test_unbounded_is_the_default_and_sheds_nothing(self):
        machine = TCUMachine(m=16, ell=ELL)
        engine = ServingEngine(machine, "continuous")
        assert isinstance(engine.admission, UnboundedAdmission)
        result = engine.serve(overload(total=60))
        assert result.shed == [] and result.completed == 60
        assert result.admission == "unbounded"


class TestDeadlineAdmission:
    def test_infeasible_deadlines_rejected_feasible_kept(self):
        machine = TCUMachine(m=16, ell=ELL)
        # measure one request's service to calibrate the estimate
        probe = machine.fork()
        ServingEngine(probe, "continuous").serve(
            PoissonWorkload(rate=1e-3, total=1, kind="matmul", rows=8, seed=3)
        )
        est = probe.ledger.total_time
        engine = ServingEngine(
            machine, "continuous", admission=DeadlineAdmission(est_service=est)
        )
        # a deadline budget shorter than one service is hopeless: all shed
        hopeless = engine.serve(overload(total=30, deadline=est / 2, seed=4))
        assert hopeless.completed + len(hopeless.shed) == 30
        assert hopeless.shed, "impossible deadlines were admitted"
        # roomy deadlines at light load: everything admitted
        machine2 = TCUMachine(m=16, ell=ELL)
        engine2 = ServingEngine(
            machine2, "continuous", admission=DeadlineAdmission(est_service=est)
        )
        easy = engine2.serve(
            PoissonWorkload(
                rate=1e-5, total=20, kind="matmul", rows=8, seed=5, deadline=est * 50
            )
        )
        assert easy.shed == [] and easy.completed == 20

    def test_requests_without_deadlines_always_admitted(self):
        machine = TCUMachine(m=16, ell=ELL)
        engine = ServingEngine(
            machine, "continuous", admission=DeadlineAdmission(est_service=1e12)
        )
        result = engine.serve(overload(total=25, seed=6))
        assert result.shed == [] and result.completed == 25


class TestConservationTolerance:
    """The satellite fix: every equality check honours rel_tol."""

    def _served(self):
        machine = TCUMachine(m=16, ell=ELL)
        return ServingEngine(machine, "continuous").serve(
            PoissonWorkload(rate=1e-4, total=12, kind="matmul", rows=8, seed=7)
        )

    def test_tiny_completion_perturbation_passes_loose_fails_tight(self):
        result = self._served()
        req = result.requests[0]
        req.completion *= 1.0 + 1e-12  # sub-rel_tol float round-off
        result.check_conservation()  # default 1e-9: fine
        with pytest.raises(ServeError):
            result.check_conservation(rel_tol=1e-15)

    def test_busy_time_perturbation_respects_rel_tol(self):
        result = self._served()
        result.busy_time *= 1.0 + 1e-12
        result.check_conservation(rel_tol=1e-9)
        with pytest.raises(ServeError, match="busy time"):
            result.check_conservation(rel_tol=1e-15)

    def test_clock_perturbation_respects_rel_tol(self):
        result = self._served()
        result.clock *= 1.0 + 1e-12
        result.check_conservation(rel_tol=1e-9)
        with pytest.raises(ServeError, match="final clock"):
            result.check_conservation(rel_tol=1e-15)

    def test_real_corruption_still_detected_at_default_tolerance(self):
        result = self._served()
        result.requests[0].completion += 1.0
        with pytest.raises(ServeError):
            result.check_conservation()

    def test_served_shed_request_detected(self):
        result = self._served()
        result.shed.append(result.requests[0])
        with pytest.raises(ServeError, match="shed"):
            result.check_conservation()
