"""JSON serialization: results, batches, requests and metrics ship as
one artifact bundle and round-trip losslessly."""

import json

import pytest

from repro.core.presets import TPU_V1
from repro.serve import (
    ServeMetrics,
    ServingEngine,
    chaos_injector,
    compute_metrics,
    interactive_batch_mix,
)


@pytest.fixture(scope="module")
def chaos_result():
    machine = TPU_V1.create(execute="cost-only", trace_calls=True)
    workload = interactive_batch_mix(
        60, 3, interactive_load=0.6, batch_rows=2048,
        interactive_slo=5e5, seed=3,
    )
    return ServingEngine(
        machine,
        "continuous",
        faults=chaos_injector(
            fail_rate=0.05, crash_every=9.0, repair_for=0.4,
            straggle_rate=0.1, straggle_factor=2.5, seed=103,
        ),
        retry="fixed",
        recovery="checkpoint",
        preempt=True,
    ).serve(workload)


class TestServeResultToDict:
    def test_json_round_trip_is_stable(self, chaos_result):
        data = chaos_result.to_dict()
        once = json.dumps(data, sort_keys=True)
        twice = json.dumps(json.loads(once), sort_keys=True)
        assert once == twice

    def test_carries_the_full_run(self, chaos_result):
        data = chaos_result.to_dict()
        assert len(data["requests"]) == len(chaos_result.requests)
        assert len(data["batches"]) == len(chaos_result.batches)
        assert len(data["shed"]) == len(chaos_result.shed)
        assert len(data["abandoned"]) == len(chaos_result.abandoned)
        assert len(data["fault_events"]) == chaos_result.faults
        assert data["clock"] == chaos_result.clock
        assert data["busy_time"] == chaos_result.busy_time
        assert data["machine"] == list(chaos_result.machine.config_key())

    def test_nan_fields_become_null(self, chaos_result):
        text = json.dumps(chaos_result.to_dict())
        assert "NaN" not in text
        for record in chaos_result.to_dict()["batches"]:
            ff = record["first_failure"]
            assert ff is None or isinstance(ff, float)

    def test_request_records_round_trip_values(self, chaos_result):
        data = chaos_result.to_dict()
        for req, rec in zip(chaos_result.requests, data["requests"]):
            assert rec["rid"] == req.rid
            assert rec["completion"] == req.completion


class TestServeMetricsRoundTrip:
    def test_from_dict_inverts_to_dict_exactly(self, chaos_result):
        metrics = compute_metrics(chaos_result, slo=5e5)
        decoded = json.loads(json.dumps(metrics.to_dict()))
        restored = ServeMetrics.from_dict(decoded)
        assert restored == metrics  # frozen-dataclass equality: bit-exact

    def test_per_class_keys_restored_to_int(self, chaos_result):
        metrics = compute_metrics(chaos_result, slo=5e5)
        decoded = json.loads(json.dumps(metrics.to_dict()))
        assert all(isinstance(k, str) for k in decoded["per_class"])
        restored = ServeMetrics.from_dict(decoded)
        assert sorted(restored.per_class) == sorted(metrics.per_class)
        assert all(isinstance(k, int) for k in restored.per_class)

    def test_unit_busy_share_keys_restored(self):
        machine = TPU_V1.create(execute="cost-only", trace_calls=True)
        workload = interactive_batch_mix(
            20, 1, interactive_load=0.5, batch_rows=2048,
            interactive_slo=5e5, seed=1,
        )
        result = ServingEngine(machine, "continuous").serve(workload)
        metrics = compute_metrics(result)
        restored = ServeMetrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
        assert restored == metrics
