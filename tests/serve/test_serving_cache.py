"""Serving through the plan cache: cached replay must be invisible.

The engine routes cost-only batch execution through
:class:`~repro.core.plan_cache.PlanCache`; these gates pin that a cached
run is bit-identical to live execution — ledger snapshot, per-shape
trace totals, clock, per-batch timings, and the full preempt/resume
choreography — while the cache counters surface through
:class:`ServeResult` and :class:`ServeMetrics`.
"""

from functools import lru_cache

import pytest

from repro import (
    ParallelTCUMachine,
    PlanCache,
    PoissonWorkload,
    TCUMachine,
    compute_metrics,
)
from repro.serve import MixedWorkload, ServingEngine, get_request_type

ELL = 512.0

COST_ONLY_CONFIGS = {
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "max-rows-cost-only": lambda: TCUMachine(
        m=16, ell=ELL, execute="cost-only", max_rows=16
    ),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}


def mixed_workload(seed: int = 0) -> MixedWorkload:
    return MixedWorkload(
        PoissonWorkload(rate=2e-4, total=30, kind="mlp", rows=8, seed=seed + 1),
        PoissonWorkload(rate=1e-4, total=20, kind="matmul", rows=16, seed=seed + 2),
    )


@lru_cache(maxsize=None)
def service_of(kind: str, rows: int) -> float:
    machine = TCUMachine(m=16, ell=ELL, execute="cost-only", trace_calls=False)
    get_request_type(kind).serve(machine, [rows])
    return machine.ledger.total_time


def two_class_workload(seed: int = 0) -> MixedWorkload:
    s_hot = service_of("matmul", 8)
    hot_rate = 0.3 / s_hot
    horizon = 60 / hot_rate
    bulk = PoissonWorkload(
        rate=6 / horizon, total=6, kind="dft", rows=4096, seed=seed + 1, priority=0
    )
    hot = PoissonWorkload(
        rate=hot_rate, total=60, kind="matmul", rows=8, seed=seed + 2, priority=2
    )
    return MixedWorkload(bulk, hot)


def assert_same_run(cached_m, cached, live_m, live):
    assert cached_m.ledger.snapshot() == live_m.ledger.snapshot()
    assert cached_m.ledger.call_shape_totals() == live_m.ledger.call_shape_totals()
    assert cached.clock == live.clock
    assert cached.busy_time == live.busy_time
    assert [b.launch for b in cached.batches] == [b.launch for b in live.batches]
    assert [b.service for b in cached.batches] == [b.service for b in live.batches]
    assert [b.completion for b in cached.batches] == [
        b.completion for b in live.batches
    ]
    for a, b in zip(cached.requests, live.requests):
        assert (a.rid, a.launch, a.completion) == (b.rid, b.launch, b.completion)


class TestCachedServingBitIdentity:
    @pytest.mark.parametrize("config", sorted(COST_ONLY_CONFIGS))
    def test_cached_equals_uncached(self, config):
        cached_m = COST_ONLY_CONFIGS[config]()
        live_m = COST_ONLY_CONFIGS[config]()
        cached = ServingEngine(cached_m, "continuous").serve(mixed_workload())
        live = ServingEngine(live_m, "continuous", plan_cache=False).serve(
            mixed_workload()
        )
        assert cached.cache_lookups == len(cached.batches) > 0
        assert live.cache_lookups == 0
        assert_same_run(cached_m, cached, live_m, live)

    @pytest.mark.parametrize("config", sorted(COST_ONLY_CONFIGS))
    def test_preempt_then_resume_cached_equals_live(self, config):
        cached_m = COST_ONLY_CONFIGS[config]()
        live_m = COST_ONLY_CONFIGS[config]()
        cached = ServingEngine(cached_m, "continuous", preempt=True).serve(
            two_class_workload()
        )
        live = ServingEngine(
            live_m, "continuous", preempt=True, plan_cache=False
        ).serve(two_class_workload())
        assert cached.preemptions == live.preemptions > 0
        assert cached.reload_time == live.reload_time > 0.0
        for a, b in zip(cached.batches, live.batches):
            assert a.preemptions == b.preemptions
            assert a.resumes == b.resumes
            assert a.reload_time == b.reload_time
        assert_same_run(cached_m, cached, live_m, live)
        cached.check_conservation()

    def test_repeat_shapes_hit_the_cache(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        engine = ServingEngine(machine, "size")
        workload = PoissonWorkload(rate=2e-4, total=48, kind="mlp", rows=8, seed=7)
        result = engine.serve(workload)
        # SizeBatcher emits fixed-size batches: one compile, rest hits
        assert result.cache_misses >= 1
        assert result.cache_hits > result.cache_misses
        assert result.cache_hit_rate == pytest.approx(
            result.cache_hits / result.cache_lookups
        )


class TestCachePolicy:
    def test_numeric_machine_gets_no_auto_cache(self):
        machine = TCUMachine(m=16, ell=ELL)
        engine = ServingEngine(machine, "continuous")
        assert engine.plan_cache is None
        result = engine.serve(
            PoissonWorkload(rate=2e-4, total=10, kind="matmul", rows=8, seed=3)
        )
        assert result.cache_lookups == 0
        assert result.cache_hit_rate is None

    def test_explicit_cache_on_numeric_machine_raises(self):
        machine = TCUMachine(m=16, ell=ELL)
        with pytest.raises(ValueError, match="cost-only"):
            ServingEngine(machine, "continuous", plan_cache=PlanCache())
        with pytest.raises(ValueError, match="cost-only"):
            ServingEngine(machine, "continuous", plan_cache=True)

    def test_shared_cache_keeps_machine_fingerprints_apart(self):
        cache = PlanCache()
        serial = TCUMachine(m=16, ell=ELL, execute="cost-only")
        capped = TCUMachine(m=16, ell=ELL, execute="cost-only", max_rows=16)
        workload = lambda: PoissonWorkload(  # noqa: E731
            rate=2e-4, total=12, kind="mlp", rows=8, seed=5
        )
        ServingEngine(serial, "size", plan_cache=cache).serve(workload())
        ServingEngine(capped, "size", plan_cache=cache).serve(workload())
        # both machines compiled their own entry under their own key
        assert len(cache) >= 2
        assert PlanCache.key("mlp", [8] * 8, serial) != PlanCache.key(
            "mlp", [8] * 8, capped
        )
        # the shared-cache runs still match dedicated uncached runs
        check = TCUMachine(m=16, ell=ELL, execute="cost-only", max_rows=16)
        ServingEngine(check, "size", plan_cache=False).serve(workload())
        assert capped.ledger.snapshot() == check.ledger.snapshot()

    def test_counters_flow_into_metrics(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        engine = ServingEngine(machine, "size")
        result = engine.serve(
            PoissonWorkload(rate=2e-4, total=24, kind="matmul", rows=8, seed=9)
        )
        metrics = compute_metrics(result)
        assert metrics.cache_hits == result.cache_hits
        assert metrics.cache_misses == result.cache_misses
        assert metrics.cache_size == result.cache_size == len(engine.plan_cache)
        assert metrics.cache_hit_rate == result.cache_hit_rate

    def test_counters_are_per_run_deltas(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        engine = ServingEngine(machine, "size")
        workload = lambda seed: PoissonWorkload(  # noqa: E731
            rate=2e-4, total=24, kind="matmul", rows=8, seed=seed
        )
        first = engine.serve(workload(1))
        second = engine.serve(workload(2))
        assert first.cache_misses >= 1
        # the second run reuses the first run's compiled plans wholesale
        assert second.cache_misses == 0
        assert second.cache_hits == len(second.batches)
