"""Preemption gates: zero-preemption bit-identity and resume charge parity.

These pin the PR5 acceptance criteria, mirroring the PR4 replay gates:

1. **Zero-preemption bit-identity.**  With preemption disabled (or
   enabled but never triggered — one priority class), the event kernel
   reproduces the run-to-completion engine exactly: per-shape charges,
   completions and the final clock are bit-identical whether or not the
   preemption machinery is armed, on every machine configuration.
2. **Preempt/resume charge parity.**  A preempted run's tensor, latency
   and cpu charges equal the uninterrupted serial replay's *exactly*,
   and its total exceeds the replay by precisely the ledgered reload
   charges — checkpoint/restore moves work in time and costs exactly
   what the ledger says it costs, on plain / max_rows / parallel /
   cost-only machines alike.
"""

import math
from functools import lru_cache

import pytest

from repro import ParallelTCUMachine, PoissonWorkload, TCUMachine, replay_batches
from repro.serve import (
    MixedWorkload,
    ServingEngine,
    get_request_type,
)

ELL = 512.0

MACHINE_CONFIGS = {
    "serial-numeric": lambda: TCUMachine(m=16, ell=ELL),
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "serial-max-rows": lambda: TCUMachine(m=16, ell=ELL, max_rows=16),
    "parallel-3": lambda: ParallelTCUMachine(m=16, ell=ELL, units=3),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}


@lru_cache(maxsize=None)
def service_of(kind: str, rows: int) -> float:
    """Measured single-request service time on the reference machine."""
    machine = TCUMachine(m=16, ell=ELL, execute="cost-only", trace_calls=False)
    get_request_type(kind).serve(machine, [rows])
    return machine.ledger.total_time


def two_class_workload(seed: int = 0) -> MixedWorkload:
    """Slow, huge bulk-DFT jobs under a fast high-priority matmul
    stream, with rates derived from *measured* service times so bulk
    executions reliably straddle several high-priority arrivals (each
    bulk job is ~14x a hot request, spread over ~11 plan levels)."""
    s_hot = service_of("matmul", 8)
    hot_rate = 0.3 / s_hot  # hot class at 30% of its own capacity
    horizon = 60 / hot_rate
    bulk = PoissonWorkload(
        rate=6 / horizon, total=6, kind="dft", rows=4096, seed=seed + 1, priority=0
    )
    hot = PoissonWorkload(
        rate=hot_rate, total=60, kind="matmul", rows=8, seed=seed + 2, priority=2
    )
    return MixedWorkload(bulk, hot)


def preempting_engine(machine) -> ServingEngine:
    return ServingEngine(machine, "continuous", preempt=True)


class TestZeroPreemptionBitIdentity:
    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    def test_preempt_flag_is_inert_for_one_class(self, config):
        """One priority class can never preempt itself: arming the
        machinery must change nothing, bit for bit."""
        workload = lambda: PoissonWorkload(  # noqa: E731
            rate=2e-4, total=60, kind="mlp", rows=8, seed=11
        )
        plain_m = MACHINE_CONFIGS[config]()
        armed_m = MACHINE_CONFIGS[config]()
        plain = ServingEngine(plain_m, "timeout", preempt=False).serve(workload())
        armed = ServingEngine(armed_m, "timeout", preempt=True).serve(workload())
        assert armed.preemptions == 0 and armed.reload_time == 0.0
        assert plain_m.ledger.snapshot() == armed_m.ledger.snapshot()
        assert plain_m.ledger.call_shape_totals() == armed_m.ledger.call_shape_totals()
        assert plain.clock == armed.clock
        assert [b.launch for b in plain.batches] == [b.launch for b in armed.batches]
        assert [b.service for b in plain.batches] == [b.service for b in armed.batches]
        for a, b in zip(plain.requests, armed.requests):
            assert (a.rid, a.launch, a.completion) == (b.rid, b.launch, b.completion)

    def test_unpreempted_batches_keep_the_pr4_invariants(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(machine, "continuous", preempt=True).serve(
            PoissonWorkload(rate=2e-4, total=40, kind="matmul", rows=8, seed=3)
        )
        result.check_conservation()
        for request in result.requests:
            batch = result.batches[request.batch]
            assert request.completion == batch.launch + batch.service
        for prev, cur in zip(result.batches, result.batches[1:]):
            assert cur.launch >= prev.completion


class TestPreemptResumeChargeParity:
    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    def test_preempted_run_equals_replay_plus_reload(self, config):
        machine = MACHINE_CONFIGS[config]()
        result = preempting_engine(machine).serve(two_class_workload())
        result.check_conservation()
        assert result.preemptions > 0, "scenario failed to trigger preemption"
        assert result.reload_time > 0.0

        fork = machine.fork()
        replay_batches(result.batches, fork)
        served, replay = machine.ledger, fork.ledger
        # hardware work is identical, shape by shape, bit for bit
        assert served.call_shape_totals() == replay.call_shape_totals()
        assert served.tensor_calls == replay.tensor_calls
        assert served.tensor_time == replay.tensor_time
        assert served.latency_time == replay.latency_time
        assert served.cpu_time == replay.cpu_time
        # ...and the only extra cost is the explicitly ledgered reload
        assert replay.reload_time == 0.0
        assert math.isclose(
            served.total_time, replay.total_time + served.reload_time, rel_tol=1e-12
        )

    def test_batch_records_account_their_own_reloads(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = preempting_engine(machine).serve(two_class_workload(seed=5))
        assert result.preemptions > 0
        per_batch = sum(b.reload_time for b in result.batches)
        assert math.isclose(per_batch, result.reload_time, rel_tol=1e-12)
        preempted = [b for b in result.batches if b.preemptions]
        assert preempted
        for batch in preempted:
            # one resume (with its reload) per checkpoint taken
            assert len(batch.resumes) == batch.preemptions
            assert batch.reload_time > 0.0
            # the suspension gap is real: finish > launch + service
            assert batch.completion > batch.launch + batch.service
            for resume in batch.resumes:
                # a resume can coincide with the finish when only
                # zero-cost levels (e.g. a DFT readout) remained
                assert batch.launch < resume <= batch.completion

    def test_high_priority_requests_jump_the_bulk_batch(self):
        """The point of the machinery: with preemption on, the worst
        high-priority latency drops strictly below the no-preemption
        engine's on the same workload."""

        def run(preempt):
            machine = TCUMachine(m=16, ell=ELL)
            engine = ServingEngine(machine, "continuous", preempt=preempt)
            return engine.serve(two_class_workload(seed=9))

        fifo = run(False)
        preemptive = run(True)
        assert preemptive.preemptions > 0

        def worst_hot(result):
            return max(r.latency for r in result.requests if r.priority == 2)

        assert worst_hot(preemptive) < worst_hot(fifo)
        # total completions are unaffected: preemption sheds nothing
        assert preemptive.completed == fifo.completed

    def test_preemption_only_at_level_boundaries(self):
        """A suspended batch has executed a whole number of levels: its
        service time splits into segments that each end on a boundary,
        so every resume strictly follows the preceding suspension."""
        machine = TCUMachine(m=16, ell=ELL)
        result = preempting_engine(machine).serve(two_class_workload(seed=13))
        by_index = {b.index: b for b in result.batches}
        for batch in result.batches:
            if not batch.preemptions:
                continue
            # the preemptor(s) ran inside this batch's suspension window
            preemptors = [
                other
                for other in result.batches
                if other.priority > batch.priority
                and batch.launch < other.launch < batch.completion
            ]
            assert preemptors, f"no preemptor overlapped batch {batch.index}"
        assert by_index  # sanity


class TestAtomicKindsNeverPreempt:
    def test_legacy_atomic_stencil_batches_run_to_completion(self):
        """A legacy_atomic stencil type has no planned lowering (plan()
        is None): its batches execute atomically even under a
        preemptive engine."""
        from repro.serve.workload import StencilRequestType, register_request_type

        register_request_type(
            StencilRequestType(name="stencil-atomic", legacy_atomic=True)
        )
        bulk = PoissonWorkload(
            rate=2e-5, total=6, kind="stencil-atomic", rows=16, seed=1, priority=0
        )
        hot = PoissonWorkload(
            rate=4e-4, total=40, kind="matmul", rows=8, seed=2, priority=2
        )
        machine = TCUMachine(m=16, ell=ELL)
        result = preempting_engine(machine).serve(MixedWorkload(bulk, hot))
        result.check_conservation()
        for batch in result.batches:
            if batch.kind == "stencil-atomic":
                assert batch.preemptions == 0
                assert batch.completion == batch.launch + batch.service

    def test_default_stencil_is_now_preemptible(self):
        """The default stencil kind lowers through the IR: under a
        preemptive engine a hot stream can checkpoint its batches."""
        s_hot = service_of("matmul", 8)
        hot_rate = 0.3 / s_hot
        horizon = 60 / hot_rate
        bulk = PoissonWorkload(
            rate=6 / horizon, total=6, kind="stencil", rows=128, seed=1, priority=0
        )
        hot = PoissonWorkload(
            rate=hot_rate, total=60, kind="matmul", rows=8, seed=2, priority=2
        )
        machine = TCUMachine(m=16, ell=ELL)
        result = preempting_engine(machine).serve(MixedWorkload(bulk, hot))
        result.check_conservation()
        assert any(
            batch.kind == "stencil" and batch.preemptions > 0
            for batch in result.batches
        )
