"""Dynamic-batching policies: registry, triggers, and engine behaviour."""

import math
from collections import deque

import pytest

from repro import TCUMachine, PoissonWorkload, ServingEngine
from repro.serve import (
    ContinuousBatcher,
    SizeBatcher,
    TimeoutBatcher,
    available_batchers,
    get_batcher,
    register_batcher,
)
from repro.serve.batcher import BatchPolicy
from repro.serve.workload import Request


def req(rid, arrival, rows=8):
    return Request(rid=rid, kind="matmul", arrival=arrival, rows=rows)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_batchers()
        for name in ("continuous", "size", "timeout"):
            assert name in names

    def test_get_by_name_and_instance(self):
        policy = get_batcher("timeout")
        assert policy.name == "timeout"
        custom = TimeoutBatcher(timeout=5.0, max_size=3)
        assert get_batcher(custom) is custom

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown batching policy"):
            get_batcher("no-such-policy")

    def test_custom_policy_registers(self):
        class Always(BatchPolicy):
            name = "always-one"
            max_size = 1

            def release_time(self, queue, now, draining):
                return now if queue else math.inf

        register_batcher(Always())
        assert get_batcher("always-one").name == "always-one"


class TestReleaseSemantics:
    def test_continuous_releases_immediately(self):
        policy = ContinuousBatcher(max_size=4)
        q = deque([req(0, 1.0), req(1, 2.0)])
        assert policy.release_time(q, 5.0, False) == 5.0
        assert policy.release_time(deque(), 5.0, False) == math.inf
        assert [r.rid for r in policy.take(q, 5.0)] == [0, 1]

    def test_continuous_respects_max_size(self):
        policy = ContinuousBatcher(max_size=2)
        q = deque([req(i, float(i)) for i in range(5)])
        assert [r.rid for r in policy.take(q, 9.0)] == [0, 1]
        assert len(q) == 3

    def test_size_waits_for_quorum(self):
        policy = SizeBatcher(size=3)
        q = deque([req(0, 1.0), req(1, 2.0)])
        assert policy.release_time(q, 9.0, draining=False) == math.inf
        q.append(req(2, 3.0))
        assert policy.release_time(q, 9.0, draining=False) == 9.0

    def test_size_flushes_when_draining(self):
        policy = SizeBatcher(size=8)
        q = deque([req(0, 1.0)])
        assert policy.release_time(q, 9.0, draining=True) == 9.0

    def test_timeout_ages_the_head(self):
        policy = TimeoutBatcher(timeout=10.0, max_size=8)
        q = deque([req(0, 100.0), req(1, 104.0)])
        assert policy.release_time(q, 101.0, False) == 110.0
        # an aged head releases now, not in the past
        assert policy.release_time(q, 120.0, False) == 120.0

    def test_timeout_max_size_short_circuits(self):
        policy = TimeoutBatcher(timeout=1e9, max_size=2)
        q = deque([req(0, 1.0), req(1, 2.0)])
        assert policy.release_time(q, 3.0, False) == 3.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContinuousBatcher(max_size=0)
        with pytest.raises(ValueError):
            SizeBatcher(size=0)
        with pytest.raises(ValueError):
            TimeoutBatcher(timeout=-1.0)
        with pytest.raises(ValueError):
            TimeoutBatcher(max_size=0)


class TestEngineIntegration:
    def _serve(self, policy, rate=2e-4, total=60, seed=9):
        machine = TCUMachine(m=16, ell=32.0)
        workload = PoissonWorkload(rate=rate, total=total, kind="matmul", rows=8, seed=seed)
        return ServingEngine(machine, policy).serve(workload)

    def test_size_trigger_produces_full_batches(self):
        result = self._serve(SizeBatcher(size=4))
        sizes = [b.size for b in result.batches]
        assert all(size == 4 for size in sizes[:-1])
        assert sizes[-1] <= 4  # drain flush

    def test_size_one_is_no_batching(self):
        result = self._serve(ContinuousBatcher(max_size=1))
        assert all(b.size == 1 for b in result.batches)
        assert len(result.batches) == 60

    def test_timeout_bounds_wait_at_low_load(self):
        """With the engine mostly idle, no request waits past its
        timeout before launch (modulo an in-flight batch's service)."""
        policy = TimeoutBatcher(timeout=500.0, max_size=8)
        result = self._serve(policy, rate=2e-5, total=40)
        max_service = max(b.service for b in result.batches)
        for request in result.requests:
            assert request.wait <= 500.0 + max_service + 1e-9

    def test_timeout_batches_under_load(self):
        """At overload, timeout batching actually groups requests."""
        result = self._serve(TimeoutBatcher(timeout=100.0, max_size=16), rate=5e-3)
        assert max(b.size for b in result.batches) > 1
