"""Fault-tolerance gates: zero-fault parity, seeded replay, recovery
policies, retries, degradation, and the grown conservation invariants.

These pin the PR7 acceptance criteria:

1. **Zero-fault parity.**  With the injector disabled (``None``, the
   ``"none"`` injector, or a ``"seeded"`` injector with every rate at
   zero) the engine is bit-identical to the fault-free kernel across
   the five pinned machine configurations.
2. **Seeded replay.**  Any faulty run replays bit-identically from its
   ``(workload seed, fault seed)`` pair — including through the
   engine's single top-level ``seed``.
3. **Recovery accounting.**  Checkpoint recovery wastes strictly less
   than restart on the same fault timeline, every failed attempt's
   charges stay on the ledger as accounted wasted work, and
   ``check_conservation`` holds on every faulty run — including
   degenerate ones (zero requests, all-shed, all-abandoned).
"""

import math

import pytest

from repro import ParallelTCUMachine, PoissonWorkload, TCUMachine, replay_batches
from repro.core.ledger import CostLedger, LedgerError
from repro.core.program import ProgramError
from repro.serve import (
    Degrader,
    ExponentialRetry,
    FixedRetry,
    MixedWorkload,
    NoFaultInjector,
    SeededFaultInjector,
    ServingEngine,
    available_fault_injectors,
    available_retry_policies,
    compute_metrics,
    get_fault_injector,
    get_request_type,
    get_retry_policy,
)
from repro.serve.admission import DeadlineAdmission, QueueCapAdmission

ELL = 512.0

MACHINE_CONFIGS = {
    "serial-numeric": lambda: TCUMachine(m=16, ell=ELL),
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "serial-max-rows": lambda: TCUMachine(m=16, ell=ELL, max_rows=16),
    "parallel-3": lambda: ParallelTCUMachine(m=16, ell=ELL, units=3),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}


def hot_workload(seed: int = 1, total: int = 40) -> PoissonWorkload:
    return PoissonWorkload(rate=2e-4, total=total, kind="matmul", rows=8, seed=seed)


def faulty_engine(machine, **kwargs) -> ServingEngine:
    kwargs.setdefault("faults", SeededFaultInjector(fail_rate=0.25, seed=7))
    kwargs.setdefault("retry", FixedRetry(delay=100.0, max_attempts=8))
    return ServingEngine(machine, "continuous", **kwargs)


class TestZeroFaultParity:
    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    @pytest.mark.parametrize("inert", ["none", "zero-seeded"])
    def test_inert_injector_is_bit_identical(self, config, inert):
        injector = (
            NoFaultInjector()
            if inert == "none"
            else SeededFaultInjector(fail_rate=0.0, straggle_rate=0.0, seed=5)
        )
        assert not injector.active
        plain_m = MACHINE_CONFIGS[config]()
        armed_m = MACHINE_CONFIGS[config]()
        plain = ServingEngine(plain_m, "timeout").serve(hot_workload())
        armed = ServingEngine(
            armed_m, "timeout", faults=injector, retry="exponential"
        ).serve(hot_workload())
        assert armed.faults == 0 and armed.wasted_time == 0.0
        assert plain_m.ledger.snapshot() == armed_m.ledger.snapshot()
        assert plain_m.ledger.call_shape_totals() == armed_m.ledger.call_shape_totals()
        assert plain.clock == armed.clock
        assert [b.launch for b in plain.batches] == [b.launch for b in armed.batches]
        assert [b.service for b in plain.batches] == [b.service for b in armed.batches]
        for a, b in zip(plain.requests, armed.requests):
            assert (a.rid, a.launch, a.completion) == (b.rid, b.launch, b.completion)

    def test_zero_fault_result_reports_inert_columns(self):
        result = ServingEngine(TCUMachine(m=16, ell=ELL)).serve(hot_workload())
        assert result.faults == result.retries == result.degraded == 0
        assert result.wasted_time == 0.0 and result.wasted_ratio == 0.0
        assert result.availability == 1.0
        assert all(b.attempts == 1 and b.attempt_spans == () for b in result.batches)


class TestSeededReplay:
    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    def test_faulty_run_replays_bit_identically(self, config):
        def run():
            machine = MACHINE_CONFIGS[config]()
            result = faulty_engine(machine).serve(hot_workload())
            return machine, result

        m1, r1 = run()
        m2, r2 = run()
        assert r1.faults > 0, "scenario failed to trigger faults"
        assert m1.ledger.snapshot() == m2.ledger.snapshot()
        assert m1.ledger.call_shape_totals() == m2.ledger.call_shape_totals()
        assert r1.clock == r2.clock and r1.wasted_time == r2.wasted_time
        assert [
            (e.kind, e.batch, e.level, e.attempt, e.clock) for e in r1.fault_events
        ] == [(e.kind, e.batch, e.level, e.attempt, e.clock) for e in r2.fault_events]

    def test_top_level_seed_reproduces_everything(self):
        def run(seed):
            machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
            result = faulty_engine(machine).serve(hot_workload(), seed=seed)
            return machine.ledger.snapshot(), result.clock, result.faults

        assert run(42) == run(42)
        snap_a, clock_a, _ = run(42)
        snap_b, clock_b, _ = run(43)
        assert clock_a != clock_b or snap_a != snap_b

    def test_seed_splits_workload_and_fault_streams(self):
        # reseeding through the engine must actually move the arrivals
        wl1, wl2 = hot_workload(seed=1), hot_workload(seed=1)
        wl2.reseed(999)
        a1 = [r.arrival for r in wl1.requests()]
        a2 = [r.arrival for r in wl2.requests()]
        assert a1 != a2

    def test_mixed_workload_reseeds_constituents_independently(self):
        mix = MixedWorkload(hot_workload(seed=1), hot_workload(seed=1))
        mix.reseed(7)
        seeds = [wl.seed for wl in mix.workloads]
        assert seeds[0] != seeds[1]


class TestRecoveryPolicies:
    def make(self, recovery):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        engine = faulty_engine(machine, recovery=recovery)
        return engine.serve(hot_workload(total=60))

    def test_checkpoint_beats_restart_on_wasted_work(self):
        ckpt = self.make("checkpoint")
        restart = self.make("restart")
        assert ckpt.faults == restart.faults > 0
        assert ckpt.wasted_time < restart.wasted_time
        assert ckpt.wasted_ratio < restart.wasted_ratio

    def test_attempt_spans_sum_to_service(self):
        result = self.make("checkpoint")
        retried = [b for b in result.batches if b.faults > 0]
        assert retried, "scenario failed to trigger retries"
        for batch in retried:
            assert batch.attempts == len(batch.attempt_spans) > 1
            assert math.isclose(
                sum(batch.attempt_spans), batch.service, rel_tol=1e-9
            )
            assert batch.recovery_time > 0.0
            assert len(batch.retry_at) == batch.attempts - 1

    def test_restart_wastes_whole_attempts(self):
        result = self.make("restart")
        for batch in result.batches:
            if batch.faults and batch.preemptions == 0:
                # every failed attempt is fully wasted under restart
                failed = sorted(batch.attempt_spans)[:-1]
                assert batch.wasted_time >= sum(failed) * (1 - 1e-9) - batch.reload_time

    def test_invalid_recovery_name_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            ServingEngine(TCUMachine(m=16, ell=ELL), recovery="wish-harder")


class TestRetriesAndBackoff:
    def test_fixed_backoff_spaces_retries(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        delay = 1000.0
        result = faulty_engine(
            machine, retry=FixedRetry(delay=delay, max_attempts=10)
        ).serve(hot_workload())
        retried = [b for b in result.batches if b.retry_at]
        assert retried
        # a retry can start no earlier than its failure plus the backoff
        for event in result.fault_events:
            batch = next(
                (b for b in result.batches if b.index == event.batch), None
            )
            if batch is None:
                continue
            later = [t for t in batch.retry_at if t >= event.clock]
            if later:
                assert later[0] >= event.clock + delay * (1 - 1e-9)

    def test_exponential_delay_schedule(self):
        policy = ExponentialRetry(base=10.0, factor=3.0, cap=50.0, max_attempts=6)
        assert policy.delay(2) == 10.0
        assert policy.delay(3) == 30.0
        assert policy.delay(4) == 50.0  # capped
        assert policy.delay(5) == 50.0

    def test_retry_budget_exhaustion_abandons(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = ServingEngine(
            machine,
            "continuous",
            faults=SeededFaultInjector(fail_rate=0.6, seed=3),
            retry=FixedRetry(delay=0.0, max_attempts=2),
        ).serve(hot_workload())
        assert result.abandoned, "budget of 2 under 60% faults must abandon"
        assert result.availability is not None and result.availability < 1.0
        for req in result.abandoned:
            assert not req.done

    def test_no_retry_abandons_on_first_fault(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = ServingEngine(
            machine,
            "continuous",
            faults=SeededFaultInjector(fail_rate=0.5, seed=2),
        ).serve(hot_workload())
        assert result.faults > 0 and result.retries == 0
        assert result.abandoned


class TestCrashesAndStragglers:
    def test_crashes_fire_and_delay_service(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        plain_m = TCUMachine(m=16, ell=ELL, execute="cost-only")
        mtbf = 5e5
        result = ServingEngine(
            machine,
            "continuous",
            faults=SeededFaultInjector(mtbf=mtbf, mttr=1e5, seed=4),
            retry=FixedRetry(delay=0.0, max_attempts=20),
        ).serve(hot_workload(total=80))
        plain = ServingEngine(plain_m, "continuous").serve(hot_workload(total=80))
        kinds = {e.kind for e in result.fault_events}
        assert kinds == {"crash"}
        # repairs push completions later than the fault-free run
        assert result.clock > plain.clock

    def test_crash_timeline_is_a_property_of_the_seed(self):
        a = SeededFaultInjector(mtbf=100.0, mttr=10.0, seed=6)
        b = SeededFaultInjector(mtbf=100.0, mttr=10.0, seed=6)
        # a draws many level draws first; the crash stream must not move
        for _ in range(100):
            a.draw_level()
        assert a.next_crash() == b.next_crash()
        assert a.take_crash() == b.take_crash()

    def test_stragglers_charge_cpu_not_waste(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = ServingEngine(
            machine,
            "continuous",
            faults=SeededFaultInjector(
                straggle_rate=1.0, straggle_factor=2.0, seed=1
            ),
        ).serve(hot_workload())
        assert result.completed == 40
        assert result.faults == 0 and result.wasted_time == 0.0
        # every level ran 2x slow: the served run charges exactly twice
        # its own uninterrupted replay, the surplus in the cpu column —
        # and the call trace is untouched (stragglers slow, not corrupt)
        fork = machine.fork()
        replay_batches(result.batches, fork)
        served, replay = machine.ledger, fork.ledger
        assert served.call_shape_totals() == replay.call_shape_totals()
        assert math.isclose(served.total_time, 2.0 * replay.total_time, rel_tol=1e-9)
        assert math.isclose(
            served.cpu_time - replay.cpu_time, replay.total_time, rel_tol=1e-9
        )


class TestGracefulDegradation:
    def wl(self):
        return hot_workload(total=50)

    def test_rows_mode_shrinks_the_batch(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = faulty_engine(
            machine,
            faults=SeededFaultInjector(fail_rate=0.5, seed=5),
            degrade=Degrader(after_attempts=1, mode="rows", rows_factor=0.5),
        ).serve(self.wl())
        degraded = [b for b in result.batches if b.degraded == "rows"]
        assert degraded and result.degraded == len(degraded)
        for batch in degraded:
            assert sum(batch.rows) < 8 * len(batch.rids)

    def test_quantize_mode_replans_on_cheaper_twin(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = faulty_engine(
            machine,
            faults=SeededFaultInjector(fail_rate=0.5, seed=5),
            degrade=Degrader(after_attempts=1, mode="quantize", ell_factor=0.25),
        ).serve(self.wl())
        degraded = [b for b in result.batches if b.degraded]
        assert degraded
        assert all(b.degraded == "quantize:int8" for b in degraded)
        # the twin shares the ledger: conservation already validated the
        # clock, so only the precision label needs checking here

    def test_degrader_validation(self):
        with pytest.raises(ValueError, match="after_attempts"):
            Degrader(after_attempts=0)
        with pytest.raises(ValueError, match="mode"):
            Degrader(mode="prayers")
        with pytest.raises(ValueError, match="rows_factor"):
            Degrader(rows_factor=1.5)
        with pytest.raises(ValueError, match="ell_factor"):
            Degrader(ell_factor=0.0)


class TestValidationParity:
    """Satellite: every knob rejects bad values in the TimeoutBatcher
    ValueError style, policies and admissions alike."""

    def test_admission_validation(self):
        with pytest.raises(ValueError, match="cap must be >= 1"):
            QueueCapAdmission(cap=0)
        with pytest.raises(ValueError, match="est_service must be >= 0"):
            DeadlineAdmission(est_service=-1.0)

    def test_injector_validation(self):
        with pytest.raises(ValueError, match="fail_rate"):
            SeededFaultInjector(fail_rate=-0.1)
        with pytest.raises(ValueError, match="fail_rate"):
            SeededFaultInjector(fail_rate=1.0)
        with pytest.raises(ValueError, match="mtbf and mttr"):
            SeededFaultInjector(mtbf=10.0)
        with pytest.raises(ValueError, match="mtbf must be > 0"):
            SeededFaultInjector(mtbf=0.0, mttr=1.0)
        with pytest.raises(ValueError, match="straggle_rate"):
            SeededFaultInjector(straggle_rate=2.0)
        with pytest.raises(ValueError, match="straggle_factor"):
            SeededFaultInjector(straggle_factor=0.5)

    def test_retry_validation(self):
        with pytest.raises(ValueError, match="delay must be >= 0"):
            FixedRetry(delay=-1.0)
        with pytest.raises(ValueError, match="max_attempts"):
            FixedRetry(max_attempts=0)
        with pytest.raises(ValueError, match="base must be >= 0"):
            ExponentialRetry(base=-1.0)
        with pytest.raises(ValueError, match="factor"):
            ExponentialRetry(factor=0.5)
        with pytest.raises(ValueError, match="cap"):
            ExponentialRetry(cap=-1.0)

    def test_registries(self):
        assert set(available_fault_injectors()) >= {"none", "seeded"}
        assert set(available_retry_policies()) >= {
            "no-retry",
            "fixed",
            "exponential",
        }
        assert get_fault_injector("none").name == "none"
        assert get_retry_policy("fixed").name == "fixed"
        with pytest.raises(ValueError, match="unknown fault injector"):
            get_fault_injector("gremlins")
        with pytest.raises(ValueError, match="unknown retry policy"):
            get_retry_policy("pray")


class TestLedgerAndCursorPlumbing:
    def test_attribute_wasted_bounds(self):
        ledger = CostLedger()
        ledger.charge_cpu(10.0)
        assert ledger.attribute_wasted(4.0) == 4.0
        assert ledger.wasted_time == 4.0 and ledger.useful_time == 6.0
        with pytest.raises(LedgerError, match="exceed"):
            ledger.attribute_wasted(7.0)
        with pytest.raises(LedgerError, match="negative"):
            ledger.attribute_wasted(-1.0)

    def test_attribute_wasted_excludes_reload_budget(self):
        ledger = CostLedger()
        ledger.charge_cpu(5.0)
        ledger.charge_reload(100.0)
        with pytest.raises(LedgerError, match="exceed"):
            ledger.attribute_wasted(6.0)

    def test_cursor_rewind_rejects_forward_jumps(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        plan = get_request_type("dft").plan(machine, [512])
        from repro.core.program import ExecutionCursor

        cursor = ExecutionCursor(plan, machine)
        cursor.step()
        cursor.rewind(0)
        assert cursor.next_level == 0
        with pytest.raises(ProgramError):
            cursor.rewind(2)
        with pytest.raises(ProgramError):
            cursor.rewind(-1)

    def test_rewound_level_recharges_identically(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        plan = get_request_type("dft").plan(machine, [512])
        from repro.core.program import ExecutionCursor

        cursor = ExecutionCursor(plan, machine)
        first = cursor.step()
        cursor.rewind(0)
        again = cursor.step()
        assert first == again


class TestDegenerateConservation:
    """Satellite: the grown invariants hold vacuously, not crash."""

    def test_zero_requests(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = faulty_engine(machine).serve(
            PoissonWorkload(rate=1e-4, total=0, kind="matmul", rows=8, seed=1)
        )
        result.check_conservation()
        assert result.completed == 0 and result.availability is None
        metrics = compute_metrics(result)
        assert metrics.requests == 0 and metrics.availability is None

    def test_all_shed(self):
        machine = TCUMachine(m=16, ell=ELL)
        result = ServingEngine(
            machine,
            "size",
            admission=DeadlineAdmission(est_service=math.inf),
        ).serve(
            PoissonWorkload(
                rate=1e-4, total=10, kind="matmul", rows=8, seed=1, deadline=1.0
            )
        )
        result.check_conservation()
        assert result.completed == 0 and len(result.shed) == 10
        metrics = compute_metrics(result)
        assert metrics.shed == 10 and metrics.availability is None

    def test_all_abandoned(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = ServingEngine(
            machine,
            "continuous",
            faults=SeededFaultInjector(fail_rate=0.95, seed=8),
            retry=FixedRetry(delay=0.0, max_attempts=2),
        ).serve(hot_workload(total=5))
        result.check_conservation()
        if result.completed == 0:  # the intended degenerate shape
            assert result.availability == 0.0
            assert result.batches == []
            metrics = compute_metrics(result)
            assert metrics.availability == 0.0
        assert len(result.abandoned) > 0

    def test_all_abandoned_at_launch_by_deadline(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = ServingEngine(
            machine,
            # zero relative deadline: every request has already expired
            # whenever it launches, so all are abandoned unserved
            "timeout",
            abandon=True,
        ).serve(
            PoissonWorkload(
                rate=1e-2, total=8, kind="matmul", rows=8, seed=1, deadline=0.0
            )
        )
        result.check_conservation()
        assert result.completed == 0
        assert len(result.abandoned) == 8
        assert result.wasted_time == 0.0


class TestChaosPropertySweep:
    """Satellite (CI chaos-smoke): 10 random fault seeds, conservation
    and zero-fault parity asserted on every one."""

    @pytest.mark.parametrize("seed", range(10))
    def test_conservation_under_random_faults(self, seed):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        result = ServingEngine(
            machine,
            "continuous",
            faults=SeededFaultInjector(
                fail_rate=0.15,
                mtbf=8e5,
                mttr=1e5,
                straggle_rate=0.1,
                seed=seed,
            ),
            retry=ExponentialRetry(base=50.0, max_attempts=5),
        ).serve(hot_workload(seed=seed))
        result.check_conservation()  # validate=True already ran it; pin it
        assert result.ledger_time > 0.0
        assert math.isclose(
            result.useful_time + result.wasted_time + result.reload_time,
            result.ledger_time,
            rel_tol=1e-9,
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_zero_fault_parity_per_seed(self, seed):
        plain_m = TCUMachine(m=16, ell=ELL, execute="cost-only")
        armed_m = TCUMachine(m=16, ell=ELL, execute="cost-only")
        plain = ServingEngine(plain_m, "continuous").serve(hot_workload(seed=seed))
        armed = ServingEngine(
            armed_m,
            "continuous",
            faults=SeededFaultInjector(fail_rate=0.0, seed=seed),
            retry="exponential",
        ).serve(hot_workload(seed=seed))
        assert plain_m.ledger.snapshot() == armed_m.ledger.snapshot()
        assert plain.clock == armed.clock
