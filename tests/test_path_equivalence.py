"""Execution-path equivalence: eager, planned-unfused, planned-fused and
cost-only runs of every algorithm must charge bit-identical ledger
totals, call counts, per-shape traces and section times.

Two invariants are pinned down, matching the planner's documented
semantics:

* within one planning mode, the executor variant never changes a
  charge: ``fused=True`` == ``fused=False`` == ``execute="cost-only"``;
* the eager (``plan=False``) path equals the planned path whenever the
  planner has nothing to merge (a lone Theorem 2 product, Strassen,
  DFT); the closure's planned path intentionally merges two segment
  calls per pivot column (fewer latencies), and there cost-only must
  track whichever mode it runs in.

All machine parameters that alter the charge structure are swept:
latency, complex-cost factors, hardware row bounds and sections.
"""

import numpy as np
import pytest

from repro.core.ledger import CostLedger
from repro.core.machine import TCUMachine, placeholder
from repro.core.parallel import ParallelTCUMachine
from repro.core.program import TensorProgram, run_program
from repro.extmem.simulate import simulate_ledger_io
from repro.graph.closure import transitive_closure
from repro.matmul.dense import matmul, matmul_lazy
from repro.matmul.strassen import strassen_like_mm
from repro.transform.dft import batched_dft


def ledger_fingerprint(tcu, sections=()):
    led = tcu.ledger
    return (
        led.snapshot(),
        led.call_shape_totals(),
        {name: led.section_time(name) for name in sections},
    )


MACHINES = {
    "base": dict(m=16, ell=100.0),
    "zero-latency": dict(m=64, ell=0.0),
    "split-stream": dict(m=16, ell=32.0, max_rows=64),
    "complex-cost": dict(m=16, ell=16.0, complex_cost_factor=4),
}


def make(kind, **extra):
    return TCUMachine(**MACHINES[kind], **extra)


@pytest.mark.parametrize("kind", list(MACHINES))
@pytest.mark.parametrize("shape", [(40, 40, 40), (96, 32, 17), (9, 50, 23)])
def test_dense_paths_agree(kind, shape):
    rng = np.random.default_rng(hash((kind, shape)) % 2**32)
    p, q, r = shape
    A = rng.random((p, q))
    B = rng.random((q, r))
    if kind == "complex-cost":
        A = A + 1j * rng.random((p, q))
    eager = make(kind)
    with eager.section("mm"):
        C_eager = matmul(eager, A, B, plan=False)
    fused = make(kind)
    with fused.section("mm"):
        C_fused = matmul(fused, A, B, plan=True)
    cost = make(kind, execute="cost-only")
    with cost.section("mm"):
        C_cost = matmul(cost, A, B, plan=True)
    assert np.allclose(C_eager, A @ B) and np.allclose(C_fused, A @ B)
    assert C_cost.shape == (p, r)
    fp = ledger_fingerprint(eager, ["mm"])
    assert ledger_fingerprint(fused, ["mm"]) == fp
    assert ledger_fingerprint(cost, ["mm"]) == fp


@pytest.mark.parametrize("kind", ["base", "split-stream"])
def test_dense_unfused_program_agrees(kind):
    rng = np.random.default_rng(11)
    A = rng.random((48, 32))
    B = rng.random((32, 48))
    reference = make(kind)
    matmul(reference, A, B, plan=False)

    for fused in (True, False):
        tcu = make(kind)
        program = TensorProgram()
        lazy = matmul_lazy(tcu, program, A, B)
        run_program(program, tcu, fused=fused)
        assert np.allclose(lazy.result(), A @ B)
        assert ledger_fingerprint(tcu) == ledger_fingerprint(reference)


@pytest.mark.parametrize("kind", ["base", "zero-latency"])
def test_strassen_paths_agree(kind):
    rng = np.random.default_rng(5)
    A = rng.random((40, 40))
    B = rng.random((40, 40))
    eager = make(kind)
    C_eager = strassen_like_mm(eager, A, B, plan=False)
    fused = make(kind)
    C_fused = strassen_like_mm(fused, A, B, plan=True)
    cost = make(kind, execute="cost-only")
    C_cost = strassen_like_mm(cost, A, B, plan=True)
    assert np.allclose(C_eager, A @ B) and np.allclose(C_fused, A @ B)
    assert C_cost.shape == (40, 40)
    fp = ledger_fingerprint(eager)
    assert ledger_fingerprint(fused) == fp
    assert ledger_fingerprint(cost) == fp


@pytest.mark.parametrize("kind", ["base", "complex-cost", "split-stream"])
def test_dft_paths_agree(kind):
    rng = np.random.default_rng(9)
    X = rng.random((4, 64)) + 1j * rng.random((4, 64))
    eager = make(kind)
    F_eager = batched_dft(eager, X, plan=False)
    fused = make(kind)
    F_fused = batched_dft(fused, X, plan=True)
    cost = make(kind, execute="cost-only")
    F_cost = batched_dft(cost, X, plan=True)
    assert np.allclose(F_eager, np.fft.fft(X))
    assert np.allclose(F_fused, np.fft.fft(X))
    assert F_cost.shape == X.shape
    fp = ledger_fingerprint(eager)
    assert ledger_fingerprint(fused) == fp
    assert ledger_fingerprint(cost) == fp


@pytest.mark.parametrize("plan", [True, False])
def test_closure_cost_only_tracks_its_mode(plan):
    rng = np.random.default_rng(3)
    n = 37
    adj = (rng.random((n, n)) < 0.1).astype(np.int64)
    np.fill_diagonal(adj, 0)
    numeric = TCUMachine(m=16, ell=50.0)
    closure = transitive_closure(numeric, adj, plan=plan)
    cost = TCUMachine(m=16, ell=50.0, execute="cost-only")
    transitive_closure(cost, adj, plan=plan)
    assert ledger_fingerprint(cost) == ledger_fingerprint(numeric)
    # reachability sanity on the numeric result
    assert np.array_equal(closure, closure | (closure @ closure > 0))


def test_closure_fused_matches_unfused_executor(monkeypatch):
    import repro.graph.closure as closure_mod

    rng = np.random.default_rng(4)
    n = 29
    adj = (rng.random((n, n)) < 0.15).astype(np.int64)
    np.fill_diagonal(adj, 0)
    fused = TCUMachine(m=16, ell=25.0)
    R_fused = transitive_closure(fused, adj, plan=True)

    orig = run_program
    monkeypatch.setattr(
        closure_mod,
        "run_program",
        lambda program, machine, **kw: orig(program, machine, fused=False, **kw),
    )
    unfused = TCUMachine(m=16, ell=25.0)
    R_unfused = transitive_closure(unfused, adj, plan=True)
    assert np.array_equal(R_fused, R_unfused)
    assert ledger_fingerprint(fused) == ledger_fingerprint(unfused)


def test_parallel_fused_and_cost_only_agree():
    rng = np.random.default_rng(6)
    W = rng.random((4, 4))
    streams = [rng.random((16, 4)) for _ in range(9)]

    def build(machine):
        program = TensorProgram()
        # distinct resident blocks so nothing merges and the level
        # batches across units
        blocks = [W + i for i in range(len(streams))]
        ops = [program.mm(Xi, Bi) for Xi, Bi in zip(streams, blocks)]
        return program, ops

    numeric = ParallelTCUMachine(m=16, ell=40.0, units=3)
    prog, ops = build(numeric)
    run_program(prog, numeric)
    cost = ParallelTCUMachine(m=16, ell=40.0, units=3, execute="cost-only")
    prog_c, ops_c = build(cost)
    run_program(prog_c, cost)
    assert ledger_fingerprint(cost) == ledger_fingerprint(numeric)
    assert numeric.last_batch.makespan == cost.last_batch.makespan
    assert all(op.result().shape == (16, 4) for op in ops_c)
    assert np.allclose(ops[0].result(), streams[0] @ (W + 0))


def test_parallel_equal_cost_fast_path_matches_heap():
    # make the costs unequal to force the heap, then compare with an
    # equal-cost batch computed by the round-robin fast path
    rng = np.random.default_rng(8)
    mixed = ParallelTCUMachine(m=16, ell=10.0, units=3)
    pairs = [(rng.random((16 + 4 * i, 4)), rng.random((4, 4))) for i in range(7)]
    mixed.mm_batch(pairs)
    serial = sum(A.shape[0] * 4 + 10.0 for A, _ in pairs)
    assert mixed.last_batch.serial_time == serial
    assert mixed.last_batch.makespan <= serial

    equal = ParallelTCUMachine(m=16, ell=10.0, units=3)
    equal.mm_batch([(rng.random((16, 4)), rng.random((4, 4))) for _ in range(7)])
    # 7 equal calls on 3 units -> ceil(7/3) = 3 rounds on the fullest unit
    assert equal.last_batch.makespan == 3 * (16 * 4 + 10.0)
    assert equal.last_batch.units_used == 3


def test_theorem12_replay_identical_across_paths():
    rng = np.random.default_rng(12)
    A = rng.random((64, 48))
    B = rng.random((48, 32))
    numeric = TCUMachine(m=16, ell=8.0)
    matmul(numeric, A, B)
    cost = TCUMachine(m=16, ell=8.0, execute="cost-only")
    matmul(cost, A, B)
    aggregate = TCUMachine(m=16, ell=8.0, execute="cost-only", trace_calls="aggregate")
    matmul(aggregate, A, B)
    io = simulate_ledger_io(numeric.ledger)
    assert simulate_ledger_io(cost.ledger) == io
    assert simulate_ledger_io(aggregate.ledger) == io
    assert io.tensor_ios > 0 and io.io_per_time > 0


def test_cost_only_scales_past_numeric_memory():
    # a sweep point whose numeric operands would need ~200 GB: the
    # cost-only path charges it from placeholders in O(#calls) work
    n = 160_000
    tcu = TCUMachine(m=65536, ell=1e5, execute="cost-only")
    A = placeholder((n, n))
    B = placeholder((n, n))
    C = matmul(tcu, A, B)
    assert C.shape == (n, n) and C.strides == (0, 0)
    s = tcu.sqrt_m
    calls = (n // s) ** 2
    assert tcu.ledger.tensor_calls == calls
    assert tcu.ledger.latency_time == calls * 1e5
    assert tcu.ledger.tensor_time == float(calls) * n * s


def test_aggregate_trace_mode_matches_full_under_fusion():
    rng = np.random.default_rng(13)
    A = rng.random((32, 32))
    B = rng.random((32, 32))
    full = TCUMachine(m=16, ell=4.0, trace_calls=True)
    matmul(full, A, B)
    agg_ledger = CostLedger(trace_calls="aggregate")
    agg = TCUMachine(m=16, ell=4.0, ledger=agg_ledger)
    matmul(agg, A, B)
    assert full.ledger.snapshot() == agg.ledger.snapshot()
    assert full.ledger.call_shape_totals() == agg.ledger.call_shape_totals()
