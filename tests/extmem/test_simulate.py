"""Theorem 12 simulation tests: TCU time <-> external-memory I/Os."""

import pytest

from repro import TCUMachine, WeakTCUMachine
from repro.extmem.simulate import simulate_ledger_io
from repro.matmul.dense import matmul


class TestSimulation:
    def test_square_call_costs_3m_ios(self, rng):
        weak = WeakTCUMachine(m=16)
        weak.mm(rng.random((4, 4)), rng.random((4, 4)))
        sim = simulate_ledger_io(weak.ledger)
        assert sim.tensor_ios == 3 * 16

    def test_cpu_ops_cost_one_io_each(self, rng):
        tcu = TCUMachine(m=16)
        tcu.charge_cpu(123)
        sim = simulate_ledger_io(tcu.ledger)
        assert sim.cpu_ios == 123

    def test_tall_call_split_in_weak_mode(self, rng):
        tcu = TCUMachine(m=16)
        tcu.mm(rng.random((16, 4)), rng.random((4, 4)))
        sim = simulate_ledger_io(tcu.ledger, weak=True)
        assert sim.tensor_ios == 4 * 3 * 16  # 4 square pieces

    def test_streaming_mode_moves_fewer_words(self, rng):
        tcu = TCUMachine(m=16)
        tcu.mm(rng.random((16, 4)), rng.random((4, 4)))
        weak = simulate_ledger_io(tcu.ledger, weak=True)
        streaming = simulate_ledger_io(tcu.ledger, weak=False)
        assert streaming.tensor_ios < weak.tensor_ios
        assert streaming.tensor_ios == 2 * 16 * 4 + 16

    def test_requires_trace(self):
        tcu = TCUMachine(m=16, trace_calls=False)
        tcu.charge_cpu(5)
        with pytest.raises(ValueError, match="trace"):
            simulate_ledger_io(tcu.ledger)

    def test_io_per_time_is_constant(self, rng):
        """The heart of Theorem 12: simulation I/Os = Theta(model time),
        with the ratio independent of problem size when l = O(m)."""
        ratios = []
        for side in (16, 32, 64):
            tcu = TCUMachine(m=16, ell=16.0)
            matmul(tcu, rng.random((side, side)), rng.random((side, side)))
            sim = simulate_ledger_io(tcu.ledger)
            ratios.append(sim.io_per_time)
        assert max(ratios) / min(ratios) < 1.5
        assert all(0.5 < r < 12 for r in ratios)

    def test_zero_time_ledger(self):
        tcu = TCUMachine(m=16)
        sim = simulate_ledger_io(tcu.ledger)
        assert sim.total_ios == 0
        assert sim.io_per_time == 0.0

    def test_breakdown_totals(self, rng):
        tcu = TCUMachine(m=16)
        matmul(tcu, rng.random((8, 8)), rng.random((8, 8)))
        sim = simulate_ledger_io(tcu.ledger)
        assert sim.total_ios == sim.tensor_ios + sim.cpu_ios
        assert sim.tensor_calls == tcu.ledger.tensor_calls
        assert sim.model_time == tcu.time
