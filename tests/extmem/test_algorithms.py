"""External-memory matmul I/O trace tests."""

import pytest

from repro.extmem.algorithms import em_blocked_matmul_io, em_naive_matmul_io
from repro.extmem.bounds import matmul_io_lower_bound


class TestBlockedMatmul:
    def test_blocked_beats_naive(self):
        for side in (8, 16, 32):
            M = 3 * 16
            assert em_blocked_matmul_io(side, M) < em_naive_matmul_io(side, M)

    def test_blocked_respects_lower_bound(self):
        for side in (8, 16, 32):
            M = 3 * 16
            n = side * side
            assert em_blocked_matmul_io(side, M) >= matmul_io_lower_bound(n, M)

    def test_blocked_within_constant_of_lower_bound(self):
        """The tiled schedule is I/O-optimal up to a small constant."""
        side, M = 32, 3 * 64
        n = side * side
        ratio = em_blocked_matmul_io(side, M) / matmul_io_lower_bound(n, M)
        assert ratio < 16

    def test_more_memory_fewer_ios(self):
        side = 32
        ios = [em_blocked_matmul_io(side, M) for M in (3 * 16, 3 * 64, 3 * 256)]
        assert ios[0] > ios[1] > ios[2]

    def test_io_grows_cubically(self):
        """With fixed M, blocked MM I/O ~ side^3."""
        M = 3 * 16
        a = em_blocked_matmul_io(16, M)
        b = em_blocked_matmul_io(32, M)
        assert 6 < b / a < 10

    def test_tiny_matrix_fits_in_memory(self):
        """A matrix that fits entirely needs ~one read + one write."""
        side = 4
        ios = em_blocked_matmul_io(side, M=3 * side * side)
        assert ios <= 4 * side * side

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            em_blocked_matmul_io(0, 48)
        with pytest.raises(ValueError):
            em_naive_matmul_io(0, 48)


class TestNaiveMatmul:
    def test_naive_io_near_cubic(self):
        side = 16
        M = 3 * 8  # tiny cache
        ios = em_naive_matmul_io(side, M)
        # B-column sweeps miss almost every access
        assert ios > side**3 / 2
