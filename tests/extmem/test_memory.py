"""External-memory cache simulator tests."""

import pytest

from repro.extmem.memory import ExternalMemory


class TestBasics:
    def test_first_touch_faults(self):
        em = ExternalMemory(M=4, B=1)
        em.touch(0)
        assert em.stats.fetches == 1

    def test_repeat_touch_is_free(self):
        em = ExternalMemory(M=4, B=1)
        em.touch(0)
        em.touch(0)
        assert em.stats.fetches == 1

    def test_capacity_eviction(self):
        em = ExternalMemory(M=2, B=1)
        em.touch(0)
        em.touch(1)
        em.touch(2)  # evicts 0
        em.touch(0)  # refault
        assert em.stats.fetches == 4

    def test_lru_order(self):
        em = ExternalMemory(M=2, B=1)
        em.touch(0)
        em.touch(1)
        em.touch(0)  # 0 is now most recent
        em.touch(2)  # evicts 1
        em.touch(0)  # still resident
        assert em.stats.fetches == 3

    def test_dirty_writeback_on_eviction(self):
        em = ExternalMemory(M=1, B=1)
        em.touch(0, write=True)
        em.touch(1)  # evicts dirty 0
        assert em.stats.writebacks == 1

    def test_clean_eviction_free(self):
        em = ExternalMemory(M=1, B=1)
        em.touch(0)
        em.touch(1)
        assert em.stats.writebacks == 0

    def test_flush_writes_dirty(self):
        em = ExternalMemory(M=4, B=1)
        em.touch(0, write=True)
        em.touch(1, write=True)
        em.touch(2)
        em.flush()
        assert em.stats.writebacks == 2

    def test_flush_idempotent(self):
        em = ExternalMemory(M=4, B=1)
        em.touch(0, write=True)
        em.flush()
        em.flush()
        assert em.stats.writebacks == 1

    def test_negative_address_rejected(self):
        em = ExternalMemory(M=4)
        with pytest.raises(ValueError):
            em.touch(-1)

    def test_reset(self):
        em = ExternalMemory(M=4)
        em.touch(0)
        em.reset()
        assert em.io_count == 0
        em.touch(0)
        assert em.stats.fetches == 1


class TestBlocks:
    def test_block_granularity(self):
        em = ExternalMemory(M=8, B=4)
        em.touch(0)
        em.touch(3)  # same block
        em.touch(4)  # next block
        assert em.stats.fetches == 2

    def test_touch_range_block_count(self):
        em = ExternalMemory(M=64, B=4)
        em.touch_range(0, 16)
        assert em.stats.fetches == 4

    def test_touch_range_straddles_blocks(self):
        em = ExternalMemory(M=64, B=4)
        em.touch_range(2, 4)  # words 2..5: blocks 0 and 1
        assert em.stats.fetches == 2

    def test_touch_range_zero(self):
        em = ExternalMemory(M=8, B=4)
        em.touch_range(0, 0)
        assert em.io_count == 0

    def test_capacity_in_blocks(self):
        em = ExternalMemory(M=8, B=4)
        assert em.capacity_blocks == 2

    def test_m_smaller_than_block_rejected(self):
        with pytest.raises(ValueError):
            ExternalMemory(M=2, B=4)

    def test_scan_costs_n_over_b(self):
        """The scanning bound: N/B I/Os for a sequential pass."""
        em = ExternalMemory(M=64, B=8)
        em.touch_range(0, 800)
        assert em.stats.fetches == 100
