"""Lower-bound formula tests (Section 5)."""

import math

import pytest

from repro import TCUMachine
from repro.extmem.bounds import (
    dense_mm_semiring_lower_bound,
    fft_io_lower_bound,
    matmul_io_lower_bound,
    sorting_io_lower_bound,
    tcu_matmul_time_lower_bound,
    tcu_time_lower_bound,
)
from repro.matmul.dense import matmul


class TestFormulas:
    def test_matmul_bound_value(self):
        assert matmul_io_lower_bound(256, 64) == 256**1.5 / 8

    def test_matmul_bound_decreases_with_memory(self):
        assert matmul_io_lower_bound(1024, 16) > matmul_io_lower_bound(1024, 256)

    def test_matmul_bound_blocks_help(self):
        assert matmul_io_lower_bound(1024, 64, B=4) == matmul_io_lower_bound(1024, 64) / 4

    def test_matmul_bound_invalid(self):
        with pytest.raises(ValueError):
            matmul_io_lower_bound(0, 64)

    def test_sorting_bound_positive(self):
        assert sorting_io_lower_bound(1 << 20, 1 << 10, 8) > 0

    def test_sorting_bound_degenerate(self):
        assert sorting_io_lower_bound(1, 16) == 0.0

    def test_fft_equals_sorting(self):
        assert fft_io_lower_bound(4096, 64, 2) == sorting_io_lower_bound(4096, 64, 2)

    def test_tcu_transfer_identity(self):
        assert tcu_time_lower_bound(123.0) == 123.0

    def test_tcu_matmul_bound_uses_3m(self):
        n, m = 4096, 64
        assert math.isclose(
            tcu_matmul_time_lower_bound(n, m), n**1.5 / math.sqrt(3 * m)
        )


class TestBoundsRespected:
    @pytest.mark.parametrize("side,m", [(16, 16), (32, 16), (32, 64), (64, 16)])
    def test_dense_mm_never_beats_semiring_bound(self, rng, side, m):
        tcu = TCUMachine(m=m, ell=8.0)
        matmul(tcu, rng.random((side, side)), rng.random((side, side)))
        bound = dense_mm_semiring_lower_bound(side * side, m, tcu.ell)
        assert tcu.time >= bound * 0.999

    @pytest.mark.parametrize("side,m", [(16, 16), (32, 16), (64, 16)])
    def test_dense_mm_respects_theorem12_bound(self, rng, side, m):
        """Measured model time also sits above the EM-derived bound."""
        tcu = TCUMachine(m=m)
        matmul(tcu, rng.random((side, side)), rng.random((side, side)))
        assert tcu.time >= tcu_matmul_time_lower_bound(side * side, m)

    def test_semiring_bound_invalid_args(self):
        with pytest.raises(ValueError):
            dense_mm_semiring_lower_bound(0, 16, 0.0)
