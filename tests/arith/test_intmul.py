"""Theorem 9 integer multiplication tests."""

import random

import numpy as np
import pytest

from repro import TCUMachine
from repro.analysis.fitting import loglog_slope
from repro.arith.intmul import coefficients_via_tcu, int_multiply
from repro.baselines.ram import RAMMachine, ram_schoolbook_intmul


class TestCoefficients:
    def test_single_limb(self, tcu_int):
        coeffs = coefficients_via_tcu(tcu_int, np.array([3]), np.array([5]))
        assert list(coeffs) == [15]

    def test_two_limbs(self, tcu_int):
        # (3 + 2x)(1 + 4x) = 3 + 14x + 8x^2
        coeffs = coefficients_via_tcu(
            tcu_int, np.array([3, 2]), np.array([1, 4])
        )
        assert list(coeffs) == [3, 14, 8]

    def test_matches_numpy_polymul(self, tcu_int, rng):
        a = rng.integers(0, 256, 13).astype(np.int64)
        b = rng.integers(0, 256, 9).astype(np.int64)
        got = coefficients_via_tcu(tcu_int, a, b)
        want = np.polymul(a[::-1], b[::-1])[::-1]
        n_prime = max(len(a), len(b))
        assert len(got) == 2 * n_prime - 1
        assert np.array_equal(got[: len(want)], want)
        assert (got[len(want):] == 0).all()

    def test_uneven_lengths_padded(self, tcu_int):
        coeffs = coefficients_via_tcu(tcu_int, np.array([1, 1, 1, 1, 1]), np.array([1]))
        assert list(coeffs[:5]) == [1, 1, 1, 1, 1]

    def test_rejects_2d(self, tcu_int):
        with pytest.raises(ValueError):
            coefficients_via_tcu(tcu_int, np.ones((2, 2)), np.ones(2))


class TestIntMultiply:
    @pytest.mark.parametrize("bits", [1, 4, 8, 17, 63, 128, 511, 2048])
    def test_random_operands(self, tcu_int, bits):
        random.seed(bits)
        a = random.getrandbits(bits) | (1 << max(0, bits - 1))
        b = random.getrandbits(bits) | 1
        assert int_multiply(tcu_int, a, b) == a * b

    def test_zero(self, tcu_int):
        assert int_multiply(tcu_int, 0, 10**50) == 0
        assert int_multiply(tcu_int, 10**50, 0) == 0

    def test_one(self, tcu_int):
        v = 2**300 + 12345
        assert int_multiply(tcu_int, 1, v) == v

    @pytest.mark.parametrize(
        "a,b",
        [(-5, 7), (5, -7), (-5, -7), (-(2**100), 2**100 + 1)],
    )
    def test_signs(self, tcu_int, a, b):
        assert int_multiply(tcu_int, a, b) == a * b

    def test_powers_of_two(self, tcu_int):
        assert int_multiply(tcu_int, 2**500, 2**300) == 2**800

    def test_asymmetric_sizes(self, tcu_int):
        a = 2**1000 + 17
        b = 3
        assert int_multiply(tcu_int, a, b) == a * b

    def test_all_ones_patterns(self, tcu_int):
        """Maximal limbs stress the no-overflow guarantee."""
        a = (1 << 512) - 1
        assert int_multiply(tcu_int, a, a) == a * a

    def test_matches_ram_baseline(self, tcu_int):
        ram = RAMMachine()
        a, b = 2**200 - 3, 2**199 + 71
        assert int_multiply(tcu_int, a, b) == ram_schoolbook_intmul(ram, a, b)

    def test_no_tensor_overflow_with_checks_on(self):
        """kappa=32 limbs through a sqrt(m)=8 unit stay within word."""
        machine = TCUMachine(m=64, ell=0, kappa=32, check_overflow=True)
        a = (1 << 4096) - 1
        assert int_multiply(machine, a, a) == a * a


class TestCostShape:
    def test_quadratic_scaling(self):
        """Theorem 9: model time ~ n^2 for fixed kappa, m."""
        random.seed(7)
        bits_list = [512, 1024, 2048, 4096]
        times = []
        for bits in bits_list:
            tcu = TCUMachine(m=16, kappa=32)
            a = random.getrandbits(bits) | (1 << (bits - 1))
            b = random.getrandbits(bits) | (1 << (bits - 1))
            int_multiply(tcu, a, b)
            times.append(tcu.time)
        slope = loglog_slope(bits_list, times)
        assert 1.8 < slope < 2.2

    def test_bigger_unit_is_faster(self):
        random.seed(8)
        bits = 2048
        a = random.getrandbits(bits) | (1 << (bits - 1))
        b = random.getrandbits(bits) | (1 << (bits - 1))
        small = TCUMachine(m=16, kappa=32)
        big = TCUMachine(m=256, kappa=32)
        int_multiply(small, a, b)
        int_multiply(big, a, b)
        assert big.time < small.time

    def test_latency_term_linear_in_n(self):
        """The l term enters n/(kappa m) times."""
        random.seed(9)
        bits = 2048
        a = random.getrandbits(bits) | (1 << (bits - 1))
        t0 = TCUMachine(m=16, kappa=32, ell=0.0)
        t1 = TCUMachine(m=16, kappa=32, ell=50.0)
        int_multiply(t0, a, a)
        int_multiply(t1, a, a)
        assert t1.ledger.latency_time == 50.0 * t1.ledger.tensor_calls
        assert t0.ledger.tensor_time == t1.ledger.tensor_time
