"""Theorem 10 Karatsuba tests."""

import random

import pytest

from repro import TCUMachine
from repro.analysis.fitting import loglog_slope
from repro.arith.karatsuba import (
    KaratsubaStats,
    karatsuba_multiply,
    karatsuba_threshold,
)


class TestCorrectness:
    @pytest.mark.parametrize("bits", [8, 64, 300, 1000, 4000])
    def test_random_operands(self, tcu_int, bits):
        random.seed(bits)
        a = random.getrandbits(bits) | (1 << (bits - 1))
        b = random.getrandbits(bits) | 1
        assert karatsuba_multiply(tcu_int, a, b) == a * b

    def test_zero(self, tcu_int):
        assert karatsuba_multiply(tcu_int, 0, 5) == 0

    @pytest.mark.parametrize("a,b", [(-3, 9), (3, -9), (-3, -9)])
    def test_signs(self, tcu_int, a, b):
        assert karatsuba_multiply(tcu_int, a, b) == a * b

    def test_below_threshold_is_single_base_call(self, tcu_int):
        stats = KaratsubaStats()
        karatsuba_multiply(tcu_int, 7, 9, stats=stats)
        assert stats.base_calls == 1
        assert stats.recursive_calls == 0

    def test_explicit_threshold(self, tcu_int):
        stats = KaratsubaStats()
        a = (1 << 256) - 1
        karatsuba_multiply(tcu_int, a, a, threshold=64, stats=stats)
        assert stats.recursive_calls > 0
        assert karatsuba_multiply(tcu_int, a, a, threshold=64) == a * a

    def test_asymmetric_operands(self, tcu_int):
        a = (1 << 2000) - 1
        b = (1 << 100) + 7
        assert karatsuba_multiply(tcu_int, a, b) == a * b


class TestStructure:
    def test_threshold_formula(self):
        tcu = TCUMachine(m=16, kappa=32)
        # kappa = 32, sqrt(m) = 4 -> 128 bits
        assert karatsuba_threshold(tcu) == 128
        assert karatsuba_threshold(tcu, factor=2.0) == 256

    def test_three_recursive_calls_per_level(self, tcu_int):
        """One split produces three subproducts; the carry of the cross
        term (a0+a1)(b0+b1) may push it one bit over the threshold and
        recurse once more, so 3 or 5 base calls are both correct."""
        stats = KaratsubaStats()
        thr = karatsuba_threshold(tcu_int)
        a = (1 << (2 * thr)) - 1
        karatsuba_multiply(tcu_int, a, a, stats=stats)
        assert stats.recursive_calls in (1, 2)
        assert stats.base_calls in (3, 5)

    def test_depth_logarithmic(self, tcu_int):
        stats = KaratsubaStats()
        bits = 4096
        a = (1 << bits) - 1
        karatsuba_multiply(tcu_int, a, a, stats=stats)
        # depth ~ log2(bits / threshold); generous upper bound
        assert stats.depth <= 12


class TestCostShape:
    def test_karatsuba_exponent(self):
        """Theorem 10: slope ~ log2(3) = 1.585."""
        random.seed(3)
        bits_list = [1024, 2048, 4096, 8192]
        times = []
        for bits in bits_list:
            tcu = TCUMachine(m=16, kappa=32)
            a = random.getrandbits(bits) | (1 << (bits - 1))
            b = random.getrandbits(bits) | (1 << (bits - 1))
            karatsuba_multiply(tcu, a, b)
            times.append(tcu.time)
        slope = loglog_slope(bits_list, times)
        assert 1.45 < slope < 1.75

    def test_beats_schoolbook_for_large_n(self):
        """Theorem 10 vs Theorem 9 crossover exists."""
        from repro.arith.intmul import int_multiply

        random.seed(4)
        bits = 16384
        a = random.getrandbits(bits) | (1 << (bits - 1))
        b = random.getrandbits(bits) | (1 << (bits - 1))
        t_school = TCUMachine(m=16, kappa=32)
        t_kara = TCUMachine(m=16, kappa=32)
        int_multiply(t_school, a, b)
        karatsuba_multiply(t_kara, a, b)
        assert t_kara.time < t_school.time

    def test_schoolbook_wins_small_n(self):
        """Below the threshold region Karatsuba adds only overhead, so
        the two coincide (base case *is* Theorem 9)."""
        from repro.arith.intmul import int_multiply

        random.seed(5)
        bits = 24
        a = random.getrandbits(bits) | (1 << (bits - 1))
        b = random.getrandbits(bits) | 1
        t_school = TCUMachine(m=16, kappa=32)
        t_kara = TCUMachine(m=16, kappa=32)
        int_multiply(t_school, a, b)
        karatsuba_multiply(t_kara, a, b)
        assert t_kara.time == pytest.approx(t_school.time)
