"""Theorem 11 batch polynomial evaluation tests."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.arith.polyeval import batch_polyeval
from repro.baselines.ram import RAMMachine, ram_horner


class TestCorrectness:
    @pytest.mark.parametrize("n,p", [(4, 1), (5, 3), (16, 8), (33, 10), (64, 25), (100, 7)])
    def test_matches_horner(self, tcu, rng, n, p):
        coeffs = rng.standard_normal(n)
        pts = rng.uniform(-1, 1, p)
        want = np.polyval(coeffs[::-1], pts)
        got = batch_polyeval(tcu, coeffs, pts)
        assert np.allclose(got, want, atol=1e-9)

    def test_constant_polynomial(self, tcu, rng):
        pts = rng.uniform(-1, 1, 5)
        got = batch_polyeval(tcu, np.array([7.0]), pts)
        assert np.allclose(got, 7.0)

    def test_linear_polynomial(self, tcu, rng):
        pts = rng.uniform(-2, 2, 6)
        got = batch_polyeval(tcu, np.array([1.0, 2.0]), pts)
        assert np.allclose(got, 1 + 2 * pts)

    def test_at_zero_and_one(self, tcu, rng):
        coeffs = rng.standard_normal(20)
        got = batch_polyeval(tcu, coeffs, np.array([0.0, 1.0]))
        assert np.isclose(got[0], coeffs[0])
        assert np.isclose(got[1], coeffs.sum())

    def test_complex_roots_of_unity(self, tcu, rng):
        """Evaluating at the n-th roots of unity = DFT of coefficients."""
        n = 16
        coeffs = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        pts = np.exp(-2j * np.pi * np.arange(n) / n)
        got = batch_polyeval(tcu, coeffs, pts)
        assert np.allclose(got, np.fft.fft(coeffs))

    def test_integer_coefficients_exact(self, tcu, rng):
        coeffs = rng.integers(-5, 5, 12).astype(np.int64)
        pts = np.array([2.0, -1.0, 3.0])
        want = np.polyval(coeffs[::-1].astype(float), pts)
        assert np.allclose(batch_polyeval(tcu, coeffs, pts), want)

    def test_matches_ram_horner(self, tcu, rng):
        coeffs = rng.standard_normal(30)
        pts = rng.uniform(-1, 1, 9)
        ram = RAMMachine()
        assert np.allclose(
            batch_polyeval(tcu, coeffs, pts), ram_horner(ram, coeffs, pts), atol=1e-9
        )

    def test_empty_coefficients(self, tcu):
        got = batch_polyeval(tcu, np.array([]), np.array([1.0, 2.0]))
        assert np.array_equal(got, np.zeros(2))

    def test_2d_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            batch_polyeval(tcu, rng.random((2, 2)), rng.random(3))


class TestCostShape:
    def test_time_linear_in_p(self, rng):
        coeffs = rng.standard_normal(256)
        times = []
        for p in (16, 32, 64):
            tcu = TCUMachine(m=16)
            batch_polyeval(tcu, coeffs, rng.uniform(-1, 1, p))
            times.append(tcu.time)
        assert 1.8 < times[1] / times[0] < 2.2
        assert 1.8 < times[2] / times[1] < 2.2

    def test_time_linear_in_n(self, rng):
        pts = rng.uniform(-1, 1, 32)
        times = []
        for n in (64, 128, 256):
            tcu = TCUMachine(m=16)
            batch_polyeval(tcu, rng.standard_normal(n), pts)
            times.append(tcu.time)
        assert 1.6 < times[1] / times[0] < 2.4
        assert 1.6 < times[2] / times[1] < 2.4

    def test_beats_ram_horner_for_many_points(self, rng):
        """Theorem 11's pn/sqrt(m) vs Horner's pn."""
        coeffs = rng.standard_normal(256)
        pts = rng.uniform(-1, 1, 64)
        tcu = TCUMachine(m=64)
        ram = RAMMachine()
        batch_polyeval(tcu, coeffs, pts)
        ram_horner(ram, coeffs, pts)
        assert tcu.time < ram.time

    def test_latency_independent_of_p(self, rng):
        """The l term is (n/m) l: latency count fixed as p grows."""
        coeffs = rng.standard_normal(128)
        calls = []
        for p in (8, 64):
            tcu = TCUMachine(m=16, ell=10.0)
            batch_polyeval(tcu, coeffs, rng.uniform(-1, 1, p))
            calls.append(tcu.ledger.tensor_calls)
        assert calls[0] == calls[1]
