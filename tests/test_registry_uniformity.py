"""Registry error uniformity (ISSUE PR 8, satellite 3).

Every name registry in the tree follows one contract: resolving an
unknown name raises ``ValueError`` whose message lists the known names,
so a typo at a call site is self-diagnosing.  This test pins that
contract for all of them at once — a registry added without the idiom
should extend ``REGISTRIES`` and will fail here if it drifts.
"""

import pytest

from repro.core.scheduling import available_schedulers, get_scheduler
from repro.serve.admission import available_admissions, get_admission
from repro.serve.batcher import available_batchers, get_batcher
from repro.serve.faults import (
    available_fault_injectors,
    available_retry_policies,
    get_fault_injector,
    get_retry_policy,
)
from repro.serve.workload import available_request_types, get_request_type

REGISTRIES = [
    pytest.param(get_scheduler, available_schedulers, id="schedulers"),
    pytest.param(get_admission, available_admissions, id="admissions"),
    pytest.param(get_batcher, available_batchers, id="batchers"),
    pytest.param(get_retry_policy, available_retry_policies, id="retry-policies"),
    pytest.param(get_fault_injector, available_fault_injectors, id="fault-injectors"),
    pytest.param(get_request_type, available_request_types, id="request-types"),
]


@pytest.mark.parametrize("resolve, names", REGISTRIES)
def test_unknown_name_raises_value_error_listing_known_names(resolve, names):
    with pytest.raises(ValueError) as exc_info:
        resolve("definitely-not-registered")
    message = str(exc_info.value)
    assert "definitely-not-registered" in message
    for known in names():
        assert known in message


@pytest.mark.parametrize("resolve, names", REGISTRIES)
def test_registry_ships_builtins_as_tuple(resolve, names):
    known = names()
    assert known, "registry must ship with builtins"
    assert isinstance(known, tuple)
    assert len(set(known)) == len(known)


@pytest.mark.parametrize("resolve, names", REGISTRIES)
def test_every_known_name_resolves_and_instances_pass_through(resolve, names):
    for name in names():
        instance = resolve(name)
        assert resolve(instance) is instance
