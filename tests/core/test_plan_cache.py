"""Plan cache core gates: compile-once/replay-forever bit-identity,
LRU bookkeeping, and the ledger-binding poisoning guard.

The cache's contract is *bitwise*: a :class:`CompiledCursor` replay must
be indistinguishable — snapshot, clock, per-shape trace totals, unit-id
columns, per-level boundaries, reload pricing — from live plan
execution on every machine configuration, or the serving engine could
not route through it unconditionally.
"""

import numpy as np
import pytest

from repro import (
    CompiledCursor,
    ParallelTCUMachine,
    PlanCache,
    TCUMachine,
    compile_plan,
)
from repro.core.ledger import LedgerError
from repro.core.program import ExecutionCursor, ProgramError
from repro.serve import get_request_type

ELL = 512.0

MACHINE_CONFIGS = {
    "serial-numeric": lambda: TCUMachine(m=16, ell=ELL),
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "serial-max-rows": lambda: TCUMachine(m=16, ell=ELL, max_rows=16),
    "parallel-3": lambda: ParallelTCUMachine(m=16, ell=ELL, units=3),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}

KINDS = [
    ("matmul", [8, 16]),
    ("mlp", [8, 8, 4]),
    ("dft", [512]),
    ("stencil", [16, 16]),
]


def live_machine_after(config, kind, rows):
    machine = MACHINE_CONFIGS[config]()
    get_request_type(kind).serve(machine, rows)
    return machine


def replay_machine_after(config, kind, rows, *, stepped=False):
    machine = MACHINE_CONFIGS[config]()
    compiled = compile_plan(get_request_type(kind), machine, rows)
    cursor = CompiledCursor(compiled, machine)
    if stepped:
        while not cursor.done:
            cursor.step()
    else:
        cursor.run()
    return machine


class TestReplayBitIdentity:
    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    @pytest.mark.parametrize("kind,rows", KINDS)
    def test_replay_matches_live_execution(self, config, kind, rows):
        live = live_machine_after(config, kind, rows)
        replay = replay_machine_after(config, kind, rows)
        assert live.ledger.snapshot() == replay.ledger.snapshot()
        assert live.ledger.call_shape_totals() == replay.ledger.call_shape_totals()
        assert live.ledger.total_time == replay.ledger.total_time
        assert np.array_equal(
            live.ledger.calls.unit_ids(), replay.ledger.calls.unit_ids()
        )

    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    def test_stepped_replay_equals_run_replay(self, config):
        stepped = replay_machine_after(config, "mlp", [8, 4], stepped=True)
        ran = replay_machine_after(config, "mlp", [8, 4])
        assert stepped.ledger.snapshot() == ran.ledger.snapshot()
        assert stepped.ledger.call_shape_totals() == ran.ledger.call_shape_totals()

    def test_level_boundaries_and_reload_pricing_match_live(self):
        """Per-level elapsed times and resident-word reload prices are
        what the live cursor would report at every boundary — the
        preemption machinery sees no difference."""
        kind, rows = "mlp", [8, 8]
        rtype = get_request_type(kind)
        live_m = TCUMachine(m=16, ell=ELL, max_rows=16)
        plan = rtype.plan(live_m, rows)
        live = ExecutionCursor(plan, live_m)

        replay_m = TCUMachine(m=16, ell=ELL, max_rows=16)
        compiled = compile_plan(rtype, replay_m, rows)
        replay = CompiledCursor(compiled, replay_m)

        assert replay.total_levels == live.total_levels
        level = 0
        while not live.done:
            assert replay.resident_words() == live.resident_words()
            live_dt = live.step()
            replay_dt = replay.step()
            if level == 0:
                # the compiled cursor folds the plan-build prelude into
                # level 0; live paid it before the walk began
                assert replay_dt >= live_dt
            else:
                assert replay_dt == live_dt
            level += 1
        assert replay.done
        assert live_m.ledger.snapshot() == replay_m.ledger.snapshot()

    def test_charge_reload_prices_like_live_resume(self):
        rtype = get_request_type("dft")
        machine_a = TCUMachine(m=16, ell=ELL)
        machine_b = TCUMachine(m=16, ell=ELL)
        compiled = compile_plan(rtype, machine_a, [1024])
        live = ExecutionCursor(rtype.plan(machine_a, [1024]), machine_a)
        replay = CompiledCursor(compiled, machine_b)
        live.step()
        replay.step()
        assert replay.resident_words() == live.resident_words()
        live_reload = live.charge_reload()
        replay_reload = replay.charge_reload()
        assert replay_reload == live_reload
        assert machine_b.ledger.reload_time == machine_a.ledger.reload_time > 0.0

    def test_exhausted_cursor_raises(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        compiled = compile_plan(get_request_type("matmul"), machine, [8])
        cursor = CompiledCursor(compiled, machine)
        cursor.run()
        with pytest.raises(ProgramError, match="exhausted"):
            cursor.step()

    def test_compilation_never_touches_the_live_ledger(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        before = machine.ledger.snapshot()
        compile_plan(get_request_type("mlp"), machine, [8, 8])
        assert machine.ledger.snapshot() == before


class TestCompiledPlanShape:
    def test_serial_integer_ell_plan_coalesces(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        compiled = compile_plan(get_request_type("matmul"), machine, [8, 8])
        assert compiled.coalesced is not None
        assert compiled.coalesced.simple
        assert compiled.coalesced.total_time == pytest.approx(
            (compiled.prelude.total_time if compiled.prelude else 0.0)
            + sum(level.total_time for level in compiled.levels)
        )

    def test_parallel_plan_does_not_coalesce(self):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=3)
        compiled = compile_plan(get_request_type("matmul"), machine, [8, 8, 8])
        assert compiled.coalesced is None
        assert any(not level.simple for level in compiled.levels)

    def test_reload_words_mirror_live_cursor(self):
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        rtype = get_request_type("mlp")
        compiled = compile_plan(rtype, machine, [8])
        assert len(compiled.reload_words) == compiled.total_levels
        live = ExecutionCursor(rtype.plan(machine.fork(), [8]), machine.fork())
        assert compiled.reload_words[0] == live.resident_words()


class TestPlanCache:
    def test_hit_returns_the_same_compiled_object(self):
        cache = PlanCache()
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        rtype = get_request_type("matmul")
        first = cache.get_or_compile(rtype, machine, [8, 16])
        second = cache.get_or_compile(rtype, machine, [8, 16])
        assert second is first
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["size"] == 1

    def test_key_separates_kinds_rows_and_machine_configs(self):
        plain = TCUMachine(m=16, ell=ELL, execute="cost-only")
        capped = TCUMachine(m=16, ell=ELL, execute="cost-only", max_rows=16)
        pooled = ParallelTCUMachine(m=16, ell=ELL, units=2, execute="cost-only")
        keys = {
            PlanCache.key("matmul", [8], plain),
            PlanCache.key("matmul", [16], plain),
            PlanCache.key("mlp", [8], plain),
            PlanCache.key("matmul", [8], capped),
            PlanCache.key("matmul", [8], pooled),
        }
        assert len(keys) == 5
        # identical configuration on a distinct instance shares the key
        twin = TCUMachine(m=16, ell=ELL, execute="cost-only")
        assert PlanCache.key("matmul", [8], twin) == PlanCache.key(
            "matmul", [8], plain
        )

    def test_lru_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        rtype = get_request_type("matmul")
        cache.get_or_compile(rtype, machine, [8])
        cache.get_or_compile(rtype, machine, [16])
        cache.get_or_compile(rtype, machine, [8])  # refresh [8]
        cache.get_or_compile(rtype, machine, [32])  # evicts [16]
        assert cache.evictions == 1
        assert PlanCache.key("matmul", [8], machine) in cache
        assert PlanCache.key("matmul", [16], machine) not in cache
        # the evicted shape recompiles as a miss
        misses = cache.misses
        cache.get_or_compile(rtype, machine, [16])
        assert cache.misses == misses + 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)

    def test_clear_empties_entries_but_keeps_counters(self):
        cache = PlanCache()
        machine = TCUMachine(m=16, ell=ELL, execute="cost-only")
        cache.get_or_compile(get_request_type("matmul"), machine, [8])
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1


class TestPoisoningGuard:
    def test_replay_on_other_ell_machine_raises(self):
        donor = TCUMachine(m=16, ell=ELL, execute="cost-only")
        compiled = compile_plan(get_request_type("matmul"), donor, [8])
        victim = TCUMachine(m=16, ell=7.0, execute="cost-only")
        with pytest.raises(LedgerError, match="different machine configuration"):
            CompiledCursor(compiled, victim).run()

    def test_replay_on_other_sqrt_m_machine_raises(self):
        donor = TCUMachine(m=16, ell=ELL, execute="cost-only")
        compiled = compile_plan(get_request_type("matmul"), donor, [8])
        victim = TCUMachine(m=64, ell=ELL, execute="cost-only")
        with pytest.raises(LedgerError, match="different machine configuration"):
            CompiledCursor(compiled, victim).run()

    def test_raw_level_replay_is_guarded_too(self):
        """Parallel plans bypass charge_tensor_bulk's formula path; the
        raw counter replay must hit the same binding check."""
        donor = ParallelTCUMachine(m=16, ell=ELL, units=3)
        compiled = compile_plan(get_request_type("matmul"), donor, [8, 8, 8])
        victim = ParallelTCUMachine(m=16, ell=9.0, units=3)
        cursor = CompiledCursor(compiled, victim)
        with pytest.raises(LedgerError, match="different machine configuration"):
            while not cursor.done:
                cursor.step()

    def test_failed_replay_leaves_no_partial_bulk_charge(self):
        donor = TCUMachine(m=16, ell=ELL, execute="cost-only")
        compiled = compile_plan(get_request_type("matmul"), donor, [8])
        victim = TCUMachine(m=16, ell=7.0, execute="cost-only")
        with pytest.raises(LedgerError):
            CompiledCursor(compiled, victim).run()
        assert victim.ledger.tensor_calls == 0


class TestConfigKeyCompleteness:
    """The cache key must separate machines along every cost-model
    parameter the auto-splitter reads (PR 10 regression): a plan whose
    split factor was priced for one ``(p, l, sqrt_m, max_rows,
    complex_cost_factor, scheduler)`` must never be served to another."""

    def test_cache_never_serves_across_unit_counts(self):
        cache = PlanCache()
        rtype = get_request_type("dft")
        p2 = ParallelTCUMachine(m=16, ell=ELL, units=2, execute="cost-only")
        p4 = ParallelTCUMachine(m=16, ell=ELL, units=4, execute="cost-only")
        first = cache.get_or_compile(rtype, p2, [512])
        second = cache.get_or_compile(rtype, p4, [512])
        assert cache.hits == 0 and cache.misses == 2
        assert first is not second
        # and the split decisions genuinely differ between the two keys
        assert PlanCache.key("dft", [512], p2) != PlanCache.key("dft", [512], p4)

    def test_cache_never_serves_across_schedulers(self):
        cache = PlanCache()
        rtype = get_request_type("matmul")
        lpt = ParallelTCUMachine(m=16, ell=ELL, units=3, scheduler="lpt")
        rr = ParallelTCUMachine(m=16, ell=ELL, units=3, scheduler="round-robin")
        cache.get_or_compile(rtype, lpt, [8, 8, 8])
        cache.get_or_compile(rtype, rr, [8, 8, 8])
        assert cache.hits == 0 and cache.misses == 2

    def test_config_key_covers_every_splitter_parameter(self):
        """Varying any parameter the splitter's cost model reads yields
        a distinct fingerprint."""
        base = ParallelTCUMachine(m=16, ell=ELL, units=3)
        variants = [
            ParallelTCUMachine(m=64, ell=ELL, units=3),  # sqrt_m
            ParallelTCUMachine(m=16, ell=7.0, units=3),  # l
            ParallelTCUMachine(m=16, ell=ELL, units=4),  # p
            ParallelTCUMachine(m=16, ell=ELL, units=3, max_rows=16),
            ParallelTCUMachine(m=16, ell=ELL, units=3, complex_cost_factor=4),
            ParallelTCUMachine(m=16, ell=ELL, units=3, scheduler="greedy"),
        ]
        keys = {base.config_key()} | {m.config_key() for m in variants}
        assert len(keys) == len(variants) + 1

    def test_cross_unit_count_replay_charges_the_donor_schedule(self):
        """The ledger-binding guard keys on ``(sqrt_m, l)`` only — it
        *cannot* detect a unit-count mismatch, because a frozen plan
        carries its own unit assignment and charge columns.  A p=2 plan
        replayed on a p=4 machine silently charges the p=2 makespan:
        this is precisely why ``config_key()`` (and hence the cache key)
        must include ``units`` — the key is the sole line of defence."""
        donor = ParallelTCUMachine(m=16, ell=ELL, units=2)
        compiled = compile_plan(get_request_type("dft"), donor, [512])
        CompiledCursor(compiled, donor).run()

        victim = ParallelTCUMachine(m=16, ell=ELL, units=4)
        CompiledCursor(compiled, victim).run()
        # the mis-routed replay reproduces the *donor's* charges, not
        # what a p=4 plan would cost — a real hazard were the key wrong
        assert victim.ledger.snapshot() == donor.ledger.snapshot()
        native = ParallelTCUMachine(m=16, ell=ELL, units=4)
        CompiledCursor(compile_plan(get_request_type("dft"), native, [512]), native).run()
        assert native.ledger.total_time < victim.ledger.total_time
