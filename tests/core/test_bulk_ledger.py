"""Vectorised ledger primitives: charge_tensor_bulk, record_bulk and the
np.unique-based trace summaries must match their per-call loops exactly."""

import numpy as np
import pytest

from repro.core.ledger import CallTrace, CostLedger, LedgerError


def loop_ledger(ns, s, ell, mode=True, section=None):
    led = CostLedger(trace_calls=mode)
    if section:
        with led.section(section):
            for n in ns:
                led.charge_tensor(int(n), s, ell)
    else:
        for n in ns:
            led.charge_tensor(int(n), s, ell)
    return led


def bulk_ledger(ns, s, ell, mode=True, section=None):
    led = CostLedger(trace_calls=mode)
    if section:
        with led.section(section):
            led.charge_tensor_bulk(np.asarray(ns), s, ell)
    else:
        led.charge_tensor_bulk(np.asarray(ns), s, ell)
    return led


@pytest.mark.parametrize("mode", [True, "aggregate", False])
@pytest.mark.parametrize("ell", [0.0, 7.0, 1000.0])
def test_charge_tensor_bulk_matches_loop(mode, ell):
    rng = np.random.default_rng(3)
    ns = rng.integers(4, 100, size=57)
    a = loop_ledger(ns, 4, ell, mode)
    b = bulk_ledger(ns, 4, ell, mode)
    assert a.snapshot() == b.snapshot()
    if mode is not False:
        assert a.call_shape_totals() == b.call_shape_totals()
    if mode is True:
        assert list(a.calls) == list(b.calls)


def test_charge_tensor_bulk_sections():
    ns = [8, 8, 16, 32]
    a = loop_ledger(ns, 4, 5.0, section="grid")
    b = bulk_ledger(ns, 4, 5.0, section="grid")
    assert a.section_time("grid") == b.section_time("grid")
    assert [c.section for c in b.calls] == ["grid"] * len(ns)


def test_charge_tensor_bulk_empty_and_return_value():
    led = CostLedger()
    assert led.charge_tensor_bulk(np.empty(0, dtype=np.int64), 4, 9.0) == 0.0
    assert led.tensor_calls == 0
    total = led.charge_tensor_bulk(np.array([4, 8]), 4, 9.0)
    assert total == (4 * 4 + 9.0) + (8 * 4 + 9.0)


def test_charge_tensor_bulk_validation():
    led = CostLedger()
    with pytest.raises(LedgerError):
        led.charge_tensor_bulk(np.array([4, 2]), 4, 0.0)  # n < sqrt(m)
    with pytest.raises(LedgerError):
        led.charge_tensor_bulk(np.array([4]), 4, -1.0)
    with pytest.raises(LedgerError):
        led.charge_tensor_bulk(np.array([[4, 4]]), 4, 0.0)  # not 1-D


def test_bound_ledger_rejects_foreign_bulk_charge():
    """The cache-poisoning guard: a ledger bound to a machine refuses
    bulk charges carrying another machine's (sqrt_m, ell)."""
    from repro.core.machine import TCUMachine

    machine = TCUMachine(m=16, ell=8.0)
    led = machine.ledger
    led.charge_tensor_bulk(np.array([4, 8]), 4, 8.0)  # own parameters pass
    with pytest.raises(LedgerError, match="different machine configuration"):
        led.charge_tensor_bulk(np.array([8]), 8, 8.0)  # wrong sqrt_m
    with pytest.raises(LedgerError, match="different machine configuration"):
        led.charge_tensor_bulk(np.array([4]), 4, 16.0)  # wrong latency
    # the failed charges left no trace
    assert led.tensor_calls == 2


def test_unbound_ledger_accepts_any_bulk_charge():
    led = CostLedger()
    led.charge_tensor_bulk(np.array([4]), 4, 8.0)
    led.charge_tensor_bulk(np.array([8]), 8, 16.0)
    assert led.tensor_calls == 2


def test_bindings_accumulate_and_survive_reset():
    led = CostLedger()
    led.bind_machine(4, 8.0)
    led.bind_machine(8, 16.0)
    led.charge_tensor_bulk(np.array([4]), 4, 8.0)
    led.charge_tensor_bulk(np.array([8]), 8, 16.0)
    led.reset()
    with pytest.raises(LedgerError):
        led.charge_tensor_bulk(np.array([4]), 4, 99.0)


def test_record_bulk_matches_record():
    a, b = CallTrace(), CallTrace()
    ns = np.array([4, 6, 8])
    times = ns * 4.0 + 3.0
    for n, t in zip(ns, times):
        a.record(int(n), 4, float(t), 3.0, "sec")
    b.record_bulk(ns, 4, times, 3.0, "sec")
    assert list(a) == list(b)
    # mixing bulk and scalar appends keeps one columnar trace
    b.record(10, 4, 43.0, 3.0, "other")
    assert b[-1].section == "other" and len(b) == 4


def test_section_interning_is_constant_time_dict():
    trace = CallTrace()
    for i in range(50):
        trace.record(4, 2, 8.0, 0.0, f"s{i % 7}")
    assert trace._section_index[""] == 0
    assert len(trace._sections) == 8  # "" plus 7 distinct names
    assert [trace[i].section for i in (0, 7, 14)] == ["s0"] * 3


def test_histogram_by_n_vectorised():
    trace = CallTrace()
    assert trace.histogram_by_n() == {}
    for n in [4, 8, 4, 16, 8, 4]:
        trace.record(n, 4, n * 4.0, 0.0)
    assert trace.histogram_by_n() == {4: 3, 8: 2, 16: 1}


def test_as_arrays_zero_copy_views():
    trace = CallTrace()
    n, s, t, lat = trace.as_arrays()
    assert n.size == s.size == t.size == lat.size == 0
    trace.record(8, 4, 32.0, 0.0)
    n, s, t, lat = trace.as_arrays()
    assert (n[0], s[0], t[0], lat[0]) == (8, 4, 32.0, 0.0)


def test_call_shape_totals_vectorised_full_trace():
    led = CostLedger()
    for n in [4, 4, 8, 16, 8]:
        led.charge_tensor(n, 4, 2.0)
    led2 = CostLedger(trace_calls="aggregate")
    for n in [4, 4, 8, 16, 8]:
        led2.charge_tensor(n, 4, 2.0)
    assert led.call_shape_totals() == led2.call_shape_totals()
    assert led.call_shape_totals()[(4, 4)] == (2, 2 * (16 + 2.0), 4.0)
    assert CostLedger().call_shape_totals() == {}


def test_calls_summary_across_modes_after_bulk():
    ns = np.array([4, 8, 4, 4])
    full = bulk_ledger(ns, 4, 1.0, True)
    agg = bulk_ledger(ns, 4, 1.0, "aggregate")
    off = bulk_ledger(ns, 4, 1.0, False)
    assert full.calls_summary() == agg.calls_summary() == {
        "count": 4,
        "total_time": float((ns * 4).sum() + 4),
        "histogram": {4: 3, 8: 1},
    }
    assert off.calls_summary()["histogram"] is None


def test_extend_and_clear_preserve_interning():
    a, b = CallTrace(), CallTrace()
    a.record(4, 2, 8.0, 0.0, "x")
    b.record(8, 2, 16.0, 0.0, "y")
    b.record(8, 2, 16.0, 0.0, "x")
    a.extend(b)
    assert [c.section for c in a] == ["x", "y", "x"]
    a.clear()
    assert len(a) == 0
    a.record(4, 2, 8.0, 0.0, "z")
    assert a[0].section == "z"


def test_merged_with_after_bulk_charges():
    a = bulk_ledger(np.array([4, 8]), 4, 2.0, True)
    b = bulk_ledger(np.array([16]), 4, 2.0, "aggregate")
    merged = a.merged_with(b)
    assert merged.tensor_calls == 3
    assert merged.call_shape_totals() == {
        (4, 4): (1, 18.0, 2.0),
        (8, 4): (1, 34.0, 2.0),
        (16, 4): (1, 66.0, 2.0),
    }
