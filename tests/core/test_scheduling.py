"""The multi-unit scheduler subsystem (repro.core.scheduling)."""

import numpy as np
import pytest

from repro.core.scheduling import (
    BruteForceScheduler,
    GreedyOnlineScheduler,
    LPTScheduler,
    SchedulerPolicy,
    available_schedulers,
    get_scheduler,
    lpt_bound,
    register_scheduler,
    schedule_batch,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_schedulers()
        for name in ("lpt", "round-robin", "greedy", "exact"):
            assert name in names

    def test_get_by_name_and_instance(self):
        assert get_scheduler("lpt").name == "lpt"
        inst = LPTScheduler()
        assert get_scheduler(inst) is inst

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            get_scheduler("fifo")

    def test_custom_policy_registers(self):
        class AllOnUnitZero(SchedulerPolicy):
            name = "unit-zero"

            def assign(self, costs, units):
                return np.zeros(costs.size, dtype=np.int64)

        register_scheduler(AllOnUnitZero())
        sched = schedule_batch(np.array([3.0, 4.0]), 4, "unit-zero")
        assert sched.makespan == 7.0
        assert sched.units_used == 1


class TestScheduleInvariants:
    """The BatchStats/Schedule invariants of the ISSUE 3 checklist."""

    @pytest.mark.parametrize("policy", ["lpt", "round-robin", "greedy"])
    @pytest.mark.parametrize("units", [1, 2, 3, 7])
    def test_makespan_bracketed_by_serial(self, policy, units):
        rng = np.random.default_rng(units)
        costs = rng.integers(1, 50, size=17).astype(float)
        sched = schedule_batch(costs, units, policy)
        assert sched.makespan <= sched.serial_time + 1e-9
        assert sched.serial_time <= units * sched.makespan + 1e-9
        assert sched.makespan >= costs.max() - 1e-9
        assert sched.serial_time == pytest.approx(costs.sum())

    @pytest.mark.parametrize("policy", ["lpt", "round-robin", "greedy", "exact"])
    def test_units_used_accuracy(self, policy):
        costs = np.array([5.0, 3.0, 2.0])
        sched = schedule_batch(costs, 8, policy)
        # every policy places 3 jobs on at most 3 of the 8 units
        assert sched.units_used == len(set(sched.assignment.tolist()))
        assert sched.units_used <= 3
        assert np.isclose(sched.unit_times.sum(), costs.sum())

    def test_utilization_and_speedup(self):
        sched = schedule_batch(np.array([4.0, 4.0, 4.0, 4.0]), 2, "lpt")
        assert sched.makespan == 8.0
        assert sched.utilization == 1.0
        assert sched.speedup == 2.0

    def test_empty_batch(self):
        sched = schedule_batch(np.empty(0), 3, "lpt")
        assert sched.makespan == 0.0
        assert sched.serial_time == 0.0
        assert sched.units_used == 0
        assert sched.utilization == 1.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            schedule_batch(np.array([1.0, -2.0]), 2)

    def test_invalid_units_rejected(self):
        with pytest.raises(ValueError):
            schedule_batch(np.array([1.0]), 0)


class TestLPT:
    def test_equal_costs_degenerate_to_round_robin(self):
        costs = np.full(10, 7.0)
        lpt = schedule_batch(costs, 3, "lpt")
        rr = schedule_batch(costs, 3, "round-robin")
        assert np.array_equal(lpt.assignment, rr.assignment)
        assert lpt.makespan == rr.makespan == 4 * 7.0

    def test_fewer_jobs_than_units_one_each(self):
        sched = schedule_batch(np.array([9.0, 5.0, 2.0]), 8, "lpt")
        assert sched.units_used == 3
        assert sched.makespan == 9.0

    def test_isolates_giant_job(self):
        sched = schedule_batch(np.array([100.0, 10.0, 10.0, 10.0]), 2, "lpt")
        assert sched.makespan == 100.0

    def test_within_bound_of_exact_oracle(self):
        """LPT vs the brute-force oracle on random small batches: the
        Graham (4/3 - 1/(3p)) guarantee holds on every instance."""
        rng = np.random.default_rng(7)
        for _trial in range(40):
            units = int(rng.integers(2, 5))
            k = int(rng.integers(2, 9))
            costs = rng.integers(1, 40, size=k).astype(float)
            opt = schedule_batch(costs, units, "exact")
            lpt = schedule_batch(costs, units, "lpt")
            assert opt.makespan <= lpt.makespan + 1e-9
            assert lpt.makespan <= lpt_bound(units) * opt.makespan + 1e-9

    def test_lpt_bound_values(self):
        assert lpt_bound(1) == 1.0
        assert lpt_bound(2) == pytest.approx(4 / 3 - 1 / 6)
        with pytest.raises(ValueError):
            lpt_bound(0)


class TestGreedyOnline:
    def test_within_two_minus_one_over_p_of_exact(self):
        rng = np.random.default_rng(11)
        for _trial in range(25):
            units = int(rng.integers(2, 4))
            k = int(rng.integers(2, 8))
            costs = rng.integers(1, 30, size=k).astype(float)
            opt = schedule_batch(costs, units, "exact")
            greedy = schedule_batch(costs, units, "greedy")
            bound = GreedyOnlineScheduler().gap_bound(units)
            assert greedy.makespan <= bound * opt.makespan + 1e-9

    def test_arrival_order_matters(self):
        # giant job last: greedy commits the small jobs first
        costs = np.array([10.0, 10.0, 100.0])
        greedy = schedule_batch(costs, 2, "greedy")
        assert greedy.makespan == 110.0
        lpt = schedule_batch(costs, 2, "lpt")
        assert lpt.makespan == 100.0


class TestBruteForce:
    def test_exact_on_known_instance(self):
        # partition {8, 7, 6, 5, 4} over 2 units: optimum is 15
        sched = schedule_batch(np.array([8.0, 7.0, 6.0, 5.0, 4.0]), 2, "exact")
        assert sched.makespan == 15.0

    def test_never_beaten_by_heuristics(self):
        rng = np.random.default_rng(3)
        for _trial in range(20):
            costs = rng.integers(1, 25, size=7).astype(float)
            opt = schedule_batch(costs, 3, "exact")
            for policy in ("lpt", "greedy", "round-robin"):
                assert opt.makespan <= schedule_batch(costs, 3, policy).makespan + 1e-9

    def test_refuses_large_batches(self):
        with pytest.raises(ValueError, match="exponential"):
            BruteForceScheduler(limit=4).assign(np.ones(5), 2)

    def test_gap_bound_is_one(self):
        assert BruteForceScheduler().gap_bound(4) == 1.0
