"""Tests for the columnar CallTrace, the aggregate trace mode and
``calls_summary`` — the O(1)-per-shape accounting for long benches."""

import numpy as np
import pytest

from repro import TCUMachine, matmul
from repro.core.ledger import CallTrace, CostLedger, LedgerError, TensorCall
from repro.extmem.simulate import simulate_ledger_io


class TestCallTrace:
    def test_columnar_roundtrip(self):
        trace = CallTrace()
        trace.record(8, 4, 35.0, 3.0, "phase")
        trace.record(4, 4, 16.0, 0.0)
        assert len(trace) == 2
        assert trace[0] == TensorCall(n=8, sqrt_m=4, time=35.0, latency=3.0, section="phase")
        assert trace[1].section == ""
        assert trace[-1].n == 4

    def test_list_equality_and_iteration(self):
        trace = CallTrace()
        trace.append(TensorCall(n=8, sqrt_m=4, time=35.0, latency=3.0))
        assert trace == [TensorCall(n=8, sqrt_m=4, time=35.0, latency=3.0)]
        assert [c.n for c in trace] == [8]
        assert trace[0:1] == [trace[0]]

    def test_columns_are_primitive_buffers(self):
        trace = CallTrace()
        for i in range(100):
            trace.record(4 + i, 4, 16.0, 1.0)
        n_col, s_col, t_col, l_col = trace.columns()
        assert len(n_col) == 100
        assert n_col.typecode == "q" and t_col.typecode == "d"

    def test_histogram_by_n(self):
        trace = CallTrace()
        for n in (8, 8, 4, 16, 8):
            trace.record(n, 4, n * 4.0, 0.0)
        assert trace.histogram_by_n() == {8: 3, 4: 1, 16: 1}

    def test_clear(self):
        trace = CallTrace()
        trace.record(8, 4, 35.0, 3.0, "x")
        trace.clear()
        assert len(trace) == 0
        assert trace == []

    def test_out_of_range(self):
        trace = CallTrace()
        with pytest.raises(IndexError):
            trace[0]


class TestAggregateMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="trace_calls"):
            CostLedger(trace_calls="everything")

    @pytest.mark.parametrize("mode", [0, 1, 2, None])
    def test_int_modes_rejected(self, mode):
        """1 == True and 0 == False, but every mode check is identity:
        accepting ints would silently trace nothing."""
        with pytest.raises(ValueError, match="trace_calls"):
            CostLedger(trace_calls=mode)

    def test_trace_extend_bulk_preserves_sections(self):
        a, b = CostLedger(), CostLedger()
        with a.section("alpha"):
            a.charge_tensor(8, 4, 1.0)
        with b.section("beta"):
            b.charge_tensor(4, 4, 2.0)
        merged = a.merged_with(b)
        assert [c.section for c in merged.calls] == ["alpha", "beta"]

    def test_counters_exact_with_empty_trace(self, rng):
        tcu = TCUMachine(m=16, ell=5.0, trace_calls="aggregate")
        matmul(tcu, rng.random((16, 16)), rng.random((16, 16)))
        assert len(tcu.ledger.calls) == 0
        assert tcu.ledger.tensor_calls == 16
        assert tcu.ledger.latency_time == 5.0 * 16

    def test_shape_totals_match_full_trace(self, rng):
        full = TCUMachine(m=16, ell=5.0)
        agg = TCUMachine(m=16, ell=5.0, trace_calls="aggregate")
        A = rng.random((24, 20))
        B = rng.random((20, 12))
        matmul(full, A, B)
        matmul(agg, A, B)
        assert agg.ledger.call_shape_totals() == full.ledger.call_shape_totals()

    def test_shape_totals_require_tracing(self):
        led = CostLedger(trace_calls=False)
        led.charge_tensor(4, 4, 0.0)
        with pytest.raises(LedgerError, match="trace"):
            led.call_shape_totals()

    def test_extmem_replay_from_aggregate(self, rng):
        full = TCUMachine(m=16, ell=2.0)
        agg = TCUMachine(m=16, ell=2.0, trace_calls="aggregate")
        A = rng.random((20, 20))
        B = rng.random((20, 20))
        matmul(full, A, B)
        matmul(agg, A, B)
        sim_full = simulate_ledger_io(full.ledger, weak=True)
        sim_agg = simulate_ledger_io(agg.ledger, weak=True)
        assert sim_agg.tensor_ios == sim_full.tensor_ios
        assert sim_agg.cpu_ios == sim_full.cpu_ios

    def test_merged_with_degrades_to_aggregate(self):
        a = CostLedger(trace_calls=True)
        b = CostLedger(trace_calls="aggregate")
        a.charge_tensor(8, 4, 1.0)
        b.charge_tensor(8, 4, 1.0)
        merged = a.merged_with(b)
        assert merged.trace_calls == "aggregate"
        assert merged.call_shape_totals() == {(8, 4): (2, 66.0, 2.0)}

    def test_merged_with_false_wins(self):
        a = CostLedger(trace_calls=False)
        b = CostLedger(trace_calls=True)
        merged = a.merged_with(b)
        assert merged.trace_calls is False

    def test_reset_clears_aggregate(self):
        led = CostLedger(trace_calls="aggregate")
        led.charge_tensor(8, 4, 1.0)
        led.reset()
        assert led.call_shape_totals() == {}


class TestCallsSummary:
    def test_summary_full_mode(self, rng):
        tcu = TCUMachine(m=16, ell=3.0)
        matmul(tcu, rng.random((16, 16)), rng.random((16, 16)))
        summary = tcu.ledger.calls_summary()
        assert summary["count"] == 16
        assert summary["total_time"] == tcu.ledger.tensor_total
        assert summary["histogram"] == {16: 16}

    def test_summary_aggregate_mode(self, rng):
        tcu = TCUMachine(m=16, ell=3.0, trace_calls="aggregate")
        matmul(tcu, rng.random((16, 16)), rng.random((16, 16)))
        summary = tcu.ledger.calls_summary()
        assert summary["count"] == 16
        assert summary["histogram"] == {16: 16}

    def test_summary_disabled_mode(self):
        led = CostLedger(trace_calls=False)
        led.charge_tensor(8, 4, 1.0)
        summary = led.calls_summary()
        assert summary["count"] == 1
        assert summary["total_time"] == 33.0
        assert summary["histogram"] is None

    def test_aggregate_memory_is_per_shape(self):
        led = CostLedger(trace_calls="aggregate")
        for _ in range(10_000):
            led.charge_tensor(8, 4, 1.0)
        assert len(led.calls) == 0
        assert len(led._agg) == 1
        assert led.calls_summary()["histogram"] == {8: 10_000}


class TestMergeResetUnitInteraction:
    """merged_with / reset across trace modes and the unit_id column —
    the accounting paths the serving engine's long multi-unit runs
    exercise (PR4 satellite coverage)."""

    @staticmethod
    def _batch_machine(trace_calls=True, units=3):
        from repro import ParallelTCUMachine

        machine = ParallelTCUMachine(m=16, ell=8.0, units=units, trace_calls=trace_calls)
        rng = np.random.default_rng(99)
        pairs = [(rng.random((4 * (i + 1), 4)), rng.random((4, 4))) for i in range(5)]
        machine.mm_batch(pairs)
        return machine

    def test_merged_with_preserves_unit_ids(self):
        a = self._batch_machine().ledger
        b = self._batch_machine().ledger
        merged = a.merged_with(b)
        expected = np.concatenate([a.calls.unit_ids(), b.calls.unit_ids()])
        assert np.array_equal(merged.calls.unit_ids(), expected)
        # batched calls actually landed on units (not the serial -1)
        assert (merged.calls.unit_ids() >= 0).all()

    def test_merged_with_mixes_serial_and_batched_units(self):
        serial = CostLedger()
        serial.charge_tensor(8, 4, 8.0)
        batched = self._batch_machine().ledger
        merged = serial.merged_with(batched)
        units = merged.calls.unit_ids()
        assert units[0] == -1 and (units[1:] >= 0).all()

    def test_reset_clears_unit_column(self):
        ledger = self._batch_machine().ledger
        assert ledger.calls.unit_ids().size == 5
        ledger.reset()
        assert ledger.calls.unit_ids().size == 0
        # the ledger is reusable after reset: new batches tag units again
        from repro import ParallelTCUMachine

        machine = ParallelTCUMachine(m=16, ell=8.0, units=2, ledger=ledger)
        rng = np.random.default_rng(7)
        machine.mm_batch([(rng.random((4, 4)), rng.random((4, 4)))])
        assert ledger.calls.unit_ids().size == 1

    def test_aggregate_batch_merge_matches_full_trace_totals(self):
        """Aggregate ledgers fed by mm_batch merge to the same per-shape
        totals as full traces (unit detail is the only loss)."""
        full = self._batch_machine(trace_calls=True).ledger
        agg = self._batch_machine(trace_calls="aggregate").ledger
        assert agg.call_shape_totals() == full.call_shape_totals()
        merged = full.merged_with(agg)
        assert merged.trace_calls == "aggregate"
        expected = {
            shape: (2 * count, 2 * time, 2 * lat)
            for shape, (count, time, lat) in full.call_shape_totals().items()
        }
        assert merged.call_shape_totals() == expected

    def test_aggregate_reset_then_reuse_then_merge(self):
        agg = CostLedger(trace_calls="aggregate")
        agg.charge_tensor(8, 4, 1.0)
        agg.reset()
        assert agg.call_shape_totals() == {}
        agg.charge_tensor(16, 4, 2.0)
        other = CostLedger(trace_calls="aggregate")
        other.charge_tensor(16, 4, 2.0)
        merged = agg.merged_with(other)
        assert merged.call_shape_totals() == {(16, 4): (2, 132.0, 4.0)}
        assert merged.tensor_calls == 2
        # the merge result resets cleanly too
        merged.reset()
        assert merged.call_shape_totals() == {} and merged.total_time == 0.0

    def test_merged_ledger_is_independent_of_sources(self):
        a = CostLedger(trace_calls="aggregate")
        a.charge_tensor(8, 4, 1.0)
        b = CostLedger(trace_calls="aggregate")
        b.charge_tensor(4, 4, 1.0)
        merged = a.merged_with(b)
        a.reset()
        assert merged.tensor_calls == 2
        assert merged.call_shape_totals() == {
            (8, 4): (1, 33.0, 1.0),
            (4, 4): (1, 17.0, 1.0),
        }

    def test_merge_after_reset_is_identity_of_other(self):
        a = self._batch_machine().ledger
        a.reset()
        b = self._batch_machine().ledger
        merged = a.merged_with(b)
        assert merged.snapshot() == b.snapshot()
        assert np.array_equal(merged.calls.unit_ids(), b.calls.unit_ids())
