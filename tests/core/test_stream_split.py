"""Edge cases of hardware stream splitting (``max_rows``) and the weak
model's ``mm_tall`` simulation, including the charged padding copies."""

import numpy as np

from repro import TCUMachine, WeakTCUMachine


class TestMaxRowsSplitting:
    def test_exact_max_rows_is_single_call_no_copy(self, rng):
        machine = TCUMachine(m=16, ell=1.0, max_rows=32)
        machine.mm(rng.random((32, 4)), rng.random((4, 4)))
        assert machine.ledger.tensor_calls == 1
        assert machine.ledger.cpu_time == 0.0  # no split, no copies

    def test_split_cost_is_sum_of_split_calls_plus_copies(self, rng):
        """20 rows at max_rows=8: calls of 8, 8, then 4 (after padding
        the 4-row tail up from... the tail is 4 == sqrt(m), no pad)."""
        machine = TCUMachine(m=16, ell=5.0, max_rows=8)
        n, s = 20, 4
        machine.mm(rng.random((n, s)), rng.random((s, s)))
        assert machine.ledger.tensor_calls == 3
        assert machine.ledger.tensor_time == (8 + 8 + 4) * s
        assert machine.ledger.latency_time == 3 * 5.0
        # the only copy is the reassembled n x sqrt(m) output
        assert machine.ledger.cpu_time == n * s

    def test_short_tail_pad_charged(self, rng):
        """18 = 16 + 2 rows: the 2-row tail pads to sqrt(m)=4, costing a
        sqrt(m) x sqrt(m) copy; the padded call streams 4 rows."""
        machine = TCUMachine(m=16, ell=1.0, max_rows=16)
        A = rng.random((18, 4))
        B = rng.random((4, 4))
        C = machine.mm(A, B)
        assert np.allclose(C, A @ B)
        assert machine.ledger.tensor_calls == 2
        assert machine.ledger.tensor_time == (16 + 4) * 4
        assert machine.ledger.cpu_time == 4 * 4 + 18 * 4  # pad + reassembly

    def test_result_correct_across_boundary_shapes(self, rng):
        for n in (8, 9, 15, 16, 17, 31, 32, 33):
            machine = TCUMachine(m=16, max_rows=8)
            A = rng.random((n, 4))
            B = rng.random((4, 4))
            assert np.allclose(machine.mm(A, B), A @ B)


class TestWeakMMTall:
    def test_n_equals_sqrt_m_single_call_no_copy(self, rng):
        weak = WeakTCUMachine(m=16, ell=2.0)
        A = rng.random((4, 4))
        B = rng.random((4, 4))
        assert np.allclose(weak.mm_tall(A, B), A @ B)
        assert weak.ledger.tensor_calls == 1
        assert weak.ledger.cpu_time == 0.0

    def test_cost_equals_sum_of_square_calls(self, rng):
        """n = 12 rows: three square calls, each n*sqrt(m)+l, plus the
        reassembled output copy."""
        weak = WeakTCUMachine(m=16, ell=3.0)
        n, s = 12, 4
        weak.mm_tall(rng.random((n, s)), rng.random((s, s)))
        assert weak.ledger.tensor_calls == 3
        assert weak.ledger.tensor_total == 3 * (s * s + 3.0)
        assert weak.ledger.cpu_time == n * s

    def test_ragged_final_chunk_padded_and_charged(self, rng):
        """10 = 4 + 4 + 2 rows: the 2-row tail is padded to a square
        call; the pad copy (sqrt(m) x sqrt(m)) is RAM work."""
        weak = WeakTCUMachine(m=16, ell=1.0)
        A = rng.random((10, 4))
        B = rng.random((4, 4))
        assert np.allclose(weak.mm_tall(A, B), A @ B)
        assert weak.ledger.tensor_calls == 3
        assert weak.ledger.tensor_time == 3 * 4 * 4  # padded tail streams 4 rows
        assert weak.ledger.cpu_time == 4 * 4 + 10 * 4  # pad + reassembly

    def test_weak_total_tracks_tall_call_within_constant(self, rng):
        """Section 5: the simulation overhead stays a constant factor
        when l = O(m), copies included."""
        tall = TCUMachine(m=16, ell=16.0)
        weak = WeakTCUMachine(m=16, ell=16.0)
        A = rng.random((64, 4))
        B = rng.random((4, 4))
        tall.mm(A, B)
        weak.mm_tall(A, B)
        assert weak.time <= 3 * tall.time
