"""Cycle-level checks of the Figure 1 systolic array claims."""

import numpy as np
import pytest

from repro.core.systolic import SystolicArray


class TestCorrectness:
    @pytest.mark.parametrize("s", [1, 2, 3, 4, 8])
    def test_square_product(self, s, rng):
        arr = SystolicArray(s)
        A = rng.integers(-5, 5, (s, s))
        B = rng.integers(-5, 5, (s, s))
        C, _ = arr.matmul(A, B)
        assert np.array_equal(C, A @ B)

    @pytest.mark.parametrize("n", [1, 4, 7, 16])
    def test_tall_stream(self, n, rng):
        arr = SystolicArray(4)
        A = rng.integers(-5, 5, (n, 4))
        B = rng.integers(-5, 5, (4, 4))
        C, _ = arr.matmul(A, B)
        assert np.array_equal(C, A @ B)

    def test_float_product(self, rng):
        arr = SystolicArray(3)
        A = rng.random((5, 3))
        B = rng.random((3, 3))
        C, _ = arr.matmul(A, B)
        assert np.allclose(C, A @ B)

    def test_weight_reuse_across_streams(self, rng):
        """Loading B once and streaming twice is the TPU workflow."""
        arr = SystolicArray(4)
        B = rng.integers(-3, 3, (4, 4))
        arr.load_weights(B)
        A1 = rng.integers(-3, 3, (6, 4))
        A2 = rng.integers(-3, 3, (9, 4))
        C1, _ = arr.multiply(A1)
        C2, _ = arr.multiply(A2)
        assert np.array_equal(C1, A1 @ B)
        assert np.array_equal(C2, A2 @ B)

    def test_multiply_before_load_rejected(self, rng):
        arr = SystolicArray(4)
        with pytest.raises(RuntimeError, match="load_weights"):
            arr.multiply(rng.random((4, 4)))

    def test_wrong_shapes_rejected(self, rng):
        arr = SystolicArray(4)
        with pytest.raises(ValueError):
            arr.load_weights(rng.random((3, 4)))
        arr.load_weights(rng.random((4, 4)))
        with pytest.raises(ValueError):
            arr.multiply(rng.random((4, 5)))


class TestTimingClaims:
    """Section 2.2: output c[i,j] leaves the array at step sqrt(m)+i+j
    (0-indexed compute steps: i + j + sqrt(m) - 1)."""

    @pytest.mark.parametrize("s", [2, 3, 4, 6])
    def test_emit_schedule(self, s, rng):
        arr = SystolicArray(s)
        _, stats = arr.matmul(rng.random((s, s)), rng.random((s, s)))
        for r in range(s):
            for j in range(s):
                assert stats.emit_step[r, j] == r + j + s - 1

    @pytest.mark.parametrize("s", [2, 4])
    def test_emit_schedule_tall(self, s, rng):
        n = 3 * s
        arr = SystolicArray(s)
        _, stats = arr.matmul(rng.random((n, s)), rng.random((s, s)))
        for r in range(n):
            for j in range(s):
                assert stats.emit_step[r, j] == r + j + s - 1

    def test_load_phase_takes_sqrt_m_steps(self, rng):
        arr = SystolicArray(5)
        assert arr.load_weights(rng.random((5, 5))) == 5

    @pytest.mark.parametrize("s,n", [(2, 2), (4, 4), (4, 12), (3, 9)])
    def test_total_compute_steps(self, s, n, rng):
        """An n-row stream drains after n + 2(sqrt(m)-1) compute steps —
        the marginal cost per extra row is one step (the asymmetric
        streaming feature of Section 3)."""
        arr = SystolicArray(s)
        _, stats = arr.matmul(rng.random((n, s)), rng.random((s, s)))
        assert stats.compute_steps == n + 2 * (s - 1)

    def test_mac_count_equals_n_times_m(self, rng):
        s, n = 4, 10
        arr = SystolicArray(s)
        _, stats = arr.matmul(rng.random((n, s)), rng.random((s, s)))
        assert stats.mac_count == n * s * s

    def test_utilization_improves_with_taller_streams(self, rng):
        """Streaming amortises the pipeline fill/drain bubbles."""
        arr = SystolicArray(4)
        _, short = arr.matmul(rng.random((4, 4)), rng.random((4, 4)))
        _, tall = arr.matmul(rng.random((64, 4)), rng.random((4, 4)))
        assert tall.utilization > short.utilization
        assert tall.utilization > 0.9

    def test_total_steps_includes_load(self, rng):
        arr = SystolicArray(4)
        _, stats = arr.matmul(rng.random((4, 4)), rng.random((4, 4)))
        assert stats.total_steps == stats.load_steps + stats.compute_steps
