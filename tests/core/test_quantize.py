"""Low-precision tensor units (the §6 extension)."""

import numpy as np
import pytest

from repro.core.quantize import (
    QuantizedTCUMachine,
    quantize_array,
)
from repro.transform.dft import dft


class TestQuantizeArray:
    def test_fp16_roundtrip_of_representable(self):
        x = np.array([1.0, 0.5, -2.0, 1024.0])
        assert np.array_equal(quantize_array(x, "fp16"), x)

    def test_fp16_rounds(self):
        x = np.array([1.0 + 2**-13])
        assert quantize_array(x, "fp16")[0] != x[0]

    def test_bf16_truncates_mantissa(self):
        x = np.array([1.0 + 2**-9])
        q = quantize_array(x, "bf16")
        assert q[0] == 1.0  # 8-bit mantissa cannot hold 2^-9

    def test_bf16_keeps_range(self):
        x = np.array([1e30, -1e-30])
        q = quantize_array(x, "bf16")
        assert np.all(np.isfinite(q))
        assert np.allclose(q, x, rtol=0.01)

    def test_int8_levels(self):
        x = np.linspace(-1, 1, 11)
        q = quantize_array(x, "int8")
        scale = 1.0 / 127.0
        assert np.allclose(q / scale, np.rint(q / scale))

    def test_int8_zero_array(self):
        assert np.array_equal(quantize_array(np.zeros(4), "int8"), np.zeros(4))

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(2), "fp8")


class TestQuantizedMachine:
    def test_costs_equal_exact_machine(self, rng):
        from repro import TCUMachine

        exact = TCUMachine(m=16, ell=8.0)
        quant = QuantizedTCUMachine(m=16, ell=8.0, precision="fp16")
        A, B = rng.random((8, 4)), rng.random((4, 4))
        exact.mm(A, B)
        quant.mm(A, B)
        assert exact.time == quant.time

    def test_fp16_error_small_but_nonzero(self, rng):
        machine = QuantizedTCUMachine(m=16, precision="fp16")
        A, B = rng.random((8, 4)), rng.random((4, 4))
        C = machine.mm(A, B)
        rel = np.linalg.norm(C - A @ B) / np.linalg.norm(A @ B)
        assert 0 < rel < 1e-2
        assert machine.error_stats.max_error > 0

    def test_precision_ordering(self, rng):
        """fp16 (10-bit mantissa) beats bf16 (8-bit) on well-scaled data."""
        A, B = rng.random((16, 4)), rng.random((4, 4))
        errors = {}
        for fmt in ("fp16", "bf16"):
            machine = QuantizedTCUMachine(m=16, precision=fmt)
            machine.mm(A, B)
            errors[fmt] = machine.error_stats.max_error
        assert errors["fp16"] < errors["bf16"]

    def test_integer_inputs_exact(self, rng):
        machine = QuantizedTCUMachine(m=16, precision="int8")
        A = rng.integers(0, 7, (4, 4))
        B = rng.integers(0, 7, (4, 4))
        assert np.array_equal(machine.mm(A, B), A @ B)
        assert machine.error_stats.errors == []

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            QuantizedTCUMachine(m=16, precision="fp64")

    def test_error_stats_accumulate(self, rng):
        machine = QuantizedTCUMachine(m=16, precision="fp16")
        for _ in range(3):
            machine.mm(rng.random((4, 4)), rng.random((4, 4)))
        assert len(machine.error_stats.errors) == 3
        assert machine.error_stats.mean_error <= machine.error_stats.max_error

    def test_complex_operands(self, rng):
        machine = QuantizedTCUMachine(m=16, precision="fp16")
        A = rng.random((4, 4)) + 1j * rng.random((4, 4))
        B = rng.random((4, 4))
        C = machine.mm(A, B)
        assert np.allclose(C, A @ B, rtol=1e-2)

    def test_dft_error_grows_with_length(self, rng):
        """The [28]-style experiment: fp16 DFT error rises with n."""
        errors = []
        for n in (16, 256, 4096):
            machine = QuantizedTCUMachine(m=16, precision="fp16")
            x = rng.standard_normal(n)
            y = dft(machine, x)
            ref = np.fft.fft(x)
            errors.append(np.linalg.norm(y - ref) / np.linalg.norm(ref))
        assert errors[0] < errors[-1]
        assert errors[-1] < 0.05  # still usable, as [28] reports

    def test_exact_machine_has_no_error(self, rng):
        from repro import TCUMachine

        machine = TCUMachine(m=16)
        x = rng.standard_normal(256)
        assert np.allclose(dft(machine, x), np.fft.fft(x), atol=1e-9)
