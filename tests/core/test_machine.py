"""Unit tests for the (m, l)-TCU machine primitive."""

import numpy as np
import pytest

from repro import TCUMachine, TensorShapeError, WeakTCUMachine
from repro.core.words import OverflowError_


class TestConstruction:
    def test_requires_perfect_square_m(self):
        with pytest.raises(ValueError, match="perfect square"):
            TCUMachine(m=15)

    @pytest.mark.parametrize("m", [1, 4, 16, 256, 65536])
    def test_valid_m(self, m):
        machine = TCUMachine(m=m)
        assert machine.sqrt_m**2 == m

    def test_rejects_negative_ell(self):
        with pytest.raises(ValueError, match="ell"):
            TCUMachine(m=16, ell=-1.0)

    def test_rejects_small_max_rows(self):
        with pytest.raises(ValueError, match="max_rows"):
            TCUMachine(m=16, max_rows=3)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            TCUMachine(m=16, backend="quantum")

    def test_fork_copies_parameters_fresh_ledger(self):
        machine = TCUMachine(m=16, ell=7.0, kappa=32, max_rows=64)
        machine.charge_cpu(5)
        child = machine.fork()
        assert (child.m, child.ell, child.kappa, child.max_rows) == (16, 7.0, 32, 64)
        assert child.time == 0


class TestMMInterface:
    def test_correct_product(self, tcu, rng):
        A = rng.random((8, 4))
        B = rng.random((4, 4))
        assert np.allclose(tcu.mm(A, B), A @ B)

    def test_charges_model_cost(self, tcu, rng):
        A = rng.random((8, 4))
        B = rng.random((4, 4))
        tcu.mm(A, B)
        assert tcu.time == 8 * 4 + 4.0

    def test_rejects_wrong_left_width(self, tcu, rng):
        with pytest.raises(TensorShapeError, match="columns"):
            tcu.mm(rng.random((8, 5)), rng.random((4, 4)))

    def test_rejects_wrong_right_shape(self, tcu, rng):
        with pytest.raises(TensorShapeError, match="right operand"):
            tcu.mm(rng.random((8, 4)), rng.random((4, 5)))

    def test_rejects_short_stream(self, tcu, rng):
        with pytest.raises(TensorShapeError, match="n >= sqrt"):
            tcu.mm(rng.random((3, 4)), rng.random((4, 4)))

    def test_rejects_1d_operands(self, tcu, rng):
        with pytest.raises(TensorShapeError, match="2-D"):
            tcu.mm(rng.random(4), rng.random((4, 4)))

    def test_integer_dtype_preserved(self, tcu, rng):
        A = rng.integers(0, 5, (4, 4))
        B = rng.integers(0, 5, (4, 4))
        C = tcu.mm(A, B)
        assert np.issubdtype(C.dtype, np.integer)
        assert np.array_equal(C, A @ B)


class TestMaxRows:
    def test_long_stream_split(self, rng):
        machine = TCUMachine(m=16, ell=1.0, max_rows=8)
        A = rng.random((20, 4))
        B = rng.random((4, 4))
        C = machine.mm(A, B)
        assert np.allclose(C, A @ B)
        # 8 + 8 + 4 rows -> 3 calls, each paying latency
        assert machine.ledger.tensor_calls == 3
        assert machine.ledger.latency_time == 3.0

    def test_short_tail_padded(self, rng):
        machine = TCUMachine(m=16, max_rows=16)
        A = rng.random((18, 4))  # 16 + 2: the 2-row tail pads to 4
        B = rng.random((4, 4))
        assert np.allclose(machine.mm(A, B), A @ B)

    def test_exact_fit_single_call(self, rng):
        machine = TCUMachine(m=16, ell=1.0, max_rows=32)
        machine.mm(rng.random((32, 4)), rng.random((4, 4)))
        assert machine.ledger.tensor_calls == 1


class TestComplexCost:
    def test_complex_costs_factor_calls(self, rng):
        machine = TCUMachine(m=16, ell=2.0, complex_cost_factor=4)
        A = rng.random((4, 4)) + 1j * rng.random((4, 4))
        B = rng.random((4, 4))
        C = machine.mm(A, B)
        assert np.allclose(C, A @ B)
        assert machine.ledger.tensor_calls == 4
        assert machine.ledger.latency_time == 8.0

    def test_real_unaffected_by_factor(self, rng):
        machine = TCUMachine(m=16, complex_cost_factor=4)
        machine.mm(rng.random((4, 4)), rng.random((4, 4)))
        assert machine.ledger.tensor_calls == 1

    def test_default_complex_is_one_call(self, tcu, rng):
        A = rng.random((4, 4)).astype(np.complex128)
        tcu.mm(A, rng.random((4, 4)))
        assert tcu.ledger.tensor_calls == 1


class TestOverflowChecks:
    def test_integer_overflow_detected(self):
        machine = TCUMachine(m=16, kappa=16, check_overflow=True)
        big = np.full((4, 4), 255, dtype=np.int64)
        with pytest.raises(OverflowError_):
            machine.mm(big * 300, big)

    def test_within_word_passes(self):
        machine = TCUMachine(m=16, kappa=32, check_overflow=True)
        A = np.full((4, 4), 255, dtype=np.int64)
        machine.mm(A, A)  # 255*255*4 < 2^32


class TestSystolicBackend:
    def test_matches_numpy_backend(self, rng):
        fast = TCUMachine(m=16)
        slow = TCUMachine(m=16, backend="systolic")
        A = rng.random((8, 4))
        B = rng.random((4, 4))
        assert np.allclose(slow.mm(A, B), fast.mm(A, B))

    def test_charges_identically(self, rng):
        fast = TCUMachine(m=16, ell=3.0)
        slow = TCUMachine(m=16, ell=3.0, backend="systolic")
        A = rng.random((8, 4))
        B = rng.random((4, 4))
        fast.mm(A, B)
        slow.mm(A, B)
        assert fast.time == slow.time


class TestWeakModel:
    def test_rejects_tall_call(self, rng):
        weak = WeakTCUMachine(m=16)
        with pytest.raises(TensorShapeError, match="weak TCU"):
            weak.mm(rng.random((8, 4)), rng.random((4, 4)))

    def test_square_call_allowed(self, rng):
        weak = WeakTCUMachine(m=16)
        A = rng.random((4, 4))
        B = rng.random((4, 4))
        assert np.allclose(weak.mm(A, B), A @ B)

    def test_mm_tall_splits(self, rng):
        weak = WeakTCUMachine(m=16, ell=1.0)
        A = rng.random((12, 4))
        B = rng.random((4, 4))
        assert np.allclose(weak.mm_tall(A, B), A @ B)
        assert weak.ledger.tensor_calls == 3

    def test_mm_tall_pads_ragged(self, rng):
        weak = WeakTCUMachine(m=16)
        A = rng.random((10, 4))
        B = rng.random((4, 4))
        assert np.allclose(weak.mm_tall(A, B), A @ B)

    def test_weak_slowdown_constant_when_ell_order_m(self, rng):
        """Section 5: with l = O(m) the weak simulation costs only a
        constant factor more than the tall call."""
        tall = TCUMachine(m=16, ell=16.0)
        weak = WeakTCUMachine(m=16, ell=16.0)
        A = rng.random((64, 4))
        B = rng.random((4, 4))
        tall.mm(A, B)
        weak.mm_tall(A, B)
        assert weak.time <= 3 * tall.time
