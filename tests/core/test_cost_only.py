"""Cost-only execution mode: charges identical to numeric runs, O(1)
storage results, and clear failures where values would be required."""

import numpy as np
import pytest

from repro.core.machine import TCUMachine, WeakTCUMachine, placeholder
from repro.core.program import TensorProgram, run_program


def test_placeholder_is_readonly_zero_strided():
    ph = placeholder((1000, 1000), np.complex128)
    assert ph.shape == (1000, 1000)
    assert ph.dtype == np.complex128
    assert ph.strides == (0, 0)
    assert ph.base.nbytes == 16  # one scalar backs the whole view
    assert not ph.any()
    with pytest.raises(ValueError):
        ph[0, 0] = 1.0


def test_invalid_execute_mode_rejected():
    with pytest.raises(ValueError):
        TCUMachine(m=16, execute="fast")


def test_mm_cost_only_charges_like_numeric():
    rng = np.random.default_rng(0)
    A = rng.random((12, 4))
    B = rng.random((4, 4))
    num = TCUMachine(m=16, ell=7.0)
    cost = TCUMachine(m=16, ell=7.0, execute="cost-only")
    num.mm(A, B)
    out = cost.mm(A, B)
    assert out.shape == (12, 4) and out.strides == (0, 0)
    assert num.ledger.snapshot() == cost.ledger.snapshot()
    assert list(num.ledger.calls) == list(cost.ledger.calls)


def test_mm_cost_only_split_stream():
    A = placeholder((300, 4))
    B = placeholder((4, 4))
    num = TCUMachine(m=16, ell=7.0, max_rows=128)
    cost = TCUMachine(m=16, ell=7.0, max_rows=128, execute="cost-only")
    num.mm(np.zeros((300, 4)), np.zeros((4, 4)))
    out = cost.mm(A, B)
    assert out.shape == (300, 4)
    assert num.ledger.snapshot() == cost.ledger.snapshot()


def test_weak_machine_mm_tall_cost_only():
    num = WeakTCUMachine(m=16, ell=3.0)
    cost = WeakTCUMachine(m=16, ell=3.0, execute="cost-only")
    A = np.ones((10, 4))
    B = np.eye(4)
    num.mm_tall(A, B)
    out = cost.mm_tall(A, B)
    assert out.shape == (10, 4)
    assert num.ledger.snapshot() == cost.ledger.snapshot()


def test_program_cost_only_propagates_placeholders():
    tcu = TCUMachine(m=16, ell=5.0, execute="cost-only")
    program = TensorProgram()
    a = placeholder((8, 4))
    b = placeholder((4, 4))
    mm = program.mm(a, b)
    cp = program.copy(mm)
    add = program.add([(2.0, mm), (1.0, cp)])
    run_program(program, tcu)
    for op in (mm, cp, add):
        assert op.result().shape == (8, 4)
        assert op.result().strides == (0, 0)
    # charges: one call (32 + 5) + copy 32 words + add 2 * 32 words
    assert tcu.ledger.tensor_calls == 1
    assert tcu.ledger.cpu_time == 32 + 2 * 32
    assert tcu.ledger.total_time == 8 * 4 + 5.0 + 96


def test_seidel_rejects_cost_only():
    from repro.graph.apsd import seidel

    tcu = TCUMachine(m=16, execute="cost-only")
    adj = np.array([[0, 1], [1, 0]], dtype=np.int64)
    with pytest.raises(ValueError, match="cost-only"):
        seidel(tcu, adj)


def test_gaussian_elimination_rejects_cost_only():
    from repro.linalg.gaussian import ge_forward, ge_solve

    tcu = TCUMachine(m=16, execute="cost-only")
    M = np.eye(8)
    with pytest.raises(ValueError, match="cost-only"):
        ge_forward(tcu, M)
    with pytest.raises(ValueError, match="cost-only"):
        ge_solve(tcu, M, np.ones(8))


def test_quantized_cost_only_charges_without_observing():
    from repro.core.quantize import QuantizedTCUMachine

    rng = np.random.default_rng(3)
    A = rng.random((12, 4))
    B = rng.random((4, 4))
    num = QuantizedTCUMachine(m=16, ell=7.0, precision="fp16")
    cost = QuantizedTCUMachine(m=16, ell=7.0, precision="fp16", execute="cost-only")
    num.mm(A, B)
    out = cost.mm(A, B)
    assert out.strides == (0, 0)
    assert num.ledger.snapshot() == cost.ledger.snapshot()
    assert cost.error_stats.errors == []  # no bogus 1.0 observations


def test_overflow_checked_machines_keep_checking_on_the_fused_path():
    from repro.core.words import OverflowError_
    from repro.matmul.dense import matmul

    big = np.full((16, 16), 120, dtype=np.int64)
    tcu = TCUMachine(m=4, kappa=8, check_overflow=True)
    with pytest.raises(OverflowError_):
        matmul(tcu, big, big, plan=True)
    eager = TCUMachine(m=4, kappa=8, check_overflow=True)
    with pytest.raises(OverflowError_):
        matmul(eager, big, big, plan=False)


def test_dft_cost_only_keeps_placeholders_lazy():
    from repro.transform.convolution import dft2, idft2
    from repro.transform.dft import batched_dft, batched_idft

    tcu = TCUMachine(m=16, ell=5.0, execute="cost-only")
    X = placeholder((4, 64))  # float64 on purpose: must not be cast/copied
    F = batched_dft(tcu, X)
    assert F.strides == (0, 0) and F.dtype == np.complex128
    G = batched_idft(tcu, placeholder((4, 64)))
    assert G.strides == (0, 0)
    stack = placeholder((3, 16, 16))
    assert dft2(tcu, stack).strides == (0, 0, 0)
    assert idft2(tcu, stack).strides == (0, 0, 0)


def test_convolution_cost_only_charges_match():
    from repro.transform.convolution import batched_circular_convolve2d

    rng = np.random.default_rng(1)
    tiles = rng.random((3, 16, 16))
    kernel = rng.random((3, 3))
    num = TCUMachine(m=16, ell=12.0)
    cost = TCUMachine(m=16, ell=12.0, execute="cost-only")
    batched_circular_convolve2d(num, tiles, kernel)
    out = batched_circular_convolve2d(cost, tiles, kernel)
    assert out.shape == tiles.shape
    assert out.strides == (0, 0, 0)  # the whole pipeline stayed lazy
    assert num.ledger.snapshot() == cost.ledger.snapshot()
    assert num.ledger.call_shape_totals() == cost.ledger.call_shape_totals()


def test_cost_only_wall_clock_beats_numeric():
    # not a strict benchmark, just a sanity ratio on a size where the
    # numeric path must do real GEMM work
    import time

    from repro.matmul.dense import matmul

    rng = np.random.default_rng(2)
    A = rng.random((512, 512))
    B = rng.random((512, 512))
    num = TCUMachine(m=256, ell=100.0)
    t0 = time.perf_counter()
    matmul(num, A, B)
    dt_num = time.perf_counter() - t0
    cost = TCUMachine(m=256, ell=100.0, execute="cost-only")
    t0 = time.perf_counter()
    matmul(cost, A, B)
    dt_cost = time.perf_counter() - t0
    assert num.ledger.snapshot() == cost.ledger.snapshot()
    assert dt_cost < dt_num
