"""Tests for the lazy TensorProgram IR, planner and executor."""

import numpy as np
import pytest

from repro import TCUMachine, TensorProgram, matmul, matmul_lazy, run_program
from repro.core.machine import TensorShapeError, placeholder
from repro.core.parallel import ParallelTCUMachine
from repro.core.program import Lazy, ProgramError, execute_plan, plan_program
from repro.extmem.simulate import simulate_ledger_io
from repro.graph.closure import transitive_closure
from repro.matmul.strassen import strassen_like_mm


class TestProgramConstruction:
    def test_mm_node_shape_and_dtype(self, rng):
        prog = TensorProgram()
        op = prog.mm(rng.random((8, 4)), rng.random((4, 4)))
        assert op.shape == (8, 4)
        assert op.kind == "mm"
        assert len(prog) == 1

    def test_mm_rejects_non_square_right(self, rng):
        prog = TensorProgram()
        with pytest.raises(TensorShapeError, match="square"):
            prog.mm(rng.random((8, 4)), rng.random((4, 5)))

    def test_mm_rejects_mismatched_inner(self, rng):
        prog = TensorProgram()
        with pytest.raises(TensorShapeError, match="inner"):
            prog.mm(rng.random((8, 5)), rng.random((4, 4)))

    def test_add_requires_terms(self):
        prog = TensorProgram()
        with pytest.raises(ProgramError, match="term"):
            prog.add([])

    def test_add_rejects_shape_mismatch(self, rng):
        prog = TensorProgram()
        with pytest.raises(TensorShapeError, match="shape"):
            prog.add([rng.random((4, 4)), rng.random((5, 4))])

    def test_dependency_levels(self, rng):
        prog = TensorProgram()
        a = prog.mm(rng.random((4, 4)), rng.random((4, 4)))
        b = prog.mm(a, rng.random((4, 4)))
        c = prog.add([a, b])
        assert (a.level, b.level, c.level) == (0, 1, 2)

    def test_result_before_execution_raises(self, rng):
        prog = TensorProgram()
        op = prog.mm(rng.random((4, 4)), rng.random((4, 4)))
        with pytest.raises(ProgramError, match="no value"):
            op.result()

    def test_foreign_op_rejected(self, rng):
        prog_a = TensorProgram()
        op = prog_a.mm(rng.random((4, 4)), rng.random((4, 4)))
        prog_b = TensorProgram()
        with pytest.raises(ProgramError, match="different program"):
            prog_b.copy(op)


class TestPlanning:
    def test_plan_validates_against_machine(self, tcu, rng):
        prog = TensorProgram()
        prog.mm(rng.random((8, 8)), rng.random((8, 8)))  # sqrt(m)=4 machine
        with pytest.raises(TensorShapeError, match="sqrt"):
            plan_program(prog, tcu)

    def test_plan_rejects_short_stream(self, tcu, rng):
        prog = TensorProgram()
        # build-time checks pass (3x3 is square) but n < sqrt(m) is a
        # machine property, caught at plan time
        with pytest.raises(TensorShapeError):
            prog.mm(rng.random((3, 4)), rng.random((4, 4)))
            plan_program(prog, tcu)

    def test_same_resident_block_merges(self, tcu, rng):
        B = rng.random((4, 4))
        prog = TensorProgram()
        for _ in range(5):
            prog.mm(rng.random((8, 4)), B)
        plan = plan_program(prog, tcu)
        assert plan.stats.mm_ops == 5
        assert plan.stats.tensor_calls_planned == 1
        assert plan.stats.merged_away == 4

    def test_distinct_blocks_do_not_merge(self, tcu, rng):
        prog = TensorProgram()
        for _ in range(3):
            prog.mm(rng.random((8, 4)), rng.random((4, 4)))
        plan = plan_program(prog, tcu)
        assert plan.stats.tensor_calls_planned == 3
        assert plan.stats.merged_away == 0

    def test_merge_disabled(self, tcu, rng):
        B = rng.random((4, 4))
        prog = TensorProgram()
        for _ in range(4):
            prog.mm(rng.random((8, 4)), B)
        plan = plan_program(prog, tcu, merge=False)
        assert plan.stats.tensor_calls_planned == 4

    def test_mixed_dtype_streams_do_not_merge(self, tcu, rng):
        """int and float products against one block stay separate calls
        so per-call charging (and dtypes) match the eager execution."""
        B = np.eye(4)
        prog = TensorProgram()
        prog.mm(rng.integers(0, 5, (8, 4)), B.astype(np.int64))
        prog.mm(rng.random((8, 4)), B.astype(np.int64))
        # different B objects anyway; now same B, different stream dtypes
        prog2 = TensorProgram()
        Bi = B.astype(np.int64)
        prog2.mm(rng.integers(0, 5, (8, 4)), Bi)
        prog2.mm(rng.random((8, 4)), Bi)
        plan = plan_program(prog2, tcu)
        assert plan.stats.tensor_calls_planned == 2


class TestExecution:
    def test_merged_call_results_correct(self, tcu, rng):
        B = rng.random((4, 4))
        As = [rng.random((8, 4)) for _ in range(5)]
        prog = TensorProgram()
        ops = [prog.mm(A, B) for A in As]
        run_program(prog, tcu)
        for A, op in zip(As, ops):
            assert np.allclose(op.result(), A @ B)

    def test_merged_call_pays_one_latency(self, rng):
        ell = 100.0
        B = rng.random((4, 4))
        machine = TCUMachine(m=16, ell=ell)
        prog = TensorProgram()
        for _ in range(5):
            prog.mm(rng.random((8, 4)), B)
        run_program(prog, machine)
        assert machine.ledger.tensor_calls == 1
        assert machine.ledger.latency_time == ell
        assert machine.ledger.tensor_time == 5 * 8 * 4

    def test_chained_products(self, tcu, rng):
        A = rng.random((4, 4))
        B = rng.random((4, 4))
        C = rng.random((4, 4))
        prog = TensorProgram()
        ab = prog.mm(A, B)
        abc = prog.mm(ab, C)
        run_program(prog, tcu)
        assert np.allclose(abc.result(), A @ B @ C)

    def test_add_and_copy_charged(self, tcu, rng):
        X = rng.random((4, 4))
        Y = rng.random((4, 4))
        prog = TensorProgram()
        total = prog.add([(2.0, X), (-1.0, Y)])
        dup = prog.copy(total)
        run_program(prog, tcu)
        assert np.allclose(total.result(), 2 * X - Y)
        assert np.allclose(dup.result(), total.result())
        assert dup.result() is not total.result()
        # 2 add terms + 1 copy, 16 words each
        assert tcu.ledger.cpu_time == 3 * 16

    def test_copy_isolates_resident_block(self, tcu, rng):
        """A copy node gives later mutation of the source no effect on
        the planned execution (the closure kernel relies on this)."""
        X = rng.random((4, 4))
        prog = TensorProgram()
        snap = prog.copy(X)
        op = prog.mm(np.ones((8, 4)), snap)
        run_program(prog, tcu)
        expected = np.ones((8, 4)) @ X
        X[:] = 0.0
        assert np.allclose(op.result(), expected)

    def test_execute_populates_all_values(self, tcu, rng):
        prog = TensorProgram()
        a = prog.mm(rng.random((4, 4)), rng.random((4, 4)))
        b = prog.add([a, a])
        plan = plan_program(prog, tcu)
        execute_plan(plan, tcu)
        assert a.value is not None and b.value is not None

    def test_lazy_caches_result(self):
        calls = []

        def build():
            calls.append(1)
            return np.zeros((2, 2))

        lazy = Lazy(build)
        assert lazy.result() is lazy.result()
        assert len(calls) == 1


class TestParallelExecution:
    def test_level_feeds_mm_batch(self, rng):
        machine = ParallelTCUMachine(m=16, ell=8.0, units=4)
        serial = TCUMachine(m=16, ell=8.0)
        prog_p, prog_s = TensorProgram(), TensorProgram()
        pairs = [(rng.random((8, 4)), rng.random((4, 4))) for _ in range(4)]
        ops_p = [prog_p.mm(A, B) for A, B in pairs]
        ops_s = [prog_s.mm(A, B) for A, B in pairs]
        run_program(prog_p, machine)
        run_program(prog_s, serial)
        for (A, B), op in zip(pairs, ops_p):
            assert np.allclose(op.result(), A @ B)
        # 4 equal independent calls on 4 units: ~4x faster than serial
        assert machine.time == pytest.approx(serial.time / 4)
        assert machine.last_batch is not None
        assert machine.last_batch.calls == 4

    def test_matmul_plans_batches_on_parallel_machine(self, rng):
        A = rng.random((24, 24))
        B = rng.random((24, 24))
        par = ParallelTCUMachine(m=16, ell=7.0, units=4)
        ser = TCUMachine(m=16, ell=7.0)
        Cp = matmul(par, A, B)
        Cs = matmul(ser, A, B)
        assert np.allclose(Cp, Cs)
        assert par.time < ser.time


class TestPlannedVersusEager:
    """The acceptance bar: planned execution is cost-equivalent or
    cheaper than eager, with identical numerics."""

    def test_theorem2_matmul_cost_equivalent(self, rng):
        A = rng.random((24, 20))
        B = rng.random((20, 12))
        eager = TCUMachine(m=16, ell=9.0)
        planned = TCUMachine(m=16, ell=9.0)
        Ce = matmul(eager, A, B, plan=False)
        Cp = matmul(planned, A, B, plan=True)
        assert np.allclose(Ce, Cp)
        assert planned.time <= eager.time
        assert planned.ledger.snapshot() == eager.ledger.snapshot()

    def test_strassen_cost_equivalent(self, rng):
        A = rng.random((24, 24))
        B = rng.random((24, 24))
        eager = TCUMachine(m=16, ell=9.0)
        planned = TCUMachine(m=16, ell=9.0)
        Ce = strassen_like_mm(eager, A, B, plan=False)
        Cp = strassen_like_mm(planned, A, B, plan=True)
        assert np.allclose(Ce, Cp)
        assert planned.ledger.snapshot() == eager.ledger.snapshot()

    def test_latency_dominated_case_strictly_cheaper(self, rng):
        """k products sharing one resident block: the planner pays one
        latency where the eager schedule pays k (small sqrt(m), big l)."""
        ell = 10_000.0
        W = rng.random((4, 4))
        streams = [rng.random((16, 4)) for _ in range(8)]
        eager = TCUMachine(m=16, ell=ell)
        for X in streams:
            matmul(eager, X, W, plan=False)
        planned = TCUMachine(m=16, ell=ell)
        prog = TensorProgram()
        outs = [matmul_lazy(planned, prog, X, W) for X in streams]
        run_program(prog, planned)
        for X, lazy in zip(streams, outs):
            assert np.allclose(lazy.result(), X @ W)
        assert planned.ledger.latency_time < eager.ledger.latency_time
        assert planned.ledger.latency_time == ell
        assert planned.time < eager.time
        assert planned.ledger.tensor_time == eager.ledger.tensor_time

    def test_closure_planned_latency_strictly_lower(self, rng):
        A = (rng.random((20, 20)) < 0.2).astype(np.int64)
        np.fill_diagonal(A, 0)
        eager = TCUMachine(m=16, ell=50.0)
        planned = TCUMachine(m=16, ell=50.0)
        Ce = transitive_closure(eager, A, plan=False)
        Cp = transitive_closure(planned, A, plan=True)
        assert np.array_equal(Ce, Cp)
        assert planned.ledger.latency_time < eager.ledger.latency_time
        assert planned.time < eager.time
        assert planned.ledger.tensor_time == eager.ledger.tensor_time

    def test_extmem_replays_planned_trace_identically(self, rng):
        """Theorem 12 weak-mode I/Os are invariant under planning: a
        merged block-aligned call moves exactly the words of the calls
        it replaced."""
        A = (rng.random((20, 20)) < 0.25).astype(np.int64)
        np.fill_diagonal(A, 0)
        eager = TCUMachine(m=16, ell=7.0)
        planned = TCUMachine(m=16, ell=7.0)
        transitive_closure(eager, A, plan=False)
        transitive_closure(planned, A, plan=True)
        sim_e = simulate_ledger_io(eager.ledger, weak=True)
        sim_p = simulate_ledger_io(planned.ledger, weak=True)
        assert sim_p.tensor_ios == sim_e.tensor_ios

    def test_merge_respects_max_rows_bound(self, rng):
        """Merging must never push a call over the hardware row bound:
        a re-split merged call would charge copies and per-chunk
        latencies the eager schedule never paid."""
        W = rng.random((4, 4))
        streams = [rng.random((8, 4)) for _ in range(5)]
        eager = TCUMachine(m=16, ell=7.0, max_rows=10)
        for X in streams:
            matmul(eager, X, W, plan=False)
        planned = TCUMachine(m=16, ell=7.0, max_rows=10)
        prog = TensorProgram()
        outs = [matmul_lazy(planned, prog, X, W) for X in streams]
        plan = run_program(prog, planned)
        for X, lazy in zip(streams, outs):
            assert np.allclose(lazy.result(), X @ W)
        # every 8-row stream already saturates max_rows=10: no merging
        assert plan.stats.merged_away == 0
        assert planned.time <= eager.time
        assert planned.ledger.snapshot() == eager.ledger.snapshot()

    def test_merge_packs_under_max_rows(self, rng):
        """Streams that do fit together still merge up to the bound."""
        W = rng.random((4, 4))
        streams = [rng.random((8, 4)) for _ in range(5)]
        planned = TCUMachine(m=16, ell=7.0, max_rows=16)
        prog = TensorProgram()
        outs = [matmul_lazy(planned, prog, X, W) for X in streams]
        plan = run_program(prog, planned)
        for X, lazy in zip(streams, outs):
            assert np.allclose(lazy.result(), X @ W)
        # pairs of 8-row streams pack into 16-row calls: 5 -> 3
        assert plan.stats.tensor_calls_planned == 3
        assert planned.ledger.latency_time == 3 * 7.0
        # cpu is the 5 accumulation adds only — no split/reassembly copies
        assert planned.ledger.cpu_time == 5 * 8 * 4

    def test_parallel_complex_batches_with_true_costs(self, rng):
        """Complex batches parallelise *and* keep per-call parity: the
        batch charges the 4x complex factor and the extra CPU adds
        exactly as the eager serial path, then advances the clock by
        the makespan instead of the serial sum."""
        A = (rng.random((16, 16)) + 1j * rng.random((16, 16))).astype(complex)
        B = (rng.random((16, 16)) + 1j * rng.random((16, 16))).astype(complex)
        eager = ParallelTCUMachine(m=16, ell=5.0, units=4, complex_cost_factor=4)
        planned = ParallelTCUMachine(m=16, ell=5.0, units=4, complex_cost_factor=4)
        Ce = matmul(eager, A, B, plan=False)
        Cp = matmul(planned, A, B, plan=True)
        assert np.allclose(Ce, Cp)
        assert planned.ledger.tensor_calls == eager.ledger.tensor_calls
        assert planned.ledger.call_shape_totals() == eager.ledger.call_shape_totals()
        assert planned.ledger.cpu_time == eager.ledger.cpu_time
        # 16 equal independent grid calls on 4 units: 4x on the clock
        assert planned.ledger.tensor_total == eager.ledger.tensor_total / 4

    def test_parallel_max_rows_split_matches_eager(self, rng):
        """``split=1`` keeps the legacy parity: a single over-bound
        logical call runs its hardware chunks back-to-back on one unit
        and charges equal the eager path.  The default ``split="auto"``
        now re-splits that stream across the units instead — same
        numerics bit-for-bit, strictly smaller clock, pinned to the
        planner's modelled makespan."""
        A = rng.random((40, 8))
        B = rng.random((8, 8))
        eager = ParallelTCUMachine(m=64, ell=3.0, units=4, max_rows=16)
        Ce = matmul(eager, A, B, plan=False)

        legacy = ParallelTCUMachine(m=64, ell=3.0, units=4, max_rows=16)
        prog = TensorProgram()
        op = matmul_lazy(legacy, prog, A, B)
        run_program(prog, legacy, split=1)
        assert np.array_equal(op.result(), Ce)
        assert legacy.ledger.snapshot() == eager.ledger.snapshot()

        auto = ParallelTCUMachine(m=64, ell=3.0, units=4, max_rows=16)
        prog2 = TensorProgram()
        op2 = matmul_lazy(auto, prog2, A, B)
        plan = run_program(prog2, auto)
        assert np.array_equal(op2.result(), Ce)
        assert plan.splits[0][0] > 1
        assert auto.time < legacy.time
        assert auto.last_batch.makespan == plan.modelled_makespans[0]

    def test_parallel_max_rows_grid_parallelises(self, rng):
        """Row-bounded machines no longer serialise whole levels: the
        grid's independent calls (each split into chunks by the bound)
        are scheduled across units with per-call parity preserved."""
        A = rng.random((32, 16))
        B = rng.random((16, 16))
        eager = ParallelTCUMachine(m=16, ell=3.0, units=4, max_rows=20)
        planned = ParallelTCUMachine(m=16, ell=3.0, units=4, max_rows=20)
        Ce = matmul(eager, A, B, plan=False)
        Cp = matmul(planned, A, B, plan=True)
        assert np.allclose(Ce, Cp)
        assert planned.ledger.tensor_calls == eager.ledger.tensor_calls
        assert planned.ledger.call_shape_totals() == eager.ledger.call_shape_totals()
        assert planned.ledger.cpu_time == eager.ledger.cpu_time
        assert planned.ledger.tensor_total < eager.ledger.tensor_total

    def test_extmem_replays_merged_matmul_trace_identically(self, rng):
        W = rng.random((4, 4))
        streams = [rng.random((8, 4)) for _ in range(6)]
        eager = TCUMachine(m=16, ell=3.0)
        for X in streams:
            matmul(eager, X, W, plan=False)
        planned = TCUMachine(m=16, ell=3.0)
        prog = TensorProgram()
        for X in streams:
            matmul_lazy(planned, prog, X, W)
        run_program(prog, planned)
        sim_e = simulate_ledger_io(eager.ledger, weak=True)
        sim_p = simulate_ledger_io(planned.ledger, weak=True)
        assert sim_p.tensor_ios == sim_e.tensor_ios


class TestPlaceholderResidents:
    """Cost-only placeholders must not merge as shared resident blocks.

    Every :func:`~repro.core.machine.placeholder` aliases the same zero
    scalar, so buffer identity cannot distinguish two placeholder
    residents standing for different hypothetical weights; merging them
    would charge fewer latencies than the numeric run.
    """

    def test_distinct_placeholders_stay_unmerged(self):
        from repro.core.machine import placeholder

        machine = TCUMachine(m=16, ell=100.0, execute="cost-only")
        prog = TensorProgram()
        for _ in range(5):
            prog.mm(placeholder((8, 4)), placeholder((4, 4)))
        plan = plan_program(prog, machine)
        assert plan.stats.tensor_calls_planned == 5
        assert plan.stats.merged_away == 0
        execute_plan(plan, machine)
        assert machine.ledger.latency_time == 500.0

    def test_cost_only_matmul_charges_match_numeric_on_parallel(self, rng):
        from repro.core.machine import placeholder

        A = rng.random((32, 16))
        B = rng.random((16, 16))
        numeric = ParallelTCUMachine(m=16, ell=32.0, units=2)
        matmul(numeric, A, B)
        cost = ParallelTCUMachine(m=16, ell=32.0, units=2, execute="cost-only")
        matmul(cost, placeholder((32, 16)), placeholder((16, 16)))
        assert cost.ledger.snapshot() == numeric.ledger.snapshot()
        assert cost.ledger.call_shape_totals() == numeric.ledger.call_shape_totals()

    def test_shared_placeholder_object_still_merges(self):
        """Reusing the *same* placeholder object signals shared
        residency (the matmul_lazy contract) and merges exactly like a
        shared numeric weight matrix would."""
        from repro.core.machine import placeholder

        W = placeholder((4, 4))
        machine = TCUMachine(m=16, ell=100.0, execute="cost-only")
        prog = TensorProgram()
        for _ in range(5):
            prog.mm(placeholder((8, 4)), W)
        plan = plan_program(prog, machine)
        assert plan.stats.tensor_calls_planned == 1
        assert plan.stats.merged_away == 4
        execute_plan(plan, machine)
        assert machine.ledger.latency_time == 100.0

    def test_distinct_partial_broadcast_views_still_merge(self, rng):
        """Two distinct partially-broadcast views of the same buffer
        alias the same elements, so buffer-keying (and merging) stays
        sound for them — only fully zero-strided scalars opt out."""
        W_row = rng.random((1, 4))
        machine = TCUMachine(m=16, ell=50.0)
        prog = TensorProgram()
        for _ in range(2):
            # a fresh view object each time: same pointer, strides (0, 8)
            prog.mm(rng.random((8, 4)), np.broadcast_to(W_row, (4, 4)))
        plan = plan_program(prog, machine)
        assert plan.stats.tensor_calls_planned == 1
        assert plan.stats.merged_away == 1

    def test_numeric_broadcast_resident_still_sound(self, rng):
        """A broadcast numeric resident reused across ops merges (same
        object = shared residency) with numerically identical results."""
        W_row = rng.random((1, 4))
        W = np.broadcast_to(W_row, (4, 4))
        streams = [rng.random((8, 4)) for _ in range(3)]
        eager = TCUMachine(m=16, ell=7.0)
        expected = [eager.mm(X, W) for X in streams]
        planned = TCUMachine(m=16, ell=7.0)
        prog = TensorProgram()
        ops = [prog.mm(X, W) for X in streams]
        plan = run_program(prog, planned)
        assert plan.stats.tensor_calls_planned == 1  # one latency for all
        assert planned.ledger.tensor_time == eager.ledger.tensor_time
        assert planned.ledger.latency_time == 7.0
        for op, want in zip(ops, expected):
            assert np.allclose(op.result(), want)


class TestNewOpKinds:
    def test_apply_numeric_and_charge(self, rng):
        machine = TCUMachine(m=16, ell=0.0)
        prog = TensorProgram()
        op = prog.mm(rng.random((4, 4)), rng.random((4, 4)))
        relu = prog.apply(
            lambda v: np.maximum(v, 0.0), [op], (4, 4), np.float64, cpu=16
        )
        run_program(prog, machine)
        assert np.allclose(relu.result(), np.maximum(op.result(), 0.0))
        assert machine.ledger.cpu_time == 16.0

    def test_apply_cost_only_skips_fn(self):
        machine = TCUMachine(m=16, ell=0.0, execute="cost-only")
        prog = TensorProgram()

        def boom(*_):
            raise AssertionError("fn must not run in cost-only mode")

        op = prog.apply(boom, [placeholder((4, 4))], (4, 4), np.float64, cpu=16)
        run_program(prog, machine)
        assert op.result().shape == (4, 4)
        assert machine.ledger.cpu_time == 16.0

    def test_apply_shape_contract_enforced(self, rng):
        machine = TCUMachine(m=16, ell=0.0)
        prog = TensorProgram()
        prog.apply(lambda: np.zeros((2, 2)), [], (4, 4), np.float64)
        with pytest.raises(ProgramError, match="declared shape"):
            run_program(prog, machine)

    def test_apply_rejects_negative_cpu(self):
        prog = TensorProgram()
        with pytest.raises(ProgramError, match=">= 0"):
            prog.apply(lambda: None, [], (1,), np.float64, cpu=-1)

    def test_view_is_free_and_correct(self, rng):
        machine = TCUMachine(m=16, ell=0.0)
        prog = TensorProgram()
        op = prog.mm(rng.random((8, 4)), rng.random((4, 4)))
        v = prog.view(op, (slice(2, 6), slice(None)))
        assert v.shape == (4, 4)
        cpu_before_ops = machine.ledger.cpu_time
        run_program(prog, machine)
        assert machine.ledger.cpu_time == cpu_before_ops  # views charge nothing
        assert np.array_equal(v.result(), op.result()[2:6])

    def test_view_feeds_mm(self, rng):
        """A view of an earlier op can be the streamed operand of a
        later mm — the multi-stage chaining the serving planner uses."""
        machine = TCUMachine(m=16, ell=0.0)
        W1 = rng.random((4, 4))
        W2 = rng.random((4, 4))
        X = rng.random((8, 4))
        prog = TensorProgram()
        first = prog.mm(X, W1)
        second = prog.mm(prog.view(first, (slice(0, 4), slice(None))), W2)
        run_program(prog, machine)
        assert np.allclose(second.result(), (X @ W1)[:4] @ W2)


class TestExecutionCursor:
    def _layered_program(self, rng, machine):
        prog = TensorProgram()
        W1 = rng.random((4, 4))
        W2 = rng.random((4, 4))
        a = prog.mm(rng.random((8, 4)), W1)
        b = prog.apply(lambda v: np.maximum(v, 0.0), [a], (8, 4), np.float64, cpu=32)
        c = prog.mm(b, W2)
        prog.add([c])
        return prog

    def test_stepwise_equals_one_shot(self, rng):
        from repro.core.program import ExecutionCursor

        stepped = TCUMachine(m=16, ell=9.0)
        oneshot = TCUMachine(m=16, ell=9.0)
        plan_a = plan_program(self._layered_program(rng, stepped), stepped)
        plan_b = plan_program(self._layered_program(rng, oneshot), oneshot)
        cursor = ExecutionCursor(plan_a, stepped)
        while not cursor.done:
            cursor.step()
        execute_plan(plan_b, oneshot)
        assert stepped.ledger.snapshot() == oneshot.ledger.snapshot()
        assert sum(cursor.level_times) == stepped.ledger.total_time

    def test_level_spans_reported_per_step(self, rng):
        from repro.core.program import ExecutionCursor

        machine = TCUMachine(m=16, ell=5.0)
        plan = plan_program(self._layered_program(rng, machine), machine)
        cursor = ExecutionCursor(plan, machine)
        assert cursor.remaining_levels == cursor.total_levels > 1
        first = cursor.step()
        assert first == machine.ledger.total_time > 0
        assert cursor.level_times == [first]
        cursor.run()
        assert cursor.done and cursor.remaining_levels == 0
        with pytest.raises(ProgramError, match="exhausted"):
            cursor.step()

    def test_resident_words_shrink_as_levels_complete(self, rng):
        from repro.core.program import ExecutionCursor

        machine = TCUMachine(m=16, ell=0.0)
        plan = plan_program(self._layered_program(rng, machine), machine)
        cursor = ExecutionCursor(plan, machine)
        # two distinct resident 4x4 blocks remain before any step
        assert cursor.resident_words() == 32
        cursor.step()  # first mm level done
        assert cursor.resident_words() == 16
        cursor.run()
        assert cursor.resident_words() == 0

    def test_charge_reload_pays_resident_words(self, rng):
        from repro.core.program import ExecutionCursor

        machine = TCUMachine(m=16, ell=0.0)
        plan = plan_program(self._layered_program(rng, machine), machine)
        cursor = ExecutionCursor(plan, machine)
        cursor.step()
        charged = cursor.charge_reload()
        assert charged == 16.0
        assert machine.ledger.reload_time == 16.0

    def test_shared_resident_counted_once(self, rng):
        from repro.core.program import ExecutionCursor

        machine = TCUMachine(m=16, ell=0.0)
        W = rng.random((4, 4))
        prog = TensorProgram()
        for _ in range(3):
            prog.mm(rng.random((8, 4)), W)  # same buffer: one resident block
        plan = plan_program(prog, machine)
        assert ExecutionCursor(plan, machine).resident_words() == 16

    def test_cost_only_cursor_matches_numeric(self, rng):
        from repro.core.program import ExecutionCursor

        numeric = TCUMachine(m=16, ell=3.0)
        cost = TCUMachine(m=16, ell=3.0, execute="cost-only")
        plan_n = plan_program(self._layered_program(rng, numeric), numeric)
        plan_c = plan_program(self._layered_program(rng, cost), cost)
        ExecutionCursor(plan_n, numeric).run()
        cur = ExecutionCursor(plan_c, cost)
        cur.run()
        assert numeric.ledger.snapshot() == cost.ledger.snapshot()
