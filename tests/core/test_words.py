"""kappa-bit word discipline tests (Section 4.7's limb rules)."""

import numpy as np
import pytest

from repro.core.words import (
    OverflowError_,
    WordSpec,
    check_no_overflow,
    int_to_limbs,
    limbs_to_int,
    safe_limb_bits,
)


class TestSafeLimbBits:
    def test_paper_discipline_holds(self):
        """2*limb + log2(sqrt(m)) must fit in kappa."""
        for kappa in (16, 32, 64):
            for m in (16, 256, 65536):
                limb = safe_limb_bits(kappa, m)
                sqrt_m = int(np.sqrt(m))
                assert 2 * limb + sqrt_m.bit_length() <= kappa

    def test_rejects_non_square_m(self):
        with pytest.raises(ValueError, match="perfect square"):
            safe_limb_bits(32, 15)

    def test_rejects_tiny_kappa(self):
        with pytest.raises(ValueError):
            safe_limb_bits(2, 16)

    def test_impossible_combination(self):
        with pytest.raises(OverflowError_):
            safe_limb_bits(4, 256)


class TestWordSpec:
    def test_for_machine_uses_quarter_kappa(self):
        spec = WordSpec.for_machine(kappa=32, m=16)
        assert spec.limb_bits == 8  # kappa/4

    def test_for_machine_tightens_when_needed(self):
        spec = WordSpec.for_machine(kappa=8, m=256)
        assert spec.limb_bits < 8 // 2
        assert 2 * spec.limb_bits + 5 <= 8

    def test_limb_base(self):
        assert WordSpec(kappa=32, limb_bits=8).limb_base == 256

    def test_max_word(self):
        assert WordSpec(kappa=8, limb_bits=2).max_word == 255

    def test_invalid_limb_bits(self):
        with pytest.raises(ValueError):
            WordSpec(kappa=16, limb_bits=0)
        with pytest.raises(ValueError):
            WordSpec(kappa=16, limb_bits=17)


class TestLimbs:
    @pytest.mark.parametrize("value", [0, 1, 255, 256, 2**40 + 17, 3**50])
    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_roundtrip(self, value, bits):
        assert limbs_to_int(int_to_limbs(value, bits), bits) == value

    def test_zero_is_single_limb(self):
        assert list(int_to_limbs(0, 8)) == [0]

    def test_explicit_count_pads(self):
        limbs = int_to_limbs(5, 8, count=4)
        assert list(limbs) == [5, 0, 0, 0]

    def test_count_too_small_rejected(self):
        with pytest.raises(ValueError, match="more than count"):
            int_to_limbs(2**32, 8, count=2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            int_to_limbs(-1, 8)

    def test_unnormalised_limbs_evaluate(self):
        """Convolution outputs exceed the base; evaluation must carry."""
        assert limbs_to_int(np.array([300, 2]), 8) == 300 + 2 * 256

    def test_limb_bits_cap(self):
        with pytest.raises(ValueError, match="int64"):
            int_to_limbs(5, 63)


class TestOverflowCheck:
    def test_passes_in_range(self):
        spec = WordSpec(kappa=16, limb_bits=4)
        check_no_overflow(np.array([[0, 65535]]), spec)

    def test_detects_overflow(self):
        spec = WordSpec(kappa=16, limb_bits=4)
        with pytest.raises(OverflowError_, match="exceeds"):
            check_no_overflow(np.array([65536]), spec)

    def test_detects_negative(self):
        spec = WordSpec(kappa=16, limb_bits=4)
        with pytest.raises(OverflowError_, match="negative"):
            check_no_overflow(np.array([-1]), spec)

    def test_empty_ok(self):
        check_no_overflow(np.array([]), WordSpec(kappa=16, limb_bits=4))
