"""Hardware presets from Section 3.1."""

import numpy as np
import pytest

from repro.core.presets import PRESETS, TEST_UNIT, TPU_V1, VOLTA_TC


class TestSpecs:
    def test_tpu_matches_section_3_1(self):
        assert TPU_V1.sqrt_m == 256
        assert TPU_V1.m == 65536
        assert TPU_V1.kappa == 8
        assert TPU_V1.max_rows == 96 * 1024

    def test_volta_matches_section_3_1(self):
        assert VOLTA_TC.sqrt_m == 16
        assert VOLTA_TC.m == 256
        assert VOLTA_TC.kappa == 16
        assert VOLTA_TC.max_rows is None

    def test_latency_ordering(self):
        """The paper's qualitative claim: TPU latency >> TC latency."""
        assert TPU_V1.ell > 100 * VOLTA_TC.ell

    def test_registry_complete(self):
        assert {"tpu-v1", "volta-tc", "test-unit"} <= set(PRESETS)
        for name, spec in PRESETS.items():
            assert spec.name == name


class TestCreation:
    def test_create_builds_machine(self):
        machine = TEST_UNIT.create()
        assert machine.m == TEST_UNIT.m
        assert machine.ell == TEST_UNIT.ell

    def test_create_with_override(self):
        machine = TEST_UNIT.create(ell=0.0)
        assert machine.ell == 0.0
        assert machine.m == TEST_UNIT.m

    def test_tpu_machine_splits_long_streams(self, rng):
        machine = TPU_V1.create(ell=1.0)
        n = 2 * machine.max_rows
        A = np.ones((n, machine.sqrt_m), dtype=np.float32)
        B = np.eye(machine.sqrt_m, dtype=np.float32)
        C = machine.mm(A, B)
        assert C.shape == (n, machine.sqrt_m)
        assert machine.ledger.tensor_calls == 2

    def test_volta_machine_runs(self, rng):
        machine = VOLTA_TC.create()
        A = rng.random((16, 16))
        B = rng.random((16, 16))
        assert np.allclose(machine.mm(A, B), A @ B)

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_instantiate(self, name):
        machine = PRESETS[name].create()
        assert machine.sqrt_m >= 1
