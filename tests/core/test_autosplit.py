"""Auto-splitter gates (PR 10 acceptance).

The planner's ``split="auto"`` decisions must match the exact scheduling
oracle on brute-forceable instances, split numerics must be bit-identical
to the unsplit product, charges must be execution-mode independent
(cost-only == numeric), preemption on a split ``CompiledCursor`` must be
invisible, and ``split=1`` must keep the legacy (PR 9) schedule
bit-exact — pinned with golden ledger values across the five standard
machine configs.
"""

import itertools

import numpy as np
import pytest

from repro import (
    CompiledCursor,
    ParallelTCUMachine,
    TCUMachine,
    TensorProgram,
    compile_plan,
    matmul_lazy,
    run_program,
)
from repro.core.program import (
    ExecutionCursor,
    ProgramError,
    _level_makespan,
    _split_cap,
    modelled_call_cost,
    plan_program,
)
from repro.serve import get_request_type
from repro.transform.dft import batched_dft

ELL = 32.0

MACHINE_CONFIGS = {
    "serial-numeric": lambda: TCUMachine(m=16, ell=ELL),
    "serial-cost-only": lambda: TCUMachine(m=16, ell=ELL, execute="cost-only"),
    "serial-max-rows": lambda: TCUMachine(m=16, ell=ELL, max_rows=16),
    "parallel-3": lambda: ParallelTCUMachine(m=16, ell=ELL, units=3),
    "parallel-cost-only": lambda: ParallelTCUMachine(
        m=16, ell=ELL, units=2, execute="cost-only"
    ),
}

# Golden split=1 ledger totals for the two-product program below — the
# exact charges the PR 9 planner produced before the splitter existed.
# A change here means split=1 is no longer bit-identical to the legacy
# schedule.
LEGACY_GOLDEN = {
    "serial-numeric": (2048.0, 6),
    "serial-cost-only": (2048.0, 6),
    "serial-max-rows": (3296.0, 16),
    "parallel-3": (1376.0, 6),
    "parallel-cost-only": (1488.0, 6),
}


def two_product_program(machine):
    rng = np.random.default_rng(7)
    prog = TensorProgram()
    a = matmul_lazy(machine, prog, rng.random((48, 8)), rng.random((8, 8)))
    b = matmul_lazy(machine, prog, rng.random((20, 8)), rng.random((8, 4)))
    return prog, a, b


def tall_program(machine, rows, dtype=np.float64):
    """A single merged tall call: ``rows x s`` against one resident block."""
    rng = np.random.default_rng(11)
    s = machine.sqrt_m
    A = rng.random((rows, s)).astype(dtype)
    B = rng.random((s, s)).astype(dtype)
    if np.issubdtype(np.dtype(dtype), np.complexfloating):
        A = A + 1j * rng.random((rows, s))
        B = B + 1j * rng.random((s, s))
    prog = TensorProgram()
    out = matmul_lazy(machine, prog, A, B)
    return prog, out, A @ B


class TestOraclePinning:
    """Chosen splits minimise makespan under the machine's own policy,
    checked against exhaustive enumeration with the exact scheduler."""

    @pytest.mark.parametrize("rows", [8, 20, 40, 64])
    @pytest.mark.parametrize("units", [2, 3, 4])
    def test_single_group_matches_exhaustive_oracle(self, rows, units):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=units, scheduler="exact")
        prog, _, _ = tall_program(machine, rows)
        plan = plan_program(prog, machine)
        groups, _ = plan.levels[0]
        assert len(groups) == 1
        cap = _split_cap(groups[0], machine, units)
        spans = {s: _level_makespan(groups, [s], machine) for s in range(1, cap + 1)}
        chosen = plan.splits[0][0]
        best = min(spans.values())
        assert spans[chosen] == best
        # ties break toward fewer calls
        assert chosen == min(s for s, v in spans.items() if v == best)
        assert plan.modelled_makespans[0] == best

    def test_multi_group_matches_exhaustive_oracle(self):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=3, scheduler="exact")
        rng = np.random.default_rng(3)
        prog = TensorProgram()
        matmul_lazy(machine, prog, rng.random((24, 4)), rng.random((4, 4)))
        matmul_lazy(machine, prog, rng.random((8, 4)), rng.random((4, 4)))
        plan = plan_program(prog, machine)
        groups, _ = plan.levels[0]
        caps = [_split_cap(g, machine, 3) for g in groups]
        best = min(
            _level_makespan(groups, list(combo), machine)
            for combo in itertools.product(*[range(1, c + 1) for c in caps])
        )
        assert plan.modelled_makespans[0] == best
        assert _level_makespan(groups, plan.splits[0], machine) == best

    @pytest.mark.parametrize("config", ["parallel-3", "parallel-cost-only"])
    def test_modelled_makespan_reconciles_with_ledger(self, config):
        """The planner's priced makespan is the makespan the batch
        executor actually charges (exact on plain machines)."""
        machine = MACHINE_CONFIGS[config]()
        prog, _, _ = tall_program(machine, 48)
        plan = run_program(prog, machine)
        assert plan.splits[0][0] > 1
        assert machine.last_batch.makespan == plan.modelled_makespans[0]

    def test_modelled_makespan_reconciles_under_max_rows(self):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=3, max_rows=16)
        prog, _, _ = tall_program(machine, 48)
        plan = run_program(prog, machine)
        assert plan.splits[0][0] > 1
        assert machine.last_batch.makespan == pytest.approx(
            plan.modelled_makespans[0], rel=1e-12
        )

    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    @pytest.mark.parametrize("max_rows", [None, 16])
    @pytest.mark.parametrize("rows", [4, 17, 48])
    def test_modelled_call_cost_matches_machine_charge(self, dtype, max_rows, rows):
        """The splitter's per-chunk cost model reproduces the machine's
        actual tensor+latency charge for a single call."""
        machine = TCUMachine(m=16, ell=ELL, max_rows=max_rows, complex_cost_factor=2)
        rng = np.random.default_rng(5)
        s = machine.sqrt_m
        A = rng.random((rows, s)).astype(dtype)
        B = rng.random((s, s)).astype(dtype)
        before = machine.ledger.tensor_time + machine.ledger.latency_time
        machine.mm(A, B)
        charged = machine.ledger.tensor_time + machine.ledger.latency_time - before
        assert charged == modelled_call_cost(machine, rows, dtype)


class TestSplitParity:
    """Splitting changes the schedule, never the numbers."""

    @pytest.mark.parametrize("rows", [24, 48, 100])
    @pytest.mark.parametrize("dtype", [np.float64, np.complex128])
    def test_split_numeric_bit_identical_to_unsplit(self, rows, dtype):
        unsplit = ParallelTCUMachine(m=16, ell=ELL, units=4)
        prog1, out1, expected = tall_program(unsplit, rows, dtype)
        run_program(prog1, unsplit, split=1)

        auto = ParallelTCUMachine(m=16, ell=ELL, units=4)
        prog2, out2, _ = tall_program(auto, rows, dtype)
        plan = run_program(prog2, auto)
        assert plan.splits[0][0] > 1
        assert np.array_equal(out1.result(), out2.result())
        assert np.allclose(out2.result(), expected)
        assert auto.time < unsplit.time

    def test_cost_only_equals_numeric_charges_on_split_run(self):
        numeric = ParallelTCUMachine(m=16, ell=ELL, units=3)
        prog1, _, _ = tall_program(numeric, 48)
        plan1 = run_program(prog1, numeric)

        cost_only = ParallelTCUMachine(m=16, ell=ELL, units=3, execute="cost-only")
        prog2, _, _ = tall_program(cost_only, 48)
        plan2 = run_program(prog2, cost_only)

        assert plan1.splits == plan2.splits
        assert numeric.ledger.snapshot() == cost_only.ledger.snapshot()
        assert (
            numeric.ledger.call_shape_totals() == cost_only.ledger.call_shape_totals()
        )

    def test_split_chunks_carry_unit_ids_in_trace(self):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=3, trace_calls=True)
        prog, _, _ = tall_program(machine, 48)
        plan = run_program(prog, machine)
        pieces = plan.splits[0][0]
        assert pieces > 1
        units_used = set(machine.ledger.calls.unit_ids().tolist())
        assert len(units_used) == min(pieces, machine.units)

    @pytest.mark.parametrize("config", sorted(MACHINE_CONFIGS))
    def test_split1_is_bit_identical_to_pr9_golden(self, config):
        machine = MACHINE_CONFIGS[config]()
        prog, a, b = two_product_program(machine)
        plan = run_program(prog, machine, split=1)
        assert all(f == 1 for level in plan.splits for f in level)
        total_time, calls = LEGACY_GOLDEN[config]
        assert machine.ledger.snapshot()["total_time"] == total_time
        assert machine.ledger.tensor_calls == calls

    @pytest.mark.parametrize("config", ["serial-numeric", "serial-max-rows"])
    def test_auto_is_identity_on_serial_machines(self, config):
        legacy = MACHINE_CONFIGS[config]()
        prog1, _, _ = two_product_program(legacy)
        run_program(prog1, legacy, split=1)
        auto = MACHINE_CONFIGS[config]()
        prog2, _, _ = two_product_program(auto)
        plan = run_program(prog2, auto)
        assert all(f == 1 for level in plan.splits for f in level)
        assert auto.ledger.snapshot() == legacy.ledger.snapshot()


class TestCompiledSplitPlans:
    """Split plans freeze into ``CompiledPlan`` and replay bit-identically
    with preemption intact."""

    def test_stepped_split_replay_equals_uninterrupted(self):
        probe = ParallelTCUMachine(m=16, ell=ELL, units=3)
        live_plan = get_request_type("dft").plan(probe, [512])
        assert any(f > 1 for level in live_plan.splits for f in level)

        ran = ParallelTCUMachine(m=16, ell=ELL, units=3)
        compiled = compile_plan(get_request_type("dft"), ran, [512])
        CompiledCursor(compiled, ran).run()

        stepped = ParallelTCUMachine(m=16, ell=ELL, units=3)
        cursor = CompiledCursor(compile_plan(get_request_type("dft"), stepped, [512]), stepped)
        while not cursor.done:
            cursor.step()
        assert stepped.ledger.snapshot() == ran.ledger.snapshot()
        assert stepped.ledger.call_shape_totals() == ran.ledger.call_shape_totals()

    def test_preempt_resume_split_cursor_prices_like_live(self):
        rtype = get_request_type("dft")
        live_m = ParallelTCUMachine(m=16, ell=ELL, units=3)
        live = ExecutionCursor(rtype.plan(live_m, [512]), live_m)
        replay_m = ParallelTCUMachine(m=16, ell=ELL, units=3)
        replay = CompiledCursor(compile_plan(rtype, replay_m, [512]), replay_m)

        live.step()
        replay.step()
        assert replay.resident_words() == live.resident_words()
        assert replay.charge_reload() == live.charge_reload()
        while not live.done:
            live.step()
        while not replay.done:
            replay.step()
        assert replay_m.ledger.snapshot() == live_m.ledger.snapshot()

    def test_live_split_execution_matches_compiled_replay(self):
        live_m = ParallelTCUMachine(m=16, ell=ELL, units=3)
        get_request_type("dft").serve(live_m, [512])
        replay_m = ParallelTCUMachine(m=16, ell=ELL, units=3)
        CompiledCursor(
            compile_plan(get_request_type("dft"), replay_m, [512]), replay_m
        ).run()
        assert replay_m.ledger.snapshot() == live_m.ledger.snapshot()
        assert replay_m.ledger.call_shape_totals() == live_m.ledger.call_shape_totals()


class TestSplitKnob:
    def test_invalid_split_rejected(self):
        machine = TCUMachine(m=16, ell=ELL)
        prog, _, _ = tall_program(machine, 8)
        with pytest.raises(ProgramError):
            plan_program(prog, machine, split=0)
        with pytest.raises(ProgramError):
            plan_program(prog, machine, split=True)
        with pytest.raises(ProgramError):
            plan_program(prog, machine, split="bogus")

    def test_explicit_split_forces_factor(self):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=4)
        prog, _, _ = tall_program(machine, 48)
        plan = plan_program(prog, machine, split=3)
        assert plan.splits[0][0] == 3

    def test_explicit_split_clamps_to_row_capacity(self):
        machine = ParallelTCUMachine(m=16, ell=ELL, units=4)
        prog, _, _ = tall_program(machine, 8)  # only 2 chunks of sqrt_m rows fit
        plan = plan_program(prog, machine, split=4)
        assert plan.splits[0][0] == 2

    def test_split_ignored_on_serial_machines(self):
        machine = TCUMachine(m=16, ell=ELL)
        prog, _, _ = tall_program(machine, 48)
        plan = plan_program(prog, machine, split=4)
        assert plan.splits[0][0] == 1

    def test_kernel_entry_points_thread_split(self):
        """The kernel wrappers forward split= to every planner call:
        split=1 on a parallel machine charges the serial machine's exact
        call trace, auto re-partitions the merged DFT stream (more,
        shorter calls; same streamed rows) and never slows the clock."""
        rng = np.random.default_rng(3)
        X = rng.random((8, 64)) + 1j * rng.random((8, 64))
        serial = TCUMachine(m=16, ell=16.0)
        batched_dft(serial, X)
        pinned = ParallelTCUMachine(m=16, ell=16.0, units=4)
        out_pinned = batched_dft(pinned, X, split=1)
        auto = ParallelTCUMachine(m=16, ell=16.0, units=4)
        out_auto = batched_dft(auto, X, split="auto")

        assert pinned.ledger.tensor_calls == serial.ledger.tensor_calls
        assert pinned.ledger.call_shape_totals() == serial.ledger.call_shape_totals()
        assert auto.ledger.tensor_calls > serial.ledger.tensor_calls
        def streamed(led):
            return sum(
                n * count for (n, _), (count, _, _) in led.call_shape_totals().items()
            )

        assert streamed(auto.ledger) == streamed(serial.ledger)
        assert auto.time <= pinned.time
        np.testing.assert_array_equal(out_auto, out_pinned)
