"""The bulk grid primitive: TCUMachine.mm_grid must charge and compute
exactly what a loop of TCUMachine.mm over the grid elements would."""

import numpy as np
import pytest

from repro.core.machine import TCUMachine, TensorShapeError, WeakTCUMachine, placeholder
from repro.core.quantize import QuantizedTCUMachine


def loop_reference(machine, A, B):
    lead = np.broadcast_shapes(A.shape[:-2], B.shape[:-2])
    Ab = np.broadcast_to(A, lead + A.shape[-2:])
    Bb = np.broadcast_to(B, lead + B.shape[-2:])
    out = np.empty(lead + (A.shape[-2], B.shape[-1]), dtype=np.result_type(A, B))
    for idx in np.ndindex(*lead):
        out[idx] = machine.mm(Ab[idx], Bb[idx])
    return out


def test_stacked_grid_matches_mm_loop():
    rng = np.random.default_rng(0)
    A = rng.random((5, 12, 4))
    B = rng.random((5, 4, 4))
    grid = TCUMachine(m=16, ell=50.0)
    loop = TCUMachine(m=16, ell=50.0)
    C = grid.mm_grid(A, B)
    R = loop_reference(loop, A, B)
    assert np.allclose(C, R)
    assert grid.ledger.snapshot() == loop.ledger.snapshot()
    assert list(grid.ledger.calls) == list(loop.ledger.calls)


def test_shared_stream_broadcasts_against_block_stack():
    rng = np.random.default_rng(1)
    A = rng.random((20, 4))
    B = rng.random((7, 4, 4))
    grid = TCUMachine(m=16, ell=3.0)
    loop = TCUMachine(m=16, ell=3.0)
    C = grid.mm_grid(A, B)
    assert C.shape == (7, 20, 4)
    assert np.allclose(C, loop_reference(loop, A, B))
    assert grid.ledger.snapshot() == loop.ledger.snapshot()


def test_two_dimensional_grid_is_one_call():
    tcu = TCUMachine(m=16, ell=5.0)
    A = np.ones((8, 4))
    B = np.eye(4)
    C = tcu.mm_grid(A, B)
    assert np.array_equal(C, A)
    assert tcu.ledger.tensor_calls == 1
    assert tcu.ledger.latency_time == 5.0


def test_complex_grid_charges_cost_factor():
    rng = np.random.default_rng(2)
    A = rng.random((3, 8, 4)) + 1j * rng.random((3, 8, 4))
    B = rng.random((3, 4, 4))
    grid = TCUMachine(m=16, ell=10.0, complex_cost_factor=4)
    loop = TCUMachine(m=16, ell=10.0, complex_cost_factor=4)
    C = grid.mm_grid(A, B)
    R = loop_reference(loop, A, B)
    assert np.allclose(C, R)
    assert grid.ledger.snapshot() == loop.ledger.snapshot()
    assert grid.ledger.tensor_calls == 3 * 4


def test_max_rows_overflow_falls_back_to_split_calls():
    rng = np.random.default_rng(3)
    A = rng.random((2, 300, 4))
    B = rng.random((2, 4, 4))
    grid = TCUMachine(m=16, ell=2.0, max_rows=128)
    loop = TCUMachine(m=16, ell=2.0, max_rows=128)
    C = grid.mm_grid(A, B)
    assert np.allclose(C, loop_reference(loop, A, B))
    assert grid.ledger.snapshot() == loop.ledger.snapshot()


def test_systolic_backend_falls_back_per_element():
    rng = np.random.default_rng(4)
    A = rng.integers(0, 5, size=(2, 4, 4)).astype(np.int64)
    B = rng.integers(0, 5, size=(4, 4)).astype(np.int64)
    grid = TCUMachine(m=16, backend="systolic")
    assert not grid.fusable
    C = grid.mm_grid(A, B)
    assert np.array_equal(C, A @ B)
    assert grid.ledger.tensor_calls == 2


def test_quantized_machine_is_not_fusable_but_grid_works():
    rng = np.random.default_rng(5)
    q = QuantizedTCUMachine(m=16, precision="fp16")
    assert not q.fusable
    A = rng.random((3, 6, 4))
    B = rng.random((4, 4))
    C = q.mm_grid(A, B)
    ref = QuantizedTCUMachine(m=16, precision="fp16")
    R = loop_reference(ref, A, B)
    assert np.allclose(C, R)
    assert q.ledger.snapshot() == ref.ledger.snapshot()
    assert q.error_stats.errors == ref.error_stats.errors


def test_cost_only_grid_charges_without_computing():
    A = placeholder((100, 64, 4))
    B = placeholder((100, 4, 4))
    tcu = TCUMachine(m=16, ell=9.0, execute="cost-only")
    C = tcu.mm_grid(A, B)
    assert C.shape == (100, 64, 4)
    assert not C.any() and C.strides == (0, 0, 0)
    ref = TCUMachine(m=16, ell=9.0)
    ref.ledger.charge_tensor_bulk(np.full(100, 64), 4, 9.0)
    assert tcu.ledger.snapshot() == ref.ledger.snapshot()


def test_grid_validation_errors():
    tcu = TCUMachine(m=16)
    with pytest.raises(TensorShapeError):
        tcu.mm_grid(np.ones((4,)), np.ones((4, 4)))
    with pytest.raises(TensorShapeError):
        tcu.mm_grid(np.ones((8, 5)), np.ones((4, 4)))  # wrong width
    with pytest.raises(TensorShapeError):
        tcu.mm_grid(np.ones((8, 4)), np.ones((4, 5)))  # non-square block
    with pytest.raises(TensorShapeError):
        tcu.mm_grid(np.ones((2, 4)), np.ones((4, 4)))  # n < sqrt(m)
    with pytest.raises(TensorShapeError):
        tcu.mm_grid(np.ones((3, 8, 4)), np.ones((2, 4, 4)))  # bad broadcast


def test_empty_grid_charges_nothing():
    tcu = TCUMachine(m=16, ell=4.0)
    C = tcu.mm_grid(np.ones((0, 8, 4)), np.ones((0, 4, 4)))
    assert C.shape == (0, 8, 4)
    assert tcu.ledger.tensor_calls == 0


def test_weak_machine_grid_rejects_tall_streams():
    weak = WeakTCUMachine(m=16)
    with pytest.raises(TensorShapeError):
        weak.mm_grid(np.ones((2, 8, 4)), np.ones((2, 4, 4)))
    C = weak.mm_grid(np.ones((2, 4, 4)), np.ones((2, 4, 4)))
    assert C.shape == (2, 4, 4)
    assert weak.ledger.tensor_calls == 2


def test_integer_overflow_checked_on_the_stack():
    from repro.core.words import OverflowError_

    tcu = TCUMachine(m=4, kappa=8, check_overflow=True)
    big = np.full((2, 2, 2), 120, dtype=np.int64)
    with pytest.raises(OverflowError_):
        tcu.mm_grid(big, np.full((2, 2), 120, dtype=np.int64))


def test_fork_preserves_execute_mode():
    tcu = TCUMachine(m=16, execute="cost-only")
    assert tcu.fork().execute == "cost-only"


@pytest.mark.parametrize("execute", ["numeric", "cost-only"])
def test_weak_machine_matmul_still_rejects_tall_calls(execute):
    # the fused matmul shortcut must not bypass the weak model's
    # square-only call interface
    from repro.matmul.dense import matmul

    weak = WeakTCUMachine(m=16, execute=execute)
    with pytest.raises(TensorShapeError):
        matmul(weak, np.ones((16, 16)), np.ones((16, 16)))
