"""Unit tests for the model-time ledger."""

import pytest

from repro.core.ledger import CostLedger, LedgerError, TensorCall


class TestTensorCharges:
    def test_tensor_charge_returns_total(self):
        led = CostLedger()
        assert led.charge_tensor(8, 4, 5.0) == 8 * 4 + 5.0

    def test_tensor_charge_accumulates_split_counters(self):
        led = CostLedger()
        led.charge_tensor(8, 4, 5.0)
        led.charge_tensor(4, 4, 5.0)
        assert led.tensor_time == 8 * 4 + 4 * 4
        assert led.latency_time == 10.0
        assert led.tensor_calls == 2

    def test_total_time_sums_all_components(self):
        led = CostLedger()
        led.charge_tensor(4, 4, 2.0)
        led.charge_cpu(7)
        assert led.total_time == 16 + 2 + 7

    def test_square_call_allowed(self):
        led = CostLedger()
        assert led.charge_tensor(4, 4, 0.0) == 16

    def test_rejects_short_left_operand(self):
        led = CostLedger()
        with pytest.raises(LedgerError, match="n >= sqrt"):
            led.charge_tensor(3, 4, 0.0)

    def test_rejects_negative_latency(self):
        led = CostLedger()
        with pytest.raises(LedgerError, match="latency"):
            led.charge_tensor(4, 4, -1.0)

    def test_zero_latency_ok(self):
        led = CostLedger()
        led.charge_tensor(4, 4, 0.0)
        assert led.latency_time == 0.0


class TestCpuCharges:
    def test_cpu_charge(self):
        led = CostLedger()
        led.charge_cpu(100)
        assert led.cpu_time == 100

    def test_rejects_negative(self):
        led = CostLedger()
        with pytest.raises(LedgerError):
            led.charge_cpu(-1)

    def test_rejects_non_finite(self):
        led = CostLedger()
        with pytest.raises(LedgerError):
            led.charge_cpu(float("inf"))

    def test_zero_charge_is_noop(self):
        led = CostLedger()
        led.charge_cpu(0)
        assert led.total_time == 0


class TestReloadCharges:
    def test_reload_charge_tracked_separately(self):
        led = CostLedger()
        led.charge_cpu(3)
        assert led.charge_reload(16) == 16.0
        assert led.reload_time == 16.0
        assert led.cpu_time == 3.0
        assert led.total_time == 19.0

    def test_reload_rejects_negative_and_non_finite(self):
        led = CostLedger()
        with pytest.raises(LedgerError):
            led.charge_reload(-1)
        with pytest.raises(LedgerError):
            led.charge_reload(float("nan"))

    def test_reload_credits_open_sections(self):
        led = CostLedger()
        with led.section("resume"):
            led.charge_reload(8)
        assert led.section_time("resume") == 8.0

    def test_reload_survives_merge_and_reset(self):
        a, b = CostLedger(), CostLedger()
        a.charge_reload(4)
        b.charge_reload(6)
        assert a.merged_with(b).reload_time == 10.0
        a.reset()
        assert a.reload_time == 0.0 and a.total_time == 0.0


class TestTrace:
    def test_calls_recorded(self):
        led = CostLedger()
        led.charge_tensor(8, 4, 3.0)
        assert led.calls == [TensorCall(n=8, sqrt_m=4, time=35.0, latency=3.0)]

    def test_trace_disabled(self):
        led = CostLedger(trace_calls=False)
        led.charge_tensor(8, 4, 3.0)
        assert led.calls == []
        assert led.tensor_calls == 1

    def test_words_moved(self):
        call = TensorCall(n=8, sqrt_m=4, time=35.0, latency=3.0)
        assert call.words_moved == 2 * 8 * 4 + 16

    def test_call_records_active_section(self):
        led = CostLedger()
        with led.section("phase-a"):
            led.charge_tensor(4, 4, 0.0)
        assert led.calls[0].section == "phase-a"


class TestSections:
    def test_section_attribution(self):
        led = CostLedger()
        with led.section("a"):
            led.charge_cpu(5)
        led.charge_cpu(7)
        assert led.section_time("a") == 5
        assert led.total_time == 12

    def test_nested_sections_both_credited(self):
        led = CostLedger()
        with led.section("outer"):
            with led.section("inner"):
                led.charge_tensor(4, 4, 1.0)
        assert led.section_time("outer") == 17.0
        assert led.section_time("inner") == 17.0

    def test_unknown_section_is_zero(self):
        led = CostLedger()
        assert led.section_time("nope") == 0.0

    def test_reset_inside_section_rejected(self):
        led = CostLedger()
        with led.section("a"):
            with pytest.raises(LedgerError):
                led.reset()


class TestResetAndMerge:
    def test_reset_clears_everything(self):
        led = CostLedger()
        led.charge_tensor(4, 4, 1.0)
        led.charge_cpu(3)
        led.reset()
        assert led.total_time == 0
        assert led.calls == []
        assert led.tensor_calls == 0

    def test_merge_sums_counters(self):
        a, b = CostLedger(), CostLedger()
        a.charge_tensor(4, 4, 1.0)
        b.charge_cpu(9)
        merged = a.merged_with(b)
        assert merged.total_time == a.total_time + b.total_time
        assert merged.tensor_calls == 1
        assert len(merged.calls) == 1

    def test_merge_combines_sections(self):
        a, b = CostLedger(), CostLedger()
        with a.section("x"):
            a.charge_cpu(2)
        with b.section("x"):
            b.charge_cpu(3)
        assert a.merged_with(b).section_time("x") == 5

    def test_snapshot_keys(self):
        led = CostLedger()
        led.charge_tensor(4, 4, 1.0)
        snap = led.snapshot()
        assert set(snap) == {
            "tensor_time",
            "latency_time",
            "cpu_time",
            "reload_time",
            "wasted_time",
            "tensor_calls",
            "total_time",
        }
        assert snap["total_time"] == led.total_time
