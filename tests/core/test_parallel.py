"""Parallel tensor units (the §6 extension)."""

import numpy as np
import pytest

from repro.core.parallel import BatchStats, ParallelTCUMachine
from repro.core.machine import TensorShapeError
from repro.core.words import OverflowError_
from repro.matmul.parallel_dense import parallel_matmul, predicted_parallel_time
from repro import TCUMachine, matmul


def jobs(rng, count, n_rows=8, s=4):
    return [(rng.random((n_rows, s)), rng.random((s, s))) for _ in range(count)]


class TestMachine:
    def test_single_unit_equals_sequential(self, rng):
        p1 = ParallelTCUMachine(m=16, ell=8.0, units=1)
        seq = TCUMachine(m=16, ell=8.0)
        batch = jobs(rng, 5)
        results = p1.mm_batch(batch)
        for (A, B), C in zip(batch, results):
            assert np.allclose(C, A @ B)
            seq.mm(A, B)
        assert np.isclose(p1.time, seq.time)

    def test_equal_jobs_speed_up_by_p(self, rng):
        for p in (2, 4, 8):
            machine = ParallelTCUMachine(m=16, ell=8.0, units=p)
            machine.mm_batch(jobs(rng, 8))
            assert machine.last_batch is not None
            assert np.isclose(machine.last_batch.speedup, min(p, 8))

    def test_excess_units_idle(self, rng):
        machine = ParallelTCUMachine(m=16, units=16)
        machine.mm_batch(jobs(rng, 3))
        assert machine.last_batch.units_used == 3
        assert np.isclose(machine.last_batch.speedup, 3.0)

    def test_unbalanced_jobs_lpt(self, rng):
        """One giant job bounds the makespan regardless of p."""
        machine = ParallelTCUMachine(m=16, ell=0.0, units=4)
        batch = [(rng.random((400, 4)), rng.random((4, 4)))] + jobs(rng, 3, n_rows=4)
        machine.mm_batch(batch)
        assert machine.last_batch.makespan == 400 * 4

    def test_empty_batch(self):
        machine = ParallelTCUMachine(m=16, units=4)
        assert machine.mm_batch([]) == []
        stats = machine.last_batch
        assert isinstance(stats, BatchStats)
        assert (stats.calls, stats.serial_time, stats.makespan, stats.units_used) == (
            0,
            0.0,
            0.0,
            0,
        )
        assert stats.policy == "lpt"
        assert machine.last_schedule is None

    def test_complex_factor_one_takes_fast_path(self, rng):
        """At the default complex_cost_factor=1 a complex batch prices
        and executes exactly like a real one — one bulk charge, no
        per-call scratch capture."""
        machine = ParallelTCUMachine(m=16, ell=3.0, units=2)
        pairs = [
            (
                rng.random((8, 4)) + 1j * rng.random((8, 4)),
                rng.random((4, 4)) + 1j * rng.random((4, 4)),
            )
            for _ in range(4)
        ]
        results = machine.mm_batch(pairs)
        for (A, B), C in zip(pairs, results):
            assert np.allclose(C, A @ B)
        ref = machine.fork()
        for A, B in pairs:
            ref.mm(A, B)
        assert machine.ledger.tensor_calls == ref.ledger.tensor_calls == 4
        assert machine.ledger.call_shape_totals() == ref.ledger.call_shape_totals()
        assert machine.ledger.cpu_time == ref.ledger.cpu_time == 0.0

    def test_results_correct(self, rng):
        machine = ParallelTCUMachine(m=16, units=3)
        batch = jobs(rng, 7, n_rows=12)
        for (A, B), C in zip(batch, machine.mm_batch(batch)):
            assert np.allclose(C, A @ B)

    def test_bad_shape_rejected(self, rng):
        machine = ParallelTCUMachine(m=16, units=2)
        with pytest.raises(TensorShapeError):
            machine.mm_batch([(rng.random((8, 5)), rng.random((4, 4)))])
        with pytest.raises(TensorShapeError):
            machine.mm_batch([(rng.random((2, 4)), rng.random((4, 4)))])

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            ParallelTCUMachine(m=16, units=0)

    def test_call_count_exact(self, rng):
        machine = ParallelTCUMachine(m=16, units=4)
        machine.mm_batch(jobs(rng, 6))
        assert machine.ledger.tensor_calls == 6

    def test_sequential_mm_unchanged(self, rng):
        machine = ParallelTCUMachine(m=16, ell=4.0, units=4)
        A, B = rng.random((8, 4)), rng.random((4, 4))
        machine.mm(A, B)
        assert machine.time == 8 * 4 + 4.0

    def test_trace_records_true_costs_and_units(self, rng):
        """The trace keeps every call at its true serial cost tagged with
        the unit it ran on; the ledger clock advances by the makespan."""
        machine = ParallelTCUMachine(m=16, ell=0.0, units=2)
        machine.mm_batch(jobs(rng, 4))
        assert len(machine.ledger.calls) == 4
        assert np.isclose(
            sum(c.time for c in machine.ledger.calls), machine.last_batch.serial_time
        )
        assert np.isclose(machine.ledger.tensor_total, machine.last_batch.makespan)
        units = machine.ledger.calls.unit_ids()
        assert set(units.tolist()) == {0, 1}

    def test_serial_mm_traces_unit_minus_one(self, rng):
        machine = ParallelTCUMachine(m=16, units=2)
        machine.mm(rng.random((8, 4)), rng.random((4, 4)))
        assert machine.ledger.calls[0].unit == -1


class TestParallelMatmul:
    @pytest.mark.parametrize("shape", [(16, 16), (20, 13), (64, 64)])
    def test_correct(self, rng, shape):
        machine = ParallelTCUMachine(m=16, units=4)
        A = rng.random(shape)
        B = rng.random((shape[1], shape[0]))
        assert np.allclose(parallel_matmul(machine, A, B), A @ B)

    def test_tensor_time_scales_down(self, rng):
        A = rng.random((64, 64))
        B = rng.random((64, 64))
        times = []
        for p in (1, 4, 16):
            machine = ParallelTCUMachine(m=16, ell=16.0, units=p)
            parallel_matmul(machine, A, B)
            times.append(machine.ledger.tensor_total)
        assert times[0] > times[1] > times[2]
        # ideal scaling on the tensor part (calls are equal-sized)
        assert np.isclose(times[0] / times[1], 4.0, rtol=0.05)

    def test_saturation_below_call_count(self, rng):
        """More units than grid products gain nothing further."""
        A = rng.random((16, 16))  # 16 calls at m=16
        B = rng.random((16, 16))
        t16 = ParallelTCUMachine(m=16, units=16)
        t64 = ParallelTCUMachine(m=16, units=64)
        parallel_matmul(t16, A, B)
        parallel_matmul(t64, A, B)
        assert np.isclose(t16.time, t64.time)

    def test_predicted_shape(self):
        n, m, ell = 4096, 16, 8.0
        assert predicted_parallel_time(n, m, ell, 1) == pytest.approx(
            (n / m) * (np.sqrt(n) * 4 + ell)
        )
        # doubling p halves the wave count while calls > p
        assert predicted_parallel_time(n, m, ell, 2) == pytest.approx(
            predicted_parallel_time(n, m, ell, 1) / 2
        )
        # floor at one wave
        assert predicted_parallel_time(n, m, ell, 10**6) == pytest.approx(
            np.sqrt(n) * 4 + ell
        )

    def test_matches_sequential_result(self, rng):
        seq = TCUMachine(m=16)
        par = ParallelTCUMachine(m=16, units=4)
        A = rng.random((24, 18))
        B = rng.random((18, 9))
        assert np.allclose(matmul(seq, A, B), parallel_matmul(par, A, B))


def batch_vs_serial(machine, pairs):
    """Issue the batch, replay the same calls serially on a fork, and
    pin the ISSUE 3 acceptance bar: the batch's serial_time equals the
    serial ledger total, with bit-identical hardware call counts,
    per-shape trace totals and CPU charges."""
    results = machine.mm_batch(pairs)
    ref = machine.fork()
    for A, B in pairs:
        ref.mm(A, B)
    stats = machine.last_batch
    assert stats.serial_time == ref.ledger.tensor_total
    assert machine.ledger.tensor_calls == ref.ledger.tensor_calls
    assert machine.ledger.call_shape_totals() == ref.ledger.call_shape_totals()
    assert machine.ledger.cpu_time == ref.ledger.cpu_time
    assert stats.makespan <= stats.serial_time
    assert stats.hardware_calls == ref.ledger.tensor_calls
    return results, ref, stats


class TestBatchCostSemantics:
    """`mm_batch` prices every call exactly as the scalar path does —
    the batch undercharging bugfix, pinned per machine configuration."""

    def test_complex_cost_factor_parity(self, rng):
        """A complex batch charges 4 calls plus the two extra real adds
        per call, exactly like the serial path (it used to charge 1x)."""
        machine = ParallelTCUMachine(m=16, ell=5.0, units=3, complex_cost_factor=4)
        pairs = [
            (
                rng.random((8 + 4 * i, 4)) + 1j * rng.random((8 + 4 * i, 4)),
                rng.random((4, 4)) + 1j * rng.random((4, 4)),
            )
            for i in range(5)
        ]
        results, ref, stats = batch_vs_serial(machine, pairs)
        for (A, B), C in zip(pairs, results):
            assert np.allclose(C, A @ B)
        assert machine.ledger.tensor_calls == 4 * len(pairs)
        assert machine.ledger.cpu_time == sum(2 * A.shape[0] * 4 for A, _ in pairs)
        assert stats.makespan < stats.serial_time

    def test_max_rows_chunking_parity(self, rng):
        """Streams over the hardware row bound are charged as
        ceil(n / max_rows) calls, each paying latency, plus the
        reassembly copies (it used to charge one bound-blind call)."""
        machine = ParallelTCUMachine(m=16, ell=7.0, units=2, max_rows=10)
        pairs = [(rng.random((25, 4)), rng.random((4, 4))) for _ in range(4)]
        results, ref, stats = batch_vs_serial(machine, pairs)
        for (A, B), C in zip(pairs, results):
            assert np.allclose(C, A @ B)
        # 25 rows at max_rows=10: chunks of 10, 10, 5 -> 3 calls per stream
        assert machine.ledger.tensor_calls == 3 * 4
        # each hardware chunk pays the full latency
        lat = sum(c.latency for c in machine.ledger.calls)
        assert lat == 12 * 7.0
        # reassembly of each split output is charged RAM work
        assert machine.ledger.cpu_time == 4 * 25 * 4

    def test_max_rows_padded_final_chunk_parity(self, rng):
        """A ragged final chunk below sqrt(m) pays the pad copy
        `_mm_split` levies, in the batch exactly as in serial."""
        machine = ParallelTCUMachine(m=16, ell=2.0, units=2, max_rows=8)
        pairs = [(rng.random((9, 4)), rng.random((4, 4))) for _ in range(3)]
        results, ref, stats = batch_vs_serial(machine, pairs)
        for (A, B), C in zip(pairs, results):
            assert np.allclose(C, A @ B)
        # chunks of 8 and 1; the 1-row tail pads to sqrt(m)=4
        assert machine.ledger.tensor_calls == 2 * 3
        assert machine.ledger.cpu_time == 3 * (4 * 4 + 9 * 4)

    def test_batch_overflow_detected(self):
        """check_overflow validates batched integer accumulators (the
        old `A @ B` fast path skipped the check entirely)."""
        machine = ParallelTCUMachine(
            m=16, units=2, kappa=8, check_overflow=True
        )
        A = np.full((8, 4), 100, dtype=np.int64)
        B = np.full((4, 4), 100, dtype=np.int64)
        with pytest.raises(OverflowError_):
            machine.mm_batch([(A, B), (A, B)])
        # small values pass the same check
        ok = machine.fork()
        small = np.ones((8, 4), dtype=np.int64)
        outs = ok.mm_batch([(small, np.eye(4, dtype=np.int64))] * 2)
        assert np.array_equal(outs[0], small)

    def test_systolic_batch_routes_through_backend(self, rng):
        """Systolic machines execute batched calls on the systolic
        array, with ledger parity against the serial path."""
        machine = ParallelTCUMachine(m=16, ell=2.0, units=2, backend="systolic")
        pairs = [
            (
                rng.integers(0, 5, (8, 4)).astype(float),
                rng.integers(0, 5, (4, 4)).astype(float),
            )
            for _ in range(3)
        ]
        results, ref, stats = batch_vs_serial(machine, pairs)
        for (A, B), C in zip(pairs, results):
            assert np.array_equal(C, A @ B)

    def test_subclass_custom_latency_parity(self, rng):
        """A subclass with its own per-call latency semantics keeps
        batch/serial trace parity — including the latency column and
        the fork()ed serial reference staying the subclass."""

        class DoubleLatencyMachine(ParallelTCUMachine):
            def _mm_single(self, A, B):
                self.ledger.charge_tensor(A.shape[0], self.sqrt_m, 2 * self.ell)
                return A @ B

        machine = DoubleLatencyMachine(m=16, ell=5.0, units=2)
        assert not machine.fusable
        assert isinstance(machine.fork(), DoubleLatencyMachine)
        pairs = [(rng.random((8 + 4 * i, 4)), rng.random((4, 4))) for i in range(4)]
        results, ref, stats = batch_vs_serial(machine, pairs)
        for (A, B), C in zip(pairs, results):
            assert np.allclose(C, A @ B)
        lats = [c.latency for c in machine.ledger.calls]
        assert lats == [c.latency for c in ref.ledger.calls] == [10.0] * 4

    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"max_rows": 12}, {"complex_cost_factor": 4}],
        ids=["plain", "max_rows", "complex"],
    )
    def test_cost_only_batch_matches_numeric(self, rng, kwargs):
        heights = [8, 16, 24, 8]
        if "complex_cost_factor" in kwargs:
            pairs = [
                (
                    rng.random((h, 4)) + 1j * rng.random((h, 4)),
                    rng.random((4, 4)) + 1j * rng.random((4, 4)),
                )
                for h in heights
            ]
        else:
            pairs = [(rng.random((h, 4)), rng.random((4, 4))) for h in heights]
        numeric = ParallelTCUMachine(m=16, ell=9.0, units=3, **kwargs)
        cost = ParallelTCUMachine(m=16, ell=9.0, units=3, execute="cost-only", **kwargs)
        numeric.mm_batch(pairs)
        outs = cost.mm_batch(pairs)
        assert numeric.ledger.snapshot() == cost.ledger.snapshot()
        assert numeric.ledger.call_shape_totals() == cost.ledger.call_shape_totals()
        assert numeric.last_batch == cost.last_batch
        assert all(out.shape == (h, 4) for out, h in zip(outs, heights))


class TestSchedulerSelection:
    def test_machine_policy_and_per_batch_override(self, rng):
        machine = ParallelTCUMachine(m=16, ell=0.0, units=2, scheduler="round-robin")
        assert machine.scheduler.name == "round-robin"
        pairs = [(rng.random((h, 4)), rng.random((4, 4))) for h in (32, 4, 4, 4)]
        machine.mm_batch(pairs)
        # round-robin: unit 0 gets costs 128 and 16 -> makespan 144
        assert machine.last_batch.makespan == 144.0
        assert machine.last_batch.policy == "round-robin"
        machine.mm_batch(pairs, policy="lpt")
        # LPT isolates the giant job -> makespan 128
        assert machine.last_batch.makespan == 128.0
        assert machine.last_batch.policy == "lpt"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ParallelTCUMachine(m=16, units=2, scheduler="nope")

    def test_fork_preserves_scheduler(self):
        machine = ParallelTCUMachine(m=16, units=4, scheduler="greedy")
        child = machine.fork()
        assert child.scheduler.name == "greedy"
        assert child.units == 4

    def test_last_schedule_exposes_timelines(self, rng):
        machine = ParallelTCUMachine(m=16, ell=0.0, units=2)
        machine.mm_batch([(rng.random((8, 4)), rng.random((4, 4))) for _ in range(4)])
        sched = machine.last_schedule
        assert sched is not None
        assert sched.unit_times.shape == (2,)
        assert sched.unit_times.sum() == machine.last_batch.serial_time
        assert sched.makespan == machine.last_batch.makespan
        assert 0.0 < sched.utilization <= 1.0
