"""Parallel tensor units (the §6 extension)."""

import numpy as np
import pytest

from repro.core.parallel import BatchStats, ParallelTCUMachine
from repro.core.machine import TensorShapeError
from repro.matmul.parallel_dense import parallel_matmul, predicted_parallel_time
from repro import TCUMachine, matmul


def jobs(rng, count, n_rows=8, s=4):
    return [(rng.random((n_rows, s)), rng.random((s, s))) for _ in range(count)]


class TestMachine:
    def test_single_unit_equals_sequential(self, rng):
        p1 = ParallelTCUMachine(m=16, ell=8.0, units=1)
        seq = TCUMachine(m=16, ell=8.0)
        batch = jobs(rng, 5)
        results = p1.mm_batch(batch)
        for (A, B), C in zip(batch, results):
            assert np.allclose(C, A @ B)
            seq.mm(A, B)
        assert np.isclose(p1.time, seq.time)

    def test_equal_jobs_speed_up_by_p(self, rng):
        for p in (2, 4, 8):
            machine = ParallelTCUMachine(m=16, ell=8.0, units=p)
            machine.mm_batch(jobs(rng, 8))
            assert machine.last_batch is not None
            assert np.isclose(machine.last_batch.speedup, min(p, 8))

    def test_excess_units_idle(self, rng):
        machine = ParallelTCUMachine(m=16, units=16)
        machine.mm_batch(jobs(rng, 3))
        assert machine.last_batch.units_used == 3
        assert np.isclose(machine.last_batch.speedup, 3.0)

    def test_unbalanced_jobs_lpt(self, rng):
        """One giant job bounds the makespan regardless of p."""
        machine = ParallelTCUMachine(m=16, ell=0.0, units=4)
        batch = [(rng.random((400, 4)), rng.random((4, 4)))] + jobs(rng, 3, n_rows=4)
        machine.mm_batch(batch)
        assert machine.last_batch.makespan == 400 * 4

    def test_empty_batch(self):
        machine = ParallelTCUMachine(m=16, units=4)
        assert machine.mm_batch([]) == []
        assert machine.last_batch == BatchStats(0, 0.0, 0.0, 0)

    def test_results_correct(self, rng):
        machine = ParallelTCUMachine(m=16, units=3)
        batch = jobs(rng, 7, n_rows=12)
        for (A, B), C in zip(batch, machine.mm_batch(batch)):
            assert np.allclose(C, A @ B)

    def test_bad_shape_rejected(self, rng):
        machine = ParallelTCUMachine(m=16, units=2)
        with pytest.raises(TensorShapeError):
            machine.mm_batch([(rng.random((8, 5)), rng.random((4, 4)))])
        with pytest.raises(TensorShapeError):
            machine.mm_batch([(rng.random((2, 4)), rng.random((4, 4)))])

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            ParallelTCUMachine(m=16, units=0)

    def test_call_count_exact(self, rng):
        machine = ParallelTCUMachine(m=16, units=4)
        machine.mm_batch(jobs(rng, 6))
        assert machine.ledger.tensor_calls == 6

    def test_sequential_mm_unchanged(self, rng):
        machine = ParallelTCUMachine(m=16, ell=4.0, units=4)
        A, B = rng.random((8, 4)), rng.random((4, 4))
        machine.mm(A, B)
        assert machine.time == 8 * 4 + 4.0

    def test_trace_records_scaled_calls(self, rng):
        machine = ParallelTCUMachine(m=16, ell=0.0, units=2)
        machine.mm_batch(jobs(rng, 4))
        assert len(machine.ledger.calls) == 4
        assert np.isclose(
            sum(c.time for c in machine.ledger.calls), machine.last_batch.makespan
        )


class TestParallelMatmul:
    @pytest.mark.parametrize("shape", [(16, 16), (20, 13), (64, 64)])
    def test_correct(self, rng, shape):
        machine = ParallelTCUMachine(m=16, units=4)
        A = rng.random(shape)
        B = rng.random((shape[1], shape[0]))
        assert np.allclose(parallel_matmul(machine, A, B), A @ B)

    def test_tensor_time_scales_down(self, rng):
        A = rng.random((64, 64))
        B = rng.random((64, 64))
        times = []
        for p in (1, 4, 16):
            machine = ParallelTCUMachine(m=16, ell=16.0, units=p)
            parallel_matmul(machine, A, B)
            times.append(machine.ledger.tensor_total)
        assert times[0] > times[1] > times[2]
        # ideal scaling on the tensor part (calls are equal-sized)
        assert np.isclose(times[0] / times[1], 4.0, rtol=0.05)

    def test_saturation_below_call_count(self, rng):
        """More units than grid products gain nothing further."""
        A = rng.random((16, 16))  # 16 calls at m=16
        B = rng.random((16, 16))
        t16 = ParallelTCUMachine(m=16, units=16)
        t64 = ParallelTCUMachine(m=16, units=64)
        parallel_matmul(t16, A, B)
        parallel_matmul(t64, A, B)
        assert np.isclose(t16.time, t64.time)

    def test_predicted_shape(self):
        n, m, ell = 4096, 16, 8.0
        assert predicted_parallel_time(n, m, ell, 1) == pytest.approx(
            (n / m) * (np.sqrt(n) * 4 + ell)
        )
        # doubling p halves the wave count while calls > p
        assert predicted_parallel_time(n, m, ell, 2) == pytest.approx(
            predicted_parallel_time(n, m, ell, 1) / 2
        )
        # floor at one wave
        assert predicted_parallel_time(n, m, ell, 10**6) == pytest.approx(
            np.sqrt(n) * 4 + ell
        )

    def test_matches_sequential_result(self, rng):
        seq = TCUMachine(m=16)
        par = ParallelTCUMachine(m=16, units=4)
        A = rng.random((24, 18))
        B = rng.random((18, 9))
        assert np.allclose(matmul(seq, A, B), parallel_matmul(par, A, B))
