"""Cross-module integration tests.

These compose several subsystems the way the examples and benches do:
algorithms on preset machines, theorem formulas fitted against measured
model times, the weak-model/EM bridge, and multi-algorithm pipelines
sharing one ledger.
"""

import numpy as np
import networkx as nx

from repro import TCUMachine, VOLTA_TC, matmul, sparse_mm
from repro.analysis.fitting import fit_constant, loglog_slope
from repro.analysis.formulas import (
    thm2_dense_mm,
    thm5_transitive_closure,
    thm7_dft,
    thm9_integer_mul,
)
from repro.arith.intmul import int_multiply
from repro.extmem.simulate import simulate_ledger_io
from repro.graph.apsd import apsd
from repro.graph.closure import transitive_closure
from repro.linalg.gaussian import ge_solve
from repro.transform.dft import dft
from repro.transform.stencil import HEAT_3X3, stencil_direct, stencil_tcu


class TestFormulaFits:
    """Measured model time fits each theorem's formula with one constant."""

    def test_dense_mm_fit(self, rng):
        preds, times = [], []
        for side in (16, 32, 64, 128):
            tcu = TCUMachine(m=16, ell=32.0)
            matmul(tcu, rng.random((side, side)), rng.random((side, side)))
            preds.append(thm2_dense_mm(side * side, 16, 32.0))
            times.append(tcu.time)
        fit = fit_constant(preds, times)
        assert fit.within(0.5)

    def test_closure_fit(self, rng):
        preds, times = [], []
        for n in (16, 32, 64):
            A = (rng.random((n, n)) < 0.2).astype(np.int64)
            np.fill_diagonal(A, 0)
            tcu = TCUMachine(m=16, ell=16.0)
            transitive_closure(tcu, A)
            preds.append(thm5_transitive_closure(n, 16, 16.0))
            times.append(tcu.time)
        fit = fit_constant(preds, times)
        assert fit.within(0.6)

    def test_dft_fit(self, rng):
        preds, times = [], []
        for n in (64, 256, 1024, 4096):
            tcu = TCUMachine(m=16, ell=8.0)
            dft(tcu, rng.standard_normal(n))
            preds.append(thm7_dft(n, 16, 8.0))
            times.append(tcu.time)
        fit = fit_constant(preds, times)
        assert fit.within(0.6)

    def test_intmul_fit(self):
        import random

        random.seed(1)
        preds, times = [], []
        for bits in (512, 1024, 2048, 4096):
            a = random.getrandbits(bits) | (1 << (bits - 1))
            tcu = TCUMachine(m=16, kappa=32, ell=8.0)
            int_multiply(tcu, a, a)
            preds.append(thm9_integer_mul(bits, 16, 8.0, 8))
            times.append(tcu.time)
        fit = fit_constant(preds, times)
        assert fit.within(0.6)


class TestPresetPipelines:
    def test_volta_preset_full_pipeline(self, rng):
        """Solve a system, close a graph and transform a signal on the
        Volta preset, all billed to one ledger with sections."""
        machine = VOLTA_TC.create()
        with machine.section("solve"):
            A = rng.random((24, 24)) + 24 * np.eye(24)
            b = rng.random(24)
            x = ge_solve(machine, A, b)
        assert np.allclose(A @ x, b, atol=1e-6)
        with machine.section("graph"):
            adj = (rng.random((20, 20)) < 0.2).astype(np.int64)
            np.fill_diagonal(adj, 0)
            transitive_closure(machine, adj)
        with machine.section("signal"):
            dft(machine, rng.standard_normal(256))
        total = machine.time
        parts = sum(
            machine.ledger.section_time(s) for s in ("solve", "graph", "signal")
        )
        assert np.isclose(total, parts)

    def test_same_workload_different_machines(self, rng):
        """A latency-heavy unit prefers fewer, taller calls: the same
        matmul costs relatively more latency on a TPU-like machine."""
        A = rng.random((256, 256))
        B = rng.random((256, 256))
        tpu_like = TCUMachine(m=256, ell=65536.0)
        tc_like = TCUMachine(m=256, ell=32.0)
        matmul(tpu_like, A, B)
        matmul(tc_like, A, B)
        assert tpu_like.ledger.tensor_time == tc_like.ledger.tensor_time
        assert tpu_like.time > 5 * tc_like.time


class TestWeakModelBridge:
    def test_end_to_end_theorem12(self, rng):
        """Algorithm -> ledger trace -> EM simulation -> bound check."""
        from repro.extmem.bounds import matmul_io_lower_bound

        side, m = 32, 16
        tcu = TCUMachine(m=m, ell=float(m))
        matmul(tcu, rng.random((side, side)), rng.random((side, side)))
        sim = simulate_ledger_io(tcu.ledger, weak=True)
        # simulation I/Os within a constant of model time ...
        assert 0.1 < sim.io_per_time < 12
        # ... and above the Hong-Kung bound at M = 3m
        assert sim.total_ios >= matmul_io_lower_bound(side * side, 3 * m)


class TestCrossAlgorithmConsistency:
    def test_apsd_against_closure_reachability(self, rng):
        """Finite Seidel distances exactly where the (symmetrised)
        closure says reachable."""
        n = 16
        G = nx.gnp_random_graph(n, 0.15, seed=42)
        A = nx.to_numpy_array(G, dtype=np.int64)
        tcu = TCUMachine(m=16)
        D = apsd(tcu, A)
        C = transitive_closure(tcu, A)
        finite = np.isfinite(D) & (D > 0)
        assert np.array_equal(finite, C.astype(bool) & ~np.eye(n, dtype=bool))

    def test_sparse_dense_agree(self, rng):
        import scipy.sparse as sp

        side = 32
        A = sp.random(side, side, density=0.06, random_state=3,
                      data_rvs=lambda k: rng.integers(1, 5, k)).astype(np.int64)
        B = sp.random(side, side, density=0.06, random_state=4,
                      data_rvs=lambda k: rng.integers(1, 5, k)).astype(np.int64)
        tcu = TCUMachine(m=16)
        dense = matmul(tcu, A.toarray(), B.toarray())
        sparse = sparse_mm(tcu, A, B, seed=1).toarray()
        assert np.array_equal(dense, sparse)

    def test_stencil_spectral_matches_sweeps_on_heat(self, rng):
        tcu = TCUMachine(m=16)
        A = rng.random((32, 32))
        k = 8
        assert np.allclose(
            stencil_tcu(tcu, A, HEAT_3X3, k),
            stencil_direct(tcu, A, HEAT_3X3, k),
            atol=1e-8,
        )

    def test_dft_via_polyeval(self, rng):
        """DFT(x) = polynomial with coefficients x evaluated at the
        inverse roots of unity — two subsystems, one answer."""
        from repro.arith.polyeval import batch_polyeval

        n = 16
        x = rng.standard_normal(n)
        tcu = TCUMachine(m=16)
        roots = np.exp(-2j * np.pi * np.arange(n) / n)
        via_poly = batch_polyeval(tcu, x.astype(np.complex128), roots)
        via_dft = dft(tcu, x)
        assert np.allclose(via_poly, via_dft, atol=1e-8)


class TestScalingSummary:
    def test_slopes_summary(self, rng):
        """One combined slope check across three algorithm families."""
        # dense MM ~ side^3
        mm_times = []
        for side in (16, 32, 64):
            tcu = TCUMachine(m=16)
            matmul(tcu, rng.random((side, side)), rng.random((side, side)))
            mm_times.append(tcu.time)
        assert 2.7 < loglog_slope([16, 32, 64], mm_times) < 3.2
        # DFT ~ n^(1+eps)
        dft_times = []
        for n in (256, 1024, 4096):
            tcu = TCUMachine(m=16)
            dft(tcu, rng.standard_normal(n))
            dft_times.append(tcu.time)
        assert 1.0 < loglog_slope([256, 1024, 4096], dft_times) < 1.3
