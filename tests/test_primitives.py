"""Scan / reduction primitive tests (the [9]/[7] related-work coverage)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TCUMachine
from repro.primitives import tcu_prefix_sum, tcu_reduce


class TestReduce:
    @pytest.mark.parametrize("n", [0, 1, 2, 4, 15, 16, 17, 100, 1000])
    def test_matches_sum(self, tcu, rng, n):
        x = rng.standard_normal(n)
        got = tcu_reduce(tcu, x)
        assert np.isclose(got, x.sum(), atol=1e-9)

    def test_empty(self, tcu):
        assert tcu_reduce(tcu, np.zeros(0)) == 0.0

    def test_integers_exact(self, tcu, rng):
        x = rng.integers(-100, 100, 257)
        assert tcu_reduce(tcu, x) == x.sum()

    def test_unit_size_one(self, rng):
        machine = TCUMachine(m=1)
        x = rng.standard_normal(50)
        assert np.isclose(tcu_reduce(machine, x), x.sum())

    def test_2d_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            tcu_reduce(tcu, rng.random((3, 3)))

    def test_logarithmic_tensor_calls(self, rng):
        """Reduction issues O(log_m n) calls, not O(n)."""
        tcu = TCUMachine(m=16)
        tcu_reduce(tcu, rng.standard_normal(4096))
        assert tcu.ledger.tensor_calls <= 8

    def test_latency_only_logarithmic(self, rng):
        x = rng.standard_normal(4096)
        t0 = TCUMachine(m=16, ell=0.0)
        t1 = TCUMachine(m=16, ell=1000.0)
        tcu_reduce(t0, x)
        tcu_reduce(t1, x)
        assert t1.time - t0.time <= 1000.0 * 8


class TestPrefixSum:
    @pytest.mark.parametrize("n", [0, 1, 2, 4, 15, 16, 17, 100, 1000])
    def test_matches_cumsum(self, tcu, rng, n):
        x = rng.standard_normal(n)
        got = tcu_prefix_sum(tcu, x)
        assert np.allclose(got, np.cumsum(x), atol=1e-9)

    def test_constant_input(self, tcu):
        got = tcu_prefix_sum(tcu, np.ones(37))
        assert np.array_equal(got, np.arange(1, 38))

    def test_unit_size_one(self, rng):
        machine = TCUMachine(m=1)
        x = rng.standard_normal(20)
        assert np.allclose(tcu_prefix_sum(machine, x), np.cumsum(x))

    def test_last_entry_is_total(self, tcu, rng):
        x = rng.standard_normal(333)
        scan = tcu_prefix_sum(tcu, x)
        assert np.isclose(scan[-1], x.sum(), atol=1e-9)

    def test_2d_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            tcu_prefix_sum(tcu, rng.random((3, 3)))

    def test_linear_model_time(self, rng):
        """Theta(n) with a small constant: doubling n ~ doubles time."""
        times = []
        for n in (1024, 2048, 4096):
            tcu = TCUMachine(m=16)
            tcu_prefix_sum(tcu, rng.standard_normal(n))
            times.append(tcu.time)
        assert 1.7 < times[1] / times[0] < 2.3
        assert 1.7 < times[2] / times[1] < 2.3


@settings(deadline=None, max_examples=30)
@given(n=st.integers(0, 500), seed=st.integers(0, 2**16))
def test_property_scan_and_reduce_consistent(n, seed):
    """reduce(x) == last entry of prefix_sum(x), both matching numpy."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    tcu = TCUMachine(m=16, ell=2.0)
    total = tcu_reduce(tcu, x)
    assert np.isclose(total, x.sum(), atol=1e-8)
    if n:
        scan = tcu_prefix_sum(tcu, x)
        assert np.allclose(scan, np.cumsum(x), atol=1e-8)
        assert np.isclose(scan[-1], total, atol=1e-8)
