"""Engine-level tests: suppression parsing, module mapping, filtering,
and the tree-clean acceptance gate over the real ``src/`` tree."""

from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.engine import (
    LintError,
    collect_suppressions,
    iter_python_files,
    module_name_for,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class TestSuppressionParsing:
    def test_single_code_with_reason(self):
        sups = collect_suppressions(
            "x = 1  # repro-lint: disable=LED001 -- charged above\n"
        )
        assert len(sups) == 1
        assert sups[0].codes == ("LED001",)
        assert sups[0].reason == "charged above"
        assert sups[0].line == 1

    def test_multiple_codes_and_case_folding(self):
        sups = collect_suppressions(
            "y = 2  # repro-lint: disable=led001, det001 -- twofer\n"
        )
        assert sups[0].codes == ("LED001", "DET001")

    def test_reasonless_suppression_has_none_reason(self):
        sups = collect_suppressions("z = 3  # repro-lint: disable=LED001\n")
        assert sups[0].reason is None

    def test_unrelated_comments_ignored(self):
        assert collect_suppressions("a = 1  # plain comment\n# noqa: E722\n") == []

    def test_suppression_only_applies_to_its_own_line(self):
        source = (
            "import numpy as np\n"
            "def charged_elsewhere(ledger, A):\n"
            "    ledger.charge_cpu(1)\n"
            "    return A\n"
            "# repro-lint: disable=LED001 -- wrong line, must not apply\n"
            "def free_pad(A):\n"
            "    return np.pad(A, 1)\n"
        )
        findings = lint_source(source, module="repro.core.x", select=["LED001"])
        assert [f.suppressed for f in findings if f.code == "LED001"] == [False]


class TestModuleNameFor:
    def test_anchors_on_repro_package(self, tmp_path):
        p = tmp_path / "src" / "repro" / "serve" / "workload.py"
        p.parent.mkdir(parents=True)
        p.write_text("x = 1\n")
        assert module_name_for(p) == "repro.serve.workload"

    def test_init_maps_to_package(self, tmp_path):
        p = tmp_path / "src" / "repro" / "core" / "__init__.py"
        p.parent.mkdir(parents=True)
        p.write_text("")
        assert module_name_for(p) == "repro.core"

    def test_no_anchor_falls_back_to_stem(self, tmp_path):
        p = tmp_path / "standalone.py"
        p.write_text("x = 1\n")
        assert module_name_for(p) == "standalone"


class TestEngineFiltering:
    SOURCE = (
        "import numpy as np\n"
        "def f(ledger, A):\n"
        "    ledger.charge_cpu(1)\n"
        "    return A\n"
        "def g(A):\n"
        "    rng = np.random.default_rng()\n"
        "    return np.pad(A, 1)\n"
    )

    def test_select_narrows_rules(self):
        findings = lint_source(self.SOURCE, module="repro.core.x", select=["DET001"])
        assert {f.code for f in findings} == {"DET001"}

    def test_ignore_drops_rules(self):
        findings = lint_source(self.SOURCE, module="repro.core.x", ignore=["DET001"])
        assert "DET001" not in {f.code for f in findings}
        assert "LED001" in {f.code for f in findings}

    def test_findings_sorted_by_position(self):
        findings = lint_source(self.SOURCE, module="repro.core.x")
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            lint_source("def broken(:\n", module="repro.core.x")


class TestIterPythonFiles:
    def test_expands_directories_and_dedups(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        a = tmp_path / "pkg" / "a.py"
        a.write_text("x = 1\n")
        (tmp_path / "pkg" / "note.txt").write_text("not python\n")
        files = list(iter_python_files([tmp_path, a]))
        assert [f.name for f in files] == ["a.py"]

    def test_missing_path_is_a_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="no such file"):
            list(iter_python_files([tmp_path / "absent"]))


class TestTreeCleanGate:
    """The ISSUE's acceptance criterion: the shipped tree is lint-clean
    and every suppression carries a written reason."""

    def test_src_has_no_unsuppressed_findings(self):
        findings, files_checked = lint_paths([REPO_SRC])
        unsuppressed = [f for f in findings if not f.suppressed]
        assert unsuppressed == [], "\n".join(f.format() for f in unsuppressed)
        assert files_checked > 50

    def test_every_suppression_in_src_has_a_reason(self):
        for file in iter_python_files([REPO_SRC]):
            for sup in collect_suppressions(file.read_text(encoding="utf-8")):
                assert sup.reason, f"{file}:{sup.line}: reasonless suppression"

    def test_det002_is_really_gone_from_workload(self):
        workload = REPO_SRC / "repro" / "serve" / "workload.py"
        source = workload.read_text(encoding="utf-8")
        findings = lint_source(
            source, path=str(workload), module="repro.serve.workload", select=["DET002"]
        )
        assert findings == []
        assert "SeedSequence" in source
