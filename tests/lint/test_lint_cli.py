"""CLI contract tests: exit codes, report formats, file output."""

import json

import pytest

from repro.lint.cli import main
from repro.lint.reporters import available_reporters, get_reporter

CLEAN = "def f(x):\n    return x + 1\n"
DIRTY = (
    "import numpy as np\n"
    "def stream():\n"
    "    return np.random.default_rng()\n"
)
SUPPRESSED = (
    "import numpy as np\n"
    "def stream():\n"
    "    return np.random.default_rng()"
    "  # repro-lint: disable=DET001 -- fixture stream, reseeded by caller\n"
)


@pytest.fixture
def tree(tmp_path):
    """A fake package tree whose paths carry the ``repro`` anchor so the
    CLI's path->module mapping puts files in rule scope."""
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    return pkg


def test_exit_zero_on_clean_tree(tree, capsys):
    (tree / "clean.py").write_text(CLEAN)
    assert main([str(tree)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_exit_one_on_finding(tree, capsys):
    (tree / "dirty.py").write_text(DIRTY)
    assert main([str(tree)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out


def test_suppressed_finding_exits_zero(tree, capsys):
    (tree / "hushed.py").write_text(SUPPRESSED)
    assert main([str(tree)]) == 0
    # hidden by default, shown with --show-suppressed
    assert "DET001" not in capsys.readouterr().out
    assert main(["--show-suppressed", str(tree)]) == 0
    shown = capsys.readouterr().out
    assert "DET001" in shown and "fixture stream" in shown


def test_exit_two_on_usage_errors(tree, capsys):
    assert main([]) == 2  # no paths
    assert main([str(tree / "absent.py")]) == 2  # missing path
    (tree / "clean.py").write_text(CLEAN)
    assert main(["--select", "NOPE999", str(tree)]) == 2  # unknown rule
    assert main(["--format", "xml", str(tree)]) == 2  # unknown reporter
    (tree / "broken.py").write_text("def broken(:\n")
    assert main([str(tree)]) == 2  # unparseable file
    err = capsys.readouterr().err
    assert "error:" in err


def test_json_report_shape(tree, capsys):
    (tree / "dirty.py").write_text(DIRTY)
    (tree / "hushed.py").write_text(SUPPRESSED)
    assert main(["--format", "json", str(tree)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["tool"] == "repro.lint"
    assert report["files_checked"] == 2
    assert report["summary"] == {"unsuppressed": 1, "suppressed": 1}
    [finding] = report["findings"]
    assert finding["code"] == "DET001"
    [sup] = report["suppressed"]
    assert sup["reason"] == "fixture stream, reseeded by caller"
    assert "DET001" in report["rules"]


def test_output_file(tree, tmp_path, capsys):
    (tree / "dirty.py").write_text(DIRTY)
    out_file = tmp_path / "report.json"
    assert main(["-f", "json", "-o", str(out_file), str(tree)]) == 1
    report = json.loads(out_file.read_text())
    assert report["summary"]["unsuppressed"] == 1
    assert str(out_file) in capsys.readouterr().out


def test_select_and_ignore(tree):
    (tree / "dirty.py").write_text(DIRTY)
    assert main(["--select", "LED001", str(tree)]) == 0
    assert main(["--ignore", "DET001", str(tree)]) == 0
    assert main(["--select", "det001", str(tree)]) == 1  # case folded


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("LED001", "DET001", "DET002", "REG001", "COST001", "EXC001"):
        assert code in out


def test_reporter_registry_rejects_unknown():
    assert set(available_reporters()) == {"json", "text"}
    with pytest.raises(ValueError, match="available"):
        get_reporter("xml")
