"""COST001 fixture: payload-value reads with no cost-only guard.

Both functions take a machine plus payload arrays and branch on the
values — a placeholder flowing in from a cost-only serve would crash or
silently diverge, and the charges stop being shape-only.
"""

import numpy as np


def pivot_scan(machine, A):
    machine.charge_cpu(A.size)
    return int(np.argmax(A))


def converged(tcu, X, Y):
    tcu.charge_cpu(X.size)
    return np.allclose(X, Y)
