"""EXC001 fixture: bare/broad excepts that can swallow LedgerError."""


def swallow_everything(run):
    try:
        return run()
    except:  # noqa: E722
        return None


def swallow_exception(run):
    try:
        return run()
    except Exception:
        return None


def swallow_in_tuple(run):
    try:
        return run()
    except (ValueError, BaseException):
        return None
