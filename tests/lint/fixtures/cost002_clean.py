"""COST002 clean fixture: the machine object is the single source of
every cost parameter, and unrelated literals stay unflagged."""


def modelled_split_cost(machine, rows):
    ell = machine.ell
    sqrt_m = machine.sqrt_m
    return rows * sqrt_m + ell


def level_makespan(machine, costs, units=None):
    units = machine.units if units is None else units
    total = 0.0  # accumulator, not a cost parameter
    for c in costs:
        total += c
    return total / units


def unrelated_helper(machine):
    # out-of-scope function name: literals here are fine
    ell = 32.0
    return ell
