"""REG001 fixture: registry discipline violations.

1. Subscripting another module's private table (bypasses the resolver
   and its uniform error message).
2. An owner-side lookup that lets the raw KeyError leak instead of
   raising with the known names listed.
"""

from repro.core import scheduling

_POLICIES = {}


def register_policy(policy):
    _POLICIES[policy.name] = policy
    return policy


def poke_foreign_registry(name):
    return scheduling._REGISTRY[name]


def leaky_lookup(name):
    return _POLICIES[name]


def swallowed_lookup(name):
    try:
        return _POLICIES[name]
    except KeyError:
        raise ValueError(f"no such policy {name!r}") from None
