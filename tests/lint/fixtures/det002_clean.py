"""DET002 clean fixture: the fixed, order-sensitive seed derivation —
the byte *sequence* feeds SeedSequence, so anagram names diverge."""

import numpy as np


def resident_seed(name: str) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence([0xC0FFEE, *name.encode()]))


def explicit_list(name: str) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(list(name.encode())))
