"""LED001 fixture: hardware work in a ledger-owning module, never charged.

This module "owns a ledger" because it mentions charge_cpu somewhere —
but the functions below do hardware/copy work without any charge
reachable, the exact shape of the PR 1 free-padding bug.
"""

import numpy as np


def charged_elsewhere(machine):
    machine.charge_cpu(1)


def pad_for_free(A, s):
    # the PR 1 bug class: a materialised padding copy with no charge
    pad = np.zeros((s - A.shape[0], A.shape[1]), dtype=A.dtype)
    return np.vstack([A, pad])


def multiply_for_free(A, B):
    return np.matmul(A, B)


def contract_for_free(A, B):
    return np.tensordot(A, B, axes=2)


def einsum_for_free(A, B):
    return np.einsum("ij,jk->ik", A, B)


def numpy_pad_for_free(A):
    return np.pad(A, ((0, 3), (0, 0)))


def copy_for_free(A):
    return A.copy()
