"""DET002 fixture: the *real pre-fix* seed derivation from
repro/serve/workload.py (PR 4 through PR 7) — kept verbatim so the rule
is pinned against the live bug it was written from: ``sum(b"ab") ==
sum(b"ba")``, so anagram-named request types shared weights.
"""

import numpy as np

from repro.core.machine import TCUMachine, placeholder


class MatmulRequestType:
    def __init__(self, name: str = "matmul", width: int = 64) -> None:
        self.name = name
        self.width = int(width)
        self._weights = None

    def _resident(self, machine: TCUMachine) -> np.ndarray:
        if machine.execute == "cost-only":
            return placeholder((self.width, self.width))
        if self._weights is None:
            rng = np.random.default_rng(0xC0FFEE + sum(self.name.encode()))
            self._weights = rng.standard_normal((self.width, self.width))
        return self._weights


class MLPRequestType:
    def __init__(self, name: str = "mlp", dims=(64, 32, 16)) -> None:
        self.name = name
        self.dims = tuple(int(d) for d in dims)
        self._weights = None

    def _layers(self, machine: TCUMachine) -> list:
        if machine.execute == "cost-only":
            return [
                placeholder((d_in, d_out))
                for d_in, d_out in zip(self.dims, self.dims[1:])
            ]
        if self._weights is None:
            rng = np.random.default_rng(0x11F + sum(self.name.encode()))
            self._weights = [
                rng.standard_normal((d_in, d_out)) / np.sqrt(d_in)
                for d_in, d_out in zip(self.dims, self.dims[1:])
            ]
        return self._weights
