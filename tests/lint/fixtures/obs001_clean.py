"""OBS001 clean fixture: timestamps read from the ledger clock."""


def name_timestamp(tracer, clock):
    tracer.instant("boot", ts=clock)


def attribute_timestamp(tracer, ledger, span):
    start = ledger.clock - span
    tracer.segment(0, "mlp", 1, start=start, dur=span)


def attribute_read(sampler, registry, ledger):
    sampler.sample(registry, ts=ledger.clock)


def non_timestamp_kwargs_are_free(tracer, clock):
    # batch/detail/size aren't timestamps — literals there are fine
    tracer.instant("retry", ts=clock, batch=3, detail="attempt 2")


def non_obs_receivers_are_free(engine, ledger):
    # arithmetic timestamps on non-telemetry objects are out of scope
    engine.schedule(at=ledger.clock + 1.0)
