"""LED001 suppressed fixture: deliberately free work, with a reason."""

import numpy as np


def charged_elsewhere(machine):
    machine.charge_cpu(1)


def stack_bookkeeping(groups):
    return np.vstack(groups)  # repro-lint: disable=LED001 -- row bookkeeping only; the unit consumes rows wherever they live


def stack_without_reason(groups):
    return np.vstack(groups)  # repro-lint: disable=LED001
