"""LED001 clean fixture: the same ops, priced through the ledger.

Charges may sit directly in the function or in a same-module helper it
calls (the `_concrete_padded` idiom) — both count as reachable.
"""

import numpy as np


def pad_and_charge(machine, A, s):
    machine.charge_cpu(s * A.shape[1])
    pad = np.zeros((s - A.shape[0], A.shape[1]), dtype=A.dtype)
    return np.vstack([A, pad])


def _charged_helper(machine, cost):
    machine.ledger.charge_cpu(cost)


def pad_via_helper(machine, A, s):
    _charged_helper(machine, s * A.shape[1])
    return np.pad(A, ((0, s - A.shape[0]), (0, 0)))


def copy_and_charge(machine, A):
    machine.charge_cpu(A.size)
    return A.copy()
