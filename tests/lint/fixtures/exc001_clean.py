"""EXC001 clean fixture: specific exceptions only (and a suppressed
broad handler with its written reason)."""


def specific(run):
    try:
        return run()
    except (ValueError, KeyError):
        return None


def suppressed_broad(run):
    try:
        return run()
    except Exception:  # repro-lint: disable=EXC001 -- top-level CLI boundary: report and re-raise
        raise
