"""DET001 clean fixture: every draw comes from a seeded, split stream."""

import numpy as np


def seeded_stream(seed):
    return np.random.default_rng(seed)


def split_streams(seed, k):
    children = np.random.SeedSequence(int(seed)).spawn(k)
    return [np.random.default_rng(ss) for ss in children]
