"""COST002 fixture: makespan/split code hardcoding cost parameters.

Every literal below happens to match one machine preset and mis-prices
all the others — split decisions would contradict the ledger off-preset.
"""


def modelled_split_cost(machine, rows):
    ell = 32.0
    sqrt_m = 4
    return rows * sqrt_m + ell


def level_makespan(machine, costs, units=3):
    total = sum(costs)
    return total / units


def choose_split(machine, rows):
    max_rows = 16
    s: int = -4
    return min(rows // max_rows, -s)


def split_cap_suppressed(machine, rows):
    units = 8  # repro-lint: disable=COST002 -- fixture: reasoned preset override
    return min(units, rows)
