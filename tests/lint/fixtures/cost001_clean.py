"""COST001 clean fixture: the three sanctioned shapes — reject
cost-only explicitly, substitute a placeholder, or stay shape-only."""

import numpy as np

from repro.core.machine import placeholder


def rejects_cost_only(machine, A):
    if machine.execute == "cost-only":
        raise ValueError("value-dependent; use a numeric machine")
    machine.charge_cpu(A.size)
    return int(np.argmax(A))


def placeholder_guard(machine, shape):
    if machine.execute == "cost-only":
        return placeholder(shape)
    return np.zeros(shape)


def shape_only(machine, A):
    machine.charge_cpu(A.shape[0] * A.shape[1])
    return A.shape
