"""REG001 clean fixture: the canonical register/names/resolve idiom."""

_POLICIES = {}


def register_policy(policy):
    _POLICIES[policy.name] = policy
    return policy


def available_policies():
    return tuple(_POLICIES)


def get_policy(name):
    try:
        return _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
