"""OBS001 fixture: emission timestamps recomputed at the call site."""


def literal_timestamp(tracer):
    tracer.instant("boot", ts=0.0)


def inline_arithmetic(tracer, ledger, elapsed):
    tracer.segment(0, "mlp", 1, start=ledger.clock - elapsed, dur=elapsed)


def fresh_call(sampler, registry, ledger):
    sampler.sample(registry, ts=float(ledger.total_time))


def negated_clock(run_tracer, clock):
    run_tracer.wait(3, "mlp", 1, start=-clock, end=clock)
