"""DET001 fixture: randomness outside a seeded stream, wall-clock reads."""

import random
import time

import numpy as np


def unseeded_stream():
    return np.random.default_rng()


def global_numpy_state(n):
    return np.random.standard_normal(n)


def stdlib_global_state():
    return random.random()


def wall_clock_seed():
    return time.time()
