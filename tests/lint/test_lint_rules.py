"""Fixture-based self-tests: every rule fires on its violating fixture,
stays silent on the fixed idiom, and honours reasoned suppressions."""

from pathlib import Path

import pytest

from repro.lint import lint_source
from repro.lint.engine import SUP001
from repro.lint.rules import available_rules, get_rule

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(name: str, module: str, select=None):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(
        source, path=name, module=module, select=select
    )


def active(findings, code=None):
    return [
        f
        for f in findings
        if not f.suppressed and (code is None or f.code == code)
    ]


def suppressed(findings, code):
    return [f for f in findings if f.suppressed and f.code == code]


# ----------------------------------------------------------------------
# LED001
# ----------------------------------------------------------------------
class TestLED001:
    def test_fires_on_every_uncharged_hardware_op(self):
        findings = lint_fixture(
            "led001_fires.py", "repro.core.fixture", select=["LED001"]
        )
        fired = active(findings, "LED001")
        # vstack, matmul, tensordot, einsum, pad, copy — one each
        assert len(fired) == 6
        ops = " ".join(f.message for f in fired)
        for op in ("np.vstack", "np.matmul", "np.tensordot", "np.einsum", "np.pad"):
            assert op in ops
        assert ".copy" in ops

    def test_clean_on_charged_idioms(self):
        findings = lint_fixture(
            "led001_clean.py", "repro.core.fixture", select=["LED001"]
        )
        assert active(findings, "LED001") == []

    def test_transitive_helper_charge_counts(self):
        findings = lint_fixture(
            "led001_clean.py", "repro.core.fixture", select=["LED001"]
        )
        # pad_via_helper charges only through _charged_helper
        assert all("pad_via_helper" not in f.message for f in findings)

    def test_suppression_with_reason_suppresses(self):
        findings = lint_fixture(
            "led001_suppressed.py", "repro.core.fixture", select=["LED001"]
        )
        assert len(suppressed(findings, "LED001")) == 1
        assert "row bookkeeping" in suppressed(findings, "LED001")[0].reason
        # the reasonless suppression does NOT suppress, and adds SUP001
        assert len(active(findings, "LED001")) == 1
        assert len(active(findings, SUP001)) == 1

    def test_out_of_scope_module_is_skipped(self):
        findings = lint_fixture(
            "led001_fires.py", "somepkg.module", select=["LED001"]
        )
        assert findings == []

    def test_non_ledger_module_is_skipped(self):
        # same ops, but the module never charges a ledger -> not in scope
        source = "import numpy as np\n\ndef f(A):\n    return A.copy()\n"
        findings = lint_source(
            source, module="repro.core.fixture", select=["LED001"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# DET001
# ----------------------------------------------------------------------
class TestDET001:
    def test_fires_on_unseeded_global_and_wall_clock(self):
        findings = lint_fixture(
            "det001_fires.py", "repro.core.fixture", select=["DET001"]
        )
        fired = active(findings, "DET001")
        assert len(fired) == 4
        msgs = " ".join(f.message for f in fired)
        assert "without a seed" in msgs
        assert "global RNG state" in msgs
        assert "stdlib global RNG" in msgs
        assert "wall clock" in msgs

    def test_clean_on_seeded_streams(self):
        findings = lint_fixture(
            "det001_clean.py", "repro.serve.fixture", select=["DET001"]
        )
        assert active(findings, "DET001") == []

    def test_scope_is_core_and_serve_only(self):
        findings = lint_fixture(
            "det001_fires.py", "repro.analysis.fixture", select=["DET001"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# DET002
# ----------------------------------------------------------------------
class TestDET002:
    def test_fires_on_the_real_prefix_workload_code(self):
        """The fixture is the verbatim pre-fix _resident/_layers code."""
        findings = lint_fixture(
            "det002_prefix_workload.py", "repro.serve.workload", select=["DET002"]
        )
        fired = active(findings, "DET002")
        assert len(fired) == 2  # MatmulRequestType._resident and MLPRequestType._layers
        assert all("anagram" in f.message for f in fired)

    def test_clean_on_order_sensitive_derivation(self):
        findings = lint_fixture(
            "det002_clean.py", "repro.serve.workload", select=["DET002"]
        )
        assert active(findings, "DET002") == []

    def test_anagram_collision_is_real_in_the_prefix_code(self):
        """Pin the *semantics* the rule encodes: the pre-fix derivation
        collides on anagram names, the fixed one does not."""
        assert sum("ab".encode()) == sum("ba".encode())
        import numpy as np

        pre_a = np.random.default_rng(0xC0FFEE + sum(b"ab")).standard_normal(4)
        pre_b = np.random.default_rng(0xC0FFEE + sum(b"ba")).standard_normal(4)
        assert np.array_equal(pre_a, pre_b)  # the bug
        post_a = np.random.default_rng(
            np.random.SeedSequence([0xC0FFEE, *b"ab"])
        ).standard_normal(4)
        post_b = np.random.default_rng(
            np.random.SeedSequence([0xC0FFEE, *b"ba"])
        ).standard_normal(4)
        assert not np.array_equal(post_a, post_b)  # the fix


# ----------------------------------------------------------------------
# REG001
# ----------------------------------------------------------------------
class TestREG001:
    def test_fires_on_foreign_subscript_and_leaky_lookup(self):
        findings = lint_fixture(
            "reg001_fires.py", "repro.serve.fixture", select=["REG001"]
        )
        fired = active(findings, "REG001")
        assert len(fired) == 3
        msgs = " ".join(f.message for f in fired)
        assert "foreign private registry" in msgs
        assert "known names" in msgs

    def test_clean_on_canonical_idiom(self):
        findings = lint_fixture(
            "reg001_clean.py", "repro.serve.fixture", select=["REG001"]
        )
        assert active(findings, "REG001") == []


# ----------------------------------------------------------------------
# COST001
# ----------------------------------------------------------------------
class TestCOST001:
    def test_fires_on_unguarded_value_reads(self):
        findings = lint_fixture(
            "cost001_fires.py", "repro.linalg.fixture", select=["COST001"]
        )
        fired = active(findings, "COST001")
        assert len(fired) == 2
        msgs = " ".join(f.message for f in fired)
        assert "np.argmax" in msgs and "np.allclose" in msgs

    def test_clean_on_guarded_functions(self):
        findings = lint_fixture(
            "cost001_clean.py", "repro.linalg.fixture", select=["COST001"]
        )
        assert active(findings, "COST001") == []


# ----------------------------------------------------------------------
# COST002
# ----------------------------------------------------------------------
class TestCOST002:
    def test_fires_on_hardcoded_cost_parameters(self):
        findings = lint_fixture(
            "cost002_fires.py", "repro.core.fixture", select=["COST002"]
        )
        fired = active(findings, "COST002")
        # ell, sqrt_m, units= default, max_rows, annotated s — one each
        assert len(fired) == 5
        msgs = " ".join(f.message for f in fired)
        for param in ("ell", "sqrt_m", "units", "max_rows"):
            assert param in msgs
        # each message points at the machine-object idiom
        assert all("machine." in f.message for f in fired)
        assert "machine.sqrt_m" in msgs  # the s -> sqrt_m mapping

    def test_reasoned_suppression_honoured(self):
        findings = lint_fixture(
            "cost002_fires.py", "repro.core.fixture", select=["COST002"]
        )
        assert len(suppressed(findings, "COST002")) == 1

    def test_clean_on_machine_sourced_parameters(self):
        findings = lint_fixture(
            "cost002_clean.py", "repro.core.fixture", select=["COST002"]
        )
        assert active(findings, "COST002") == []

    def test_out_of_scope_module_ignored(self):
        """The rule only polices repro.core — serving/analysis literals
        are someone else's business."""
        findings = lint_fixture(
            "cost002_fires.py", "repro.serve.fixture", select=["COST002"]
        )
        assert active(findings, "COST002") == []


# ----------------------------------------------------------------------
# EXC001
# ----------------------------------------------------------------------
class TestEXC001:
    def test_fires_on_bare_and_broad_excepts(self):
        findings = lint_fixture(
            "exc001_fires.py", "repro.core.fixture", select=["EXC001"]
        )
        fired = active(findings, "EXC001")
        assert len(fired) == 3
        msgs = " ".join(f.message for f in fired)
        assert "bare 'except:'" in msgs and "broad 'except" in msgs

    def test_clean_and_suppressed(self):
        findings = lint_fixture(
            "exc001_clean.py", "repro.serve.fixture", select=["EXC001"]
        )
        assert active(findings, "EXC001") == []
        assert len(suppressed(findings, "EXC001")) == 1
        assert "CLI boundary" in suppressed(findings, "EXC001")[0].reason

    def test_scope_excludes_other_packages(self):
        findings = lint_fixture(
            "exc001_fires.py", "repro.extmem.fixture", select=["EXC001"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# OBS001
# ----------------------------------------------------------------------
class TestOBS001:
    def test_fires_on_recomputed_timestamps(self):
        findings = lint_fixture(
            "obs001_fires.py", "repro.serve.fixture", select=["OBS001"]
        )
        fired = active(findings, "OBS001")
        # literal ts, inline BinOp start, fresh float() call, UnaryOp start
        assert len(fired) == 4
        msgs = " ".join(f.message for f in fired)
        assert "numeric literal" in msgs
        assert "inline arithmetic" in msgs
        assert "a fresh call" in msgs

    def test_clean_on_clock_reads(self):
        findings = lint_fixture(
            "obs001_clean.py", "repro.serve.fixture", select=["OBS001"]
        )
        assert active(findings, "OBS001") == []

    def test_scope_is_core_and_serve_only(self):
        findings = lint_fixture(
            "obs001_fires.py", "repro.obs.fixture", select=["OBS001"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# registry idiom of the lint package itself
# ----------------------------------------------------------------------
class TestRuleRegistry:
    def test_all_rules_registered(self):
        codes = available_rules()
        for code in (
            "LED001",
            "DET001",
            "DET002",
            "REG001",
            "COST001",
            "COST002",
            "EXC001",
            "OBS001",
        ):
            assert code in codes

    def test_get_rule_unknown_lists_names(self):
        with pytest.raises(ValueError, match="available"):
            get_rule("NOPE999")

    def test_get_rule_case_insensitive_and_passthrough(self):
        rule = get_rule("led001")
        assert rule.code == "LED001"
        assert get_rule(rule) is rule

    def test_every_rule_has_code_name_description(self):
        for code in available_rules():
            rule = get_rule(code)
            assert rule.code == code
            assert rule.name and rule.description
