"""Fitting utility tests."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    find_crossover,
    fit_constant,
    geometric_sweep,
    loglog_slope,
    power_law_fit,
)


class TestSlope:
    def test_exact_power_law(self):
        xs = [2, 4, 8, 16]
        ys = [x**2.5 for x in xs]
        assert np.isclose(loglog_slope(xs, ys), 2.5)

    def test_constant_series(self):
        assert np.isclose(loglog_slope([1, 2, 4], [5, 5, 5]), 0.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [0, 1])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])

    def test_power_law_fit_recovers_both(self):
        xs = [2, 4, 8, 16, 32]
        ys = [7 * x**1.5 for x in xs]
        e, c = power_law_fit(xs, ys)
        assert np.isclose(e, 1.5)
        assert np.isclose(c, 7.0)


class TestFitConstant:
    def test_exact_fit(self):
        pred = [1.0, 2.0, 4.0]
        meas = [3.0, 6.0, 12.0]
        fit = fit_constant(pred, meas)
        assert np.isclose(fit.constant, 3.0)
        assert fit.max_rel_error < 1e-12
        assert fit.within(0.01)

    def test_noisy_fit_bounded_error(self):
        rng = np.random.default_rng(0)
        pred = np.linspace(1, 10, 20)
        meas = 2.0 * pred * (1 + 0.05 * rng.standard_normal(20))
        fit = fit_constant(pred, meas)
        assert 1.8 < fit.constant < 2.2
        assert fit.max_rel_error < 0.2
        assert fit.mean_rel_error <= fit.max_rel_error

    def test_shape_mismatch_detected(self):
        """A wrong-exponent prediction shows large relative error."""
        xs = np.array([1.0, 4.0, 16.0, 64.0])
        meas = xs**2
        fit = fit_constant(xs, meas)  # linear prediction vs quadratic truth
        assert not fit.within(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_constant([], [])

    def test_zero_predictions_rejected(self):
        with pytest.raises(ValueError):
            fit_constant([0.0, 0.0], [1.0, 2.0])

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            fit_constant([1.0, 2.0], [-1.0, -2.0])


class TestCrossover:
    def test_simple_crossover(self):
        xs = [1, 2, 4, 8]
        a = [10, 9, 8, 7]
        b = [5, 7, 8.5, 10]
        cx = find_crossover(xs, a, b)
        assert cx is not None and 2 < cx < 4

    def test_no_crossover(self):
        xs = [1, 2, 4]
        assert find_crossover(xs, [1, 2, 3], [10, 20, 30]) is None

    def test_crossover_at_sample_point(self):
        xs = [1, 2, 4]
        cx = find_crossover(xs, [3, 2, 1], [1, 2, 3])
        assert cx is not None and 1 < cx < 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            find_crossover([1, 2], [1], [1, 2])


class TestSweep:
    def test_basic(self):
        assert geometric_sweep(4, 64) == [4, 8, 16, 32, 64]

    def test_factor(self):
        assert geometric_sweep(1, 100, factor=10) == [1, 10, 100]

    def test_stop_exclusive_behaviour(self):
        assert geometric_sweep(4, 63) == [4, 8, 16, 32]

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_sweep(0, 8)
