"""Table rendering tests."""

import pytest

from repro.analysis.tables import format_number, render_kv, render_table


class TestFormatNumber:
    def test_int_thousands(self):
        assert format_number(1234567) == "1,234,567"

    def test_small_float(self):
        assert format_number(0.12345) == "0.1235"

    def test_tiny_float_scientific(self):
        assert format_number(1e-7) == "1.000e-07"

    def test_huge_float_scientific(self):
        assert format_number(1e9) == "1.000e+09"

    def test_zero(self):
        assert format_number(0.0) == "0"

    def test_nan(self):
        assert format_number(float("nan")) == "nan"

    def test_bool_passthrough(self):
        assert format_number(True) == "True"

    def test_string_passthrough(self):
        assert format_number("abc") == "abc"


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]

    def test_title(self):
        out = render_table(["x"], [[1]], title="T1")
        assert out.splitlines()[0] == "T1"

    def test_alignment_width(self):
        out = render_table(["col"], [[123456]])
        lines = out.splitlines()
        assert len(lines[0]) == len(lines[1]) == len(lines[2])

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert len(out.splitlines()) == 2


class TestRenderKV:
    def test_basic(self):
        out = render_kv({"alpha": 1, "b": 2.5})
        assert "alpha : 1" in out
        assert "b     : 2.5" in out

    def test_title(self):
        out = render_kv({"k": 1}, title="Stats")
        assert out.splitlines()[0] == "Stats"

    def test_empty(self):
        assert render_kv({}) == ""
