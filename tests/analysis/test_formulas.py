"""Theorem formula sanity tests."""

import math

import pytest

from repro.analysis.formulas import (
    OMEGA0_CLASSICAL,
    OMEGA0_STRASSEN,
    THEOREM_FORMULAS,
    cor1_rectangular_mm,
    thm1_strassen_like_mm,
    thm2_dense_mm,
    thm3_sparse_mm,
    thm4_gaussian_elimination,
    thm5_transitive_closure,
    thm6_apsd,
    thm7_dft,
    thm8_stencil,
    thm9_integer_mul,
    thm10_karatsuba,
    thm11_polyeval,
)


class TestExponents:
    def test_omega0_values(self):
        assert OMEGA0_CLASSICAL == 1.5
        assert math.isclose(OMEGA0_STRASSEN, math.log(7) / math.log(4))
        assert OMEGA0_STRASSEN < OMEGA0_CLASSICAL


class TestSpecialisations:
    def test_thm1_with_classical_matches_thm2_shape(self):
        """At omega0 = 3/2 and l = 0: (n/m)^1.5 * m = n^1.5/sqrt(m)."""
        n, m = 4096, 64
        assert math.isclose(
            thm1_strassen_like_mm(n, m, 0.0, 1.5), thm2_dense_mm(n, m, 0.0)
        )

    def test_thm2_latency_term(self):
        n, m = 1024, 16
        assert thm2_dense_mm(n, m, 100.0) - thm2_dense_mm(n, m, 0.0) == (n / m) * 100.0

    def test_cor1_reduces_to_thm2_at_r_sqrt_n(self):
        """r = sqrt(n) makes the rectangular product square."""
        n, m, ell = 4096, 16, 8.0
        r = math.isqrt(n)
        assert math.isclose(cor1_rectangular_mm(n, r, m, ell), thm2_dense_mm(n, m, ell))

    def test_thm3_reduces_toward_thm1_at_z_n(self):
        """Dense output (Z = n, I = n): the sqrt(n/Z) prefix vanishes."""
        n, m = 4096, 16
        t3 = thm3_sparse_mm(n, n, n, m, 0.0, 1.5)
        t1 = thm1_strassen_like_mm(n, m, 0.0, 1.5)
        assert math.isclose(t3, t1 + n)

    def test_thm4_extra_term(self):
        n, m = 256, 16
        assert thm4_gaussian_elimination(n, m, 0.0) == thm2_dense_mm(n, m, 0.0) + n * 4

    def test_thm5_is_n_vertices(self):
        n, m = 64, 16
        # n^3/sqrt(m) + n^2 l/m + n^2 sqrt(m)
        assert thm5_transitive_closure(n, m, 0.0) == n**3 / 4 + n * n * 4

    def test_thm6_log_factor(self):
        n, m = 64, 16
        base = (n * n / m) ** 1.5 * m
        assert math.isclose(thm6_apsd(n, m, 0.0, 1.5), base * math.log2(n))

    def test_thm7_depth_clamps_to_one(self):
        assert thm7_dft(4, 256, 0.0) == 4.0  # n < m: single level

    def test_thm8_monotone_in_k(self):
        n, m = 4096, 16
        assert thm8_stencil(n, 64, m, 0.0) > thm8_stencil(n, 4, m, 0.0)

    def test_thm9_quadratic(self):
        m, kappa = 16, 32
        assert thm9_integer_mul(2048, m, 0.0, kappa) == 4 * thm9_integer_mul(
            1024, m, 0.0, kappa
        )

    def test_thm10_exponent(self):
        m, kappa = 16, 32
        ratio = thm10_karatsuba(4096, m, 0.0, kappa) / thm10_karatsuba(
            2048, m, 0.0, kappa
        )
        assert math.isclose(ratio, 3.0)  # doubling n triples Karatsuba work

    def test_thm10_below_base_clamps(self):
        m, kappa = 16, 32
        # n below one base-case: cost is the flat base cost
        assert thm10_karatsuba(8, m, 4.0, kappa) == math.sqrt(m) + 4.0 / math.sqrt(m)

    def test_thm11_terms(self):
        n, p, m = 256, 32, 16
        assert thm11_polyeval(n, p, m, 0.0) == p * n / 4 + p * 4


class TestRegistry:
    def test_all_theorems_present(self):
        assert set(THEOREM_FORMULAS) == {
            "thm1",
            "thm2",
            "cor1",
            "thm3",
            "thm4",
            "thm5",
            "thm6",
            "thm7",
            "thm8",
            "thm9",
            "thm10",
            "thm11",
        }

    @pytest.mark.parametrize("name", sorted(THEOREM_FORMULAS))
    def test_formulas_positive(self, name):
        fn = THEOREM_FORMULAS[name]
        args_by_name = {
            "thm1": (1024, 16, 8.0, 1.5),
            "thm2": (1024, 16, 8.0),
            "cor1": (1024, 8, 16, 8.0),
            "thm3": (1024, 256, 128, 16, 8.0, 1.5),
            "thm4": (1024, 16, 8.0),
            "thm5": (32, 16, 8.0),
            "thm6": (32, 16, 8.0, 1.5),
            "thm7": (1024, 16, 8.0),
            "thm8": (1024, 8, 16, 8.0),
            "thm9": (1024, 16, 8.0, 32),
            "thm10": (1024, 16, 8.0, 32),
            "thm11": (256, 16, 16, 8.0),
        }
        assert fn(*args_by_name[name]) > 0
