"""Report compiler tests."""

import re

import numpy as np
import pytest

from repro.analysis.report import (
    compile_report,
    latency_table,
    main,
    trace_table,
    utilization_table,
)
from repro import TensorProgram, matmul_lazy, run_program
from repro.core.machine import TCUMachine
from repro.core.parallel import ParallelTCUMachine
from repro.core.scheduling import schedule_batch
from repro.obs import Tracer
from repro.serve import (
    DeadlineAdmission,
    PoissonWorkload,
    ServingEngine,
    compute_metrics,
)


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "e2_thm2_size_sweep.txt").write_text("table two\n")
    (d / "e9_thm7_length_sweep.txt").write_text("table nine\n")
    (d / "zz_custom.txt").write_text("custom table\n")
    return d


class TestCompile:
    def test_contains_all_tables(self, results_dir):
        report = compile_report(results_dir)
        assert "table two" in report
        assert "table nine" in report
        assert "custom table" in report

    def test_section_titles(self, results_dir):
        report = compile_report(results_dir)
        assert "Theorem 2" in report
        assert "Theorem 7 — DFT" in report

    def test_ordering_follows_experiments(self, results_dir):
        report = compile_report(results_dir)
        assert report.index("table two") < report.index("table nine")

    def test_uncategorised_collected(self, results_dir):
        report = compile_report(results_dir)
        assert "(uncategorised)" in report

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_report(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(FileNotFoundError, match="benchmark"):
            compile_report(d)


class TestUtilizationTable:
    def test_renders_per_unit_rows_and_summary(self):
        sched = schedule_batch(np.array([8.0, 4.0, 4.0]), 2, "lpt")
        text = utilization_table(sched)
        assert "policy=lpt, p=2" in text
        assert "unit" in text and "busy share" in text
        assert "makespan 8" in text
        assert "utilisation 1" in text
        assert "gap bound 1.167" in text

    def test_machine_last_schedule_feeds_report(self):
        rng = np.random.default_rng(5)
        machine = ParallelTCUMachine(m=16, ell=2.0, units=3)
        machine.mm_batch([(rng.random((8, 4)), rng.random((4, 4))) for _ in range(5)])
        text = utilization_table(machine.last_schedule, title="batch report")
        assert text.startswith("batch report")
        # 5 calls spread over the 3 units appear in the calls column
        lines = [ln.split() for ln in text.splitlines() if ln.strip()[:1].isdigit()]
        assert sum(int(ln[1].replace(",", "")) for ln in lines) == 5

    def test_none_schedule_renders_stub(self):
        machine = ParallelTCUMachine(m=16, units=2)
        machine.mm_batch([])
        text = utilization_table(machine.last_schedule)
        assert "no batch scheduled" in text

    def test_plan_appends_split_decisions(self):
        rng = np.random.default_rng(9)
        machine = ParallelTCUMachine(m=16, ell=32.0, units=3)
        prog = TensorProgram()
        matmul_lazy(machine, prog, rng.random((48, 4)), rng.random((4, 4)))
        plan = run_program(prog, machine)
        assert plan.splits[0][0] > 1
        text = utilization_table(machine.last_schedule, plan=plan)
        assert "per-level split decisions" in text
        assert "split" in text and "modelled_makespan" in text
        # the chosen factor and its priced makespan appear in the body
        assert str(plan.splits[0][0]) in text
        assert f"{plan.modelled_makespans[0]:g}" in text

    def test_legacy_plan_without_splits_renders_unchanged(self):
        """Hand-built plans (splits=None) keep the plain report."""
        sched = schedule_batch(np.array([8.0, 4.0, 4.0]), 2, "lpt")
        class Legacy:
            splits = None
        text = utilization_table(sched, plan=Legacy())
        assert "per-level split decisions" not in text
        assert "makespan 8" in text


def _served_metrics(total, *, admission="unbounded", slo=None, deadline=None):
    machine = TCUMachine(m=16, ell=512.0)
    workload = PoissonWorkload(
        rate=2e-4, total=total, kind="matmul", rows=8, seed=1,
        slo=slo, deadline=deadline,
    )
    result = ServingEngine(machine, "timeout", admission=admission).serve(workload)
    return compute_metrics(result, slo=slo)


class TestLatencyTableDegenerate:
    def test_zero_requests_renders_without_crashing(self):
        m = _served_metrics(0)
        text = latency_table([("empty", m)])
        assert "empty" in text
        assert m.requests == 0

    def test_all_shed_run(self):
        # an absurd service estimate makes every deadline infeasible
        m = _served_metrics(
            20, admission=DeadlineAdmission(est_service=1e18), deadline=1.0
        )
        assert m.requests == 0 and m.shed == 20 and m.shed_rate == 1.0
        text = latency_table([("shed", m)])
        assert "shed" in text
        # no throughput fabricated out of zero completions
        assert m.throughput == 0.0

    def test_single_class_has_no_subrows(self):
        m = _served_metrics(10)
        text = latency_table([("one-class", m)])
        assert "one-class" in text
        assert "[p" not in text  # sub-rows only appear with >1 class


class TestTraceTable:
    def test_reconciles_against_result(self):
        machine = TCUMachine(m=16, ell=512.0)
        tracer = Tracer()
        workload = PoissonWorkload(rate=2e-4, total=12, kind="matmul", rows=8, seed=1)
        result = ServingEngine(machine, "timeout", tracer=tracer).serve(workload)
        text = trace_table(tracer, result, limit=5)
        assert "critical path" in text
        assert "deviation 0" in text
        # one body row per shown request, slowest first
        body = [ln for ln in text.splitlines() if ln.strip()[:1].isdigit()]
        assert len(body) == 5

    def test_limit_zero_keeps_footer(self):
        machine = TCUMachine(m=16, ell=512.0)
        tracer = Tracer()
        workload = PoissonWorkload(rate=2e-4, total=4, kind="matmul", rows=8, seed=1)
        result = ServingEngine(machine, "timeout", tracer=tracer).serve(workload)
        text = trace_table(tracer, result, limit=0)
        assert "busy_time" in text and "ledger" in text

    def test_footer_reconciles_to_exact_zeros_on_split_run(self):
        """Auto-split serving changes call shapes; the span/ledger
        reconciliation must still land on exact zeros."""
        machine = ParallelTCUMachine(m=16, ell=512.0, units=3)
        tracer = Tracer()
        workload = PoissonWorkload(rate=2e-4, total=12, kind="dft", rows=512, seed=3)
        result = ServingEngine(machine, "timeout", tracer=tracer).serve(workload)
        text = trace_table(tracer, result, limit=5)
        deviations = re.findall(r"deviation (\S+)", text)
        assert len(deviations) == 2
        assert all(d == "0" for d in deviations)


class TestMain:
    def test_writes_output_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([str(results_dir), str(out)]) == 0
        assert "table two" in out.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "table nine" in capsys.readouterr().out
