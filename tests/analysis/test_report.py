"""Report compiler tests."""

import pytest

from repro.analysis.report import compile_report, main


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "e2_thm2_size_sweep.txt").write_text("table two\n")
    (d / "e9_thm7_length_sweep.txt").write_text("table nine\n")
    (d / "zz_custom.txt").write_text("custom table\n")
    return d


class TestCompile:
    def test_contains_all_tables(self, results_dir):
        report = compile_report(results_dir)
        assert "table two" in report
        assert "table nine" in report
        assert "custom table" in report

    def test_section_titles(self, results_dir):
        report = compile_report(results_dir)
        assert "Theorem 2" in report
        assert "Theorem 7 — DFT" in report

    def test_ordering_follows_experiments(self, results_dir):
        report = compile_report(results_dir)
        assert report.index("table two") < report.index("table nine")

    def test_uncategorised_collected(self, results_dir):
        report = compile_report(results_dir)
        assert "(uncategorised)" in report

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            compile_report(tmp_path / "nope")

    def test_empty_dir_raises(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(FileNotFoundError, match="benchmark"):
            compile_report(d)


class TestMain:
    def test_writes_output_file(self, results_dir, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main([str(results_dir), str(out)]) == 0
        assert "table two" in out.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "table nine" in capsys.readouterr().out
