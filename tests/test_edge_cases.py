"""Edge cases and failure injection across module boundaries.

Degenerate sizes (empty, single-element, 1x1 units), shared ledgers,
dtype promotion, forced retry paths — the situations a downstream user
hits first and unit suites often miss.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import (
    CostLedger,
    ParallelTCUMachine,
    TCUMachine,
    matmul,
    sparse_mm,
    strassen_like_mm,
)
from repro.graph.apsd import apsd
from repro.graph.closure import transitive_closure
from repro.linalg.gaussian import ge_forward, ge_solve
from repro.transform.dft import batched_dft, dft
from repro.transform.stencil import HEAT_3X3, stencil_direct, stencil_tcu


class TestDegenerateSizes:
    def test_unit_size_one_machine(self, rng):
        """m = 1: every 'tensor call' is a scalar multiply-accumulate."""
        tcu = TCUMachine(m=1)
        A = rng.random((3, 5))
        B = rng.random((5, 2))
        assert np.allclose(matmul(tcu, A, B), A @ B)

    def test_one_by_one_matrices(self, tcu):
        assert np.allclose(matmul(tcu, np.array([[3.0]]), np.array([[4.0]])), [[12.0]])

    def test_ge_one_by_one(self, tcu):
        out = ge_forward(tcu, np.array([[5.0]]))
        assert out[0, 0] == 5.0

    def test_ge_solve_single_unknown(self, tcu):
        x = ge_solve(tcu, np.array([[2.0]]), np.array([6.0]))
        assert np.allclose(x, [3.0])

    def test_closure_single_vertex(self, tcu):
        assert transitive_closure(tcu, np.zeros((1, 1), dtype=np.int64))[0, 0] == 0

    def test_apsd_two_isolated_vertices(self, tcu):
        D = apsd(tcu, np.zeros((2, 2), dtype=np.int64))
        assert D[0, 0] == 0 and np.isinf(D[0, 1])

    def test_dft_single_point(self, tcu):
        assert np.allclose(dft(tcu, np.array([7.0])), [7.0])

    def test_batched_dft_zero_batch(self, tcu):
        out = batched_dft(tcu, np.zeros((0, 8)))
        assert out.shape == (0, 8)

    def test_stencil_single_row_grid(self, tcu, rng):
        A = rng.random((1, 20))
        k = 2
        assert np.allclose(
            stencil_tcu(tcu, A, HEAT_3X3, k),
            stencil_direct(tcu, A, HEAT_3X3, k),
            atol=1e-9,
        )

    def test_stencil_k_larger_than_grid(self, tcu, rng):
        A = rng.random((4, 4))
        k = 6
        assert np.allclose(
            stencil_tcu(tcu, A, HEAT_3X3, k),
            stencil_direct(tcu, A, HEAT_3X3, k),
            atol=1e-9,
        )

    def test_strassen_side_one(self, tcu):
        C = strassen_like_mm(tcu, np.array([[2.0]]), np.array([[8.0]]))
        assert C[0, 0] == 16.0


class TestSharedLedgers:
    def test_two_machines_one_ledger(self, rng):
        ledger = CostLedger()
        small = TCUMachine(m=16, ell=4.0, ledger=ledger)
        big = TCUMachine(m=64, ell=8.0, ledger=ledger)
        small.mm(rng.random((4, 4)), rng.random((4, 4)))
        big.mm(rng.random((8, 8)), rng.random((8, 8)))
        assert ledger.tensor_calls == 2
        assert small.time == big.time == ledger.total_time

    def test_sections_span_machines(self, rng):
        ledger = CostLedger()
        a = TCUMachine(m=16, ledger=ledger)
        b = TCUMachine(m=16, ledger=ledger)
        with ledger.section("combined"):
            a.mm(rng.random((4, 4)), rng.random((4, 4)))
            b.charge_cpu(10)
        assert ledger.section_time("combined") == ledger.total_time


class TestDtypePromotion:
    def test_int_times_float(self, tcu, rng):
        A = rng.integers(0, 5, (6, 6))
        B = rng.random((6, 6))
        C = matmul(tcu, A, B)
        assert C.dtype == np.float64
        assert np.allclose(C, A @ B)

    def test_float32_preserved_through_padding(self, tcu, rng):
        A = rng.random((5, 5)).astype(np.float32)
        B = rng.random((5, 5)).astype(np.float32)
        C = matmul(tcu, A, B)
        assert C.dtype == np.float32

    def test_complex_times_real(self, tcu, rng):
        A = rng.random((6, 6)) + 1j * rng.random((6, 6))
        B = rng.random((6, 6))
        assert np.iscomplexobj(matmul(tcu, A, B))


class TestForcedRetryPaths:
    def test_sparse_tiny_z_bound_forces_doubling(self, tcu, rng):
        """A wildly wrong Z hint must still converge via bucket doubling."""
        side = 32
        mk = lambda s: sp.random(
            side, side, density=0.1, random_state=s,
            data_rvs=lambda k: rng.integers(1, 5, k),
        ).astype(np.int64)
        A, B = mk(1), mk(2)
        C, stats = sparse_mm(tcu, A, B, z_bound=1, seed=5, return_stats=True)
        assert np.array_equal(C.toarray(), (A @ B).toarray())
        assert stats.final_buckets > 4  # doubled at least once

    def test_parallel_fork_keeps_units(self):
        machine = ParallelTCUMachine(m=16, ell=2.0, units=8)
        child = machine.fork()
        assert isinstance(child, ParallelTCUMachine)
        assert child.units == 8
        assert child.time == 0

    def test_ge_near_singular_blows_up_not_silently(self, tcu):
        """A singular leading minor raises rather than returning NaNs."""
        X = np.ones((8, 8))  # rank 1: zero pivot at step 2
        with pytest.raises(ZeroDivisionError):
            ge_forward(tcu, X)

    def test_machine_reset_midway(self, rng):
        tcu = TCUMachine(m=16, ell=4.0)
        matmul(tcu, rng.random((8, 8)), rng.random((8, 8)))
        tcu.reset()
        assert tcu.time == 0
        C = matmul(tcu, rng.random((4, 4)), np.eye(4))
        assert C.shape == (4, 4)


class TestNumericalStress:
    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_matmul_large_magnitudes(self, tcu):
        A = np.full((4, 4), 1e200)
        B = np.full((4, 4), 1e200)
        C = matmul(tcu, A, B)  # products exceed float64 range
        assert np.isinf(C).all()  # overflow propagates, no crash

    def test_matmul_denormals(self, tcu):
        A = np.full((4, 4), 1e-300)
        B = np.full((4, 4), 1e-300)
        C = matmul(tcu, A, B)
        assert (C == 0).all() or np.all(np.abs(C) < 1e-290)

    def test_dft_of_zeros(self, tcu):
        assert np.allclose(dft(tcu, np.zeros(64)), np.zeros(64))

    def test_stencil_zero_kernel(self, tcu, rng):
        W = np.zeros((3, 3))
        A = rng.random((8, 8))
        assert np.allclose(stencil_tcu(tcu, A, W, 2), 0.0)
