"""Theorem 2 / Corollary 1 dense multiplication tests."""

import numpy as np
import pytest

from repro import TCUMachine
from repro.analysis.formulas import thm2_dense_mm
from repro.extmem.bounds import dense_mm_semiring_lower_bound
from repro.matmul.dense import matmul, rectangular_mm, square_mm, tensor_call_count
from repro.matmul.strassen import STRASSEN_2X2


class TestCorrectness:
    @pytest.mark.parametrize(
        "p,q,r", [(4, 4, 4), (8, 8, 8), (3, 5, 7), (1, 9, 2), (13, 4, 4), (6, 17, 11)]
    )
    def test_arbitrary_shapes(self, tcu, rng, p, q, r):
        A = rng.random((p, q))
        B = rng.random((q, r))
        assert np.allclose(matmul(tcu, A, B), A @ B)

    def test_integer_product_exact(self, tcu, rng):
        A = rng.integers(-9, 9, (7, 6))
        B = rng.integers(-9, 9, (6, 5))
        C = matmul(tcu, A, B)
        assert np.array_equal(C, A @ B)
        assert np.issubdtype(C.dtype, np.integer)

    def test_complex_product(self, tcu, rng):
        A = rng.random((5, 5)) + 1j * rng.random((5, 5))
        B = rng.random((5, 5)) + 1j * rng.random((5, 5))
        assert np.allclose(matmul(tcu, A, B), A @ B)

    def test_empty_dimensions(self, tcu):
        A = np.zeros((0, 4))
        B = np.zeros((4, 3))
        assert matmul(tcu, A, B).shape == (0, 3)
        assert tcu.ledger.tensor_calls == 0

    def test_incompatible_shapes_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            matmul(tcu, rng.random((3, 4)), rng.random((5, 3)))

    def test_identity(self, tcu, rng):
        A = rng.random((9, 9))
        assert np.allclose(matmul(tcu, A, np.eye(9)), A)

    def test_square_mm_validates(self, tcu, rng):
        with pytest.raises(ValueError, match="square"):
            square_mm(tcu, rng.random((4, 5)), rng.random((5, 4)))


class TestAccounting:
    def test_call_count_matches_schedule(self, rng):
        tcu = TCUMachine(m=16)
        A = rng.random((16, 16))
        B = rng.random((16, 16))
        matmul(tcu, A, B)
        assert tcu.ledger.tensor_calls == tensor_call_count(16, 16, 16, 4) == 16

    def test_latency_paid_once_per_call(self, rng):
        tcu = TCUMachine(m=16, ell=100.0)
        matmul(tcu, rng.random((16, 16)), rng.random((16, 16)))
        assert tcu.ledger.latency_time == 100.0 * 16

    def test_theorem2_square_cost_shape(self, rng):
        """Model time tracks n^{3/2}/sqrt(m) + (n/m) l within a small
        constant across sizes (padding/additions are lower order)."""
        tcu = TCUMachine(m=16, ell=50.0)
        for side in (8, 16, 32, 64):
            tcu.reset()
            matmul(tcu, rng.random((side, side)), rng.random((side, side)))
            n = side * side
            predicted = thm2_dense_mm(n, tcu.m, tcu.ell)
            assert predicted <= tcu.time <= 5 * predicted

    def test_never_beats_semiring_lower_bound(self, rng):
        """Theorem 2's matching lower bound: the *tensor+latency* time
        of the schedule cannot go below n^{3/2}/sqrt(m) + l n/m."""
        for m, ell in ((16, 0.0), (16, 64.0), (64, 16.0)):
            tcu = TCUMachine(m=m, ell=ell)
            side = 32
            matmul(tcu, rng.random((side, side)), rng.random((side, side)))
            bound = dense_mm_semiring_lower_bound(side * side, m, ell)
            assert tcu.ledger.tensor_total >= bound * 0.999

    def test_tall_streaming_cheaper_than_square_calls(self, rng):
        """The Section 3 asymmetry: one tall call beats n/sqrt(m)
        square calls whenever l > 0."""
        tall = TCUMachine(m=16, ell=10.0)
        square = TCUMachine(m=16, ell=10.0)
        A = rng.random((64, 4))
        B = rng.random((4, 4))
        tall.mm(A, B)
        for i in range(16):
            square.mm(A[4 * i : 4 * (i + 1)], B)
        assert tall.time < square.time

    def test_padding_charged_when_needed(self, rng):
        tcu = TCUMachine(m=16)
        matmul(tcu, rng.random((4, 3)), rng.random((3, 4)))
        assert tcu.ledger.cpu_time > 0

    def test_charge_padding_flag(self, rng):
        a = TCUMachine(m=16)
        b = TCUMachine(m=16)
        A = rng.random((4, 3))
        B = rng.random((3, 4))
        matmul(a, A, B, charge_padding=True)
        matmul(b, A, B, charge_padding=False)
        assert a.time > b.time


class TestRectangular:
    @pytest.mark.parametrize("r", [2, 4, 8, 32])
    def test_corollary1_shapes(self, tcu, rng, r):
        """sqrt(n) x r by r x sqrt(n) products for r both sides of sqrt(n)."""
        sqrt_n = 8
        A = rng.random((sqrt_n, r))
        B = rng.random((r, sqrt_n))
        assert np.allclose(rectangular_mm(tcu, A, B), A @ B)

    def test_with_strassen_decomposition(self, tcu, rng):
        A = rng.random((8, 16))
        B = rng.random((16, 8))
        C = rectangular_mm(tcu, A, B, algorithm=STRASSEN_2X2)
        assert np.allclose(C, A @ B)

    def test_strassen_square_decomposition_ragged(self, tcu, rng):
        A = rng.random((6, 15))
        B = rng.random((15, 6))
        C = rectangular_mm(tcu, A, B, algorithm=STRASSEN_2X2)
        assert np.allclose(C, A @ B)

    def test_cost_linear_in_r(self, rng):
        """Corollary 1: at l = 0 model time grows ~linearly with r."""
        times = []
        for r in (8, 16, 32, 64):
            tcu = TCUMachine(m=16)
            rectangular_mm(tcu, rng.random((16, r)), rng.random((r, 16)))
            times.append(tcu.time)
        ratios = [times[i + 1] / times[i] for i in range(3)]
        for ratio in ratios:
            assert 1.7 < ratio < 2.3

    def test_incompatible_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            rectangular_mm(tcu, rng.random((4, 5)), rng.random((4, 5)))
