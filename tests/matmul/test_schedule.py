"""Tiling/padding helper tests."""

import numpy as np
import pytest

from repro.matmul.schedule import (
    block_view,
    ceil_to_multiple,
    grid_shape,
    pad_matrix,
    padded_copy_cost,
    strip_view,
)


class TestCeilToMultiple:
    @pytest.mark.parametrize(
        "value,multiple,expected",
        [(0, 4, 4), (1, 4, 4), (4, 4, 4), (5, 4, 8), (16, 4, 16), (17, 5, 20)],
    )
    def test_values(self, value, multiple, expected):
        assert ceil_to_multiple(value, multiple) == expected

    def test_rejects_bad_multiple(self):
        with pytest.raises(ValueError):
            ceil_to_multiple(5, 0)


class TestPadMatrix:
    def test_noop_returns_same_object(self, rng):
        A = rng.random((4, 4))
        assert pad_matrix(A, 4, 4) is A

    def test_pads_with_zeros(self, rng):
        A = rng.random((3, 2))
        P = pad_matrix(A, 4, 4)
        assert P.shape == (4, 4)
        assert np.array_equal(P[:3, :2], A)
        assert (P[3:, :] == 0).all() and (P[:, 2:] == 0).all()

    def test_preserves_dtype(self):
        A = np.ones((2, 2), dtype=np.int64)
        assert pad_matrix(A, 4, 4).dtype == np.int64

    def test_cannot_shrink(self, rng):
        with pytest.raises(ValueError):
            pad_matrix(rng.random((4, 4)), 2, 4)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pad_matrix(np.ones(4), 4, 4)

    def test_copy_cost(self, rng):
        A = rng.random((3, 3))
        assert padded_copy_cost(A, 4, 4) == 16
        assert padded_copy_cost(A, 3, 3) == 0


class TestViews:
    def test_block_view_covers_matrix(self, rng):
        A = rng.random((8, 12))
        blocks = list(block_view(A, 4))
        assert len(blocks) == 2 * 3
        i, j, blk = blocks[-1]
        assert (i, j) == (1, 2)
        assert np.shares_memory(blk, A)

    def test_block_view_requires_divisibility(self, rng):
        with pytest.raises(ValueError):
            list(block_view(rng.random((6, 8)), 4))

    def test_strip_view(self, rng):
        A = rng.random((5, 8))
        strips = list(strip_view(A, 4))
        assert len(strips) == 2
        assert strips[0][1].shape == (5, 4)
        assert np.shares_memory(strips[0][1], A)

    def test_strip_view_requires_divisibility(self, rng):
        with pytest.raises(ValueError):
            list(strip_view(rng.random((5, 6)), 4))

    def test_grid_shape(self):
        assert grid_shape(5, 9, 4) == (2, 3)
        assert grid_shape(0, 0, 4) == (1, 1)
