"""Theorem 3 output-sensitive sparse multiplication tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import TCUMachine
from repro.matmul.sparse import SparseRecoveryError, sparse_mm


def random_sparse(side, density, rng, seed):
    """Random integer sparse matrix (integers keep recovery exact)."""
    return sp.random(
        side,
        side,
        density=density,
        random_state=seed,
        data_rvs=lambda k: rng.integers(1, 6, k),
    ).astype(np.int64)


class TestCorrectness:
    @pytest.mark.parametrize("side,density", [(16, 0.1), (32, 0.05), (48, 0.03)])
    def test_matches_dense_product(self, tcu, rng, side, density):
        A = random_sparse(side, density, rng, 1)
        B = random_sparse(side, density, rng, 2)
        C = sparse_mm(tcu, A, B, seed=7)
        assert np.array_equal(C.toarray(), (A @ B).toarray())

    def test_dense_numpy_inputs_accepted(self, tcu, rng):
        A = np.zeros((16, 16), dtype=np.int64)
        A[2, 3] = 4
        A[7, 7] = 1
        B = np.zeros((16, 16), dtype=np.int64)
        B[3, 5] = 2
        B[7, 0] = 3
        C = sparse_mm(tcu, A, B, seed=1)
        assert np.array_equal(C.toarray(), A @ B)

    def test_zero_operand_shortcut(self, tcu):
        A = sp.csr_matrix((16, 16))
        B = sp.csr_matrix((16, 16))
        C, stats = sparse_mm(tcu, A, B, return_stats=True)
        assert C.nnz == 0
        assert stats.rounds == 0
        assert tcu.ledger.tensor_calls == 0

    def test_orthogonal_supports_empty_product(self, tcu):
        """Non-zero operands whose product is exactly zero."""
        A = sp.csr_matrix(([1, 2], ([0, 1], [0, 1])), shape=(16, 16), dtype=np.int64)
        B = sp.csr_matrix(([3], ([5], [5])), shape=(16, 16), dtype=np.int64)
        C = sparse_mm(tcu, A, B, seed=3)
        assert C.nnz == 0

    def test_float_values(self, tcu, rng):
        A = sp.random(24, 24, density=0.05, random_state=5).astype(np.float64)
        B = sp.random(24, 24, density=0.05, random_state=6).astype(np.float64)
        C = sparse_mm(tcu, A, B, seed=2)
        assert np.allclose(C.toarray(), (A @ B).toarray(), atol=1e-8)

    def test_mismatched_shapes_rejected(self, tcu):
        with pytest.raises(ValueError, match="square"):
            sparse_mm(tcu, sp.eye(4), sp.eye(5))

    def test_z_bound_hint_used(self, tcu, rng):
        A = random_sparse(32, 0.04, rng, 3)
        B = random_sparse(32, 0.04, rng, 4)
        expected = (A @ B).toarray()
        C, stats = sparse_mm(
            tcu, A, B, z_bound=int((expected != 0).sum()), seed=11, return_stats=True
        )
        assert np.array_equal(C.toarray(), expected)

    def test_identity_times_sparse(self, tcu, rng):
        A = sp.eye(16, dtype=np.int64, format="csr")
        B = random_sparse(16, 0.1, rng, 8)
        C = sparse_mm(tcu, A, B, seed=4)
        assert np.array_equal(C.toarray(), B.toarray())


class TestDiagnostics:
    def test_stats_populated(self, tcu, rng):
        A = random_sparse(24, 0.05, rng, 9)
        B = random_sparse(24, 0.05, rng, 10)
        C, stats = sparse_mm(tcu, A, B, seed=5, return_stats=True)
        assert stats.rounds >= 1
        assert stats.input_nnz == A.nnz + B.nnz
        assert stats.recovered == C.nnz
        assert not stats.used_dense_fallback

    def test_failure_raises_without_fallback(self, tcu, rng):
        A = random_sparse(24, 0.08, rng, 11)
        B = random_sparse(24, 0.08, rng, 12)
        with pytest.raises(SparseRecoveryError):
            sparse_mm(tcu, A, B, seed=6, max_rounds=1, fallback_dense=False)

    def test_fallback_still_correct(self, tcu, rng):
        A = random_sparse(24, 0.08, rng, 13)
        B = random_sparse(24, 0.08, rng, 14)
        C, stats = sparse_mm(
            tcu, A, B, seed=7, max_rounds=1, fallback_dense=True, return_stats=True
        )
        assert stats.used_dense_fallback
        assert np.array_equal(C.toarray(), (A @ B).toarray())


class TestCostBehaviour:
    def test_sparser_output_is_cheaper(self, rng):
        """Output sensitivity: fewer output non-zeros -> fewer buckets
        -> cheaper compressed products."""
        side = 48
        sparse_time = dense_time = None
        tcu = TCUMachine(m=16)
        A = random_sparse(side, 0.01, rng, 15)
        B = random_sparse(side, 0.01, rng, 16)
        sparse_mm(tcu, A, B, seed=8)
        sparse_time = tcu.time
        tcu2 = TCUMachine(m=16)
        A2 = random_sparse(side, 0.2, rng, 17)
        B2 = random_sparse(side, 0.2, rng, 18)
        sparse_mm(tcu2, A2, B2, seed=9)
        dense_time = tcu2.time
        assert sparse_time < dense_time

    def test_input_term_charged(self, tcu, rng):
        A = random_sparse(16, 0.1, rng, 19)
        B = random_sparse(16, 0.1, rng, 20)
        sparse_mm(tcu, A, B, seed=10)
        assert tcu.ledger.cpu_time >= 3 * (A.nnz + B.nnz)
