"""Theorem 1 Strassen-like recursion tests."""

import math

import numpy as np
import pytest

from repro import TCUMachine
from repro.analysis.fitting import loglog_slope
from repro.matmul.strassen import (
    CLASSICAL_2X2,
    STRASSEN_2X2,
    BilinearAlgorithm,
    default_cutoff,
    recursion_depth,
    strassen_like_mm,
)


class TestSchemes:
    def test_classical_parameters(self):
        assert CLASSICAL_2X2.n0 == 4
        assert CLASSICAL_2X2.p0 == 8
        assert math.isclose(CLASSICAL_2X2.omega0, 1.5)

    def test_strassen_parameters(self):
        assert STRASSEN_2X2.n0 == 4
        assert STRASSEN_2X2.p0 == 7
        assert math.isclose(STRASSEN_2X2.omega0, math.log(7) / math.log(4))

    def test_validate_passes_builtins(self):
        CLASSICAL_2X2.validate()
        STRASSEN_2X2.validate()

    def test_validate_rejects_bad_index(self):
        bad = BilinearAlgorithm(
            name="bad",
            block=2,
            products=(({(2, 0): 1}, {(0, 0): 1}),),
            c_terms={(0, 0): ((0, 1),)},
        )
        with pytest.raises(ValueError, match="out of range"):
            bad.validate()

    def test_validate_rejects_bad_product_index(self):
        bad = BilinearAlgorithm(
            name="bad",
            block=2,
            products=(({(0, 0): 1}, {(0, 0): 1}),),
            c_terms={(0, 0): ((5, 1),)},
        )
        with pytest.raises(ValueError, match="product index"):
            bad.validate()


class TestCorrectness:
    @pytest.mark.parametrize("alg", [CLASSICAL_2X2, STRASSEN_2X2], ids=lambda a: a.name)
    @pytest.mark.parametrize("side", [4, 8, 16, 20, 31, 64])
    def test_matches_numpy(self, tcu, rng, alg, side):
        A = rng.random((side, side))
        B = rng.random((side, side))
        C = strassen_like_mm(tcu, A, B, algorithm=alg, cutoff=8)
        assert np.allclose(C, A @ B)

    def test_non_square_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="square"):
            strassen_like_mm(tcu, rng.random((4, 6)), rng.random((6, 4)))

    def test_mismatched_rejected(self, tcu, rng):
        with pytest.raises(ValueError):
            strassen_like_mm(tcu, rng.random((4, 4)), rng.random((8, 8)))

    def test_integer_exact_classical(self, tcu, rng):
        A = rng.integers(-9, 9, (16, 16))
        B = rng.integers(-9, 9, (16, 16))
        C = strassen_like_mm(tcu, A, B, algorithm=CLASSICAL_2X2, cutoff=4)
        assert np.array_equal(C, A @ B)

    def test_cutoff_below_block_rejected(self, tcu, rng):
        with pytest.raises(ValueError, match="cutoff"):
            strassen_like_mm(tcu, rng.random((8, 8)), rng.random((8, 8)), cutoff=1)


class TestRecursionStructure:
    def test_default_cutoff_is_paper_boundary(self):
        tcu = TCUMachine(m=16)
        assert default_cutoff(tcu, STRASSEN_2X2) == math.isqrt(16 * 4) == 8

    def test_base_case_uses_dense_schedule(self, rng):
        """At side <= cutoff no linear-combination work happens."""
        tcu = TCUMachine(m=16)
        strassen_like_mm(tcu, rng.random((8, 8)), rng.random((8, 8)))
        # one level below cutoff=8: the dense schedule issues 4 calls
        assert tcu.ledger.tensor_calls == 4

    def test_recursion_depth_helper(self):
        assert recursion_depth(8, 8, 2) == 0
        assert recursion_depth(16, 8, 2) == 1
        assert recursion_depth(64, 8, 2) == 3
        assert recursion_depth(17, 8, 2) == 2  # pads 17 -> 18 -> 9 -> 5

    def test_strassen_issues_seven_to_classical_eight(self, rng):
        """One recursion level: 7 vs 8 subproblems."""
        counts = {}
        for alg in (STRASSEN_2X2, CLASSICAL_2X2):
            tcu = TCUMachine(m=16)
            strassen_like_mm(
                tcu,
                rng.random((16, 16)),
                rng.random((16, 16)),
                algorithm=alg,
                cutoff=8,
            )
            counts[alg.name] = tcu.ledger.tensor_calls
        assert counts["strassen"] * 8 == counts["classical"] * 7


class TestCostShape:
    def test_exponent_separation(self, rng):
        """Log-log slopes in matrix *area* approach omega0 for each scheme."""
        sides = [16, 32, 64, 128]
        slopes = {}
        for alg in (CLASSICAL_2X2, STRASSEN_2X2):
            times = []
            for side in sides:
                tcu = TCUMachine(m=16)
                strassen_like_mm(
                    tcu,
                    rng.random((side, side)),
                    rng.random((side, side)),
                    algorithm=alg,
                    cutoff=8,
                )
                times.append(tcu.time)
            slopes[alg.name] = loglog_slope([s * s for s in sides], times)
        assert abs(slopes["classical"] - 1.5) < 0.1
        assert abs(slopes["strassen"] - STRASSEN_2X2.omega0) < 0.12
        assert slopes["strassen"] < slopes["classical"]

    def test_strassen_wins_eventually(self, rng):
        """Theorem 1: fewer subproblems beats more, for large n/m."""
        side = 128
        times = {}
        for alg in (CLASSICAL_2X2, STRASSEN_2X2):
            tcu = TCUMachine(m=16)
            strassen_like_mm(
                tcu,
                rng.random((side, side)),
                rng.random((side, side)),
                algorithm=alg,
                cutoff=8,
            )
            times[alg.name] = tcu.time
        assert times["strassen"] < times["classical"]

    def test_larger_unit_is_faster(self, rng):
        side = 64
        times = []
        for m in (16, 64, 256):
            tcu = TCUMachine(m=m)
            strassen_like_mm(tcu, rng.random((side, side)), rng.random((side, side)))
            times.append(tcu.time)
        assert times[0] > times[1] > times[2]
