#!/usr/bin/env python
"""Graph analytics on a tensor unit: reachability and shortest paths.

Builds a small-world communication graph, computes its transitive
closure (Theorem 5) and all-pairs shortest distances via Seidel's
algorithm (Theorem 6) on the simulated TCU, and compares the model
cost against plain RAM baselines — the paper's claim that graph
problems inherit the tensor unit's sqrt(m) matrix-multiply advantage.

Run:  python examples/graph_analytics.py
"""

import networkx as nx
import numpy as np

from repro import TCUMachine
from repro.baselines.ram import RAMMachine, ram_apsd_bfs, ram_transitive_closure
from repro.graph import SeidelStats, apsd, transitive_closure
from repro.analysis.tables import render_table


def main() -> None:
    n = 96
    G = nx.connected_watts_strogatz_graph(n, 6, 0.2, seed=7)
    A = nx.to_numpy_array(G, dtype=np.int64)
    tcu = TCUMachine(m=64, ell=32.0)

    # --- reachability --------------------------------------------------
    with tcu.section("closure"):
        # direct the edges (i -> j for i < j) to make closure non-trivial
        directed = np.triu(A)
        closure = transitive_closure(tcu, directed)
    ram = RAMMachine()
    ram_closure = ram_transitive_closure(ram, directed)
    assert np.array_equal(closure, ram_closure)
    closure_rows = [
        ["reachable pairs", int(closure.sum()), int(closure.sum())],
        ["model time", tcu.ledger.section_time("closure"), ram.time],
    ]

    # --- shortest distances --------------------------------------------
    stats = SeidelStats()
    with tcu.section("apsd"):
        D = apsd(tcu, A, stats=stats)
    ram2 = RAMMachine()
    D_ref = ram_apsd_bfs(ram2, A)
    assert np.array_equal(D, D_ref)
    ecc = D.max(axis=1)
    apsd_rows = [
        ["diameter", int(D.max()), int(D_ref.max())],
        ["mean distance", float(D[np.isfinite(D)].mean()), float(D_ref[np.isfinite(D_ref)].mean())],
        ["radius", int(ecc.min()), int(ecc.min())],
        ["Seidel recursion depth", stats.depth, "-"],
        ["model time", tcu.ledger.section_time("apsd"), ram2.time],
    ]

    print(render_table(["quantity", "TCU", "RAM baseline"], closure_rows,
                       title=f"transitive closure of a {n}-vertex DAG (Theorem 5)"))
    print()
    print(render_table(["quantity", "TCU (Seidel)", "RAM (n x BFS)"], apsd_rows,
                       title=f"all-pairs shortest distances (Theorem 6)"))
    print()
    speed_closure = ram.time / tcu.ledger.section_time("closure")
    print(f"closure: TCU is {speed_closure:.1f}x cheaper in model time "
          f"(sqrt(m) = {tcu.sqrt_m} would be the ideal factor)")
    print("apsd: on a graph this sparse, n BFS passes are cheap; Seidel's "
          "matrix route is the dense-graph / worst-case-guarantee tool, "
          "and inside it the TCU still provides the sqrt(m) MM advantage.")


if __name__ == "__main__":
    main()
