#!/usr/bin/env python
"""Online inference serving on the TPUv1 preset — dynamic batching vs SLOs.

The (m, l)-TCU prices every tensor call at ``n*sqrt(m) + l``, and the
TPUv1 preset makes ``l`` enormous (the weight matrix is re-encoded
through TensorFlow per invocation, §3.1).  Serving one request per call
therefore pays ~l per request; dynamic batching amortises it — at the
price of queueing early arrivals.  This walkthrough sweeps offered load
on a cost-only TPUv1 and compares three batching policies:

* ``size-1``     — no batching (a fresh call per request);
* ``timeout``    — release when the oldest request has aged T;
* ``continuous`` — serve whatever is queued the moment the unit frees.

Everything is model time from the CostLedger, so the numbers are exact
and machine-independent; the cost-only engine replays thousands of
requests in milliseconds of wall clock.

Run:  python examples/serving_sim.py
"""

from repro.analysis.report import latency_table
from repro.analysis.tables import render_table
from repro.core.presets import TPU_V1
from repro.serve import (
    ContinuousBatcher,
    PoissonWorkload,
    ServingEngine,
    TimeoutBatcher,
    compute_metrics,
    size1_capacity,
    tpu_mlp_request_type,
)

# A 2-layer 256-wide MLP: each layer is exactly one resident 256x256
# block on the TPU (sqrt(m)=256), so a batch pays one latency per layer.
# (Shared with benchmarks/bench_serving.py via repro.serve.scenarios;
# size1_capacity() measures ~5.9e5 model time per unbatched request —
# two tensor calls at 256*256 + l each, the ReLU, and the charged
# padding copies, with the preset's l=131072.)
MLP = tpu_mlp_request_type()

REQUESTS = 1200
SLO = 8e6  # end-to-end latency objective


def run(policy, period, seed=0):
    machine = TPU_V1.create(execute="cost-only", trace_calls=False)
    workload = PoissonWorkload(
        rate=1.0 / period,
        total=REQUESTS,
        kind=MLP.name,
        rows=256,
        slo=SLO,
        seed=seed,
    )
    result = ServingEngine(machine, policy).serve(workload)
    return compute_metrics(result)


def main() -> None:
    capacity = size1_capacity()
    loads = [
        ("light  (0.6x)", capacity / 0.6),
        ("at size-1 cap", capacity / 1.0),
        ("heavy  (1.5x)", capacity / 1.5),
    ]
    policies = [
        ("size-1", lambda: ContinuousBatcher(max_size=1)),
        ("timeout T=2e6", lambda: TimeoutBatcher(timeout=2e6, max_size=64)),
        ("continuous", lambda: ContinuousBatcher(max_size=64)),
    ]

    for policy_name, make_policy in policies:
        entries = [(label, run(make_policy(), period)) for label, period in loads]
        print(latency_table(entries, title=f"TPUv1 cost-only serving — policy: {policy_name}"))
        print()

    # head-to-head at the overload point: batching keeps the tail flat
    rows = []
    for policy_name, make_policy in policies:
        m = run(make_policy(), capacity / 1.5)
        rows.append(
            [policy_name, m.batch_size_mean, m.throughput * 1e6, m.latency_p99, m.slo_attainment]
        )
    print(render_table(
        ["policy", "mean batch", "thr x1e6", "p99 latency", "SLO attainment"],
        rows,
        title="1.5x the size-1 capacity: latency amortisation is the whole game",
    ))
    print()
    print(
        "Reading the tables: past one request per size-1 service time the\n"
        "size-1 queue diverges and its p99 explodes, while the batching\n"
        "policies amortise the TPU's huge per-call latency over the whole\n"
        "batch and absorb ~2x the load with a bounded tail — the Theorem 2\n"
        "latency-amortisation argument, played out as a serving policy.\n"
        "Continuous batching even wins at light load (batching is free when\n"
        "the queue is non-empty); the timeout policy deliberately trades p50\n"
        "for fuller batches, which pays off only once the unit saturates."
    )


if __name__ == "__main__":
    main()
