#!/usr/bin/env python
"""Online inference serving on the TPUv1 preset — dynamic batching vs SLOs.

The (m, l)-TCU prices every tensor call at ``n*sqrt(m) + l``, and the
TPUv1 preset makes ``l`` enormous (the weight matrix is re-encoded
through TensorFlow per invocation, §3.1).  Serving one request per call
therefore pays ~l per request; dynamic batching amortises it — at the
price of queueing early arrivals.  This walkthrough sweeps offered load
on a cost-only TPUv1 and compares three batching policies:

* ``size-1``     — no batching (a fresh call per request);
* ``timeout``    — release when the oldest request has aged T;
* ``continuous`` — serve whatever is queued the moment the unit frees.

The second act is the PR5 story: a **two-class overload** where
priority-2 interactive requests share the TPU with priority-0 bulk
jobs (huge 8-layer MLP forward passes).  Run-to-completion FIFO makes
every interactive request that lands behind a bulk batch wait out the
whole multi-layer service; with ``preempt=True`` the engine
checkpoints the bulk batch at its next plan-level boundary, serves the
interactive class, and resumes — paying the resident-block re-load
through the ledger's ``reload`` column, never for free.

The third act is the PR7 story: the same two-class scenario under
**seeded chaos** — transient call failures, MTBF/MTTR unit crashes and
stragglers drawn from a fault RNG stream that is independent of the
workload stream, so any faulty run replays bit-identically from its
``(workload seed, fault seed)`` pair.  The engine retries failed
batches with backoff under a bounded budget, and the recovery policy
decides what a failure costs: ``restart`` throws the whole attempt
away, ``checkpoint`` resumes from the last completed plan level and
re-wastes only the failed level.  Every failed attempt's charges stay
on the ledger as accounted *wasted* work — ``total = useful + wasted +
reload`` — which is what the ``avail`` / ``retries`` / ``wasted`` /
``recovery`` columns below report.

Everything is model time from the CostLedger, so the numbers are exact
and machine-independent; the cost-only engine replays thousands of
requests in milliseconds of wall clock.  On cost-only machines the
engine also routes every batch through the PR6 **plan cache**: each
``(kind, rows)`` shape is lowered and planned once, then replayed as
frozen bulk ledger charges — the ``cache`` column in the tables below
is the hit rate, and both acts share one :class:`PlanCache` so the
sweep's shapes are compiled exactly once across all nine runs.

Run:  python examples/serving_sim.py
"""

from repro.analysis.report import latency_table
from repro.core.presets import TPU_V1
from repro.serve import (
    ContinuousBatcher,
    FixedRetry,
    PlanCache,
    PoissonWorkload,
    ServingEngine,
    TimeoutBatcher,
    chaos_injector,
    compute_metrics,
    interactive_batch_mix,
    size1_capacity,
    tpu_mlp_request_type,
)

# A 2-layer 256-wide MLP: each layer is exactly one resident 256x256
# block on the TPU (sqrt(m)=256), so a batch pays one latency per layer.
# (Shared with benchmarks/bench_serving.py via repro.serve.scenarios;
# size1_capacity() measures ~5.9e5 model time per unbatched request —
# two tensor calls at 256*256 + l each, the ReLU, and the charged
# padding copies, with the preset's l=131072.)
MLP = tpu_mlp_request_type()

REQUESTS = 1200
SLO = 8e6  # end-to-end latency objective

# one cache for the whole walkthrough: every run below serves the same
# request kinds, so after the first run almost every batch is a replay
CACHE = PlanCache()


def run(policy, period, seed=0):
    machine = TPU_V1.create(execute="cost-only", trace_calls=False)
    workload = PoissonWorkload(
        rate=1.0 / period,
        total=REQUESTS,
        kind=MLP.name,
        rows=256,
        slo=SLO,
        seed=seed,
    )
    result = ServingEngine(machine, policy, plan_cache=CACHE).serve(workload)
    return compute_metrics(result)


def main() -> None:
    capacity = size1_capacity()
    loads = [
        ("light  (0.6x)", capacity / 0.6),
        ("at size-1 cap", capacity / 1.0),
        ("heavy  (1.5x)", capacity / 1.5),
    ]
    policies = [
        ("size-1", lambda: ContinuousBatcher(max_size=1)),
        ("timeout T=2e6", lambda: TimeoutBatcher(timeout=2e6, max_size=64)),
        ("continuous", lambda: ContinuousBatcher(max_size=64)),
    ]

    for policy_name, make_policy in policies:
        entries = [(label, run(make_policy(), period)) for label, period in loads]
        print(latency_table(entries, title=f"TPUv1 cost-only serving — policy: {policy_name}"))
        print()

    # head-to-head at the overload point: batching keeps the tail flat
    head_to_head = [
        (policy_name, run(make_policy(), capacity / 1.5))
        for policy_name, make_policy in policies
    ]
    print(latency_table(
        head_to_head,
        title="1.5x the size-1 capacity: latency amortisation is the whole game",
    ))
    print()
    print(
        "Reading the tables: past one request per size-1 service time the\n"
        "size-1 queue diverges and its p99 explodes, while the batching\n"
        "policies amortise the TPU's huge per-call latency over the whole\n"
        "batch and absorb ~2x the load with a bounded tail — the Theorem 2\n"
        "latency-amortisation argument, played out as a serving policy.\n"
        "Continuous batching even wins at light load (batching is free when\n"
        "the queue is non-empty); the timeout policy deliberately trades p50\n"
        "for fuller batches, which pays off only once the unit saturates."
    )
    print()
    two_class_overload_demo()
    print()
    fault_tolerance_demo()
    print()
    stats = CACHE.stats()
    print(
        "Plan cache, whole walkthrough: {hits} hits / {misses} misses "
        "({hit_rate:.1%} hit rate), {size} compiled plans resident.\n"
        "Every batch above a first-of-its-shape replayed frozen charge\n"
        "columns instead of re-planning — same ledger, bit for bit, at a\n"
        "fraction of the wall-clock cost.".format(**stats)
    )


def two_class_overload_demo() -> None:
    """Interactive vs batch: what preemption buys the latency class —
    served through the shared plan cache, preemption and all."""
    entries = []
    preemptive = None
    for label, preempt in (("fifo (run-to-completion)", False), ("preemptive", True)):
        machine = TPU_V1.create(execute="cost-only", trace_calls=False)
        result = ServingEngine(
            machine, "continuous", preempt=preempt, plan_cache=CACHE
        ).serve(interactive_batch_mix())
        metrics = compute_metrics(result)
        entries.append((label, metrics))
        if preempt:
            preemptive = (result, metrics)
    print(
        latency_table(
            entries,
            title="two-class overload: interactive (p2) vs bulk 8-layer MLP (p0)",
        )
    )
    result, metrics = preemptive
    hi_fifo = entries[0][1].per_class[2]
    hi_pre = metrics.per_class[2]
    print()
    print(
        f"Cached path: {result.cache_hits} of {result.cache_lookups} batch "
        f"launches were plan-cache hits ({result.cache_hit_rate:.1%}) — the "
        "preemptive run checkpoints and resumes *compiled* plans."
    )
    print(
        "The interactive class's p99 drops "
        f"{hi_fifo.latency_p99 / hi_pre.latency_p99:.1f}x under preemption "
        f"(SLO attainment {hi_fifo.slo_attainment:.1%} -> "
        f"{hi_pre.slo_attainment:.1%}): instead of waiting out a whole\n"
        "bulk forward pass, an interactive release checkpoints the bulk\n"
        f"batch at its next level boundary ({result.preemptions} preemptions).\n"
        f"Nothing is free: every resume re-loads the remaining resident\n"
        f"blocks through the ledger ({result.reload_time:.3g} model-time units\n"
        "of reload), and the bulk class's own tail stretches accordingly —\n"
        "the latency-amortisation trade-off, now between tenants instead of\n"
        "between requests."
    )


def fault_tolerance_demo() -> None:
    """Chaos on the two-class scenario: what checkpoint recovery buys
    when the unit crashes and calls fail — every wasted charge ledgered."""

    def run(recovery):
        machine = TPU_V1.create(execute="cost-only", trace_calls=False)
        engine = ServingEngine(
            machine,
            "continuous",
            faults=chaos_injector(crash_every=8.0, seed=9),
            retry=FixedRetry(delay=0.0, max_attempts=3),
            recovery=recovery,
            plan_cache=CACHE,
        )
        result = engine.serve(
            interactive_batch_mix(interactive_total=300, batch_total=2, batch_rows=1024)
        )
        result.check_conservation()
        return result, compute_metrics(result)

    entries = []
    results = {}
    for recovery in ("restart", "checkpoint"):
        result, metrics = run(recovery)
        entries.append((f"chaos + {recovery}", metrics))
        results[recovery] = result
    print(
        latency_table(
            entries,
            title="two-class chaos: transient failures + unit crashes, retry budget 3",
        )
    )
    ckpt, restart = results["checkpoint"], results["restart"]
    print()
    print(
        f"Same fault seed, two recovery policies: restart threw away\n"
        f"{restart.wasted_time:.3g} model-time units of work "
        f"({restart.wasted_ratio:.1%} of the ledger span) across\n"
        f"{restart.faults} faults, while checkpoint recovery resumed each "
        f"failed batch from its\nlast completed plan level and wasted only "
        f"{ckpt.wasted_time:.3g} ({ckpt.wasted_ratio:.1%}).\n"
        f"Both runs keep every failed attempt on the books — the\n"
        f"conservation check above verified total = useful + wasted + reload\n"
        f"— and both replay bit-identically from the same\n"
        f"(workload seed, fault seed) pair; requests that exhaust their\n"
        f"3-attempt budget are abandoned and reported in the avail column."
    )


if __name__ == "__main__":
    main()
