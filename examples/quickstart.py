#!/usr/bin/env python
"""Quickstart: the (m, l)-TCU machine in five minutes.

Creates a simulated tensor-core unit, multiplies matrices through it,
and reads the model-time ledger — the quantity every theorem in the
paper bounds.  Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TCUMachine, matmul, strassen_like_mm, STRASSEN_2X2
from repro.analysis.formulas import thm2_dense_mm
from repro.analysis.tables import render_kv, render_table


def main() -> None:
    rng = np.random.default_rng(0)

    # An (m, l)-TCU with a 8x8 tensor unit (m = 64) and latency l = 20:
    # one tensor call multiplies an n x 8 matrix by an 8 x 8 matrix in
    # n*8 + 20 model-time units.
    tcu = TCUMachine(m=64, ell=20.0)
    print(f"machine: {tcu}\n")

    # --- the raw primitive -------------------------------------------
    A = rng.random((32, 8))   # tall left operand: streams through
    B = rng.random((8, 8))    # resident right operand ("the weights")
    C = tcu.mm(A, B)
    assert np.allclose(C, A @ B)
    print(render_kv(tcu.ledger.snapshot(), title="one tall tensor call"))
    print()

    # --- arbitrary shapes via the Theorem 2 schedule ------------------
    tcu.reset()
    X = rng.random((100, 70))
    Y = rng.random((70, 45))
    Z = matmul(tcu, X, Y)
    assert np.allclose(Z, X @ Y)
    print(render_kv(tcu.ledger.snapshot(), title="blocked 100x70 @ 70x45"))
    print()

    # --- model time vs the paper's bound ------------------------------
    rows = []
    for side in (32, 64, 128, 256):
        tcu.reset()
        M1 = rng.random((side, side))
        M2 = rng.random((side, side))
        matmul(tcu, M1, M2)
        predicted = thm2_dense_mm(side * side, tcu.m, tcu.ell)
        rows.append([side, tcu.time, predicted, tcu.time / predicted])
    print(
        render_table(
            ["sqrt(n)", "measured model time", "Theorem 2 shape", "ratio"],
            rows,
            title="dense MM vs Theorem 2 (constant ~ stable ratio = shape match)",
        )
    )
    print()

    # --- Strassen on top of the unit (Theorem 1) ----------------------
    tcu.reset()
    side = 256
    M1 = rng.random((side, side))
    M2 = rng.random((side, side))
    strassen_like_mm(tcu, M1, M2, algorithm=STRASSEN_2X2)
    t_strassen = tcu.time
    tcu.reset()
    matmul(tcu, M1, M2)
    t_classic = tcu.time
    print(
        f"side {side}: classical blocked = {t_classic:,.0f}, "
        f"Strassen-like = {t_strassen:,.0f} "
        f"({t_classic / t_strassen:.2f}x; Strassen's smaller exponent "
        f"pays off once n/m is large — see benchmarks/bench_thm1_strassen.py "
        f"for the measured crossover)"
    )


if __name__ == "__main__":
    main()
