#!/usr/bin/env python
"""Hardware regimes: TPUv1-like vs Volta-TC-like machines (Section 3.1),
plus the external-memory bridge of Section 5.

The same workloads run on both presets to show the latency/capacity
trade-off the paper describes, and a recorded execution trace is
replayed on the Theorem 12 external-memory simulation.

Run:  python examples/hardware_presets.py
"""

import numpy as np

from repro import TCUMachine, TPU_V1, VOLTA_TC, WeakTCUMachine, matmul
from repro.analysis.tables import render_kv, render_table
from repro.extmem import (
    matmul_io_lower_bound,
    simulate_ledger_io,
    tcu_matmul_time_lower_bound,
)


def main() -> None:
    rng = np.random.default_rng(3)

    print(render_kv(
        {
            TPU_V1.name: f"m={TPU_V1.m} (256x256), l={TPU_V1.ell:.0f}, kappa={TPU_V1.kappa}, rows<=96K",
            VOLTA_TC.name: f"m={VOLTA_TC.m} (16x16), l={VOLTA_TC.ell:.0f}, kappa={VOLTA_TC.kappa}",
        },
        title="Section 3.1 presets",
    ))
    print()

    # --- who wins where -------------------------------------------------
    rows = []
    for side in (64, 256, 1024):
        A = rng.random((side, side))
        B = rng.random((side, side))
        tpu = TPU_V1.create()
        tc = VOLTA_TC.create()
        matmul(tpu, A, B)
        matmul(tc, A, B)
        rows.append([
            side,
            tpu.time,
            f"{100 * tpu.ledger.latency_time / tpu.time:.0f}%",
            tc.time,
            f"{100 * tc.ledger.latency_time / tc.time:.0f}%",
            "tpu-v1" if tpu.time < tc.time else "volta-tc",
        ])
    print(render_table(
        ["sqrt(n)", "TPUv1 T", "latency share", "VoltaTC T", "latency share", "winner"],
        rows,
        title="dense MM: latency-bound vs capacity-bound regimes",
    ))
    print()

    # --- the asymmetric streaming feature --------------------------------
    s = VOLTA_TC.sqrt_m
    A = rng.random((256 * s, s))
    B = rng.random((s, s))
    tall = VOLTA_TC.create()
    tall.mm(A, B)
    weak = WeakTCUMachine(VOLTA_TC.m, VOLTA_TC.ell, kappa=VOLTA_TC.kappa)
    weak.mm_tall(A, B)
    print(render_table(
        ["call style", "tensor calls", "model time"],
        [
            ["one tall stream (Section 3)", tall.ledger.tensor_calls, tall.time],
            ["weak model: square splits (Section 5)", weak.ledger.tensor_calls, weak.time],
        ],
        title="why the model streams tall left operands",
    ))
    print()

    # --- Theorem 12: replay a trace in external memory -------------------
    side, m = 128, 64
    tcu = TCUMachine(m=m, ell=float(m))
    matmul(tcu, rng.random((side, side)), rng.random((side, side)))
    sim = simulate_ledger_io(tcu.ledger, weak=True)
    n = side * side
    print(render_kv(
        {
            "TCU model time": tcu.time,
            "EM simulation I/Os (M=3m, B=1)": sim.total_ios,
            "I/Os per model-time unit": round(sim.io_per_time, 3),
            "Hong-Kung I/O bound at M=3m": round(matmul_io_lower_bound(n, 3 * m)),
            "=> weak-TCU time lower bound": round(tcu_matmul_time_lower_bound(n, m)),
        },
        title=f"Theorem 12 bridge on a {side}x{side} product",
    ))


if __name__ == "__main__":
    main()
