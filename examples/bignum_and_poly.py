#!/usr/bin/env python
"""Exact big-integer products and batch polynomial evaluation on a TCU.

Section 4.7's pipeline end to end: RSA-sized integers multiplied
exactly through the tensor unit (Theorem 9), the Karatsuba hybrid and
its crossover (Theorem 10), and Section 4.8's batch polynomial
evaluation against Horner (Theorem 11).

Run:  python examples/bignum_and_poly.py
"""

import random

import numpy as np

from repro import TCUMachine
from repro.analysis.tables import render_table
from repro.arith import (
    batch_polyeval,
    int_multiply,
    karatsuba_multiply,
    karatsuba_threshold,
)
from repro.baselines.ram import RAMMachine, ram_horner


def main() -> None:
    random.seed(2020)

    # --- exact integer products (Theorems 9 & 10) ----------------------
    rows = []
    for bits in (1024, 4096, 16384):
        a = random.getrandbits(bits) | (1 << (bits - 1))
        b = random.getrandbits(bits) | (1 << (bits - 1))
        t9 = TCUMachine(m=64, kappa=32, ell=32.0)
        p9 = int_multiply(t9, a, b)
        t10 = TCUMachine(m=64, kappa=32, ell=32.0)
        p10 = karatsuba_multiply(t10, a, b)
        assert p9 == p10 == a * b  # bit-exact against Python bigints
        rows.append([bits, t9.time, t10.time, "Karatsuba" if t10.time < t9.time else "schoolbook"])
    thr = karatsuba_threshold(TCUMachine(m=64, kappa=32))
    print(
        render_table(
            ["bits", "Thm 9 schoolbook T", "Thm 10 Karatsuba T", "winner"],
            rows,
            title=f"exact n-bit products (Karatsuba base case = {thr} bits)",
        )
    )
    print()

    # --- batch polynomial evaluation (Theorem 11) ----------------------
    rng = np.random.default_rng(1)
    n, p = 2048, 256
    coeffs = rng.standard_normal(n) / np.arange(1, n + 1)  # decaying series
    points = rng.uniform(-1, 1, p)
    tcu = TCUMachine(m=64, ell=32.0)
    values = batch_polyeval(tcu, coeffs, points)
    ram = RAMMachine()
    reference = ram_horner(ram, coeffs, points)
    assert np.allclose(values, reference, atol=1e-9)
    print(
        render_table(
            ["method", "model time", "max |error| vs Horner"],
            [
                ["TCU batch evaluation", tcu.time, float(np.abs(values - reference).max())],
                ["RAM Horner", ram.time, 0.0],
            ],
            title=f"degree-{n-1} polynomial at {p} points (Theorem 11)",
        )
    )
    print(f"\nTCU advantage: {ram.time / tcu.time:.1f}x in model time "
          f"(ideal sqrt(m) = {TCUMachine(m=64).sqrt_m})")


if __name__ == "__main__":
    main()
