#!/usr/bin/env python
"""Deterministic tracing of a chaotic serving run — spans to Perfetto.

The PR9 observability layer rides on the same simulated clock as the
cost ledger, so a trace is not a noisy measurement of a run: it *is*
the run, replayable bit for bit from its ``(workload seed, fault
seed)`` pair.  This walkthrough serves the two-class chaos scenario
(interactive requests sharing a cost-only TPUv1 with bulk MLP batches,
under seeded failures, crashes and stragglers) with a full
:class:`~repro.obs.Tracer` attached and then tours the artifacts:

* the **critical-path table** — per-request queue/exec/reload/stall
  decomposition, slowest first, with the footer reconciling span sums
  against ``busy_time`` and the ledger identity ``total = useful +
  wasted + reload`` to exact zeros;
* the **Chrome trace / Perfetto export** — open the written JSON at
  https://ui.perfetto.dev to browse class lanes, per-level tensor-unit
  spans, fault instants and sampled metric counters on the model-time
  axis;
* the **Prometheus text exposition** of the metrics registry (counters,
  gauges, latency histogram, burn-rate SLO gauges);
* the **replay demo** — the same seeds traced twice export
  byte-identical JSON, which is the whole point: telemetry that can sit
  in CI as an equality gate instead of a dashboard.

Run:  python examples/trace_explore.py
"""

import tempfile
from pathlib import Path

from repro.analysis.report import trace_table
from repro.core.presets import TPU_V1
from repro.obs import SloBurnMonitor, Tracer, chrome_trace_json, write_chrome_trace
from repro.obs.exporters import prometheus_text
from repro.serve import ServingEngine, chaos_injector, interactive_batch_mix

REQUESTS = 150
SLO = 5e5  # interactive end-to-end objective, model time


def make_tracer() -> Tracer:
    # detail="level" forces stepwise execution so every plan level gets
    # its own tensor-unit span (charges are bit-identical either way);
    # the sampler snapshots the registry every 2e5 model-time units and
    # the monitor turns SLO misses into burn-rate alert instants.
    return Tracer(
        detail="level",
        sample_every=2e5,
        monitors=[
            SloBurnMonitor(
                "interactive-burn", target=0.99, window=5e6,
                priority=2, min_count=4,
            )
        ],
    )


def chaos_run(tracer: Tracer):
    machine = TPU_V1.create(execute="cost-only", trace_calls=True)
    workload = interactive_batch_mix(
        REQUESTS, 4, interactive_load=0.6, batch_rows=2048,
        interactive_slo=SLO, seed=3,
    )
    engine = ServingEngine(
        machine,
        "continuous",
        faults=chaos_injector(
            fail_rate=0.05, crash_every=9.0, repair_for=0.4,
            straggle_rate=0.1, straggle_factor=2.5, seed=103,
        ),
        retry="fixed",
        recovery="checkpoint",
        preempt=True,
        tracer=tracer,
    )
    return engine.serve(workload)


def main() -> None:
    tracer = make_tracer()
    result = chaos_run(tracer)

    print(trace_table(tracer, result, limit=12))
    print()

    totals = tracer.span_totals()
    print(
        f"completed-batch spans: service {totals['service']:.4g}"
        f" = useful {totals['useful']:.4g} + wasted {totals['wasted']:.4g}"
        f" + reload {totals['reload']:.4g}; exec incl. abandoned attempts"
        f" {totals['exec']:.4g} | {result.faults} fault instants,"
        f" {len(tracer.alerts)} alert transitions,"
        f" {len(tracer.sampler.rows)} metric samples"
    )
    print()

    out = Path(tempfile.gettempdir()) / "trace_explore.json"
    write_chrome_trace(tracer, out, label="chaos")
    print(f"wrote Chrome trace to {out}")
    print(
        "open https://ui.perfetto.dev and drop the file there: pid 1\n"
        "holds per-class request lanes, pid 2 the tensor-unit level\n"
        "spans, pid 3 request arrows, pid 4 fault/alert instants and\n"
        "pid 5 the sampled metric counters."
    )
    print()

    text = prometheus_text(tracer.registry)
    head = "\n".join(text.splitlines()[:12])
    print("Prometheus exposition (head):")
    print(head)
    print()

    # replay: same seeds, fresh tracer — the exported bytes must match
    replay = make_tracer()
    chaos_run(replay)
    identical = chrome_trace_json(tracer) == chrome_trace_json(replay)
    print(
        f"replay export byte-identical: {identical} — the trace is a\n"
        "pure function of (workload seed, fault seed), so CI can diff\n"
        "telemetry the same way it diffs ledger snapshots."
    )
    assert identical


if __name__ == "__main__":
    main()
