#!/usr/bin/env python
"""Neural-network inference — the workload tensor units were built for.

A 2-hidden-layer MLP classifies synthetic 16x16 "digit" images on the
simulated TCU.  Each layer is one resident weight matrix with the whole
batch streamed through (the §3 asymmetric call pattern, i.e. the TPU
workflow of §2.2), so the experiment shows:

* batching amortises latency: per-sample model time falls as the batch
  grows, approaching the throughput bound;
* the §6 extensions in action: the same network on a half-precision
  unit (accuracy impact measured) and on a 4-unit parallel machine
  (layers' strip products batched).

Run:  python examples/mlp_inference.py
"""

import numpy as np

from repro import TCUMachine, matmul
from repro.analysis.tables import render_table
from repro.core.parallel import ParallelTCUMachine
from repro.core.quantize import QuantizedTCUMachine
from repro.matmul.parallel_dense import parallel_matmul


def make_problem(rng, classes=10, dim=256):
    """Synthetic class prototypes + noisy samples around them."""
    prototypes = rng.standard_normal((classes, dim))

    def sample(count):
        labels = rng.integers(0, classes, count)
        x = prototypes[labels] + 1.4 * rng.standard_normal((count, dim))
        return x, labels

    return prototypes, sample


def make_weights(rng, dim=256, hidden=128, classes=10, prototypes=None):
    """A fixed random-feature network with a least-squares readout."""
    W1 = rng.standard_normal((dim, hidden)) / np.sqrt(dim)
    W2 = rng.standard_normal((hidden, hidden)) / np.sqrt(hidden)
    # closed-form readout trained on the class prototypes
    H = np.maximum(prototypes @ W1, 0.0) @ W2
    H = np.maximum(H, 0.0)
    targets = np.eye(prototypes.shape[0])
    W3, *_ = np.linalg.lstsq(H, targets, rcond=None)
    return W1, W2, W3


def forward(machine, X, weights, mm=matmul):
    W1, W2, W3 = weights
    h = np.maximum(mm(machine, X, W1), 0.0)
    machine.charge_cpu(h.size)  # the ReLU
    h = np.maximum(mm(machine, h, W2), 0.0)
    machine.charge_cpu(h.size)
    return mm(machine, h, W3)


def main() -> None:
    rng = np.random.default_rng(42)
    prototypes, sample = make_problem(rng)
    weights = make_weights(rng, prototypes=prototypes)

    # --- batching amortises latency -----------------------------------
    rows = []
    for batch in (16, 64, 256, 1024):
        X, y = sample(batch)
        tcu = TCUMachine(m=256, ell=4096.0)  # a latency-visible unit
        logits = forward(tcu, X, weights)
        acc = float((logits.argmax(axis=1) == y).mean())
        rows.append([batch, acc, tcu.time, tcu.time / batch,
                     f"{100 * tcu.ledger.latency_time / tcu.time:.0f}%"])
    print(render_table(
        ["batch", "accuracy", "model time", "time / sample", "latency share"],
        rows,
        title="MLP inference on a (256, 4096)-TCU: streaming batches through resident weights",
    ))
    print()

    # --- §6 extensions on the same network ------------------------------
    X, y = sample(512)
    variants = []
    exact = TCUMachine(m=256, ell=4096.0)
    logits = forward(exact, X, weights)
    variants.append(["exact fp64", float((logits.argmax(1) == y).mean()), exact.time])
    for fmt in ("fp16", "bf16", "int8"):
        q = QuantizedTCUMachine(m=256, ell=4096.0, precision=fmt)
        logits_q = forward(q, X, weights)
        variants.append(
            [f"quantized {fmt}", float((logits_q.argmax(1) == y).mean()), q.time]
        )
    par = ParallelTCUMachine(m=256, ell=4096.0, units=4)
    logits_p = forward(par, X, weights, mm=parallel_matmul)
    variants.append(["parallel 4 units", float((logits_p.argmax(1) == y).mean()), par.time])
    print(render_table(
        ["machine", "accuracy", "model time"],
        variants,
        title="same network under the paper's §6 extensions (batch 512)",
    ))


if __name__ == "__main__":
    main()
