#!/usr/bin/env python
"""Heat diffusion on a tensor unit: the paper's stencil showcase.

A hot square diffuses over a 2-D plate.  The k-sweep evolution is
computed two ways — k explicit sweeps (Theta(nk) RAM-style work) and
the Theorem 8 spectral route (unroll the k sweeps into one (2k+1)^2
kernel with Lemma 2, then one batched TCU convolution per tile block) —
and the model costs are compared, together with a plain DFT demo
(Theorem 7).

Run:  python examples/spectral_heat.py
"""

import numpy as np

from repro import TCUMachine
from repro.analysis.tables import render_table
from repro.transform import (
    dft,
    heat_equation_weights,
    stencil_direct,
    stencil_tcu,
    unrolled_weights,
)


def hot_plate(side: int) -> np.ndarray:
    plate = np.zeros((side, side))
    c = side // 2
    plate[c - 4 : c + 4, c - 4 : c + 4] = 100.0  # the hot square
    return plate


def main() -> None:
    side = 64
    plate = hot_plate(side)
    W = heat_equation_weights(alpha=0.2)

    rows = []
    for k in (4, 16, 32):
        tcu = TCUMachine(m=64, ell=32.0)
        with tcu.section("spectral"):
            Wk = unrolled_weights(tcu, W, k)
            evolved = stencil_tcu(tcu, plate, W, k, precomputed_W=Wk)
        ref_machine = TCUMachine(m=64)
        reference = stencil_direct(ref_machine, plate, W, k)
        assert np.allclose(evolved, reference, atol=1e-7)
        rows.append(
            [
                k,
                float(evolved.max()),
                float(evolved.sum()),
                tcu.ledger.section_time("spectral"),
                ref_machine.time,
                ref_machine.time / tcu.ledger.section_time("spectral"),
            ]
        )
    print(
        render_table(
            ["k sweeps", "peak temp", "total heat*", "TCU spectral T", "direct sweeps T", "direct/TCU"],
            rows,
            title=f"2-D heat diffusion on a {side}x{side} plate (Theorem 8)",
        )
    )
    print("* free-space evolution: heat leaving the plate is not reflected\n")

    # --- the DFT that powers the convolution (Theorem 7) ---------------
    tcu = TCUMachine(m=64, ell=32.0)
    signal = np.sin(2 * np.pi * 5 * np.arange(1024) / 1024) + 0.5 * np.sin(
        2 * np.pi * 12 * np.arange(1024) / 1024
    )
    spectrum = dft(tcu, signal)
    peaks = np.argsort(np.abs(spectrum[:512]))[-2:]
    print(
        f"DFT of a 5 Hz + 12 Hz mixture (n=1024): spectral peaks at bins "
        f"{sorted(int(p) for p in peaks)} (expected [5, 12]); "
        f"model time {tcu.time:,.0f}"
    )


if __name__ == "__main__":
    main()
