"""RAM-model baselines with explicit op counting.

Every TCU algorithm in the paper is compared against what a plain RAM
machine would pay for the same problem; these reference implementations
compute the same answers (they are also correctness oracles in the test
suite) and charge one model-time unit per word operation to a
:class:`RAMMachine`, so benches can report TCU-vs-RAM model-time ratios
the way the paper's theorems imply (e.g. the ``sqrt(m)`` speed-up of
Theorem 2 over the Theta(n^{3/2}) schoolbook product).
"""

from __future__ import annotations

import numpy as np

from ..core.ledger import CostLedger

__all__ = [
    "RAMMachine",
    "ram_matmul",
    "ram_ge_forward",
    "ram_transitive_closure",
    "ram_apsd_bfs",
    "ram_dft_naive",
    "ram_fft",
    "ram_stencil_sweeps",
    "ram_schoolbook_intmul",
    "ram_horner",
]


class RAMMachine:
    """A plain RAM-model cost meter (a ledger with no tensor unit)."""

    def __init__(self) -> None:
        self.ledger = CostLedger(trace_calls=False)

    def charge(self, ops: float) -> None:
        self.ledger.charge_cpu(ops)

    @property
    def time(self) -> float:
        return self.ledger.total_time

    def reset(self) -> None:
        self.ledger.reset()


def ram_matmul(ram: RAMMachine, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Definition-based product: 2 ops per multiply-add, Theta(p*q*r)."""
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} @ {B.shape}")
    ram.charge(2 * A.shape[0] * A.shape[1] * B.shape[1])
    return A @ B


def ram_ge_forward(ram: RAMMachine, X: np.ndarray) -> np.ndarray:
    """The unblocked Figure 2 forward elimination, Theta(N^3)."""
    X = np.asarray(X, dtype=np.float64).copy()
    N = X.shape[0]
    if X.ndim != 2 or X.shape[1] != N:
        raise ValueError(f"expected a square matrix, got {X.shape}")
    for k in range(N - 1):
        if X[k, k] == 0:
            raise ZeroDivisionError(f"zero pivot at row {k}")
        X[k + 1 :, k + 1 :] -= np.outer(X[k + 1 :, k], X[k, k + 1 :]) / X[k, k]
        ram.charge(3 * (N - 1 - k) * (N - 1 - k))
    return X


def ram_transitive_closure(ram: RAMMachine, adjacency: np.ndarray) -> np.ndarray:
    """The Figure 5 iterative closure, Theta(n^3) bit operations."""
    d = np.asarray(adjacency).astype(np.int64).copy()
    n = d.shape[0]
    if d.ndim != 2 or d.shape[1] != n:
        raise ValueError(f"adjacency must be square, got {d.shape}")
    for k in range(n):
        d |= np.outer(d[:, k], d[k, :])
        ram.charge(2 * n * n)
    return d


def ram_apsd_bfs(ram: RAMMachine, adjacency: np.ndarray) -> np.ndarray:
    """APSD by n breadth-first searches, Theta(n(n + e)) RAM time."""
    A = np.asarray(adjacency)
    n = A.shape[0]
    if A.ndim != 2 or A.shape[1] != n:
        raise ValueError(f"adjacency must be square, got {A.shape}")
    neighbours = [np.nonzero(A[u])[0] for u in range(n)]
    edges = int(sum(len(nb) for nb in neighbours))
    D = np.full((n, n), np.inf)
    for src in range(n):
        D[src, src] = 0.0
        frontier = [src]
        dist = 0
        while frontier:
            dist += 1
            nxt = []
            for u in frontier:
                for v in neighbours[u]:
                    if D[src, v] == np.inf:
                        D[src, v] = dist
                        nxt.append(int(v))
            frontier = nxt
        ram.charge(n + edges)
    return D


def ram_dft_naive(ram: RAMMachine, x: np.ndarray) -> np.ndarray:
    """Direct matrix-vector DFT, Theta(n^2)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    r = np.arange(n)
    W = np.exp(-2j * np.pi * np.outer(r, r) / n)
    ram.charge(2 * n * n)
    return W @ x


def ram_fft(ram: RAMMachine, x: np.ndarray) -> np.ndarray:
    """Radix-2 Cooley-Tukey on the RAM, Theta(n log n) (n a power of two)."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    if n & (n - 1):
        raise ValueError(f"ram_fft requires a power-of-two length, got {n}")
    out = x.copy()
    if n >= 2:
        levels = n.bit_length() - 1
        # iterative bit-reversed FFT
        idx = np.arange(n)
        rev = np.zeros(n, dtype=np.int64)
        for b in range(levels):
            rev |= ((idx >> b) & 1) << (levels - 1 - b)
        out = out[rev]
        size = 2
        while size <= n:
            half = size // 2
            tw = np.exp(-2j * np.pi * np.arange(half) / size)
            out = out.reshape(-1, size)
            even = out[:, :half].copy()
            odd = out[:, half:] * tw
            out[:, :half] = even + odd
            out[:, half:] = even - odd
            out = out.reshape(-1)
            ram.charge(2 * n)
            size *= 2
    return out


def ram_stencil_sweeps(
    ram: RAMMachine, A: np.ndarray, weights: np.ndarray, k: int
) -> np.ndarray:
    """k explicit sweeps, Theta(n k) RAM time (same semantics as
    :func:`repro.transform.stencil.stencil_direct`)."""
    from ..core.machine import TCUMachine
    from ..transform.stencil import stencil_direct

    # reuse the direct implementation on a throwaway machine, then
    # charge this RAM meter the same op count.
    scratch = TCUMachine(m=1, ell=0.0)
    out = stencil_direct(scratch, A, weights, k)
    ram.charge(scratch.ledger.cpu_time)
    return out


def ram_schoolbook_intmul(ram: RAMMachine, a: int, b: int, kappa: int = 64) -> int:
    """Word-by-word schoolbook product, Theta((n/kappa)^2)."""
    if a == 0 or b == 0:
        return 0
    sign = -1 if (a < 0) != (b < 0) else 1
    a, b = abs(a), abs(b)
    mask = (1 << kappa) - 1
    a_words = []
    v = a
    while v:
        a_words.append(v & mask)
        v >>= kappa
    b_words = []
    v = b
    while v:
        b_words.append(v & mask)
        v >>= kappa
    acc = 0
    for i, aw in enumerate(a_words):
        row = 0
        for j, bw in enumerate(b_words):
            row += (aw * bw) << (kappa * j)
        acc += row << (kappa * i)
    ram.charge(2 * len(a_words) * len(b_words))
    return sign * acc


def ram_horner(ram: RAMMachine, coefficients: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Horner evaluation at every point, Theta(n p) RAM time."""
    coeffs = np.asarray(coefficients)
    pts = np.asarray(points)
    if coeffs.ndim != 1 or pts.ndim != 1:
        raise ValueError("coefficients and points must be 1-D")
    dtype = np.result_type(coeffs.dtype, pts.dtype, np.float64)
    result = np.zeros(pts.size, dtype=dtype)
    for c in coeffs[::-1]:
        result = result * pts + c
        ram.charge(2 * pts.size)
    return result
