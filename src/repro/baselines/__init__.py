"""Pure RAM-model baselines (correctness oracles + cost comparators)."""

from .ram import (
    RAMMachine,
    ram_apsd_bfs,
    ram_dft_naive,
    ram_fft,
    ram_ge_forward,
    ram_horner,
    ram_matmul,
    ram_schoolbook_intmul,
    ram_stencil_sweeps,
    ram_transitive_closure,
)

__all__ = [
    "RAMMachine",
    "ram_matmul",
    "ram_ge_forward",
    "ram_transitive_closure",
    "ram_apsd_bfs",
    "ram_dft_naive",
    "ram_fft",
    "ram_stencil_sweeps",
    "ram_schoolbook_intmul",
    "ram_horner",
]
