"""Model-time accounting for the (m, l)-TCU machine.

The paper's running time is "the total cost of all operations performed
by the CPU, including all calls to the tensor unit" (Section 3), with no
concurrency between CPU, memory and tensor unit.  The :class:`CostLedger`
is that clock: algorithms charge model-time units to it and the total is
the TCU-model running time of the execution.

Four charge categories are tracked separately so experiments can
decompose the totals the way the theorems do:

* ``tensor`` -- the ``n * sqrt(m)`` throughput term of each tensor call,
* ``latency`` -- the ``l`` term of each tensor call,
* ``cpu``    -- every other RAM-model operation (one unit per word op),
* ``reload`` -- words re-loaded into the unit when a preempted execution
  resumes (one unit per word of the resumed plan's resident blocks; see
  :meth:`~repro.core.program.ExecutionCursor.charge_reload`).  Offline
  runs never pay it — it exists so preemptive schedulers (e.g.
  :mod:`repro.serve`) charge checkpoint/restore through the ledger
  instead of treating it as free.

On top of the four charge categories the ledger keeps one
*attribution*: :meth:`CostLedger.attribute_wasted` marks a span of
already-charged time as **wasted work** — model time the machine really
spent (a failed attempt under fault injection) that produced no result.
Attribution never advances the clock: ``wasted_time`` partitions
``total_time`` (``total = useful + wasted + reload``, see
:attr:`CostLedger.useful_time`) instead of adding to it, so a faulty
run's clock stays exactly the time the machine was busy.

The ledger also keeps an optional trace of tensor calls; the external
memory simulation of Theorem 12 replays that trace.  Three trace modes
are supported through ``trace_calls``:

* ``True`` (default) -- every call is recorded in :attr:`calls`, an
  array-backed columnar :class:`CallTrace` (four primitive columns, not
  one object per call, so million-call programs stay cheap);
* ``"aggregate"`` -- only a histogram keyed by ``(n, sqrt_m)`` is kept:
  O(distinct shapes) memory instead of O(calls), still enough for
  :func:`repro.extmem.simulate.simulate_ledger_io` and
  :meth:`CostLedger.calls_summary`;
* ``False`` -- totals only.
"""

from __future__ import annotations

import math
from array import array
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

import numpy as np

__all__ = ["TensorCall", "CallTrace", "CostLedger", "LedgerError", "LedgerSpan"]


class LedgerError(RuntimeError):
    """Raised on invalid accounting operations (e.g. negative charges)."""


@dataclass(frozen=True, slots=True)
class TensorCall:
    """One invocation of the tensor unit.

    A lightweight (``slots``) view materialised on demand from the
    columnar :class:`CallTrace`; traces do not hold these objects.

    Attributes
    ----------
    n:
        Number of rows of the (tall) left operand streamed through the
        unit.  The model requires ``n >= sqrt(m)``.
    sqrt_m:
        Side of the right operand (and width of the left operand).
    time:
        Model time charged for the call, ``n * sqrt_m + latency``.
    latency:
        The ``l`` component included in ``time``.
    section:
        Name of the innermost ledger section active at call time
        (empty string when none), useful for attributing cost.
    unit:
        Tensor unit the call ran on when it was issued through a
        scheduled :meth:`~repro.core.parallel.ParallelTCUMachine.mm_batch`
        (``-1`` for serial calls, which all run on the single unit).
    """

    n: int
    sqrt_m: int
    time: float
    latency: float
    section: str = ""
    unit: int = -1

    @property
    def words_moved(self) -> int:
        """Words read+written by the call: both operands and the output.

        The external-memory simulation (Theorem 12) charges Theta(m)
        I/Os per sqrt(m) x sqrt(m) call; for a tall call the left
        operand and output dominate with ``n * sqrt_m`` words each.
        """
        return self.n * self.sqrt_m * 2 + self.sqrt_m * self.sqrt_m


class CallTrace:
    """Columnar, array-backed record of tensor calls.

    Stores one primitive per column (``array`` module buffers) instead
    of a :class:`TensorCall` object per call; indexing and iteration
    materialise the dataclass view on demand, so existing consumers that
    read ``ledger.calls[i].n`` keep working while long benches stop
    holding O(calls) Python objects.  Section names are interned once
    and referenced by index.
    """

    __slots__ = (
        "_n",
        "_sqrt_m",
        "_time",
        "_latency",
        "_section_ids",
        "_units",
        "_sections",
        "_section_index",
    )

    def __init__(self) -> None:
        self._n = array("q")
        self._sqrt_m = array("q")
        self._time = array("d")
        self._latency = array("d")
        self._section_ids = array("l")
        self._units = array("q")
        self._sections: list[str] = [""]
        self._section_index: dict[str, int] = {"": 0}

    # ------------------------------------------------------------------
    def _intern(self, section: str) -> int:
        """O(1) section-name interning (a dict, not a list scan)."""
        sid = self._section_index.get(section)
        if sid is None:
            sid = len(self._sections)
            self._sections.append(section)
            self._section_index[section] = sid
        return sid

    def record(
        self,
        n: int,
        sqrt_m: int,
        time: float,
        latency: float,
        section: str = "",
        unit: int = -1,
    ) -> None:
        """Append one call from its primitive fields (no object built)."""
        sid = self._intern(section)
        self._n.append(int(n))
        self._sqrt_m.append(int(sqrt_m))
        self._time.append(float(time))
        self._latency.append(float(latency))
        self._section_ids.append(sid)
        self._units.append(int(unit))

    def record_bulk(
        self,
        ns: np.ndarray,
        sqrt_m: int,
        times: np.ndarray,
        latency: float | np.ndarray,
        section: str = "",
        units: np.ndarray | None = None,
    ) -> None:
        """Append many calls that share ``sqrt_m``/``section`` in one
        columnar write (a handful of buffer copies, not k Python calls)
        — the trace counterpart of
        :meth:`CostLedger.charge_tensor_bulk`.  ``latency`` is a shared
        scalar or a per-call column (batch executors replay captured
        traces whose rows may carry differing latencies).  ``units``
        optionally carries the per-call tensor-unit assignment of a
        scheduled batch (``-1``, the default, marks serial calls).
        """
        ns = np.ascontiguousarray(ns, dtype=np.int64)
        times = np.ascontiguousarray(times, dtype=np.float64)
        if ns.ndim != 1 or times.shape != ns.shape:
            raise LedgerError(
                f"record_bulk expects matching 1-D columns, got {ns.shape} and {times.shape}"
            )
        k = ns.size
        if k == 0:
            return
        if np.ndim(latency) == 0:
            lat_col = np.full(k, float(latency), dtype=np.float64)
        else:
            lat_col = np.ascontiguousarray(latency, dtype=np.float64)
            if lat_col.shape != ns.shape:
                raise LedgerError(
                    f"record_bulk latency column has shape {lat_col.shape}, expected {ns.shape}"
                )
        if units is None:
            unit_col = np.full(k, -1, dtype=np.int64)
        else:
            unit_col = np.ascontiguousarray(units, dtype=np.int64)
            if unit_col.shape != ns.shape:
                raise LedgerError(
                    f"record_bulk units column has shape {unit_col.shape}, expected {ns.shape}"
                )
        sid = self._intern(section)
        self._n.frombytes(ns.tobytes())
        self._sqrt_m.frombytes(np.full(k, int(sqrt_m), dtype=np.int64).tobytes())
        self._time.frombytes(times.tobytes())
        self._latency.frombytes(lat_col.tobytes())
        self._section_ids.frombytes(
            np.full(k, sid, dtype=np.dtype(f"i{self._section_ids.itemsize}")).tobytes()
        )
        self._units.frombytes(unit_col.tobytes())

    def append(self, call: TensorCall) -> None:
        """List-style append of a materialised :class:`TensorCall`."""
        self.record(call.n, call.sqrt_m, call.time, call.latency, call.section, call.unit)

    def extend(self, calls: "CallTrace | list[TensorCall]") -> None:
        if isinstance(calls, CallTrace):
            # bulk column copy (no per-call object churn); section ids
            # are remapped through the interned-name tables
            self._n.extend(calls._n)
            self._sqrt_m.extend(calls._sqrt_m)
            self._time.extend(calls._time)
            self._latency.extend(calls._latency)
            self._units.extend(calls._units)
            remap = [self._intern(name) for name in calls._sections]
            self._section_ids.extend(remap[sid] for sid in calls._section_ids)
            return
        for call in calls:
            self.append(call)

    def clear(self) -> None:
        for col in (
            self._n,
            self._sqrt_m,
            self._time,
            self._latency,
            self._section_ids,
            self._units,
        ):
            del col[:]
        del self._sections[1:]
        self._section_index.clear()
        self._section_index[""] = 0

    # ------------------------------------------------------------------
    def columns(self) -> tuple[array, array, array, array]:
        """The raw ``(n, sqrt_m, time, latency)`` columns (zero-copy
        buffers for vectorised consumers such as the Theorem 12 replay)."""
        return self._n, self._sqrt_m, self._time, self._latency

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy numpy views of ``(n, sqrt_m, time, latency)``.

        Views alias the live buffers and are only valid until the next
        append (the ``array`` module may reallocate); consumers should
        treat them as a snapshot.
        """
        if not self._n:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=np.float64)
            return empty_i, empty_i, empty_f, empty_f
        return (
            np.frombuffer(self._n, dtype=np.int64),
            np.frombuffer(self._sqrt_m, dtype=np.int64),
            np.frombuffer(self._time, dtype=np.float64),
            np.frombuffer(self._latency, dtype=np.float64),
        )

    def unit_ids(self) -> np.ndarray:
        """Zero-copy view of the per-call tensor-unit assignments.

        ``-1`` marks calls issued serially; a scheduled batch records
        the unit each call ran on.  Same snapshot caveat as
        :meth:`as_arrays`.
        """
        if not self._units:
            return np.empty(0, dtype=np.int64)
        return np.frombuffer(self._units, dtype=np.int64)

    def histogram_by_n(self) -> dict[int, int]:
        """Call count per left-operand height ``n`` (one ``np.unique``
        over the columnar buffer, not a Python loop)."""
        ns = self.as_arrays()[0]
        if ns.size == 0:
            return {}
        values, counts = np.unique(ns, return_counts=True)
        return dict(zip(values.tolist(), counts.tolist(), strict=True))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._n)

    def _materialise(self, i: int) -> TensorCall:
        return TensorCall(
            n=self._n[i],
            sqrt_m=self._sqrt_m[i],
            time=self._time[i],
            latency=self._latency[i],
            section=self._sections[self._section_ids[i]],
            unit=self._units[i],
        )

    def __getitem__(self, index: int | slice) -> TensorCall | list[TensorCall]:
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("call index out of range")
        return self._materialise(index)

    def __iter__(self) -> Iterator[TensorCall]:
        for i in range(len(self)):
            yield self._materialise(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (CallTrace, list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other, strict=True)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CallTrace({len(self)} calls)"


@dataclass
class LedgerSpan:
    """A window of the ledger clock opened by :meth:`CostLedger.stopwatch`.

    While the window is open :attr:`elapsed` reads live against the
    ledger; once the ``with`` block exits it freezes, so the span can be
    kept as a record (the serving engine stores one per executed batch
    to derive batch service time from the model clock).
    """

    ledger: "CostLedger"
    start: float
    end: float | None = None

    @property
    def elapsed(self) -> float:
        """Model time charged since the span opened (frozen at exit)."""
        end = self.end if self.end is not None else self.ledger.total_time
        return end - self.start


@dataclass
class CostLedger:
    """Accumulates TCU-model time.

    Parameters
    ----------
    trace_calls:
        ``True`` (default) records every tensor call in :attr:`calls` so
        it can be replayed, e.g. by :mod:`repro.extmem.simulate`;
        ``"aggregate"`` keeps only a per-shape histogram (constant memory
        per distinct call shape — use for very long runs that still want
        :meth:`calls_summary` or an aggregate Theorem 12 replay);
        ``False`` keeps totals only.

    ``on_charge``, when set, is called as ``on_charge(category, amount)``
    after every successful charge or attribution (categories
    ``"tensor"`` — throughput *plus* latency, ``"cpu"``, ``"reload"``,
    ``"wasted"``).  It is a pure observer for telemetry
    (:meth:`repro.obs.tracer.Tracer.bind_ledger`): totals, the clock and
    the trace are byte-identical with or without it.
    """

    trace_calls: bool | str = True
    tensor_time: float = 0.0
    latency_time: float = 0.0
    cpu_time: float = 0.0
    reload_time: float = 0.0
    wasted_time: float = 0.0
    tensor_calls: int = 0
    calls: CallTrace = field(default_factory=CallTrace)
    _agg: dict[tuple[int, int], list[float]] = field(default_factory=dict)
    _section_stack: list[str] = field(default_factory=list)
    _section_totals: dict[str, float] = field(default_factory=dict)
    _bound: set[tuple[int, float]] = field(default_factory=set, repr=False)
    on_charge: Callable[[str, float], None] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # identity checks: the int 1 equals True but would silently
        # trace nothing, since every mode test below uses `is True`
        if not any(self.trace_calls is mode for mode in (True, False)) and (
            self.trace_calls != "aggregate"
        ):
            raise ValueError(
                f"trace_calls must be True, False or 'aggregate', got {self.trace_calls!r}"
            )

    def bind_machine(self, sqrt_m: int, ell: float) -> None:
        """Register a machine's ``(sqrt_m, ell)`` as valid for bulk charges.

        Every :class:`~repro.core.machine.TCUMachine` binds its ledger at
        construction; a ledger shared across machines accumulates every
        pair.  Once bound, :meth:`charge_tensor_bulk` rejects parameters
        from any *other* machine — the guard that keeps a compiled plan
        cached under one machine fingerprint from silently poisoning a
        differently-parameterised ledger on replay.  Bare ledgers (never
        bound) accept any caller, preserving the PR 2 semantics for
        scratch and test ledgers.
        """
        self._bound.add((int(sqrt_m), float(ell)))

    def _check_bound(self, sqrt_m: int, latency: float) -> None:
        if self._bound and (int(sqrt_m), float(latency)) not in self._bound:
            raise LedgerError(
                f"bulk charge with sqrt_m={sqrt_m}, latency={latency} does not "
                f"match any machine bound to this ledger {sorted(self._bound)}; "
                "replaying a plan compiled for a different machine configuration?"
            )

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge_tensor(self, n: int, sqrt_m: int, latency: float) -> float:
        """Charge one tensor call on an ``n x sqrt_m @ sqrt_m x sqrt_m`` product.

        Returns the model time charged (``n * sqrt_m + latency``).
        """
        if n < sqrt_m:
            raise LedgerError(
                f"tensor call requires n >= sqrt(m); got n={n}, sqrt(m)={sqrt_m}"
            )
        if latency < 0:
            raise LedgerError(f"negative latency {latency!r}")
        throughput = float(n) * float(sqrt_m)
        self.tensor_time += throughput
        self.latency_time += float(latency)
        self.tensor_calls += 1
        total = throughput + float(latency)
        self._bump_sections(total)
        self.record_call(n, sqrt_m, total, float(latency))
        if self.on_charge is not None:
            self.on_charge("tensor", total)
        return total

    def charge_tensor_bulk(self, ns: np.ndarray, sqrt_m: int, latency: float) -> float:
        """Charge many tensor calls at once: the vectorised counterpart of
        :meth:`charge_tensor`.

        ``ns`` holds the per-call row counts; every call shares
        ``sqrt_m`` and ``latency``.  Counters advance by the same totals
        a loop of :meth:`charge_tensor` would produce and the trace gets
        the same k rows, but via one columnar append instead of k Python
        calls.  Totals are bit-identical to the sequential loop whenever
        the charges are integer-valued floats (every call cost in the
        model is ``n*sqrt_m + l`` with integer ``n*sqrt_m``), which the
        path-equivalence tests pin down.

        Returns the total model time charged.
        """
        ns = np.asarray(ns, dtype=np.int64)
        if ns.ndim != 1:
            raise LedgerError(f"charge_tensor_bulk expects a 1-D row-count array, got {ns.shape}")
        k = int(ns.size)
        if k == 0:
            return 0.0
        s = int(sqrt_m)
        if int(ns.min()) < s:
            raise LedgerError(
                f"tensor call requires n >= sqrt(m); got min n={int(ns.min())}, sqrt(m)={s}"
            )
        if latency < 0:
            raise LedgerError(f"negative latency {latency!r}")
        self._check_bound(s, latency)
        throughput = float(int(ns.sum()) * s)
        latency_total = float(latency) * k
        self.tensor_time += throughput
        self.latency_time += latency_total
        self.tensor_calls += k
        total = throughput + latency_total
        self._bump_sections(total)
        self.record_calls_bulk(ns, s, ns * float(s) + float(latency), float(latency))
        if self.on_charge is not None:
            self.on_charge("tensor", total)
        return total

    def record_call(
        self, n: int, sqrt_m: int, time: float, latency: float, unit: int = -1
    ) -> None:
        """Trace one call under the active mode (no counters touched).

        Used internally by :meth:`charge_tensor` and by batch executors
        (e.g. :meth:`~repro.core.parallel.ParallelTCUMachine.mm_batch`)
        that account makespans themselves but still want the per-call
        trace kept consistent.
        """
        if self.trace_calls is True:
            section = self._section_stack[-1] if self._section_stack else ""
            self.calls.record(int(n), int(sqrt_m), time, latency, section, unit)
        elif self.trace_calls == "aggregate":
            bucket = self._agg.setdefault((int(n), int(sqrt_m)), [0, 0.0, 0.0])
            bucket[0] += 1
            bucket[1] += time
            bucket[2] += latency

    def record_calls_bulk(
        self,
        ns: np.ndarray,
        sqrt_m: int,
        times: np.ndarray,
        latency: float | np.ndarray,
        units: np.ndarray | None = None,
    ) -> None:
        """Bulk trace append under the active mode (no counters touched):
        the vectorised counterpart of :meth:`record_call`, used by
        :meth:`charge_tensor_bulk` and the parallel batch executor.
        ``latency`` is a shared scalar or a per-call column; ``units``
        optionally records per-call unit assignments (ignored by the
        aggregate histogram, which is keyed on shape alone)."""
        if self.trace_calls is True:
            section = self._section_stack[-1] if self._section_stack else ""
            self.calls.record_bulk(ns, int(sqrt_m), times, latency, section, units)
        elif self.trace_calls == "aggregate":
            ns = np.asarray(ns, dtype=np.int64)
            times = np.asarray(times, dtype=np.float64)
            lats = np.broadcast_to(np.asarray(latency, dtype=np.float64), ns.shape)
            values, inverse, counts = np.unique(
                ns, return_inverse=True, return_counts=True
            )
            time_sums = np.bincount(inverse, weights=times)
            lat_sums = np.bincount(inverse, weights=lats)
            for v, c, t, lat in zip(
                values.tolist(), counts.tolist(), time_sums.tolist(), lat_sums.tolist(),
                strict=True,
            ):
                bucket = self._agg.setdefault((v, int(sqrt_m)), [0, 0.0, 0.0])
                bucket[0] += c
                bucket[1] += t
                bucket[2] += lat

    def charge_cpu(self, ops: float) -> float:
        """Charge ``ops`` units of RAM-model work (one unit per word op)."""
        if ops < 0:
            raise LedgerError(f"negative cpu charge {ops!r}")
        if not math.isfinite(ops):
            raise LedgerError(f"non-finite cpu charge {ops!r}")
        self.cpu_time += float(ops)
        self._bump_sections(float(ops))
        if self.on_charge is not None:
            self.on_charge("cpu", float(ops))
        return float(ops)

    def charge_reload(self, words: float) -> float:
        """Charge ``words`` units of resident-state re-load time.

        The resume cost of a preempted execution: every word of the
        plan's remaining resident blocks must travel back into the
        tensor unit, one model-time unit per word — the same rate as
        any other RAM-model data movement, but accounted in its own
        column so a preempted run can be reconciled against its
        uninterrupted replay (``preempted = replay + reload``).
        """
        if words < 0:
            raise LedgerError(f"negative reload charge {words!r}")
        if not math.isfinite(words):
            raise LedgerError(f"non-finite reload charge {words!r}")
        self.reload_time += float(words)
        self._bump_sections(float(words))
        if self.on_charge is not None:
            self.on_charge("reload", float(words))
        return float(words)

    def attribute_wasted(self, span: float) -> float:
        """Mark ``span`` units of *already-charged* time as wasted work.

        A fault-tolerant scheduler charges a failed attempt through the
        ordinary categories (the machine really ran), then attributes
        the lost portion here so ``total = useful + wasted + reload``
        stays checkable.  Attribution is bookkeeping, not a charge: the
        clock does not advance, and the wasted total can never exceed
        the time actually charged so far (minus the reload column,
        which is accounted separately and never double-counted).
        """
        if span < 0:
            raise LedgerError(f"negative wasted attribution {span!r}")
        if not math.isfinite(span):
            raise LedgerError(f"non-finite wasted attribution {span!r}")
        new_total = self.wasted_time + float(span)
        budget = self.total_time - self.reload_time
        # float accumulation headroom: a whole failed run attributed in
        # many pieces may overshoot the charged total by round-off only
        if new_total > budget * (1 + 1e-9) + 1e-9:
            raise LedgerError(
                f"cannot attribute {span} as wasted: total wasted {new_total} "
                f"would exceed the {budget} of non-reload time charged"
            )
        self.wasted_time = new_total
        if self.on_charge is not None:
            self.on_charge("wasted", float(span))
        return float(span)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Model running time: the paper's single sequential clock."""
        return self.tensor_time + self.latency_time + self.cpu_time + self.reload_time

    @property
    def useful_time(self) -> float:
        """Charged time that produced results: ``total - wasted - reload``."""
        return self.total_time - self.wasted_time - self.reload_time

    @property
    def clock(self) -> float:
        """The model clock, as online consumers read it.

        An alias of :attr:`total_time` named for its role: discrete-event
        layers (e.g. :mod:`repro.serve`) advance *their* simulated clock
        by deltas of this one, so "the time the machine has charged" and
        "the time the serving clock shows" are the same quantity.
        """
        return self.total_time

    @property
    def tensor_total(self) -> float:
        """Tensor-unit time including latency (sum of all call costs)."""
        return self.tensor_time + self.latency_time

    def section_time(self, name: str) -> float:
        """Total model time charged while section ``name`` was open."""
        return self._section_totals.get(name, 0.0)

    def snapshot(self) -> dict[str, float]:
        """Totals as a plain dict (stable keys, for tables and tests)."""
        return {
            "tensor_time": self.tensor_time,
            "latency_time": self.latency_time,
            "cpu_time": self.cpu_time,
            "reload_time": self.reload_time,
            "wasted_time": self.wasted_time,
            "tensor_calls": float(self.tensor_calls),
            "total_time": self.total_time,
        }

    def call_shape_totals(self) -> dict[tuple[int, int], tuple[int, float, float]]:
        """Per ``(n, sqrt_m)`` shape: ``(count, total_time, total_latency)``.

        Available in both full-trace and aggregate modes (the Theorem 12
        replay consumes this when per-call order is not needed); raises
        :class:`LedgerError` when tracing is disabled.
        """
        if self.trace_calls == "aggregate":
            return {k: (int(v[0]), v[1], v[2]) for k, v in self._agg.items()}
        if self.trace_calls is True:
            n, s, t, lat = self.calls.as_arrays()
            if n.size == 0:
                return {}
            # vectorised group-by over the columnar buffers: unique
            # (n, sqrt_m) pairs, then bincount-reduced time and latency
            keys = np.stack([n, s], axis=1)
            uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
            inverse = inverse.reshape(-1)
            counts = np.bincount(inverse)
            time_sums = np.bincount(inverse, weights=t)
            lat_sums = np.bincount(inverse, weights=lat)
            return {
                (int(un), int(us)): (int(c), float(ts), float(ls))
                for (un, us), c, ts, ls in zip(
                    uniq.tolist(), counts.tolist(), time_sums.tolist(), lat_sums.tolist(),
                    strict=True,
                )
            }
        raise LedgerError(
            "ledger was created with trace_calls=False; no per-shape totals"
        )

    def calls_summary(self) -> dict[str, object]:
        """Compact trace digest: call count, total tensor time and a
        histogram of call heights.

        Works in every trace mode; the histogram is ``None`` when
        ``trace_calls=False`` (the scalar counters are always exact).
        """
        if self.trace_calls is False:
            hist = None
        elif self.trace_calls == "aggregate":
            hist = {}
            for (n, _), (count, _, _) in self._agg.items():
                hist[n] = hist.get(n, 0) + count
        else:
            hist = self.calls.histogram_by_n()
        return {
            "count": self.tensor_calls,
            "total_time": self.tensor_total,
            "histogram": hist,
        }

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @contextmanager
    def stopwatch(self) -> Iterator[LedgerSpan]:
        """Measure the model time charged inside a block.

        Yields a :class:`LedgerSpan` whose :attr:`~LedgerSpan.elapsed`
        reads live inside the block and freezes when it exits.  This is
        the clock primitive online layers build on: a batch's service
        time is exactly the span of ledger clock its execution charged.
        """
        span = LedgerSpan(self, self.total_time)
        try:
            yield span
        finally:
            span.end = self.total_time

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to ``name`` (nestable)."""
        self._section_stack.append(name)
        try:
            yield
        finally:
            self._section_stack.pop()

    def _bump_sections(self, amount: float) -> None:
        for name in self._section_stack:
            self._section_totals[name] = self._section_totals.get(name, 0.0) + amount

    def reset(self) -> None:
        """Zero every counter and drop the trace (sections stay closed)."""
        if self._section_stack:
            raise LedgerError("cannot reset a ledger while sections are open")
        self.tensor_time = 0.0
        self.latency_time = 0.0
        self.cpu_time = 0.0
        self.reload_time = 0.0
        self.wasted_time = 0.0
        self.tensor_calls = 0
        self.calls.clear()
        self._agg.clear()
        self._section_totals.clear()

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        """Return a new ledger whose totals are the sum of both.

        Full traces concatenate when both sides kept them; if either
        side aggregated, the merge degrades to aggregate (histograms
        add); if either side disabled tracing, so does the merge.
        """
        if self.trace_calls is False or other.trace_calls is False:
            mode: bool | str = False
        elif self.trace_calls is True and other.trace_calls is True:
            mode = True
        else:
            mode = "aggregate"
        out = CostLedger(trace_calls=mode)
        out.tensor_time = self.tensor_time + other.tensor_time
        out.latency_time = self.latency_time + other.latency_time
        out.cpu_time = self.cpu_time + other.cpu_time
        out.reload_time = self.reload_time + other.reload_time
        out.wasted_time = self.wasted_time + other.wasted_time
        out.tensor_calls = self.tensor_calls + other.tensor_calls
        if mode is True:
            out.calls.extend(self.calls)
            out.calls.extend(other.calls)
        elif mode == "aggregate":
            for src in (self, other):
                for key, (count, time, lat) in src.call_shape_totals().items():
                    bucket = out._agg.setdefault(key, [0, 0.0, 0.0])
                    bucket[0] += count
                    bucket[1] += time
                    bucket[2] += lat
        for src_totals in (self._section_totals, other._section_totals):
            for key, val in src_totals.items():
                out._section_totals[key] = out._section_totals.get(key, 0.0) + val
        return out
