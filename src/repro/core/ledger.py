"""Model-time accounting for the (m, l)-TCU machine.

The paper's running time is "the total cost of all operations performed
by the CPU, including all calls to the tensor unit" (Section 3), with no
concurrency between CPU, memory and tensor unit.  The :class:`CostLedger`
is that clock: algorithms charge model-time units to it and the total is
the TCU-model running time of the execution.

Three charge categories are tracked separately so experiments can
decompose the totals the way the theorems do:

* ``tensor`` -- the ``n * sqrt(m)`` throughput term of each tensor call,
* ``latency`` -- the ``l`` term of each tensor call,
* ``cpu``    -- every other RAM-model operation (one unit per word op).

The ledger also keeps an optional trace of tensor calls; the external
memory simulation of Theorem 12 replays that trace.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TensorCall", "CostLedger", "LedgerError"]


class LedgerError(RuntimeError):
    """Raised on invalid accounting operations (e.g. negative charges)."""


@dataclass(frozen=True)
class TensorCall:
    """One invocation of the tensor unit.

    Attributes
    ----------
    n:
        Number of rows of the (tall) left operand streamed through the
        unit.  The model requires ``n >= sqrt(m)``.
    sqrt_m:
        Side of the right operand (and width of the left operand).
    time:
        Model time charged for the call, ``n * sqrt_m + latency``.
    latency:
        The ``l`` component included in ``time``.
    section:
        Name of the innermost ledger section active at call time
        (empty string when none), useful for attributing cost.
    """

    n: int
    sqrt_m: int
    time: float
    latency: float
    section: str = ""

    @property
    def words_moved(self) -> int:
        """Words read+written by the call: both operands and the output.

        The external-memory simulation (Theorem 12) charges Theta(m)
        I/Os per sqrt(m) x sqrt(m) call; for a tall call the left
        operand and output dominate with ``n * sqrt_m`` words each.
        """
        return self.n * self.sqrt_m * 2 + self.sqrt_m * self.sqrt_m


@dataclass
class CostLedger:
    """Accumulates TCU-model time.

    Parameters
    ----------
    trace_calls:
        When true (default) every tensor call is recorded in
        :attr:`calls` so it can be replayed, e.g. by
        :mod:`repro.extmem.simulate`.  Disable for very long runs where
        only the totals matter.
    """

    trace_calls: bool = True
    tensor_time: float = 0.0
    latency_time: float = 0.0
    cpu_time: float = 0.0
    tensor_calls: int = 0
    calls: list[TensorCall] = field(default_factory=list)
    _section_stack: list[str] = field(default_factory=list)
    _section_totals: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def charge_tensor(self, n: int, sqrt_m: int, latency: float) -> float:
        """Charge one tensor call on an ``n x sqrt_m @ sqrt_m x sqrt_m`` product.

        Returns the model time charged (``n * sqrt_m + latency``).
        """
        if n < sqrt_m:
            raise LedgerError(
                f"tensor call requires n >= sqrt(m); got n={n}, sqrt(m)={sqrt_m}"
            )
        if latency < 0:
            raise LedgerError(f"negative latency {latency!r}")
        throughput = float(n) * float(sqrt_m)
        self.tensor_time += throughput
        self.latency_time += float(latency)
        self.tensor_calls += 1
        total = throughput + float(latency)
        self._bump_sections(total)
        if self.trace_calls:
            section = self._section_stack[-1] if self._section_stack else ""
            self.calls.append(
                TensorCall(
                    n=int(n),
                    sqrt_m=int(sqrt_m),
                    time=total,
                    latency=float(latency),
                    section=section,
                )
            )
        return total

    def charge_cpu(self, ops: float) -> float:
        """Charge ``ops`` units of RAM-model work (one unit per word op)."""
        if ops < 0:
            raise LedgerError(f"negative cpu charge {ops!r}")
        if not math.isfinite(ops):
            raise LedgerError(f"non-finite cpu charge {ops!r}")
        self.cpu_time += float(ops)
        self._bump_sections(float(ops))
        return float(ops)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        """Model running time: the paper's single sequential clock."""
        return self.tensor_time + self.latency_time + self.cpu_time

    @property
    def tensor_total(self) -> float:
        """Tensor-unit time including latency (sum of all call costs)."""
        return self.tensor_time + self.latency_time

    def section_time(self, name: str) -> float:
        """Total model time charged while section ``name`` was open."""
        return self._section_totals.get(name, 0.0)

    def snapshot(self) -> dict[str, float]:
        """Totals as a plain dict (stable keys, for tables and tests)."""
        return {
            "tensor_time": self.tensor_time,
            "latency_time": self.latency_time,
            "cpu_time": self.cpu_time,
            "tensor_calls": float(self.tensor_calls),
            "total_time": self.total_time,
        }

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute all charges inside the block to ``name`` (nestable)."""
        self._section_stack.append(name)
        try:
            yield
        finally:
            self._section_stack.pop()

    def _bump_sections(self, amount: float) -> None:
        for name in self._section_stack:
            self._section_totals[name] = self._section_totals.get(name, 0.0) + amount

    def reset(self) -> None:
        """Zero every counter and drop the trace (sections stay closed)."""
        if self._section_stack:
            raise LedgerError("cannot reset a ledger while sections are open")
        self.tensor_time = 0.0
        self.latency_time = 0.0
        self.cpu_time = 0.0
        self.tensor_calls = 0
        self.calls.clear()
        self._section_totals.clear()

    def merged_with(self, other: "CostLedger") -> "CostLedger":
        """Return a new ledger whose totals are the sum of both (traces concatenated)."""
        out = CostLedger(trace_calls=self.trace_calls and other.trace_calls)
        out.tensor_time = self.tensor_time + other.tensor_time
        out.latency_time = self.latency_time + other.latency_time
        out.cpu_time = self.cpu_time + other.cpu_time
        out.tensor_calls = self.tensor_calls + other.tensor_calls
        if out.trace_calls:
            out.calls = list(self.calls) + list(other.calls)
        for src in (self._section_totals, other._section_totals):
            for key, val in src.items():
                out._section_totals[key] = out._section_totals.get(key, 0.0) + val
        return out
