"""The (m, l)-TCU machine.

Section 3 of the paper defines the model: a standard RAM whose CPU
contains a *tensor unit* that multiplies an ``n x sqrt(m)`` matrix A by
a ``sqrt(m) x sqrt(m)`` matrix B in time ``O(n*sqrt(m) + l)``, where
``n >= sqrt(m)`` is chosen by the algorithm.  :class:`TCUMachine`
realises the model in software: :meth:`TCUMachine.mm` executes the
product numerically (so algorithms can be verified end to end) and
charges the model cost, with the constant fixed to 1, to a
:class:`~repro.core.ledger.CostLedger`.

:class:`WeakTCUMachine` is the restricted model of Section 5 (only
``sqrt(m) x sqrt(m)`` products; no tall left operands), used by the
external-memory lower-bound machinery of Theorem 12.

:meth:`TCUMachine.mm` is the *eager* entry point: it executes and
charges immediately.  Algorithms that want calls batched, merged or
reordered build a lazy :class:`~repro.core.program.TensorProgram`
instead and execute it through :func:`~repro.core.program.run_program`,
which ultimately funnels every call back through this primitive (the
charging path is identical either way).
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from .ledger import CostLedger
from .systolic import SystolicArray
from .words import WordSpec, check_no_overflow

__all__ = ["TCUMachine", "WeakTCUMachine", "TensorShapeError", "placeholder"]


class TensorShapeError(ValueError):
    """Operand shapes violate the tensor-unit interface of Section 3."""


def placeholder(shape, dtype=np.float64) -> np.ndarray:
    """A read-only, O(1)-storage stand-in array for ``execute="cost-only"`` runs.

    A zero-strided broadcast view of a single zero scalar: it carries a
    real ``shape``/``dtype`` (so shape validation, dtype promotion and
    complex-cost detection behave exactly as with data) and reads as all
    zeros, but occupies constant memory no matter how large the shape —
    cost studies can therefore be driven at sizes where numeric operands
    would no longer fit.  Writes fail (the view is read-only); reshapes
    that cannot be expressed as views fall back to (cheap, data-sized)
    copies of zeros.
    """
    return np.broadcast_to(np.zeros((), dtype=np.dtype(dtype)), tuple(shape))


class TCUMachine:
    """A simulated (m, l)-TCU.

    Parameters
    ----------
    m:
        Tensor-unit capacity; the unit multiplies ``sqrt(m) x sqrt(m)``
        matrices.  Must be a perfect square (m = sqrt(m)**2 >= 1).
    ell:
        Per-call latency ``l >= 0`` (Section 3, property 2).
    kappa:
        Word size in bits (Section 3).  Integer algorithms use it for
        overflow discipline via :class:`~repro.core.words.WordSpec`.
    max_rows:
        Optional hardware bound on the streamed row count ``n`` (the
        Google TPUv1 caps it at 96K, Section 3.1).  Longer streams are
        split into ceil(n / max_rows) calls, each paying latency.
    complex_cost_factor:
        Tensor calls on complex operands are charged this many real
        calls.  The paper assumes 1 ("can be easily removed with a
        constant slow down"); 4 models the four real products of a
        complex multiply.
    backend:
        ``"numpy"`` executes tensor calls with ``@``; ``"systolic"``
        executes them cycle-by-cycle on :class:`SystolicArray` (slow,
        used to validate that the primitive matches Figure 1).
    execute:
        ``"numeric"`` (default) computes every tensor-call product;
        ``"cost-only"`` charges the identical model time and call trace
        but skips all numeric tensor work, returning O(1)-storage
        :func:`placeholder` arrays instead of products.  Cost/latency
        studies then run at ledger speed and scale to sizes where the
        numeric arrays would no longer fit; outputs are meaningless (all
        zeros), only the accounting is preserved.
    check_overflow:
        When true, integer tensor-call outputs are checked against the
        kappa-bit accumulator bound.
    ledger:
        Attach an existing ledger (e.g. shared across machines);
        otherwise a fresh one is created.
    """

    def __init__(
        self,
        m: int,
        ell: float = 0.0,
        *,
        kappa: int = 64,
        max_rows: int | None = None,
        complex_cost_factor: int = 1,
        backend: Literal["numpy", "systolic"] = "numpy",
        execute: Literal["numeric", "cost-only"] = "numeric",
        check_overflow: bool = False,
        ledger: CostLedger | None = None,
        trace_calls: bool = True,
    ) -> None:
        if m < 1:
            raise ValueError(f"m must be >= 1, got {m}")
        sqrt_m = math.isqrt(m)
        if sqrt_m * sqrt_m != m:
            raise ValueError(f"m must be a perfect square, got {m}")
        if ell < 0:
            raise ValueError(f"ell must be >= 0, got {ell}")
        if max_rows is not None and max_rows < sqrt_m:
            raise ValueError(
                f"max_rows must be >= sqrt(m)={sqrt_m}, got {max_rows}"
            )
        if complex_cost_factor < 1:
            raise ValueError("complex_cost_factor must be >= 1")
        if backend not in ("numpy", "systolic"):
            raise ValueError(f"unknown backend {backend!r}")
        if execute not in ("numeric", "cost-only"):
            raise ValueError(f"unknown execute mode {execute!r}")
        self.m = int(m)
        self.sqrt_m = sqrt_m
        self.ell = float(ell)
        self.kappa = int(kappa)
        self.max_rows = max_rows
        self.complex_cost_factor = int(complex_cost_factor)
        self.backend = backend
        self.execute = execute
        self.check_overflow = bool(check_overflow)
        self.ledger = ledger if ledger is not None else CostLedger(trace_calls=trace_calls)
        self.ledger.bind_machine(self.sqrt_m, self.ell)
        self._words: WordSpec | None = None
        self._systolic: SystolicArray | None = None

    @property
    def words(self) -> WordSpec:
        """kappa-bit word spec for the Section 4.7 integer algorithms.

        Computed lazily: some hardware points (e.g. TPUv1's kappa=8
        with sqrt(m)=256) have no safe limb width — the real chip uses
        a wider accumulator — and only the integer algorithms need one,
        so the error surfaces there, not at machine construction.
        """
        if self._words is None:
            self._words = WordSpec.for_machine(self.kappa, self.m)
        return self._words

    # ------------------------------------------------------------------
    # the model primitive
    # ------------------------------------------------------------------
    def mm(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """One tensor-unit invocation: ``C = A @ B``.

        ``A`` must be ``n x sqrt(m)`` with ``n >= sqrt(m)``; ``B`` must
        be ``sqrt(m) x sqrt(m)``.  Charges ``n*sqrt(m) + l`` model time
        (times :attr:`complex_cost_factor` for complex operands, plus
        the two real additions a 4-product complex multiply needs).
        Use :func:`repro.matmul.dense.matmul` for arbitrary shapes.
        """
        A = np.asarray(A)
        B = np.asarray(B)
        s = self.sqrt_m
        if A.ndim != 2 or B.ndim != 2:
            raise TensorShapeError(
                f"operands must be 2-D, got {A.ndim}-D and {B.ndim}-D"
            )
        n = A.shape[0]
        if A.shape[1] != s:
            raise TensorShapeError(
                f"left operand must have sqrt(m)={s} columns, got {A.shape[1]}"
            )
        if B.shape != (s, s):
            raise TensorShapeError(
                f"right operand must be {s}x{s}, got {B.shape[0]}x{B.shape[1]}"
            )
        if n < s:
            raise TensorShapeError(
                f"left operand must have n >= sqrt(m)={s} rows, got {n}"
            )
        if self.max_rows is not None and n > self.max_rows:
            return self._mm_split(A, B)
        return self._mm_single(A, B)

    def _mm_single(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        n = A.shape[0]
        s = self.sqrt_m
        is_complex = np.iscomplexobj(A) or np.iscomplexobj(B)
        calls = self.complex_cost_factor if is_complex else 1
        for _ in range(calls):
            self.ledger.charge_tensor(n, s, self.ell)
        if is_complex and calls >= 4:
            # two extra real additions of n x sqrt(m) partial products
            self.ledger.charge_cpu(2 * n * s)
        if self.execute == "cost-only":
            return placeholder((n, s), np.result_type(A.dtype, B.dtype))
        if self.backend == "systolic":
            C = self._systolic_mm(A, B)
        else:
            C = A @ B
        if self.check_overflow and np.issubdtype(C.dtype, np.integer):
            check_no_overflow(C, self.words)
        return C

    def _mm_split(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Split a stream longer than the hardware row bound (TPU-style).

        The materialised copies are RAM-model work and charged like any
        other padded copy (`matmul`'s ``padded_copy_cost`` discipline):
        ``sqrt(m) x sqrt(m)`` words when a short final chunk is padded,
        plus the reassembled ``n x sqrt(m)`` output when the stream was
        actually split.
        """
        assert self.max_rows is not None
        n = A.shape[0]
        s = self.sqrt_m
        pieces = []
        for start in range(0, n, self.max_rows):
            chunk = A[start : start + self.max_rows]
            if chunk.shape[0] < s:
                # pad the final short chunk up to the sqrt(m) minimum
                self.ledger.charge_cpu(s * s)
                pad = np.zeros((s - chunk.shape[0], s), dtype=chunk.dtype)
                out = self._mm_single(np.vstack([chunk, pad]), B)
                pieces.append(out[: chunk.shape[0]])
            else:
                pieces.append(self._mm_single(chunk, B))
        if len(pieces) > 1:
            self.ledger.charge_cpu(n * s)
        if self.execute == "cost-only":
            return placeholder((n, s), np.result_type(A.dtype, B.dtype))
        return np.vstack(pieces)

    @property
    def fusable(self) -> bool:
        """True when stacked grid products are exactly equivalent to a
        loop of single calls on this machine: the numpy backend with an
        unmodified call entry point and kernel.  Subclasses that
        customise either the interface (the weak model's square-only
        ``mm``) or the per-call numerics (quantisation) are
        automatically excluded, so the fused executors fall back to the
        scalar primitive for them.
        """
        return (
            self.backend == "numpy"
            and type(self).mm is TCUMachine.mm
            and type(self)._mm_single is TCUMachine._mm_single
        )

    def charge_mm_grid(self, n: int, k: int, dtype) -> None:
        """Charge ``k`` tensor calls of ``n`` rows each in one vectorised
        ledger append — the bulk-charging rule of :meth:`mm_grid`,
        shared with fused kernels (e.g. the Theorem 2 contraction in
        :func:`repro.matmul.dense.matmul`) that compute the same grid by
        other numeric means.  Applies the complex-cost factor exactly as
        the scalar :meth:`mm` does, including the two extra real
        additions per 4-product complex call.
        """
        s = self.sqrt_m
        is_complex = np.issubdtype(np.dtype(dtype), np.complexfloating)
        factor = self.complex_cost_factor if is_complex else 1
        self.ledger.charge_tensor_bulk(
            np.full(k * factor, n, dtype=np.int64), s, self.ell
        )
        if is_complex and factor >= 4:
            # two extra real additions of n x sqrt(m) partials per call
            self.ledger.charge_cpu(2 * n * s * k)

    def mm_grid(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """A whole grid of independent tensor calls as one stacked product.

        ``A`` is ``(..., n, sqrt(m))`` and ``B`` is
        ``(..., sqrt(m), sqrt(m))``; the leading dimensions broadcast
        under numpy rules and every broadcast element is one tensor-unit
        invocation of ``n`` rows.  The entire grid is charged through a
        single vectorised
        :meth:`~repro.core.ledger.CostLedger.charge_tensor_bulk` (one
        columnar trace append, not k Python-level charges) and executed
        as one ``np.matmul`` — this is how the Theorem 2 strip-by-block
        grid and the planned-program levels run at hardware speed.
        Charges, traces and results are identical to looping
        :meth:`mm` over the grid elements.

        Grids the fast path cannot express exactly — streams longer than
        ``max_rows`` (the hardware splits them), the systolic backend,
        or a subclass with custom call numerics — fall back to that loop
        transparently.  In ``execute="cost-only"`` mode the product is
        skipped and an O(1)-storage :func:`placeholder` is returned.
        """
        A = np.asarray(A)
        B = np.asarray(B)
        s = self.sqrt_m
        if A.ndim < 2 or B.ndim < 2:
            raise TensorShapeError(
                f"grid operands must be at least 2-D, got {A.ndim}-D and {B.ndim}-D"
            )
        n = A.shape[-2]
        if A.shape[-1] != s:
            raise TensorShapeError(
                f"left operands must have sqrt(m)={s} columns, got {A.shape[-1]}"
            )
        if B.shape[-2:] != (s, s):
            raise TensorShapeError(
                f"right operands must be {s}x{s}, got {B.shape[-2]}x{B.shape[-1]}"
            )
        if n < s:
            raise TensorShapeError(
                f"left operands must have n >= sqrt(m)={s} rows, got {n}"
            )
        try:
            lead = np.broadcast_shapes(A.shape[:-2], B.shape[:-2])
        except ValueError as exc:
            raise TensorShapeError(
                f"grid shapes {A.shape} and {B.shape} do not broadcast"
            ) from exc
        dtype = np.result_type(A.dtype, B.dtype)
        out_shape = lead + (n, s)
        k = 1
        for dim in lead:
            k *= dim
        if k == 0:
            return np.zeros(out_shape, dtype=dtype)

        # Cost-only charging never depends on the numeric kernel, so only
        # a hardware row bound (whose splits change the charge structure)
        # forces the per-element path there; numeric execution also falls
        # back for non-fusable kernels (systolic, quantised, ...).
        splits = self.max_rows is not None and n > self.max_rows
        if splits or (self.execute != "cost-only" and not self.fusable):
            # element-by-element through the scalar primitive: identical
            # charges (including per-chunk stream splits) and semantics
            Ab = np.broadcast_to(A, lead + (n, s))
            Bb = np.broadcast_to(B, lead + (s, s))
            if self.execute == "cost-only":
                for idx in np.ndindex(*lead):
                    self.mm(Ab[idx], Bb[idx])
                return placeholder(out_shape, dtype)
            out = np.empty(out_shape, dtype=dtype)
            for idx in np.ndindex(*lead):
                out[idx] = self.mm(Ab[idx], Bb[idx])
            return out

        self.charge_mm_grid(n, k, dtype)
        if self.execute == "cost-only":
            return placeholder(out_shape, dtype)
        if A.ndim == 2 and B.ndim == 3:
            # one shared stream against k resident blocks: a single GEMM
            # against the horizontally concatenated blocks beats k tiny
            # batched products by an order of magnitude
            kb = B.shape[0]
            C2 = A @ B.transpose(1, 0, 2).reshape(s, kb * s)
            C = C2.reshape(n, kb, s).transpose(1, 0, 2)
        else:
            C = np.matmul(A, B)
        if self.check_overflow and np.issubdtype(C.dtype, np.integer):
            check_no_overflow(C, self.words)
        return C

    def _systolic_mm(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self._systolic is None or self._systolic.sqrt_m != self.sqrt_m:
            self._systolic = SystolicArray(self.sqrt_m)
        self._systolic.load_weights(B)
        C, _ = self._systolic.multiply(A)
        return C

    # ------------------------------------------------------------------
    # RAM-side accounting helpers
    # ------------------------------------------------------------------
    def charge_cpu(self, ops: float) -> float:
        """Charge RAM-model work (one unit per word operation)."""
        return self.ledger.charge_cpu(ops)

    def section(self, name: str):
        """Attribute charges to a named section (see :class:`CostLedger`)."""
        return self.ledger.section(name)

    @property
    def time(self) -> float:
        """Total model time accumulated so far."""
        return self.ledger.total_time

    def reset(self) -> None:
        """Zero the ledger (the machine parameters are untouched)."""
        self.ledger.reset()

    def config_key(self) -> tuple:
        """A stable fingerprint of every parameter that shapes charges.

        Two machines with equal keys charge bit-identical ledgers for
        the same sequence of calls, so the key is safe to memoise
        compiled plans under (:mod:`repro.core.plan_cache`).  Subclasses
        with extra cost-bearing parameters (units, scheduler, precision)
        must extend the tuple.  ``trace_calls`` is deliberately absent:
        trace mode changes what is recorded, never what is charged.
        """
        return (
            type(self).__name__,
            self.m,
            self.ell,
            self.kappa,
            self.max_rows,
            self.complex_cost_factor,
            self.backend,
            self.execute,
            self.check_overflow,
        )

    def fork(self) -> "TCUMachine":
        """A machine with identical parameters and a fresh ledger."""
        return type(self)(
            self.m,
            self.ell,
            kappa=self.kappa,
            max_rows=self.max_rows,
            complex_cost_factor=self.complex_cost_factor,
            backend=self.backend,
            execute=self.execute,
            check_overflow=self.check_overflow,
            trace_calls=self.ledger.trace_calls,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(m={self.m}, ell={self.ell}, "
            f"kappa={self.kappa}, backend={self.backend!r})"
        )


class WeakTCUMachine(TCUMachine):
    """The weak TCU model of Section 5: only square ``sqrt(m) x sqrt(m)``
    products are allowed, so tall left operands must be split by the
    caller (costing one latency per square call).

    Any (m, l)-TCU algorithm runs on the weak model with constant
    slowdown when ``l = O(m)`` (Section 5); :meth:`mm` enforces the
    restriction so that violation is an error rather than silent.
    """

    def mm(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.asarray(A)
        if A.ndim == 2 and A.shape[0] != self.sqrt_m:
            raise TensorShapeError(
                "weak TCU model multiplies only sqrt(m) x sqrt(m) matrices; "
                f"got a left operand with {A.shape[0]} rows "
                f"(sqrt(m)={self.sqrt_m}); split the stream explicitly"
            )
        return super().mm(A, B)

    def mm_grid(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.asarray(A)
        if A.ndim >= 2 and A.shape[-2] != self.sqrt_m:
            raise TensorShapeError(
                "weak TCU model multiplies only sqrt(m) x sqrt(m) matrices; "
                f"got grid left operands with {A.shape[-2]} rows "
                f"(sqrt(m)={self.sqrt_m}); split the streams explicitly"
            )
        return super().mm_grid(A, B)

    def mm_tall(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """The Section 5 simulation of a tall call: split ``A`` into
        ``n / sqrt(m)`` square blocks and issue one square call each.

        The padded copy of a ragged final block (``sqrt(m) x sqrt(m)``
        words) and the reassembly of the split output (``n x sqrt(m)``
        words) are materialised copies and charged as RAM work, matching
        ``matmul``'s ``padded_copy_cost`` discipline.
        """
        A = np.asarray(A)
        s = self.sqrt_m
        n = A.shape[0]
        pieces = []
        for start in range(0, n, s):
            chunk = A[start : start + s]
            if chunk.shape[0] < s:
                self.ledger.charge_cpu(s * s)
                pad = np.zeros((s - chunk.shape[0], s), dtype=chunk.dtype)
                out = self.mm(np.vstack([chunk, pad]), B)
                pieces.append(out[: chunk.shape[0]])
            else:
                pieces.append(self.mm(chunk, B))
        if len(pieces) > 1:
            self.ledger.charge_cpu(n * s)
        return np.vstack(pieces)
