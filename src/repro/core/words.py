"""kappa-bit word semantics for the (m, l)-TCU model.

Section 3 of the paper fixes a word size of kappa bits (kappa =
Omega(log n)).  Section 4.7 relies on a finer discipline: when long
integers are multiplied through the tensor unit, each operand is split
into limbs of kappa' = kappa/4 bits so that the largest value produced
by a sqrt(m)-wide inner product,

    2^(2 kappa') * sqrt(m),

still fits in a kappa-bit accumulator without overflow (the paper notes
kappa' = kappa/2 - 1 also suffices when n >> m).  This module provides
that discipline: limb split/join, overflow guards, and the safe limb
width for a given (kappa, m).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WordSpec",
    "OverflowError_",
    "safe_limb_bits",
    "int_to_limbs",
    "limbs_to_int",
    "check_no_overflow",
]


class OverflowError_(ArithmeticError):
    """A value exceeded the machine's kappa-bit accumulator."""


def safe_limb_bits(kappa: int, m: int) -> int:
    """Largest limb width (bits) safe for sqrt(m)-wide inner products.

    Requires ``2 * limb_bits + ceil(log2(sqrt(m))) <= kappa`` so the sum
    of sqrt(m) limb products fits in a kappa-bit word, mirroring the
    paper's kappa' = kappa/4 argument but tight for the given m.
    """
    if kappa < 4:
        raise ValueError(f"kappa must be >= 4, got {kappa}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    sqrt_m = math.isqrt(m)
    if sqrt_m * sqrt_m != m:
        raise ValueError(f"m must be a perfect square, got {m}")
    guard = max(1, sqrt_m).bit_length()  # ceil(log2 sqrt(m)) + 1 margin
    limb = (kappa - guard) // 2
    if limb < 1:
        raise OverflowError_(
            f"no safe limb width exists for kappa={kappa}, m={m}"
        )
    return limb


@dataclass(frozen=True)
class WordSpec:
    """Machine word description: kappa bits, and the limb width used
    by the integer-multiplication algorithms of Section 4.7."""

    kappa: int
    limb_bits: int

    def __post_init__(self) -> None:
        if self.kappa < 4:
            raise ValueError(f"kappa must be >= 4, got {self.kappa}")
        if not (1 <= self.limb_bits <= self.kappa):
            raise ValueError(
                f"limb_bits must be in [1, kappa], got {self.limb_bits}"
            )

    @classmethod
    def for_machine(cls, kappa: int, m: int) -> "WordSpec":
        """Word spec with the paper's conservative kappa' = kappa/4 limbs,
        tightened only if kappa/4 would overflow for this m."""
        quarter = max(1, kappa // 4)
        limb = min(quarter, safe_limb_bits(kappa, m))
        return cls(kappa=kappa, limb_bits=limb)

    @property
    def limb_base(self) -> int:
        return 1 << self.limb_bits

    @property
    def max_word(self) -> int:
        return (1 << self.kappa) - 1


def int_to_limbs(value: int, limb_bits: int, count: int | None = None) -> np.ndarray:
    """Split a non-negative integer into little-endian limbs.

    Parameters
    ----------
    value:
        The integer ``a``; must be >= 0.
    limb_bits:
        Bits per limb (the paper's kappa').
    count:
        Pad/validate to exactly this many limbs when given.

    Returns an int64 array ``A`` with ``a = sum_i A[i] * 2**(i*limb_bits)``.
    """
    if value < 0:
        raise ValueError("int_to_limbs requires a non-negative integer")
    if limb_bits < 1:
        raise ValueError(f"limb_bits must be >= 1, got {limb_bits}")
    if limb_bits > 62:
        raise ValueError("limb_bits > 62 would overflow int64 limbs")
    mask = (1 << limb_bits) - 1
    limbs: list[int] = []
    v = int(value)
    while v:
        limbs.append(v & mask)
        v >>= limb_bits
    if not limbs:
        limbs = [0]
    if count is not None:
        if len(limbs) > count:
            raise ValueError(
                f"value needs {len(limbs)} limbs, more than count={count}"
            )
        limbs.extend([0] * (count - len(limbs)))
    return np.asarray(limbs, dtype=np.int64)


def limbs_to_int(limbs: np.ndarray, limb_bits: int) -> int:
    """Evaluate little-endian limbs at base 2**limb_bits (exact bigint).

    Limbs may exceed the base (the un-normalised convolution output of
    Theorem 9); carries are resolved by plain integer arithmetic.
    """
    arr = np.asarray(limbs)
    total = 0
    for i, limb in enumerate(arr.tolist()):
        total += int(limb) << (i * limb_bits)
    return total


def check_no_overflow(array: np.ndarray, spec: WordSpec) -> None:
    """Raise :class:`OverflowError_` if any entry exceeds kappa bits."""
    arr = np.asarray(array)
    if arr.size == 0:
        return
    hi = int(arr.max())
    lo = int(arr.min())
    if lo < 0:
        raise OverflowError_(f"negative accumulator value {lo}")
    if hi > spec.max_word:
        raise OverflowError_(
            f"accumulator value {hi} exceeds kappa={spec.kappa}-bit word"
        )
