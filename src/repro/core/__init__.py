"""Core of the reproduction: the simulated (m, l)-TCU machine.

* :mod:`repro.core.ledger`     -- model-time accounting
* :mod:`repro.core.program`    -- lazy TensorProgram IR, planner, executor
* :mod:`repro.core.machine`    -- the (m, l)-TCU and the weak model of §5
* :mod:`repro.core.scheduling` -- multi-unit scheduling policies (§6)
* :mod:`repro.core.systolic`   -- cycle-level systolic array (Figure 1)
* :mod:`repro.core.words`      -- kappa-bit word discipline (§4.7)
* :mod:`repro.core.presets`    -- TPUv1 / Volta-TC parameterisations (§3.1)
"""

from .ledger import CallTrace, CostLedger, LedgerError, LedgerSpan, TensorCall
from .machine import TCUMachine, TensorShapeError, WeakTCUMachine, placeholder
from .parallel import BatchStats, ParallelTCUMachine
from .scheduling import (
    BruteForceScheduler,
    GreedyOnlineScheduler,
    LPTScheduler,
    RoundRobinScheduler,
    Schedule,
    SchedulerPolicy,
    available_schedulers,
    get_scheduler,
    lpt_bound,
    register_scheduler,
    schedule_batch,
)
from .plan_cache import CompiledPlan, LevelCharges, PlanCache, compile_plan
from .program import (
    CompiledCursor,
    ExecutionCursor,
    Lazy,
    Plan,
    PlanStats,
    ProgramError,
    TensorOp,
    TensorProgram,
    execute_plan,
    plan_program,
    run_program,
)
from .presets import PRESETS, TEST_UNIT, TPU_V1, VOLTA_TC, MachineSpec
from .quantize import QuantizationErrorStats, QuantizedTCUMachine, quantize_array
from .systolic import SystolicArray, SystolicRunStats
from .words import (
    OverflowError_,
    WordSpec,
    check_no_overflow,
    int_to_limbs,
    limbs_to_int,
    safe_limb_bits,
)

__all__ = [
    "CostLedger",
    "CallTrace",
    "LedgerError",
    "LedgerSpan",
    "TensorCall",
    "TensorProgram",
    "TensorOp",
    "Plan",
    "PlanStats",
    "ProgramError",
    "Lazy",
    "ExecutionCursor",
    "CompiledCursor",
    "CompiledPlan",
    "LevelCharges",
    "PlanCache",
    "compile_plan",
    "plan_program",
    "execute_plan",
    "run_program",
    "TCUMachine",
    "WeakTCUMachine",
    "TensorShapeError",
    "placeholder",
    "ParallelTCUMachine",
    "BatchStats",
    "Schedule",
    "SchedulerPolicy",
    "LPTScheduler",
    "RoundRobinScheduler",
    "GreedyOnlineScheduler",
    "BruteForceScheduler",
    "schedule_batch",
    "get_scheduler",
    "register_scheduler",
    "available_schedulers",
    "lpt_bound",
    "QuantizedTCUMachine",
    "QuantizationErrorStats",
    "quantize_array",
    "SystolicArray",
    "SystolicRunStats",
    "WordSpec",
    "OverflowError_",
    "safe_limb_bits",
    "int_to_limbs",
    "limbs_to_int",
    "check_no_overflow",
    "MachineSpec",
    "TPU_V1",
    "VOLTA_TC",
    "TEST_UNIT",
    "PRESETS",
]
