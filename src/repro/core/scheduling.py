"""Deterministic multi-unit scheduling — the batching pillar behind
:class:`~repro.core.parallel.ParallelTCUMachine`.

The §6 open question extends the (m, l)-TCU with ``p`` identical tensor
units.  Charging a batch of independent calls then needs a *schedule*:
an assignment of calls to units whose makespan is the batch's wall-clock
model time.  This module owns that concern, decoupled from the machine:
policies consume a vector of per-call costs (obtained from the machine
itself, so max-rows chunking, complex-cost factors and subclass
semantics are already folded in) and produce a :class:`Schedule` with
per-unit timelines, makespan, utilisation and the policy's worst-case
optimality gap.

Policies
--------
``lpt``
    Longest processing time first: sort decreasing, place each job on
    the earliest-free unit.  The classical Graham bound guarantees a
    makespan within ``4/3 - 1/(3p)`` of optimal (:func:`lpt_bound`).
``round-robin``
    Job ``i`` to unit ``i mod p``.  Optimal for equal costs; no
    constant-factor guarantee for skewed batches.
``greedy``
    Online list scheduling in arrival order: each job to the currently
    least-loaded unit, within ``2 - 1/p`` of optimal without needing
    the whole batch up front.
``exact``
    Brute-force minimal makespan (branch and bound with symmetry
    pruning).  Exponential — gated to small batches and used as the
    test oracle the approximation bounds are checked against.

Policies register by name (:func:`register_scheduler`) so machines,
benches and experiments select them with a string; custom policies are
ordinary subclasses of :class:`SchedulerPolicy`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Schedule",
    "SchedulerPolicy",
    "LPTScheduler",
    "RoundRobinScheduler",
    "GreedyOnlineScheduler",
    "BruteForceScheduler",
    "schedule_batch",
    "get_scheduler",
    "register_scheduler",
    "available_schedulers",
    "lpt_bound",
]


def lpt_bound(units: int) -> float:
    """Graham's LPT guarantee: makespan <= (4/3 - 1/(3p)) * optimum."""
    if units < 1:
        raise ValueError(f"units must be >= 1, got {units}")
    return 4.0 / 3.0 - 1.0 / (3.0 * units)


@dataclass(frozen=True)
class Schedule:
    """One scheduled batch: the assignment and its derived accounting.

    Attributes
    ----------
    policy:
        Name of the policy that produced the assignment.
    units:
        Number of identical units scheduled over.
    costs:
        Per-job costs the schedule was computed from.
    assignment:
        ``assignment[i]`` is the unit job ``i`` runs on.
    unit_times:
        Busy time per unit (length ``units``); the per-unit timeline
        totals, accumulated in job-index order.
    gap_bound:
        The policy's worst-case makespan / optimum ratio for this unit
        count (``1.0`` for the exact policy, ``None`` when the policy
        carries no constant-factor guarantee).
    """

    policy: str
    units: int
    costs: np.ndarray
    assignment: np.ndarray
    unit_times: np.ndarray
    gap_bound: float | None

    @property
    def makespan(self) -> float:
        """Wall-clock model time of the batch: the fullest unit."""
        return float(self.unit_times.max()) if self.unit_times.size else 0.0

    @property
    def serial_time(self) -> float:
        """What one unit would pay: the sum of all job costs."""
        return float(self.unit_times.sum())

    @property
    def units_used(self) -> int:
        """Distinct units that received at least one job."""
        return int(np.unique(self.assignment).size)

    @property
    def utilization(self) -> float:
        """Busy fraction of the whole pool: serial / (p * makespan)."""
        span = self.makespan
        return self.serial_time / (self.units * span) if span else 1.0

    @property
    def speedup(self) -> float:
        span = self.makespan
        return self.serial_time / span if span else 1.0

    @property
    def lower_bound(self) -> float:
        """The trivial makespan lower bound max(max job, serial / p)."""
        if self.costs.size == 0:
            return 0.0
        return max(float(self.costs.max()), self.serial_time / self.units)


class SchedulerPolicy:
    """Base class: map per-job costs to a unit assignment.

    Subclasses implement :meth:`assign`; everything derived (timelines,
    makespan, utilisation) is computed uniformly by
    :func:`schedule_batch` so policies stay tiny and comparable.
    """

    name = "abstract"

    def assign(self, costs: np.ndarray, units: int) -> np.ndarray:
        raise NotImplementedError

    def gap_bound(self, units: int) -> float | None:
        """Worst-case makespan / optimum ratio, or None if unbounded."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RoundRobinScheduler(SchedulerPolicy):
    """Job ``i`` to unit ``i mod p`` — optimal for equal-cost batches."""

    name = "round-robin"

    def assign(self, costs: np.ndarray, units: int) -> np.ndarray:
        return np.arange(costs.size, dtype=np.int64) % units


class GreedyOnlineScheduler(SchedulerPolicy):
    """List scheduling in arrival order: each job to the least-loaded
    unit at its arrival.  Graham's online bound: within ``2 - 1/p``."""

    name = "greedy"

    def assign(self, costs: np.ndarray, units: int) -> np.ndarray:
        k = costs.size
        assignment = np.empty(k, dtype=np.int64)
        heap = [(0.0, u) for u in range(units)]
        for i in range(k):
            load, unit = heapq.heappop(heap)
            assignment[i] = unit
            heapq.heappush(heap, (load + float(costs[i]), unit))
        return assignment

    def gap_bound(self, units: int) -> float:
        return 2.0 - 1.0 / units


class LPTScheduler(SchedulerPolicy):
    """Longest processing time first — the default offline policy."""

    name = "lpt"

    def assign(self, costs: np.ndarray, units: int) -> np.ndarray:
        k = costs.size
        if k <= units or np.all(costs == costs[0]):
            # every job its own unit / equal costs: LPT degenerates to
            # round-robin (sorting equal keys is the identity)
            return np.arange(k, dtype=np.int64) % units
        order = np.argsort(-costs, kind="stable")
        assignment = np.empty(k, dtype=np.int64)
        heap = [(0.0, u) for u in range(units)]
        for idx in order:
            load, unit = heapq.heappop(heap)
            assignment[idx] = unit
            heapq.heappush(heap, (load + float(costs[idx]), unit))
        return assignment

    def gap_bound(self, units: int) -> float:
        return lpt_bound(units)


class BruteForceScheduler(SchedulerPolicy):
    """Exact minimal-makespan assignment by branch and bound.

    Exponential in the job count — refuses batches above ``limit`` jobs
    so it cannot be reached from production paths by accident.  Its role
    is the oracle: policy tests compare LPT/greedy makespans against it
    to verify the advertised approximation bounds.
    """

    name = "exact"

    def __init__(self, limit: int = 12) -> None:
        self.limit = int(limit)

    def assign(self, costs: np.ndarray, units: int) -> np.ndarray:
        k = costs.size
        if k > self.limit:
            raise ValueError(
                f"exact scheduling is exponential; batch of {k} exceeds "
                f"the limit of {self.limit} jobs"
            )
        order = np.argsort(-costs, kind="stable")
        loads = [0.0] * units
        current = np.empty(k, dtype=np.int64)
        best_assignment = np.arange(k, dtype=np.int64) % units
        best = float(
            np.bincount(best_assignment, weights=costs, minlength=units).max()
        )

        def dfs(i: int, partial: float) -> None:
            nonlocal best, best_assignment
            if i == k:
                if partial < best:
                    best = partial
                    best_assignment = current.copy()
                return
            cost = float(costs[order[i]])
            seen: set[float] = set()
            for u in range(units):
                # units with equal load are interchangeable: try one
                if loads[u] in seen:
                    continue
                seen.add(loads[u])
                finish = loads[u] + cost
                if max(partial, finish) >= best:
                    continue
                loads[u] = finish
                current[order[i]] = u
                dfs(i + 1, max(partial, finish))
                loads[u] = finish - cost
            return

        dfs(0, 0.0)
        return best_assignment

    def gap_bound(self, units: int) -> float:
        return 1.0


_REGISTRY: dict[str, SchedulerPolicy] = {}


def register_scheduler(policy: SchedulerPolicy) -> SchedulerPolicy:
    """Add a policy instance to the name registry (last write wins)."""
    _REGISTRY[policy.name] = policy
    return policy


for _policy in (
    LPTScheduler(),
    RoundRobinScheduler(),
    GreedyOnlineScheduler(),
    BruteForceScheduler(),
):
    register_scheduler(_policy)


def available_schedulers() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def get_scheduler(policy: str | SchedulerPolicy) -> SchedulerPolicy:
    """Resolve a policy by name (or pass an instance through)."""
    if isinstance(policy, SchedulerPolicy):
        return policy
    try:
        return _REGISTRY[policy]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {policy!r}; available: {available_schedulers()}"
        ) from None


def schedule_batch(
    costs: np.ndarray, units: int, policy: str | SchedulerPolicy = "lpt"
) -> Schedule:
    """Schedule a batch of per-call costs over ``units`` identical units.

    ``costs`` must be the *true* per-call model costs — the caller (the
    machine) is responsible for folding in latency, max-rows chunking
    and complex-cost factors before scheduling, so every policy prices
    the hardware it actually models.

    The per-unit timelines are accumulated in job-index order, which
    keeps the makespan a plain sequential float sum — the same
    accumulation discipline the serial ledger uses.
    """
    if units < 1:
        raise ValueError(f"units must be >= 1, got {units}")
    costs = np.ascontiguousarray(costs, dtype=np.float64)
    if costs.ndim != 1:
        raise ValueError(f"costs must be a 1-D vector, got shape {costs.shape}")
    resolved = get_scheduler(policy)
    if costs.size == 0:
        return Schedule(
            policy=resolved.name,
            units=units,
            costs=costs,
            assignment=np.empty(0, dtype=np.int64),
            unit_times=np.zeros(units),
            gap_bound=resolved.gap_bound(units),
        )
    if np.any(costs < 0):
        raise ValueError("job costs must be non-negative")
    assignment = np.asarray(resolved.assign(costs, units), dtype=np.int64)
    if assignment.shape != costs.shape or (
        assignment.size and (assignment.min() < 0 or assignment.max() >= units)
    ):
        raise ValueError(
            f"policy {resolved.name!r} returned an invalid assignment"
        )
    unit_times = np.bincount(assignment, weights=costs, minlength=units)
    return Schedule(
        policy=resolved.name,
        units=units,
        costs=costs,
        assignment=assignment,
        unit_times=unit_times,
        gap_bound=resolved.gap_bound(units),
    )
