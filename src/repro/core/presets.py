"""Hardware presets from Section 3.1 of the paper.

The paper grounds the abstract (m, l)-TCU in two real accelerators:

* **Google TPUv1** — the right operand B is 256 x 256 words
  (m = 65536); the unified buffer holds a left operand of up to
  96K x 256 words, so the streamed row count is hardware-bounded;
  words are kappa = 8 bits; the per-call latency is *high* because B
  must be encoded through TensorFlow before it can be loaded.
* **NVIDIA Volta Tensor Cores** — the programming interface exposes
  16 x 16 products (m = 256) over kappa = 16-bit words; operands live
  in HBM shared with the GPU, so latency is *low*.

The latency numbers below are nominal model values chosen to respect
the qualitative ordering the paper describes (TPU latency >> TC
latency); every bench that uses them sweeps ell as well, so no claim
depends on the exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machine import TCUMachine

__all__ = ["MachineSpec", "TPU_V1", "VOLTA_TC", "TEST_UNIT", "PRESETS"]


@dataclass(frozen=True)
class MachineSpec:
    """A named (m, l)-TCU parameterisation.

    ``create()`` builds a fresh :class:`TCUMachine` with these
    parameters; keyword overrides are forwarded (e.g. ``ell=0`` to
    study the latency-free limit of the same unit).
    """

    name: str
    m: int
    ell: float
    kappa: int
    max_rows: int | None = None
    notes: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def sqrt_m(self) -> int:
        import math

        return math.isqrt(self.m)

    def create(self, **overrides) -> TCUMachine:
        kwargs = dict(
            m=self.m,
            ell=self.ell,
            kappa=self.kappa,
            max_rows=self.max_rows,
        )
        kwargs.update(self.extra)
        kwargs.update(overrides)
        m = kwargs.pop("m")
        ell = kwargs.pop("ell")
        return TCUMachine(m, ell, **kwargs)


TPU_V1 = MachineSpec(
    name="tpu-v1",
    m=256 * 256,
    ell=131072.0,  # ~2m: the TensorFlow-encoded weight load dominates (§3.1)
    kappa=8,
    max_rows=96 * 1024,
    notes=(
        "Google TPUv1 (Jouppi et al. 2017): 256x256 systolic MMU, 8-bit "
        "words, 96K-row unified buffer, high activation latency."
    ),
)

VOLTA_TC = MachineSpec(
    name="volta-tc",
    m=16 * 16,
    ell=32.0,  # low: operands come from on-die shared memory (§3.1)
    kappa=16,
    max_rows=None,
    notes=(
        "NVIDIA Volta tensor core at the CUDA warp level: 16x16 "
        "half-precision products, low latency."
    ),
)

TEST_UNIT = MachineSpec(
    name="test-unit",
    m=16,
    ell=4.0,
    kappa=64,
    max_rows=None,
    notes="Tiny 4x4 unit for fast test-suite runs.",
)

PRESETS: dict[str, MachineSpec] = {
    spec.name: spec for spec in (TPU_V1, VOLTA_TC, TEST_UNIT)
}
