"""Cycle-level simulator for the systolic matrix-multiplication array.

Section 2.2 (and Figure 1) of the paper formalises the weight-stationary
systolic algorithm used by the Google TPU:

* a 2-D grid of ``m`` processing elements (PEs) ``p[i][j]``,
  ``0 <= i, j < sqrt(m)``;
* in the first ``sqrt(m)`` steps matrix B is pushed into the grid so
  that ``p[i][j]`` holds ``b[i][j]``;
* then, in each compute step ``k``, PE ``p[i][j]`` receives an entry
  ``a`` of A from its left neighbour (or the skewed input ``a[k-i][i]``
  when ``j = 0``) and a partial sum ``c`` from its top neighbour (0 when
  ``i = 0``), computes ``c <- c + a * b[i][j]``, and forwards ``a``
  right and ``c`` down;
* the bottom PE of column ``j`` emits output entry ``c[r][j]``.

With 0-indexed compute steps this simulator reproduces the paper's
timing claims (stated there with the load phase folded in):

* ``c[r][j]`` is emitted at compute step ``r + j + sqrt(m) - 1``;
* a square multiply drains after ``3*(sqrt(m)-1) + 1`` compute steps;
* an ``n``-row left operand (the §3 "asymmetric" tall stream) drains
  after ``n + 2*(sqrt(m)-1)`` compute steps — the per-row marginal cost
  is one step, which is what justifies streaming A instead of splitting
  it into square tiles.

The simulator is synchronous and exact: every cycle updates the ``a``
and ``c`` pipeline registers of all PEs at once, and the emitted matrix
is checked against the mathematical product by the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SystolicArray", "SystolicRunStats"]


@dataclass(frozen=True)
class SystolicRunStats:
    """Timing record of one streamed multiplication.

    Attributes
    ----------
    n:
        Rows of the left operand streamed through the array.
    sqrt_m:
        Array side.
    load_steps:
        Steps spent loading B (always ``sqrt_m``).
    compute_steps:
        Synchronous compute cycles until the last output drained.
    emit_step:
        ``emit_step[r, j]`` is the 0-indexed compute step at which
        output entry ``C[r][j]`` left the bottom row of the array.
    mac_count:
        Total multiply-accumulate operations performed (``n * m``).
    """

    n: int
    sqrt_m: int
    load_steps: int
    compute_steps: int
    emit_step: np.ndarray
    mac_count: int

    @property
    def total_steps(self) -> int:
        return self.load_steps + self.compute_steps

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles that performed a useful MAC."""
        cycles = self.compute_steps * self.sqrt_m * self.sqrt_m
        return self.mac_count / cycles if cycles else 0.0


class SystolicArray:
    """A ``sqrt_m x sqrt_m`` weight-stationary systolic array."""

    def __init__(self, sqrt_m: int) -> None:
        if sqrt_m < 1:
            raise ValueError(f"sqrt_m must be >= 1, got {sqrt_m}")
        self.sqrt_m = int(sqrt_m)
        self._weights: np.ndarray | None = None
        self._load_steps = 0

    # ------------------------------------------------------------------
    def load_weights(self, B: np.ndarray) -> int:
        """Push matrix B into the PE grid; returns the steps spent (sqrt_m).

        The load phase percolates one row of B per step, top to bottom,
        exactly as in Figure 1; after ``sqrt_m`` steps PE ``p[i][j]``
        holds ``b[i][j]``.
        """
        B = np.asarray(B)
        s = self.sqrt_m
        if B.shape != (s, s):
            raise ValueError(f"weights must be {s}x{s}, got {B.shape}")
        # One row of B percolates into the grid per step (Figure 1):
        # row B[s-1] enters first and sinks to depth s-1, row B[0] enters
        # last and rests at depth 0, so the phase takes exactly s steps.
        self._weights = B.copy()
        self._load_steps = s
        return s

    # ------------------------------------------------------------------
    def multiply(self, A: np.ndarray) -> tuple[np.ndarray, SystolicRunStats]:
        """Stream the rows of ``A`` through the array; return (C, stats).

        ``A`` is ``n x sqrt_m`` with any ``n >= 1`` (the machine-level
        ``n >= sqrt(m)`` constraint is enforced by
        :class:`~repro.core.machine.TCUMachine`, not here, so the
        simulator can also exercise short streams in isolation).
        """
        if self._weights is None:
            raise RuntimeError("load_weights must be called before multiply")
        A = np.asarray(A)
        s = self.sqrt_m
        if A.ndim != 2 or A.shape[1] != s:
            raise ValueError(f"left operand must be n x {s}, got {A.shape}")
        n = A.shape[0]
        B = self._weights
        out_dtype = np.result_type(A.dtype, B.dtype)

        C = np.zeros((n, s), dtype=out_dtype)
        emit_step = np.full((n, s), -1, dtype=np.int64)

        # Pipeline registers: a_reg[i, j] is the A-value PE (i, j)
        # processed this cycle; c_reg[i, j] the partial sum it produced.
        a_reg = np.zeros((s, s), dtype=out_dtype)
        c_reg = np.zeros((s, s), dtype=out_dtype)
        a_valid = np.zeros((s, s), dtype=bool)

        total_compute = n + 2 * (s - 1)
        mac_count = 0
        for k in range(total_compute):
            # Values move synchronously: shift a right, c down, then
            # inject the skewed column inputs a[k-i][i] at j = 0.
            new_a = np.zeros_like(a_reg)
            new_valid = np.zeros_like(a_valid)
            new_a[:, 1:] = a_reg[:, :-1]
            new_valid[:, 1:] = a_valid[:, :-1]
            for i in range(s):
                r = k - i
                if 0 <= r < n:
                    new_a[i, 0] = A[r, i]
                    new_valid[i, 0] = True
            new_c = np.zeros_like(c_reg)
            new_c[1:, :] = c_reg[:-1, :]
            # MAC in every PE holding a valid a-value.
            new_c = new_c + np.where(new_valid, new_a * B, 0)
            mac_count += int(new_valid.sum())
            # Bottom row emits: PE (s-1, j) processed the value for
            # output row r = k - (s-1) - j this cycle.
            for j in range(s):
                r = k - (s - 1) - j
                if 0 <= r < n:
                    C[r, j] = new_c[s - 1, j]
                    emit_step[r, j] = k
            a_reg, c_reg, a_valid = new_a, new_c, new_valid

        stats = SystolicRunStats(
            n=n,
            sqrt_m=s,
            load_steps=self._load_steps,
            compute_steps=total_compute,
            emit_step=emit_step,
            mac_count=mac_count,
        )
        return C, stats

    # ------------------------------------------------------------------
    def matmul(self, A: np.ndarray, B: np.ndarray) -> tuple[np.ndarray, SystolicRunStats]:
        """Convenience: load ``B`` then stream ``A``."""
        self.load_weights(B)
        return self.multiply(A)
