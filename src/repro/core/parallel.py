"""Parallel tensor units — the paper's first §6 open question.

Section 3.1 concedes that modelling a *single* tensor unit is the
model's major simplification (a Titan RTX carries >500 tensor cores).
:class:`ParallelTCUMachine` extends the (m, l)-TCU with ``p`` identical
units: *independent* tensor calls issued through :meth:`mm_batch` may
run concurrently, and the model time charged for the batch is the
**makespan** of a scheduled assignment of calls to units rather than
the serial sum.  Everything else — the CPU, memory, the cost of one
call — is unchanged, so every single-unit algorithm still runs and the
p = 1 machine is exactly the paper's model.

Two invariants pin the batch semantics to the scalar model:

* **True per-call costs.**  A batched call is priced exactly as the
  scalar :meth:`~repro.core.machine.TCUMachine.mm` path prices it —
  max-rows stream splitting, complex cost factors, overflow checking,
  the systolic backend and any subclass per-call semantics included.
  Machines whose calls are plain ``n*sqrt(m) + l`` products take a
  vectorised fast path; every other configuration routes each call
  through the machine's own primitive against a scratch ledger, so the
  numerics stay bit-correct and the measured costs *are* the serial
  costs.
* **Trace = hardware work, clock = wall time.**  The call trace records
  every hardware call at its true cost with a ``unit_id`` (so per-shape
  totals and the Theorem 12 I/O replay are identical to a serial run),
  while the ledger's time counters advance by the makespan — the wall
  clock of the p-unit machine.  CPU-side work captured during the batch
  (padding copies, the extra adds of a 4-product complex multiply,
  reassembly) stays serial: there is still one CPU.

Scheduling is delegated to :mod:`repro.core.scheduling`: the default
LPT policy is a classical (4/3 - 1/(3p))-approximation of the optimal
makespan; round-robin, greedy-online and an exact oracle are available
by name, and :attr:`ParallelTCUMachine.last_schedule` exposes the
per-unit timelines for utilisation reporting.

The obvious consequences the benches measure:

* a batch of k equal calls speeds up by ``min(p, k)``;
* latency does not parallelise away *within* a call, so
  latency-dominated workloads gain little;
* Theorem 2's schedule parallelises perfectly across its independent
  ``C_{i,j}`` products, giving ``~ n^{3/2}/(p sqrt(m))`` throughput time
  until the call count drops below p.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ledger import CostLedger
from .machine import TCUMachine, TensorShapeError, placeholder
from .scheduling import Schedule, SchedulerPolicy, get_scheduler, schedule_batch

__all__ = ["ParallelTCUMachine", "BatchStats"]


@dataclass(frozen=True)
class BatchStats:
    """Accounting record of one :meth:`ParallelTCUMachine.mm_batch`.

    Attributes
    ----------
    calls:
        Number of logical tensor calls in the batch (batch elements).
    serial_time:
        Sum of the individual true call costs — exactly what the serial
        ledger would charge for the same calls on a single unit.
    makespan:
        The batch's charged model time under the scheduled assignment.
    units_used:
        Distinct units that received at least one call.
    policy:
        Name of the scheduling policy that produced the assignment.
    hardware_calls:
        Tensor-unit invocations actually issued (max-rows splitting and
        complex cost factors make this exceed ``calls``).
    cpu_time:
        Serial CPU work charged alongside the batch (padding copies,
        complex-multiply adds, reassembly).
    utilization:
        Busy fraction of the whole pool, ``serial / (p * makespan)``.
    gap_bound:
        The policy's worst-case makespan / optimum ratio (``None`` when
        the policy carries no guarantee).
    """

    calls: int
    serial_time: float
    makespan: float
    units_used: int
    policy: str = ""
    hardware_calls: int = 0
    cpu_time: float = 0.0
    utilization: float = 1.0
    gap_bound: float | None = None

    @property
    def speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan else 1.0


class ParallelTCUMachine(TCUMachine):
    """An (m, l)-TCU with ``units`` identical tensor units.

    Single calls through :meth:`mm` behave exactly like the sequential
    model (one unit active, full cost).  Independent calls batched
    through :meth:`mm_batch` are scheduled across the units by
    ``scheduler`` (a :mod:`repro.core.scheduling` policy name or
    instance; LPT by default) and the ledger clock advances by the
    makespan, while the call trace keeps every hardware call at its
    true serial cost tagged with its ``unit_id``.
    """

    def __init__(
        self,
        m: int,
        ell: float = 0.0,
        *,
        units: int = 2,
        scheduler: str | SchedulerPolicy = "lpt",
        **kwargs,
    ) -> None:
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        super().__init__(m, ell, **kwargs)
        self.units = int(units)
        self.scheduler = get_scheduler(scheduler)
        self.last_batch: BatchStats | None = None
        self.last_schedule: Schedule | None = None

    # ------------------------------------------------------------------
    def mm_batch(
        self,
        pairs: list[tuple[np.ndarray, np.ndarray]],
        *,
        policy: str | SchedulerPolicy | None = None,
    ) -> list[np.ndarray]:
        """Execute independent products concurrently; returns their results.

        Each pair must satisfy the single-call interface (``n x sqrt(m)``
        by ``sqrt(m) x sqrt(m)``, ``n >= sqrt(m)``).  The caller asserts
        independence (no result feeds another operand) — exactly the
        guarantee the Theorem 2 grid and the DFT levels provide.  A call
        whose stream exceeds ``max_rows`` is one *logical* job: its
        hardware chunks run back-to-back on the unit it is assigned to,
        exactly as the scalar splitting primitive issues them.

        ``policy`` overrides the machine's scheduler for this batch.
        """
        sched_policy = self.scheduler if policy is None else get_scheduler(policy)
        if not pairs:
            self.last_batch = BatchStats(
                0,
                0.0,
                0.0,
                0,
                policy=sched_policy.name,
                gap_bound=sched_policy.gap_bound(self.units),
            )
            self.last_schedule = None
            return []
        s = self.sqrt_m
        k = len(pairs)
        pairs = [(np.asarray(A), np.asarray(B)) for A, B in pairs]
        ns = np.empty(k, dtype=np.int64)
        for i, (A, B) in enumerate(pairs):
            if A.ndim != 2 or A.shape[1] != s or B.shape != (s, s):
                raise TensorShapeError(
                    f"batch operand shapes {A.shape} @ {B.shape} violate the "
                    f"(n x {s}) @ ({s} x {s}) interface"
                )
            if A.shape[0] < s:
                raise TensorShapeError(
                    f"batch left operand has {A.shape[0]} rows < sqrt(m)={s}"
                )
            ns[i] = A.shape[0]

        # Fast path: machines whose calls are plain n*sqrt(m) + l numpy
        # products.  Anything that changes per-call cost or numerics —
        # hardware row bounds, complex cost factors, overflow checks,
        # the systolic backend, subclass overrides — is measured and
        # executed through the machine's own scalar primitive below.
        plain = (
            self.fusable
            and self.max_rows is None
            and not self.check_overflow
            and (
                # at factor 1 complex calls price and execute exactly
                # like real ones, so the fast path stays valid
                self.complex_cost_factor == 1
                or not any(np.iscomplexobj(A) or np.iscomplexobj(B) for A, B in pairs)
            )
        )
        results: list[np.ndarray] | None = None
        row_lats: float | np.ndarray
        if plain:
            costs = ns * float(s) + self.ell
            serial_throughput = float(int(ns.sum()) * s)
            serial_latency = self.ell * k
            hardware_calls = k
            row_ns, row_times = ns, costs
            row_lats = self.ell
            rows_per_call = None
            cpu_total = 0.0
        else:
            # Route every call through the machine's own primitive with
            # charges captured on a scratch ledger: the per-call deltas
            # are the true serial costs (chunk latencies, complex
            # factors, subclass semantics included) and the results are
            # bit-identical to a serial run.
            scratch = CostLedger(trace_calls=True)
            saved = self.ledger
            self.ledger = scratch
            results = []
            costs = np.empty(k)
            call_rows = np.empty(k + 1, dtype=np.int64)
            call_rows[0] = 0
            prev = 0.0
            try:
                for i, (A, B) in enumerate(pairs):
                    results.append(self.mm(A, B))
                    cum = scratch.tensor_time + scratch.latency_time
                    costs[i] = cum - prev
                    prev = cum
                    call_rows[i + 1] = len(scratch.calls)
            finally:
                self.ledger = saved
            serial_throughput = scratch.tensor_time
            serial_latency = scratch.latency_time
            hardware_calls = scratch.tensor_calls
            row_ns, _, row_times, row_lats = scratch.calls.as_arrays()
            rows_per_call = np.diff(call_rows)
            cpu_total = scratch.cpu_time

        schedule = schedule_batch(costs, self.units, sched_policy)
        makespan = schedule.makespan
        serial = serial_throughput + serial_latency

        # The ledger clock advances by the makespan, split between the
        # throughput and latency columns in the same proportion as the
        # serial costs; the trace keeps every hardware call at its true
        # cost with its unit id, so per-shape totals and the Theorem 12
        # replay match a serial run exactly.  Captured CPU work stays
        # serial (one CPU).
        scale = makespan / serial if serial else 0.0
        self.ledger.tensor_time += serial_throughput * scale
        self.ledger.latency_time += serial_latency * scale
        self.ledger.tensor_calls += hardware_calls
        self.ledger._bump_sections(makespan)
        if rows_per_call is None:
            row_units = schedule.assignment
        else:
            row_units = np.repeat(schedule.assignment, rows_per_call)
        self.ledger.record_calls_bulk(row_ns, s, row_times, row_lats, units=row_units)
        if cpu_total:
            self.ledger.charge_cpu(cpu_total)

        self.last_schedule = schedule
        self.last_batch = BatchStats(
            calls=k,
            serial_time=serial,
            makespan=makespan,
            units_used=schedule.units_used,
            policy=schedule.policy,
            hardware_calls=hardware_calls,
            cpu_time=cpu_total,
            utilization=schedule.utilization,
            gap_bound=schedule.gap_bound,
        )
        if results is not None:
            return results
        if self.execute == "cost-only":
            return [
                placeholder((A.shape[0], s), np.result_type(A.dtype, B.dtype))
                for A, B in pairs
            ]
        return [A @ B for A, B in pairs]

    def config_key(self) -> tuple:
        """Extends the base fingerprint with the unit count and the
        scheduling policy (both change makespans, hence charges)."""
        return super().config_key() + (self.units, self.scheduler.name)

    def fork(self) -> "ParallelTCUMachine":
        """A machine with identical parameters (including the unit
        count and scheduling policy) and a fresh ledger."""
        return type(self)(
            self.m,
            self.ell,
            units=self.units,
            scheduler=self.scheduler,
            kappa=self.kappa,
            max_rows=self.max_rows,
            complex_cost_factor=self.complex_cost_factor,
            backend=self.backend,
            execute=self.execute,
            check_overflow=self.check_overflow,
            trace_calls=self.ledger.trace_calls,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelTCUMachine(m={self.m}, ell={self.ell}, "
            f"units={self.units}, scheduler={self.scheduler.name!r})"
        )
