"""Parallel tensor units — the paper's first §6 open question.

Section 3.1 concedes that modelling a *single* tensor unit is the
model's major simplification (a Titan RTX carries >500 tensor cores).
:class:`ParallelTCUMachine` extends the (m, l)-TCU with ``p`` identical
units: *independent* tensor calls issued through :meth:`mm_batch` may
run concurrently, and the model time charged for the batch is the
**makespan** of a longest-processing-time (LPT) schedule rather than
the serial sum.  Everything else — the CPU, memory, the cost of one
call — is unchanged, so every single-unit algorithm still runs and the
p = 1 machine is exactly the paper's model.

Scheduling background: LPT on identical machines is a classical
(4/3 - 1/(3p))-approximation of the optimal makespan, which is good
enough for cost *accounting*; the guarantee is recorded on the batch
stats so experiments can reason about it.

The obvious consequences the benches measure:

* a batch of k equal calls speeds up by ``min(p, k)``;
* latency does not parallelise away *within* a call, so
  latency-dominated workloads gain little;
* Theorem 2's schedule parallelises perfectly across its independent
  ``C_{i,j}`` products, giving ``~ n^{3/2}/(p sqrt(m))`` throughput time
  until the call count drops below p.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from .machine import TCUMachine, TensorShapeError, placeholder

__all__ = ["ParallelTCUMachine", "BatchStats"]


@dataclass(frozen=True)
class BatchStats:
    """Accounting record of one :meth:`ParallelTCUMachine.mm_batch`.

    Attributes
    ----------
    calls:
        Number of tensor calls in the batch.
    serial_time:
        Sum of the individual call costs (what a single unit would pay).
    makespan:
        The batch's charged model time under the LPT schedule.
    units_used:
        Distinct units that received at least one call.
    """

    calls: int
    serial_time: float
    makespan: float
    units_used: int

    @property
    def speedup(self) -> float:
        return self.serial_time / self.makespan if self.makespan else 1.0


class ParallelTCUMachine(TCUMachine):
    """An (m, l)-TCU with ``units`` identical tensor units.

    Single calls through :meth:`mm` behave exactly like the sequential
    model (one unit active, full cost).  Independent calls batched
    through :meth:`mm_batch` are LPT-scheduled across the units and the
    ledger is charged the makespan: the throughput and latency columns
    are scaled so that ``ledger.total_time`` advances by the makespan
    while per-call counters (``tensor_calls``) stay exact.
    """

    def __init__(self, m: int, ell: float = 0.0, *, units: int = 2, **kwargs) -> None:
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        super().__init__(m, ell, **kwargs)
        self.units = int(units)
        self.last_batch: BatchStats | None = None

    # ------------------------------------------------------------------
    def mm_batch(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> list[np.ndarray]:
        """Execute independent products concurrently; returns their results.

        Each pair must satisfy the single-call interface (``n x sqrt(m)``
        by ``sqrt(m) x sqrt(m)``, ``n >= sqrt(m)``).  The caller asserts
        independence (no result feeds another operand) — exactly the
        guarantee the Theorem 2 grid and the DFT levels provide.
        """
        if not pairs:
            self.last_batch = BatchStats(0, 0.0, 0.0, 0)
            return []
        s = self.sqrt_m
        k = len(pairs)
        pairs = [(np.asarray(A), np.asarray(B)) for A, B in pairs]
        ns = np.empty(k, dtype=np.int64)
        for i, (A, B) in enumerate(pairs):
            if A.ndim != 2 or A.shape[1] != s or B.shape != (s, s):
                raise TensorShapeError(
                    f"batch operand shapes {A.shape} @ {B.shape} violate the "
                    f"(n x {s}) @ ({s} x {s}) interface"
                )
            if A.shape[0] < s:
                raise TensorShapeError(
                    f"batch left operand has {A.shape[0]} rows < sqrt(m)={s}"
                )
            ns[i] = A.shape[0]
        costs = ns * float(s) + self.ell

        if k <= self.units:
            # every call gets its own unit
            makespan = float(costs.max())
            used = k
        elif np.all(ns == ns[0]):
            # equal-cost batch: LPT degenerates to round-robin, so the
            # makespan is ceil(k / p) sequential calls on the fullest
            # unit (summed term by term, matching the heap exactly)
            rounds = math.ceil(k / self.units)
            cost = float(costs[0])
            makespan = 0.0
            for _ in range(rounds):
                makespan += cost
            used = min(self.units, k)
        else:
            # LPT: sort decreasing, assign to the earliest-free unit.
            order = np.argsort(-costs, kind="stable")
            heap = [(0.0, u) for u in range(min(self.units, k))]
            heapq.heapify(heap)
            makespan = 0.0
            used_units = set()
            for idx in order:
                free_at, unit = heapq.heappop(heap)
                finish = free_at + float(costs[idx])
                makespan = max(makespan, finish)
                used_units.add(unit)
                heapq.heappush(heap, (finish, unit))
            used = len(used_units)
        serial = float(costs.sum())

        # Charge the makespan, split between throughput and latency in
        # the same proportion as the serial costs, keeping call counts
        # exact for trace-based consumers.  The trace rows land in one
        # columnar append, not k Python calls.
        scale = makespan / serial if serial else 0.0
        throughput_total = float(int(ns.sum()) * s)
        self.ledger.tensor_time += throughput_total * scale
        self.ledger.latency_time += self.ell * k * scale
        self.ledger.tensor_calls += k
        self.ledger._bump_sections(makespan)
        self.ledger.record_calls_bulk(ns, s, costs * scale, self.ell * scale)

        self.last_batch = BatchStats(
            calls=k,
            serial_time=serial,
            makespan=makespan,
            units_used=used,
        )
        if self.execute == "cost-only":
            return [
                placeholder((A.shape[0], s), np.result_type(A.dtype, B.dtype))
                for A, B in pairs
            ]
        return [A @ B for A, B in pairs]

    def fork(self) -> "ParallelTCUMachine":
        """A machine with identical parameters (including the unit
        count) and a fresh ledger."""
        return ParallelTCUMachine(
            self.m,
            self.ell,
            units=self.units,
            kappa=self.kappa,
            max_rows=self.max_rows,
            complex_cost_factor=self.complex_cost_factor,
            backend=self.backend,
            execute=self.execute,
            check_overflow=self.check_overflow,
            trace_calls=self.ledger.trace_calls,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelTCUMachine(m={self.m}, ell={self.ell}, units={self.units})"
        )
