"""Lazy tensor programs: a plan/execute split for TCU algorithms.

The paper's cost model makes latency ``l`` a first-class term — every
tensor call costs ``n*sqrt(m) + l`` — and its algorithms win exactly by
amortising ``l`` over fewer, taller calls (Theorem 2, Lemma 1).  The
eager :meth:`~repro.core.machine.TCUMachine.mm` interface cannot see
past the single call it is handed, so no layer above it can batch,
reorder or fuse.  This module introduces the missing seam:

1. **Build**: algorithms record their tensor work as data — a
   :class:`TensorProgram` of :class:`TensorOp` nodes (``mm``, ``add``,
   ``copy``) with dependency edges — instead of executing it.
2. **Plan**: :func:`plan_program` topologically levels the DAG and,
   within each level, *merges* independent tall calls that share the
   same resident right-hand block into one taller call.  A merged call
   pays one latency ``l`` instead of k — exactly the Theorem 2
   amortisation, discovered mechanically instead of by hand.  On a
   parallel machine the planner then prices the *reverse* trade per
   group (``split="auto"``): re-splitting a merged tall call into ``s``
   row-balanced chunks costs ``(s-1)*l`` extra latency but divides the
   stream across up to ``p`` units, so a fully merged level — one tall
   call, one busy unit — scales with the unit count whenever the
   modelled makespan wins (:func:`modelled_call_cost`,
   :func:`_choose_level_splits`).
3. **Execute**: :func:`execute_plan` replays the schedule against a
   machine, charging the existing :class:`~repro.core.ledger.CostLedger`
   through the ordinary :meth:`mm` / :meth:`mm_batch` entry points, so
   traces still feed :func:`repro.extmem.simulate.simulate_ledger_io`
   unchanged.  On a :class:`~repro.core.parallel.ParallelTCUMachine`
   each level's calls are issued as one scheduled batch (LPT by
   default; see :mod:`repro.core.scheduling`) on every machine
   configuration — the batch prices calls from the machine's own
   primitive, so row bounds, complex cost factors and overflow checks
   parallelise instead of silently serialising.

Gathering the row streams of a merged call is index arithmetic in the
RAM model (the unit consumes rows wherever they live — the same
convention :mod:`repro.transform.dft` uses for its strided
re-arrangements), so a planned execution never charges more than the
eager one: merging strictly reduces latency time and leaves throughput
and CPU charges untouched.

Merging recognises a shared resident block *by buffer identity* (same
data pointer, shape, strides and dtype — or the same producing op), not
by content: pre-pad a shared right operand once if you want cross-call
merging, because two distinct padded copies of equal content are not
recognised as the same block.

Quickstart — five products against one resident weight matrix pay one
latency instead of five::

    >>> import numpy as np
    >>> from repro.core.machine import TCUMachine
    >>> from repro.core.program import TensorProgram, run_program
    >>> tcu = TCUMachine(m=16, ell=100.0)
    >>> W = np.eye(4)
    >>> prog = TensorProgram()
    >>> outs = [prog.mm(np.ones((8, 4)) * i, W) for i in range(5)]
    >>> plan = run_program(prog, tcu)
    >>> plan.stats.tensor_calls_planned, tcu.ledger.latency_time
    (1, 100.0)
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TypeAlias

import numpy as np

from .machine import TCUMachine, TensorShapeError, placeholder
from .parallel import ParallelTCUMachine
from .scheduling import schedule_batch

__all__ = [
    "TensorOp",
    "TensorProgram",
    "Plan",
    "PlanStats",
    "ProgramError",
    "Lazy",
    "ExecutionCursor",
    "CompiledCursor",
    "modelled_call_cost",
    "plan_program",
    "execute_plan",
    "run_program",
]

Source: TypeAlias = "np.ndarray | TensorOp"


class ProgramError(RuntimeError):
    """Invalid program construction or use (e.g. reading an unexecuted op)."""


def _source_shape(src: Source) -> tuple[int, ...]:
    return src.shape


def _source_dtype(src: Source) -> np.dtype:
    return np.dtype(src.dtype)


class TensorOp:
    """One node of a :class:`TensorProgram` DAG.

    Kinds
    -----
    ``mm``
        ``value = a @ b`` where ``a`` is the (tall) streamed operand and
        ``b`` the resident square block; exactly the machine primitive.
    ``add``
        ``value = sum(coef * src for coef, src in terms)`` — the
        elementwise accumulations of the Theorem 2 schedule, charged one
        RAM unit per word per term.
    ``copy``
        ``value = src.copy()`` — a charged materialisation (one RAM unit
        per word written), used when a resident block must not alias
        memory that later ops update.
    ``apply``
        ``value = fn(*term values)`` — an opaque CPU-side bridge charged
        ``cpu`` RAM units, used by multi-stage pipelines (twiddle passes,
        activation functions, padded re-materialisations) whose work is
        not a linear combination.  The charge is declared at build time
        so cost-only execution never needs the callable.
    ``view``
        ``value = src[key]`` — an uncharged strided view (index
        arithmetic in the RAM model, the same convention the merged-call
        row gathering uses), so later ops can consume slices of a value
        produced earlier in the program.

    Operands are either concrete ``ndarray`` inputs or other ops
    (dependency edges).  ``value`` is ``None`` until the owning program
    has been executed.
    """

    __slots__ = (
        "op_id",
        "kind",
        "a",
        "b",
        "terms",
        "shape",
        "dtype",
        "value",
        "level",
        "fn",
        "cpu",
        "key",
    )

    def __init__(
        self,
        op_id: int,
        kind: str,
        *,
        a: Source | None = None,
        b: Source | None = None,
        terms: tuple[tuple[float, Source], ...] = (),
        shape: tuple[int, ...] = (),
        dtype: np.dtype | None = None,
        fn: Callable[..., np.ndarray] | None = None,
        cpu: float = 0.0,
        key: tuple | None = None,
    ) -> None:
        self.op_id = op_id
        self.kind = kind
        self.a = a
        self.b = b
        self.terms = terms
        self.shape = shape
        self.dtype = dtype
        self.value: np.ndarray | None = None
        self.level = 0
        self.fn = fn
        self.cpu = cpu
        self.key = key

    def deps(self) -> Iterable["TensorOp"]:
        """The op-valued operands (dependency edges) of this node."""
        if self.kind == "mm":
            if isinstance(self.a, TensorOp):
                yield self.a
            if isinstance(self.b, TensorOp):
                yield self.b
        elif self.kind in ("add", "apply"):
            for _, src in self.terms:
                if isinstance(src, TensorOp):
                    yield src
        elif self.kind in ("copy", "view"):
            if isinstance(self.a, TensorOp):
                yield self.a

    def result(self) -> np.ndarray:
        """The computed value; raises until the program has executed."""
        if self.value is None:
            raise ProgramError(
                f"op {self.op_id} ({self.kind}) has no value yet; "
                "run the program through run_program()/execute_plan() first"
            )
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TensorOp(#{self.op_id} {self.kind} {self.shape})"


class Lazy:
    """A deferred result assembled from op values after execution.

    Algorithms that append to a shared program return one of these; call
    :meth:`result` once the program has run.  The assembly function runs
    at most once (results are cached), so RAM charges it performs are
    not double-billed.
    """

    __slots__ = ("_fn", "_value")

    def __init__(self, fn: Callable[[], np.ndarray]) -> None:
        self._fn = fn
        self._value: np.ndarray | None = None

    def result(self) -> np.ndarray:
        if self._value is None:
            self._value = self._fn()
        return self._value


class TensorProgram:
    """An append-only DAG of tensor-unit work, built lazily and executed
    through :func:`run_program`.

    Ops reference their operands directly (arrays or earlier ops), so a
    program is topologically ordered by construction and cannot contain
    cycles.
    """

    def __init__(self) -> None:
        self.ops: list[TensorOp] = []

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def mm(self, a: Source, b: Source) -> TensorOp:
        """Record a tensor-unit product ``a @ b`` (validated at plan time
        against the executing machine's ``sqrt(m)``)."""
        a_shape = _source_shape(a)
        b_shape = _source_shape(b)
        if len(a_shape) != 2 or len(b_shape) != 2:
            raise TensorShapeError(
                f"mm operands must be 2-D, got shapes {a_shape} and {b_shape}"
            )
        if b_shape[0] != b_shape[1]:
            raise TensorShapeError(f"right operand must be square, got {b_shape}")
        if a_shape[1] != b_shape[0]:
            raise TensorShapeError(
                f"inner dimensions disagree: {a_shape} @ {b_shape}"
            )
        op = TensorOp(
            len(self.ops),
            "mm",
            a=a,
            b=b,
            shape=(a_shape[0], b_shape[1]),
            dtype=np.result_type(_source_dtype(a), _source_dtype(b)),
        )
        self._append(op)
        return op

    def add(self, terms: Sequence[tuple[float, Source] | Source]) -> TensorOp:
        """Record an elementwise linear combination of equal-shape sources.

        Terms are ``(coefficient, source)`` pairs; a bare source means
        coefficient 1.  Charged one RAM unit per word per term when
        executed — the same discipline as the eager accumulation loops.
        """
        if not terms:
            raise ProgramError("add requires at least one term")
        normal: list[tuple[float, Source]] = []
        for term in terms:
            if isinstance(term, tuple):
                coef, src = term
                normal.append((float(coef), src))
            else:
                normal.append((1.0, term))
        shape = _source_shape(normal[0][1])
        for _, src in normal[1:]:
            if _source_shape(src) != shape:
                raise TensorShapeError(
                    f"add terms must share a shape; got {shape} and {_source_shape(src)}"
                )
        dtype = np.result_type(*[_source_dtype(src) for _, src in normal])
        op = TensorOp(
            len(self.ops), "add", terms=tuple(normal), shape=shape, dtype=dtype
        )
        self._append(op)
        return op

    def copy(self, src: Source) -> TensorOp:
        """Record a charged materialisation of ``src`` (one unit/word)."""
        op = TensorOp(
            len(self.ops),
            "copy",
            a=src,
            shape=_source_shape(src),
            dtype=_source_dtype(src),
        )
        self._append(op)
        return op

    def apply(
        self,
        fn: Callable[..., np.ndarray],
        sources: Sequence[Source],
        shape: tuple[int, ...],
        dtype,
        *,
        cpu: float = 0.0,
    ) -> TensorOp:
        """Record a CPU-side bridge ``value = fn(*sources)``.

        ``shape``/``dtype`` describe the result (they cannot be inferred
        from an opaque callable) and ``cpu`` is the RAM-model charge the
        bridge pays when executed — declared here, at build time, so a
        cost-only execution charges identically without ever calling
        ``fn``.  Use for the non-linear or rearranging stages of a
        pipeline (activations, twiddle passes, padded
        re-materialisations); linear combinations should stay ``add``
        nodes, which the planner understands.
        """
        if cpu < 0:
            raise ProgramError(f"apply cpu charge must be >= 0, got {cpu}")
        op = TensorOp(
            len(self.ops),
            "apply",
            terms=tuple((1.0, src) for src in sources),
            shape=tuple(shape),
            dtype=np.dtype(dtype),
            fn=fn,
            cpu=float(cpu),
        )
        self._append(op)
        return op

    def view(self, src: Source, key: tuple) -> TensorOp:
        """Record an uncharged strided view ``value = src[key]``.

        ``key`` must be a tuple of slices / integers whose application
        to ``src``'s shape is computable at build time; the view costs
        nothing (index arithmetic in the RAM model) and lets later ops
        consume slices of values produced earlier in the program.
        """
        shape = placeholder(_source_shape(src), np.bool_)[key].shape
        op = TensorOp(
            len(self.ops),
            "view",
            a=src,
            shape=shape,
            dtype=_source_dtype(src),
            key=key,
        )
        self._append(op)
        return op

    # ------------------------------------------------------------------
    def _append(self, op: TensorOp) -> None:
        level = 0
        for dep in op.deps():
            if dep.op_id >= len(self.ops) or self.ops[dep.op_id] is not dep:
                raise ProgramError("operand op belongs to a different program")
            level = max(level, dep.level + 1)
        op.level = level
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanStats:
    """What the planner did to a program.

    Attributes
    ----------
    ops:
        Total IR nodes in the program.
    mm_ops:
        ``mm`` nodes before merging.
    tensor_calls_planned:
        Tensor calls the schedule will issue (merged groups).
    merged_away:
        Calls eliminated by resident-block merging
        (``mm_ops - tensor_calls_planned``); each saves one latency.
    levels:
        Depth of the levelled DAG (batching opportunities per level).
    """

    ops: int
    mm_ops: int
    tensor_calls_planned: int
    merged_away: int
    levels: int


@dataclass
class Plan:
    """An executable schedule: levelled call groups plus CPU-side ops.

    ``levels[d]`` is a pair ``(groups, others)`` where each group is a
    list of ``mm`` ops sharing one resident right-hand block (issued as
    a single merged call) and ``others`` are the level's add/copy ops.

    ``splits[d][i]`` is the split factor chosen for group ``i`` of level
    ``d``: a factor ``f > 1`` dispatches the group's merged stream as
    ``f`` row-balanced sibling chunks in the level's ``mm_batch`` (each
    chunk pays its own latency but the chunks spread across parallel
    units), ``f = 1`` issues the single merged call of the legacy
    schedule.  ``modelled_makespans[d]`` is the level's tensor-batch
    makespan under the machine's cost model and scheduling policy with
    those splits — what the ledger clock should advance by for the
    level's tensor work (exact on plain machines; see
    :func:`modelled_call_cost`).  Both are ``None`` on hand-built plans,
    which execute on the unsplit legacy path.

    ``stats.tensor_calls_planned`` keeps counting *logical* merged
    calls; splitting expands a group into sibling chunk calls only at
    dispatch.
    """

    levels: list[tuple[list[list[TensorOp]], list[TensorOp]]]
    stats: PlanStats
    splits: list[list[int]] | None = field(default=None)
    modelled_makespans: list[float] | None = field(default=None)


def _buffer_key(arr: np.ndarray) -> tuple:
    """Identity of an ndarray's memory (data pointer, shape, strides,
    typestr): two arrays with equal keys alias the same elements."""
    iface = arr.__array_interface__
    return (iface["data"][0], arr.shape, iface["strides"], iface["typestr"])


def _resident_key(op: TensorOp) -> tuple:
    """Identity of an mm op's resident block plus cost-relevant dtype
    information, used to decide merge groups.

    Two ops merge only when their right operands are the *same* buffer
    (or the same producing op) and their operands promote to the same
    result dtype — so a merged call is charged exactly as the separate
    calls would be (complex-cost factors included).

    A fully zero-strided view of a scalar — what
    :func:`~repro.core.machine.placeholder` returns for cost-only runs —
    is keyed by *object* identity instead: every placeholder of a shape
    aliases the same zero scalar, so merging by buffer would fuse
    resident blocks that stand for different hypothetical data and
    charge fewer latencies than the numeric run.  Passing the *same*
    view object to several ops (the documented way to request shared
    residency) still merges; distinct placeholder objects never do.
    Partially broadcast numeric views keep the buffer key: equal
    pointer/strides/shape still implies equal elements there.
    """
    b = op.b
    if isinstance(b, TensorOp):
        b_key: tuple = ("op", id(b))
    elif b.size and all(stride == 0 for stride in b.strides):
        b_key = ("broadcast", id(b))
    else:
        b_key = ("arr",) + _buffer_key(b)
    return b_key + (np.dtype(op.dtype).str,)


def _cap_group(group: list[TensorOp], max_rows: int | None) -> list[list[TensorOp]]:
    """Split a merge group so no merged call exceeds the hardware row
    bound.

    A merged stream longer than ``max_rows`` would be re-split by
    :meth:`TCUMachine._mm_split` — re-paying latency per chunk and
    charging reassembly copies, i.e. costing *more* than the calls it
    replaced.  Greedily packing ops up to the bound keeps every merged
    call a single hardware call; an op that alone exceeds the bound
    stays a singleton (the eager path would split it identically).
    """
    if max_rows is None or len(group) == 1:
        return [group]
    out: list[list[TensorOp]] = []
    current: list[TensorOp] = []
    rows = 0
    for op in group:
        n = op.shape[0]
        if current and rows + n > max_rows:
            out.append(current)
            current, rows = [], 0
        current.append(op)
        rows += n
        if n > max_rows:  # oversized op: isolate, eager splits it too
            out.append(current)
            current, rows = [], 0
    if current:
        out.append(current)
    return out


# ----------------------------------------------------------------------
# the latency-vs-parallelism auto-splitter
# ----------------------------------------------------------------------
# exhaustive split search is used while the candidate space (product of
# per-group feasible factors) stays below this; larger levels fall back
# to coordinate descent.  Both searches only ever *accept* a candidate
# on a strict makespan improvement (or equal makespan with fewer
# chunks), so the all-ones legacy schedule survives every tie.
_SPLIT_SEARCH_LIMIT = 512
_SPLIT_DESCENT_PASSES = 4


def modelled_call_cost(machine: TCUMachine, rows: int, dtype=np.float64) -> float:
    """The (tensor + latency) model cost of one logical call of ``rows``
    rows, priced from the machine's own parameters.

    Matches what :meth:`~repro.core.machine.TCUMachine.mm` charges to
    the tensor/latency columns exactly: ``f * (rows*sqrt(m) + l)`` with
    the complex cost factor ``f``, and under a hardware row bound the
    sum over the stream's chunks with a short final chunk padded up to
    ``sqrt(m)`` rows.  CPU-side charges (padding copies, reassembly,
    complex-multiply adds) are excluded — they stay serial and do not
    enter the batch schedule, mirroring
    :meth:`~repro.core.parallel.ParallelTCUMachine.mm_batch`'s per-call
    cost measurement.
    """
    s = machine.sqrt_m
    ell = machine.ell
    factor = (
        machine.complex_cost_factor
        if np.issubdtype(np.dtype(dtype), np.complexfloating)
        else 1
    )
    bound = machine.max_rows
    if bound is None or rows <= bound:
        return factor * (rows * s + ell)
    total = 0.0
    for start in range(0, rows, bound):
        chunk = min(bound, rows - start)
        total += factor * (max(chunk, s) * s + ell)
    return total


def _split_bounds(rows: int, pieces: int) -> list[tuple[int, int]]:
    """Row-balanced chunk boundaries of a ``rows``-row stream: the first
    ``rows % pieces`` chunks carry one extra row."""
    base, extra = divmod(rows, pieces)
    bounds: list[tuple[int, int]] = []
    start = 0
    for i in range(pieces):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _split_cap(group: list[TensorOp], machine: TCUMachine, units: int) -> int:
    """The largest feasible split factor for a merge group: no more
    chunks than units, and every chunk at least ``sqrt(m)`` rows (the
    single-call interface floor)."""
    return max(1, min(units, _group_rows(group) // machine.sqrt_m))


def _level_cost_vector(
    groups: list[list[TensorOp]], splits: Sequence[int], machine: TCUMachine
) -> np.ndarray:
    """Per-chunk modelled costs of one level under the given splits, in
    the exact order :func:`_dispatch_parallel` issues the chunks."""
    costs: list[float] = []
    for group, pieces in zip(groups, splits, strict=True):
        rows = _group_rows(group)
        for lo, hi in _split_bounds(rows, pieces):
            costs.append(modelled_call_cost(machine, hi - lo, group[0].dtype))
    return np.asarray(costs, dtype=np.float64)


def _level_makespan(
    groups: list[list[TensorOp]], splits: Sequence[int], machine: TCUMachine
) -> float:
    """Modelled tensor makespan of one level under the given splits.

    Uses the machine's own scheduling policy over its unit count, so the
    prediction is the same schedule ``mm_batch`` will compute at
    dispatch; returns ``inf`` for configurations the policy refuses
    (the exact oracle's job-count limit), which the chooser treats as
    infeasible.
    """
    units = int(getattr(machine, "units", 1))
    costs = _level_cost_vector(groups, splits, machine)
    if units <= 1:
        return float(costs.sum())
    try:
        return schedule_batch(costs, units, machine.scheduler).makespan
    except ValueError:
        return float("inf")


def _choose_level_splits(
    groups: list[list[TensorOp]], machine: TCUMachine
) -> list[int]:
    """Pick the split factor per merge group minimising the level's
    modelled makespan (ties break toward fewer calls).

    Small candidate spaces are searched exhaustively — there the chosen
    configuration *is* the optimum over row-balanced splits under the
    machine's policy, which is what the exact-oracle pinning tests
    assert.  Larger levels run coordinate descent from the all-ones
    legacy schedule, accepting only strict improvements, so the result
    is never worse than not splitting.
    """
    units = int(getattr(machine, "units", 1))
    best = [1] * len(groups)
    if units <= 1 or not groups:
        return best
    caps = [_split_cap(g, machine, units) for g in groups]
    if all(cap == 1 for cap in caps):
        return best
    best_span = _level_makespan(groups, best, machine)
    if best_span <= 0.0:
        return best
    # a perfectly balanced unsplit schedule is already optimal:
    # splitting only adds latency, and serial/p lower-bounds every split
    serial = float(_level_cost_vector(groups, best, machine).sum())
    if best_span == serial / units:
        return best

    def better(span: float, splits: list[int]) -> bool:
        return span < best_span or (
            span == best_span and sum(splits) < sum(best)
        )

    space = 1
    for cap in caps:
        space *= cap
        if space > _SPLIT_SEARCH_LIMIT:
            break
    if space <= _SPLIT_SEARCH_LIMIT:
        for cand in itertools.product(*(range(1, cap + 1) for cap in caps)):
            splits = list(cand)
            if splits == best:
                continue
            span = _level_makespan(groups, splits, machine)
            if better(span, splits):
                best, best_span = splits, span
        return best
    for _ in range(_SPLIT_DESCENT_PASSES):
        changed = False
        for gi, cap in enumerate(caps):
            for factor in range(1, cap + 1):
                if factor == best[gi]:
                    continue
                trial = list(best)
                trial[gi] = factor
                span = _level_makespan(groups, trial, machine)
                if better(span, trial):
                    best, best_span = trial, span
                    changed = True
        if not changed:
            break
    return best


def plan_program(
    program: TensorProgram,
    machine: TCUMachine,
    *,
    merge: bool = True,
    split: str | int = "auto",
) -> Plan:
    """Level the program's DAG and merge same-resident-block calls.

    Parameters
    ----------
    program:
        The recorded DAG.
    machine:
        The machine that will execute the plan; its ``sqrt(m)`` is used
        to validate every ``mm`` node now, so shape errors surface at
        plan time rather than mid-execution.
    merge:
        Disable to keep one tensor call per ``mm`` node (the planned
        schedule then matches the eager call sequence exactly).
    split:
        ``"auto"`` (default) prices, for each merged call group on a
        parallel machine, the modelled makespan of dispatching the
        group's stream as ``s ∈ {1..p}`` row-balanced sibling chunks —
        splitting pays ``(s-1)·l`` extra latency but divides stream
        time across up to ``p`` units — and keeps the ``s`` minimising
        the level's makespan under the machine's
        ``(sqrt_m, l, p, max_rows, complex_cost_factor)`` cost model
        and its own scheduling policy (ties break toward fewer calls,
        so the legacy schedule survives whenever splitting does not
        strictly win).  ``1`` is the legacy no-split schedule;
        an explicit integer ``s`` forces that factor on every group
        (capped per group by feasibility: at most ``p`` chunks, each at
        least ``sqrt(m)`` rows).  On single-unit machines every mode
        degenerates to the legacy schedule.
    """
    if split != "auto" and (
        isinstance(split, bool)
        or not isinstance(split, (int, np.integer))
        or split < 1
    ):
        raise ProgramError(
            f"split must be 'auto' or an integer >= 1, got {split!r}"
        )
    s = machine.sqrt_m
    n_levels = 0
    mm_ops = 0
    for op in program.ops:
        n_levels = max(n_levels, op.level + 1)
        if op.kind == "mm":
            mm_ops += 1
            n, w = op.shape[0], _source_shape(op.a)[1]
            if w != s:
                raise TensorShapeError(
                    f"op #{op.op_id}: left operand must have sqrt(m)={s} "
                    f"columns, got {w}"
                )
            if n < s:
                raise TensorShapeError(
                    f"op #{op.op_id}: left operand must have n >= sqrt(m)={s} "
                    f"rows, got {n}"
                )

    by_level: list[list[TensorOp]] = [[] for _ in range(n_levels)]
    for op in program.ops:
        by_level[op.level].append(op)

    levels: list[tuple[list[list[TensorOp]], list[TensorOp]]] = []
    calls = 0
    for level_ops in by_level:
        groups: dict[tuple, list[TensorOp]] = {}
        singles: list[list[TensorOp]] = []
        others: list[TensorOp] = []
        for op in level_ops:
            if op.kind != "mm":
                others.append(op)
            elif merge:
                groups.setdefault(_resident_key(op), []).append(op)
            else:
                singles.append([op])
        if not merge:
            level_groups = singles
        else:
            level_groups = []
            for group in groups.values():
                level_groups.extend(_cap_group(group, machine.max_rows))
        calls += len(level_groups)
        levels.append((level_groups, others))

    units = int(getattr(machine, "units", 1))
    splits: list[list[int]] = []
    modelled: list[float] = []
    for level_groups, _ in levels:
        if split == "auto":
            chosen = _choose_level_splits(level_groups, machine)
        elif split == 1 or units <= 1:
            chosen = [1] * len(level_groups)
        else:
            chosen = [
                min(int(split), _split_cap(g, machine, units))
                for g in level_groups
            ]
        splits.append(chosen)
        modelled.append(_level_makespan(level_groups, chosen, machine))

    stats = PlanStats(
        ops=len(program.ops),
        mm_ops=mm_ops,
        tensor_calls_planned=calls,
        merged_away=mm_ops - calls,
        levels=n_levels,
    )
    return Plan(
        levels=levels, stats=stats, splits=splits, modelled_makespans=modelled
    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _resolve(src: Source) -> np.ndarray:
    if isinstance(src, TensorOp):
        return src.result()
    return src


def _group_operands(group: list[TensorOp]) -> np.ndarray:
    """The merged left operand of a call group.

    Stacking the streams is row bookkeeping (index arithmetic in the
    RAM model — the unit consumes rows wherever they live), so it is
    not charged; see the module docstring.
    """
    if len(group) == 1:
        return _resolve(group[0].a)
    return np.vstack([_resolve(op.a) for op in group])  # repro-lint: disable=LED001 -- stacking merged streams is row bookkeeping (index arithmetic), uncharged by the module-docstring convention


def _scatter_group(group: list[TensorOp], out: np.ndarray) -> None:
    offset = 0
    for op in group:
        rows = op.shape[0]
        op.value = out[offset : offset + rows]
        offset += rows


def _scatter_placeholders(group: list[TensorOp]) -> None:
    for op in group:
        op.value = placeholder(op.shape, op.dtype)


def _group_rows(group: list[TensorOp]) -> int:
    return sum(op.shape[0] for op in group)


def _dispatch_parallel(
    groups: list[list[TensorOp]],
    machine: ParallelTCUMachine,
    cost_only: bool,
    splits: Sequence[int] | None = None,
) -> None:
    """One level on a parallel machine: always a single scheduled batch.

    :meth:`~repro.core.parallel.ParallelTCUMachine.mm_batch` obtains
    true per-call costs from the machine itself (max-rows chunking,
    complex cost factors, overflow checks, the systolic backend), so
    every level parallelises on every machine configuration — there is
    no serialising guard here any more.

    A group with split factor ``f > 1`` issues its merged stream as
    ``f`` row-balanced sibling chunks in the same batch: the chunk
    slices are uncharged views of the gathered stream and the chunk
    outputs reassemble by row concatenation (the inverse of the merge
    gather — index arithmetic in the RAM model, like the gather
    itself), so the numerics are bit-identical to the unsplit call
    while each chunk lands on its own unit with its own trace
    ``unit_id``.
    """
    s = machine.sqrt_m
    if splits is None:
        splits = [1] * len(groups)
    pairs = []
    for g, pieces in zip(groups, splits, strict=True):
        if cost_only:
            A = placeholder((_group_rows(g), s), g[0].dtype)
            B = placeholder((s, s), g[0].dtype)
        else:
            A = _group_operands(g)
            B = _resolve(g[0].b)
        if pieces == 1:
            pairs.append((A, B))
        else:
            pairs.extend(
                (A[lo:hi], B) for lo, hi in _split_bounds(A.shape[0], pieces)
            )
    results = machine.mm_batch(pairs)
    index = 0
    for g, pieces in zip(groups, splits, strict=True):
        outs = results[index : index + pieces]
        index += pieces
        if cost_only:
            _scatter_placeholders(g)
        elif pieces == 1:
            _scatter_group(g, outs[0])
        else:
            _scatter_group(g, np.vstack(outs))  # repro-lint: disable=LED001 -- reassembling sibling chunk outputs is the inverse of the uncharged merge gather (row bookkeeping)


def _dispatch_grid(groups: list[list[TensorOp]], machine: TCUMachine) -> None:
    """One level on a sequential machine, fused: bucket the merged call
    groups and issue each bucket as one :meth:`TCUMachine.mm_grid`.

    Calls sharing a left operand buffer (e.g. the same Theorem 2 strip
    streamed against many resident blocks) become one broadcast grid —
    their stacked right operands ride a single ``np.matmul`` without
    duplicating the stream — and the remaining equal-height calls are
    stacked into one grid per ``(rows, dtype)`` bucket.  Charges equal
    the per-op loop exactly; trace rows may land in a different order
    within the level (the per-shape totals are unchanged).
    """
    s = machine.sqrt_m
    cost_only = machine.execute == "cost-only"
    if cost_only:
        buckets: dict[tuple, list[list[TensorOp]]] = {}
        for g in groups:
            n_g = _group_rows(g)
            if machine.max_rows is not None and n_g > machine.max_rows:
                # the hardware would split this stream: scalar call so
                # the per-chunk charges match the eager path
                dt = np.dtype(g[0].dtype)
                machine.mm(placeholder((n_g, s), dt), placeholder((s, s), dt))
                _scatter_placeholders(g)
                continue
            buckets.setdefault((n_g, np.dtype(g[0].dtype).str), []).append(g)
        for (n_g, _), bucket in buckets.items():
            dt = np.dtype(bucket[0][0].dtype)
            machine.mm_grid(
                placeholder((len(bucket), n_g, s), dt),
                placeholder((len(bucket), s, s), dt),
            )
            for g in bucket:
                _scatter_placeholders(g)
        return

    by_a: dict[tuple, list[tuple[list[TensorOp], np.ndarray, np.ndarray]]] = {}
    for g in groups:
        A = _group_operands(g)
        B = _resolve(g[0].b)
        if not machine.fusable or (
            machine.max_rows is not None and A.shape[0] > machine.max_rows
        ):
            _scatter_group(g, machine.mm(A, B))
            continue
        key = _buffer_key(A) + (np.result_type(A, B).str,)
        by_a.setdefault(key, []).append((g, A, B))

    singles: dict[tuple, list[tuple[list[TensorOp], np.ndarray, np.ndarray]]] = {}
    for items in by_a.values():
        if len(items) == 1:
            g, A, B = items[0]
            singles.setdefault((A.shape[0], np.result_type(A, B).str), []).append(
                items[0]
            )
            continue
        # shared stream: broadcast it against the stacked resident blocks
        A = items[0][1]
        out = machine.mm_grid(A, np.stack([B for _, _, B in items]))
        for (g, _, _), C in zip(items, out, strict=True):
            _scatter_group(g, C)
    for items in singles.values():
        if len(items) == 1:
            g, A, B = items[0]
            _scatter_group(g, machine.mm_grid(A, B))
            continue
        out = machine.mm_grid(
            np.stack([A for _, A, _ in items]), np.stack([B for _, _, B in items])
        )
        for (g, _, _), C in zip(items, out, strict=True):
            _scatter_group(g, C)


def _execute_level(
    groups: list[list[TensorOp]],
    others: list[TensorOp],
    machine: TCUMachine,
    fused: bool,
    splits: Sequence[int] | None = None,
) -> None:
    """Execute one planned level: its merged call groups, then its
    CPU-side ops — the unit of work :class:`ExecutionCursor` steps by."""
    cost_only = machine.execute == "cost-only"
    if groups:
        if isinstance(machine, ParallelTCUMachine) and (
            len(groups) > 1
            or (splits is not None and any(f > 1 for f in splits))
        ):
            _dispatch_parallel(groups, machine, cost_only, splits)
        elif fused:
            _dispatch_grid(groups, machine)
        else:
            for g in groups:
                out = machine.mm(_group_operands(g), _resolve(g[0].b))
                if cost_only:
                    _scatter_placeholders(g)
                else:
                    _scatter_group(g, out)
    for op in others:
        words = 1
        for dim in op.shape:
            words *= dim
        if op.kind == "add":
            if cost_only:
                machine.charge_cpu(words * len(op.terms))
                op.value = placeholder(op.shape, op.dtype)
                continue
            out = np.zeros(op.shape, dtype=op.dtype)
            for coef, src in op.terms:
                val = _resolve(src)
                if coef == 1.0:
                    out += val
                elif coef == -1.0:
                    out -= val
                else:
                    out += coef * val
                machine.charge_cpu(words)
            op.value = out
        elif op.kind == "copy":
            if cost_only:
                machine.charge_cpu(words)
                op.value = placeholder(op.shape, op.dtype)
                continue
            val = _resolve(op.a)
            op.value = np.array(val, copy=True)
            machine.charge_cpu(op.value.size)
        elif op.kind == "apply":
            if op.cpu:
                machine.charge_cpu(op.cpu)
            if cost_only:
                op.value = placeholder(op.shape, op.dtype)
                continue
            op.value = op.fn(*[_resolve(src) for _, src in op.terms])
            if op.value.shape != op.shape:  # declared shape is a contract
                raise ProgramError(
                    f"apply op #{op.op_id} declared shape {op.shape} but "
                    f"produced {op.value.shape}"
                )
        elif op.kind == "view":
            if cost_only:
                op.value = placeholder(op.shape, op.dtype)
                continue
            op.value = _resolve(op.a)[op.key]
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown op kind {op.kind!r}")


class ExecutionCursor:
    """A resumable executor: one planned level per :meth:`step`.

    The cursor is the seam preemptive schedulers need: a plan's levels
    are its natural checkpoint boundaries (every level's inputs are op
    values already materialised by earlier levels), so an online engine
    can run a level, look at the clock, and decide to keep going or to
    suspend.  All charging goes through the machine's ordinary
    primitives — running a cursor to exhaustion is *bit-identical* to
    :func:`execute_plan`, which is now a thin wrapper over it.

    Suspending costs nothing at the boundary itself (op values stay in
    memory), but *resuming* must re-load the remaining levels' resident
    blocks into the tensor unit; :meth:`charge_reload` prices that
    through the ledger's ``reload`` category at one unit per word of
    :meth:`resident_words` — never free.

    Attributes
    ----------
    level_times:
        Model time charged by each executed level, in step order (the
        per-level ledger spans an engine turns into event boundaries).
    observer:
        Optional ``observer(level, elapsed)`` callback fired after each
        executed level, with the level index just run and the ledger
        span it charged.  A pure telemetry hook
        (:mod:`repro.obs` level spans): execution and charges are
        bit-identical with or without it.
    """

    def __init__(self, plan: Plan, machine: TCUMachine, *, fused: bool = True) -> None:
        self.plan = plan
        self.machine = machine
        self.fused = fused
        self.next_level = 0
        self.level_times: list[float] = []
        self.observer: Callable[[int, float], None] | None = None

    @property
    def total_levels(self) -> int:
        return len(self.plan.levels)

    @property
    def remaining_levels(self) -> int:
        return len(self.plan.levels) - self.next_level

    @property
    def done(self) -> bool:
        return self.next_level >= len(self.plan.levels)

    def step(self) -> float:
        """Execute the next level; returns the model time it charged."""
        if self.done:
            raise ProgramError("cursor is exhausted; no levels left to execute")
        groups, others = self.plan.levels[self.next_level]
        splits = (
            self.plan.splits[self.next_level]
            if self.plan.splits is not None
            else None
        )
        with self.machine.ledger.stopwatch() as span:
            _execute_level(groups, others, self.machine, self.fused, splits)
        self.next_level += 1
        self.level_times.append(span.elapsed)
        if self.observer is not None:
            self.observer(self.next_level - 1, span.elapsed)
        return span.elapsed

    def run(self) -> None:
        """Execute every remaining level (run to exhaustion)."""
        while not self.done:
            self.step()

    def rewind(self, to_level: int) -> None:
        """Roll the cursor back so levels at/after ``to_level`` re-execute.

        The resume-after-abort path for fault-tolerant schedulers: when
        a level's execution is lost (a transient call failure, a unit
        crash), the scheduler rewinds to the failed level — or to 0 for
        restart-from-scratch recovery — and steps again.  Rewinding is
        free (op values of completed levels persist in host memory; a
        checkpoint resume additionally pays :meth:`charge_reload`), and
        re-executed levels append to :attr:`level_times` again: the
        history records every step taken, not just the surviving ones.
        """
        to_level = int(to_level)
        if not 0 <= to_level <= self.next_level:
            raise ProgramError(
                f"cannot rewind to level {to_level}: cursor has executed "
                f"{self.next_level} of {self.total_levels} levels"
            )
        self.next_level = to_level

    def resident_words(self, from_level: int | None = None) -> int:
        """Words of distinct resident blocks the remaining levels consume.

        This is the state a preempted execution loses when the unit is
        given away: every ``sqrt(m) x sqrt(m)`` right-hand block that a
        level at/after ``from_level`` (default: the next unexecuted
        level) still has to stream against.  Distinctness follows the
        planner's own resident identity (:func:`_resident_key`), so a
        block shared by many calls is counted once — exactly the set a
        resume must re-load.
        """
        start = self.next_level if from_level is None else from_level
        seen: set[tuple] = set()
        words = 0
        for groups, _ in self.plan.levels[start:]:
            for g in groups:
                key = _resident_key(g[0])
                if key in seen:
                    continue
                seen.add(key)
                shape = _source_shape(g[0].b)
                words += shape[0] * shape[1]
        return words

    def charge_reload(self) -> float:
        """Charge the resume cost of a suspended cursor and return it.

        One model-time unit per word of :meth:`resident_words`, paid
        into the ledger's ``reload`` column.  Call exactly once per
        resume, before stepping again; a cursor with no tensor work left
        charges nothing.
        """
        return self.machine.ledger.charge_reload(self.resident_words())


class CompiledCursor:
    """Replays a frozen :class:`~repro.core.plan_cache.CompiledPlan`.

    The drop-in twin of :class:`ExecutionCursor` for the serving hot
    path: same interface (``step`` / ``run`` / ``done`` / ``next_level``
    / ``remaining_levels`` / ``level_times`` / ``charge_reload``), but
    each step applies the level's *pre-computed* charges as one bulk
    ledger operation instead of walking ops — no program build, no
    planner, no per-op dispatch.  Values are never produced, so compiled
    replay is only offered on cost-only machines, where live execution
    produces placeholders anyway.

    Bit-identity to live execution holds for the ledger's counters,
    clock, snapshot, per-shape trace totals and unit-id trace whenever
    each counter's live per-level addends are either a single float (the
    parallel makespan path) or all integer-valued (every serial charge
    with integer ``ell`` — all shipped presets); both conditions make
    float addition re-associate exactly.  The compile step verifies the
    per-level deltas against the bulk formula rather than assuming them.

    ``plan()``-build charges the live engine pays at launch (the
    compiled plan's ``prelude``) are applied together with level 0, so a
    cursor resumed at a later level never re-pays them.
    """

    def __init__(self, compiled, machine: TCUMachine) -> None:
        self.compiled = compiled
        self.machine = machine
        self.next_level = 0
        self.level_times: list[float] = []
        # same telemetry seam as ExecutionCursor.observer; the coalesced
        # run() path reports its single bulk span as level 0
        self.observer: Callable[[int, float], None] | None = None
        # the prelude (plan()-build charges) is paid exactly once per
        # cursor, on the first step ever taken — a fault-recovery
        # rewind back to level 0 must not re-pay it, mirroring the live
        # path where the already-built plan is simply re-executed
        self._prelude_paid = False

    @property
    def total_levels(self) -> int:
        return len(self.compiled.levels)

    @property
    def remaining_levels(self) -> int:
        return len(self.compiled.levels) - self.next_level

    @property
    def done(self) -> bool:
        return self.next_level >= len(self.compiled.levels)

    def _apply(self, charges) -> None:
        led = self.machine.ledger
        s = self.compiled.sqrt_m
        ell = self.compiled.ell
        if charges.simple:
            if charges.ns.size:
                led.charge_tensor_bulk(charges.ns, s, ell)
        else:
            # a makespan-scaled parallel level: its counters carry one
            # non-formula addend each, so replay the captured deltas and
            # trace columns verbatim (mm_batch's own accounting), after
            # the same machine-binding check the public path enforces
            led._check_bound(s, ell)
            led.tensor_time += charges.tensor_time
            led.latency_time += charges.latency_time
            led.tensor_calls += charges.tensor_calls
            led._bump_sections(charges.tensor_time + charges.latency_time)
            led.record_calls_bulk(
                charges.ns, s, charges.times, charges.lats, units=charges.units
            )
        if charges.cpu_time:
            led.charge_cpu(charges.cpu_time)

    def step(self) -> float:
        """Replay the next level's charges; returns the model time."""
        if self.done:
            raise ProgramError("cursor is exhausted; no levels left to execute")
        with self.machine.ledger.stopwatch() as span:
            if not self._prelude_paid:
                if self.compiled.prelude is not None:
                    self._apply(self.compiled.prelude)
                self._prelude_paid = True
            self._apply(self.compiled.levels[self.next_level])
        self.next_level += 1
        self.level_times.append(span.elapsed)
        if self.observer is not None:
            self.observer(self.next_level - 1, span.elapsed)
        return span.elapsed

    def run(self) -> None:
        """Replay every remaining level.

        A fresh cursor whose plan coalesces (see
        :class:`~repro.core.plan_cache.CompiledPlan`) pays the whole
        plan — prelude included — as a single bulk charge; otherwise
        this is the plain step loop.
        """
        if (
            self.next_level == 0
            and not self._prelude_paid
            and self.compiled.coalesced is not None
        ):
            with self.machine.ledger.stopwatch() as span:
                self._apply(self.compiled.coalesced)
            self.next_level = self.total_levels
            self._prelude_paid = True
            self.level_times.append(span.elapsed)
            if self.observer is not None:
                self.observer(0, span.elapsed)
            return
        while not self.done:
            self.step()

    def rewind(self, to_level: int) -> None:
        """Roll the replay back so levels at/after ``to_level`` re-apply.

        The frozen counterpart of :meth:`ExecutionCursor.rewind` — the
        prelude stays paid (rewinding models re-execution of an
        already-built plan, not a rebuild), so a restart recovery
        charges exactly the re-run levels on both cursor kinds.
        """
        to_level = int(to_level)
        if not 0 <= to_level <= self.next_level:
            raise ProgramError(
                f"cannot rewind to level {to_level}: cursor has executed "
                f"{self.next_level} of {self.total_levels} levels"
            )
        self.next_level = to_level

    def resident_words(self, from_level: int | None = None) -> int:
        """The frozen counterpart of :meth:`ExecutionCursor.resident_words`."""
        start = self.next_level if from_level is None else from_level
        if start >= len(self.compiled.reload_words):
            return 0
        return self.compiled.reload_words[start]

    def charge_reload(self) -> float:
        """Charge the resume cost of a suspended cursor and return it."""
        return self.machine.ledger.charge_reload(self.resident_words())


def execute_plan(plan: Plan, machine: TCUMachine, *, fused: bool = True) -> None:
    """Run a plan to exhaustion, charging the machine's ledger, and
    populate ``op.value`` on every node.

    A thin wrapper over :class:`ExecutionCursor` (construct + ``run()``),
    kept as the one-shot entry point every offline kernel uses.

    With ``fused=True`` (default) each level's merged call groups are
    bucketed and issued through the bulk :meth:`TCUMachine.mm_grid`
    primitive — one stacked numpy product and one vectorised ledger
    charge per bucket instead of a Python-level call per op.
    ``fused=False`` replays the per-group scalar schedule (the
    pre-fusion executor, kept as the equivalence reference).  On a
    :class:`~repro.core.parallel.ParallelTCUMachine`, each level's
    merged calls are issued as one :meth:`mm_batch` (scheduled over the
    units by the machine's policy) in either mode and on every machine
    configuration, including row-bounded, complex-cost, systolic and
    overflow-checked machines.

    On a machine with ``execute="cost-only"`` all numeric work is
    skipped: call groups are charged from their shapes alone and every
    op's value becomes an O(1)-storage placeholder, so programs whose
    arrays would not fit in memory still charge exact ledger totals.
    """
    ExecutionCursor(plan, machine, fused=fused).run()


def run_program(
    program: TensorProgram,
    machine: TCUMachine,
    *,
    merge: bool = True,
    fused: bool = True,
    split: str | int = "auto",
) -> Plan:
    """Plan then execute a program; returns the plan (for its stats).

    ``split`` is forwarded to :func:`plan_program`: ``"auto"`` (default)
    lets the planner split merged tall calls across parallel units when
    the modelled makespan wins, ``1`` keeps the legacy one-call-per-group
    schedule, an integer forces that factor.
    """
    plan = plan_program(program, machine, merge=merge, split=split)
    execute_plan(plan, machine, fused=fused)
    return plan
