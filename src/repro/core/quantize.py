"""Limited numerical precision — the paper's third §6 open question.

Real tensor units compute in low precision: the TPUv1 multiplies 8-bit
integers into 32-bit accumulators, Volta tensor cores multiply fp16
with optional fp32 accumulation (§2.1).  The model deliberately ignores
this; :class:`QuantizedTCUMachine` adds it back so its effect on the
paper's algorithms can be *measured*: operands are rounded to the
chosen format before every tensor call (the accumulator stays wide,
as in both hardware designs), while cost accounting is unchanged.

Formats
-------
``fp16`` / ``bf16``
    IEEE half / bfloat16-style rounding (bf16 is emulated by truncating
    the float32 mantissa to 8 bits, since NumPy has no native bfloat16).
``int8``
    Symmetric per-operand quantisation: each operand is scaled by
    ``127 / max|x|``, rounded to integers in [-127, 127], multiplied
    exactly, and rescaled — the TPU recipe.

The quantisation error of each call is measured against the exact
product and accumulated in :attr:`error_stats`, giving experiments like
"how fast does DFT error grow with n at fp16?" (the question behind the
mixed-precision FFT work the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .machine import TCUMachine

__all__ = ["QuantizedTCUMachine", "QuantizationErrorStats", "quantize_array"]

_FORMATS = ("fp16", "bf16", "int8")


def _truncate_to_bf16(x: np.ndarray) -> np.ndarray:
    """Truncate float32 mantissas to 8 bits (bfloat16 emulation)."""
    as32 = np.asarray(x, dtype=np.float32)
    bits = as32.view(np.uint32)
    return (bits & np.uint32(0xFFFF0000)).view(np.float32).astype(np.float64)


def quantize_array(x: np.ndarray, fmt: str) -> np.ndarray:
    """Round an array to the given low-precision format (returns float64)."""
    x = np.asarray(x, dtype=np.float64)
    if fmt == "fp16":
        return x.astype(np.float16).astype(np.float64)
    if fmt == "bf16":
        return _truncate_to_bf16(x)
    if fmt == "int8":
        scale = np.abs(x).max()
        if scale == 0:
            return x.copy()
        q = np.clip(np.rint(x / scale * 127.0), -127, 127)
        return q * (scale / 127.0)
    raise ValueError(f"unknown format {fmt!r}; choose from {_FORMATS}")


@dataclass
class QuantizationErrorStats:
    """Per-call relative errors ||C_q - C|| / ||C|| (Frobenius)."""

    errors: list[float] = field(default_factory=list)

    def observe(self, exact: np.ndarray, quantized: np.ndarray) -> None:
        denom = float(np.linalg.norm(exact))
        if denom == 0.0:
            self.errors.append(0.0)
        else:
            self.errors.append(float(np.linalg.norm(quantized - exact)) / denom)

    @property
    def max_error(self) -> float:
        return max(self.errors, default=0.0)

    @property
    def mean_error(self) -> float:
        return sum(self.errors) / len(self.errors) if self.errors else 0.0


class QuantizedTCUMachine(TCUMachine):
    """A TCU whose tensor unit rounds operands to ``precision``.

    Complex operands are quantised on their real and imaginary parts
    separately (four real products on real hardware).  The model cost
    is identical to the exact machine — precision changes *answers*,
    not time — which is precisely why the paper's algorithms need the
    error measurement this class provides.
    """

    def __init__(self, m: int, ell: float = 0.0, *, precision: str = "fp16", **kwargs) -> None:
        if precision not in _FORMATS:
            raise ValueError(f"unknown precision {precision!r}; choose from {_FORMATS}")
        super().__init__(m, ell, **kwargs)
        self.precision = precision
        self.error_stats = QuantizationErrorStats()

    def config_key(self) -> tuple:
        """Extends the base fingerprint with the precision format.

        Charges are precision-independent today, but the key keeps
        quantised machines from sharing cache entries with exact ones
        should a format ever grow its own cost rule.
        """
        return super().config_key() + (self.precision,)

    def _quantize(self, x: np.ndarray) -> np.ndarray:
        if np.iscomplexobj(x):
            return quantize_array(x.real, self.precision) + 1j * quantize_array(
                x.imag, self.precision
            )
        return quantize_array(x, self.precision)

    def _mm_single(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.execute == "cost-only":
            # quantisation changes answers, not time: charge the exact
            # machine's cost and skip both the rounding and the exact
            # reference product (no meaningful error to observe)
            return super()._mm_single(A, B)
        if np.issubdtype(np.asarray(A).dtype, np.integer) and np.issubdtype(
            np.asarray(B).dtype, np.integer
        ):
            # exact integer path (the TPU's own int8 -> int32 regime is
            # exact as long as the word discipline holds)
            return super()._mm_single(A, B)
        Aq = self._quantize(np.asarray(A))
        Bq = self._quantize(np.asarray(B))
        out = super()._mm_single(Aq, Bq)
        exact = np.asarray(A) @ np.asarray(B)
        self.error_stats.observe(exact, out)
        return out
