"""Compiled plans: freeze a plan's ledger charges once, replay them forever.

The paper's central observation (Section 3) is that a tensor call's cost
is a pure function of its shape and the machine parameters — values
never enter the clock.  A serving engine therefore re-derives exactly
the same ledger charges every time it executes a batch of a shape it
has already seen: the program lowering, the planner and the level walk
are all deterministic given ``(request kind, batch row counts, machine
configuration)``.  This module exploits that replayability:

* :func:`compile_plan` executes a request type's plan **once** against a
  scratch ledger on a forked probe machine and freezes what it charged
  into a :class:`CompiledPlan` — per-level columnar charge records
  (row counts, per-call times, latency spans, unit ids — the
  ``charge_tensor_bulk`` / ``record_calls_bulk`` column format) plus the
  per-level ``resident_words`` an :class:`~repro.core.program.ExecutionCursor`
  would need to price a preempted resume.
* :class:`~repro.core.program.CompiledCursor` replays a frozen plan
  level-at-a-time with one bulk ledger charge per level — bit-identical
  counters, clock, snapshot, trace shape totals and preemption/reload
  behaviour to live execution (see the cursor's docstring for the exact
  bit-identity conditions).
* :class:`PlanCache` memoises compiled plans under
  ``(kind, rows tuple, machine.config_key())`` with LRU eviction, so the
  serving hot path never re-plans a shape it has seen.

Compilation runs on a **fork** of the target machine (fresh ledger), so
probing never pollutes the live clock; the fork's ledger is bound to the
machine's ``(sqrt_m, ell)`` exactly as a constructor-made ledger would
be, so a compiled plan replayed onto a differently-parameterised
machine's ledger raises :class:`~repro.core.ledger.LedgerError` instead
of silently poisoning it.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from .ledger import CostLedger
from .machine import TCUMachine
from .program import ExecutionCursor, Plan, PlanStats

__all__ = ["LevelCharges", "CompiledPlan", "PlanCache", "Plannable", "compile_plan"]


class Plannable(Protocol):
    """What compilation needs from a request type — structural, so the
    serve-layer types satisfy it without a core -> serve import."""

    def plan(self, machine: TCUMachine, rows: Sequence[int]) -> Plan | None: ...

    def serve(self, machine: TCUMachine, rows: Sequence[int]) -> None: ...


@dataclass(frozen=True, eq=False)
class LevelCharges:
    """The frozen ledger charges of one executed plan level.

    ``simple`` marks levels whose charges are exactly what one public
    :meth:`~repro.core.ledger.CostLedger.charge_tensor_bulk` with the
    machine's own ``(sqrt_m, ell)`` would produce (uniform latency,
    serial unit ids, per-call times on the ``n*sqrt_m + l`` formula) —
    those replay through the validated public path.  Everything else
    (parallel makespan-scaled levels, whose counters carry one scaled
    addend each) replays its captured counter deltas and trace columns
    verbatim, mirroring ``mm_batch``'s own accounting.
    """

    tensor_time: float
    latency_time: float
    cpu_time: float
    tensor_calls: int
    ns: np.ndarray
    times: np.ndarray
    lats: np.ndarray
    units: np.ndarray
    simple: bool

    @property
    def total_time(self) -> float:
        return self.tensor_time + self.latency_time + self.cpu_time


@dataclass(frozen=True, eq=False)
class CompiledPlan:
    """A plan frozen to its ledger effects, ready for columnar replay.

    Attributes
    ----------
    kind / rows:
        The request kind and per-request row counts the plan was
        compiled for (informational; the cache key carries them too).
    sqrt_m / ell:
        The probe machine's call parameters — every replayed bulk
        charge uses them, so a bound ledger of any other machine
        rejects the replay.
    prelude:
        Charges the request type's ``plan()`` emitted while *building*
        the program (eager padding copies, Fourier-matrix loads).  The
        live engine pays these at launch, before the first level, so
        replay applies them together with level 0.
    levels:
        One :class:`LevelCharges` per plan level, in execution order.
    reload_words:
        ``reload_words[d]`` is the resident-block word count a cursor
        suspended before level ``d`` must re-load on resume — the exact
        value live :meth:`ExecutionCursor.resident_words` returns there.
    coalesced:
        When every level is ``simple`` and all deltas are integer-valued
        floats (so float addition re-associates exactly), the whole
        plan — prelude included — collapsed into one record; a
        run-to-exhaustion replay then costs a single bulk charge.
        ``None`` when per-level replay is required for bit-identity.
    stats:
        The live plan's :class:`~repro.core.program.PlanStats`
        (``None`` for legacy-atomic kinds frozen from ``serve()``).
    """

    kind: str
    rows: tuple[int, ...]
    sqrt_m: int
    ell: float
    prelude: LevelCharges | None
    levels: tuple[LevelCharges, ...]
    reload_words: tuple[int, ...]
    coalesced: LevelCharges | None
    stats: PlanStats | None

    @property
    def total_levels(self) -> int:
        return len(self.levels)


def _capture(scratch: CostLedger, sqrt_m: int, ell: float) -> LevelCharges:
    """Freeze a zeroed scratch ledger's accumulated charges.

    The scratch starts from zero for every level, so counter values ARE
    the exact per-level float deltas live execution adds to a running
    ledger.  The ``simple`` classification is verified against the bulk
    formula bit-for-bit, never assumed.
    """
    ns_v, _, times_v, lats_v = scratch.calls.as_arrays()
    ns = np.array(ns_v, dtype=np.int64, copy=True)
    times = np.array(times_v, dtype=np.float64, copy=True)
    lats = np.array(lats_v, dtype=np.float64, copy=True)
    units = np.array(scratch.calls.unit_ids(), dtype=np.int64, copy=True)
    k = scratch.tensor_calls
    simple = (
        k == int(ns.size)
        and bool(np.all(units == -1))
        and bool(np.all(lats == float(ell)))
        and bool(np.array_equal(times, ns * float(sqrt_m) + float(ell)))
        and scratch.tensor_time == float(int(ns.sum()) * sqrt_m)
        and scratch.latency_time == float(ell) * k
    )
    return LevelCharges(
        tensor_time=scratch.tensor_time,
        latency_time=scratch.latency_time,
        cpu_time=scratch.cpu_time,
        tensor_calls=k,
        ns=ns,
        times=times,
        lats=lats,
        units=units,
        simple=simple,
    )


def _coalesce(
    prelude: LevelCharges | None,
    levels: tuple[LevelCharges, ...],
    ell: float,
) -> LevelCharges | None:
    """Collapse a whole plan into one charge record when exact.

    Valid only when every part replays through the public bulk path
    (``simple``) and every per-level float delta is integer-valued, so
    ``base + (d1 + d2 + ...)`` bit-equals ``((base + d1) + d2) + ...``
    — integer-valued doubles below 2**53 add associatively.  Fractional
    ``ell`` (no shipped preset has one) falls back to per-level replay.
    """
    parts = ([] if prelude is None else [prelude]) + list(levels)
    if not parts or not all(p.simple for p in parts):
        return None
    calls = sum(p.tensor_calls for p in parts)
    if calls and not float(ell).is_integer():
        return None
    if not all(float(p.cpu_time).is_integer() for p in parts):
        return None
    return LevelCharges(
        tensor_time=sum(p.tensor_time for p in parts),
        latency_time=sum(p.latency_time for p in parts),
        cpu_time=sum(p.cpu_time for p in parts),
        tensor_calls=calls,
        ns=np.concatenate([p.ns for p in parts]) if calls else np.empty(0, np.int64),
        times=np.concatenate([p.times for p in parts]) if calls else np.empty(0),
        lats=np.concatenate([p.lats for p in parts]) if calls else np.empty(0),
        units=np.concatenate([p.units for p in parts]) if calls else np.empty(0, np.int64),
        simple=True,
    )


def compile_plan(rtype: Plannable, machine: TCUMachine, rows: Sequence[int]) -> CompiledPlan:
    """Execute ``rtype``'s plan for ``rows`` once and freeze its charges.

    Runs on ``machine.fork()`` with a fresh full-trace scratch ledger —
    the live ledger is never touched — resetting the scratch before
    every level so each captured record is the exact from-zero delta
    that level charges.  Legacy-atomic kinds (``plan()`` is ``None``)
    are frozen from one ``serve()`` call into a single synthetic level,
    preserving their never-preempted semantics (a one-level cursor has
    no interior boundary to suspend at).
    """
    rows = [int(r) for r in rows]
    probe = machine.fork()
    scratch = CostLedger(trace_calls=True)
    s, ell = probe.sqrt_m, probe.ell
    scratch.bind_machine(s, ell)
    probe.ledger = scratch
    plan = rtype.plan(probe, rows)
    prelude: LevelCharges | None = _capture(scratch, s, ell)

    levels: list[LevelCharges] = []
    reloads: list[int] = []
    stats: PlanStats | None = None
    if plan is None:
        scratch.reset()
        rtype.serve(probe, rows)
        levels.append(_capture(scratch, s, ell))
        reloads.append(0)
    else:
        stats = plan.stats
        cursor = ExecutionCursor(plan, probe)
        while not cursor.done:
            reloads.append(cursor.resident_words())
            scratch.reset()
            cursor.step()
            levels.append(_capture(scratch, s, ell))
        if not levels:
            # a plan with no levels still owes its build charges; keep
            # one empty level so a cursor has a step to apply them on
            scratch.reset()
            levels.append(_capture(scratch, s, ell))
            reloads.append(0)

    if prelude.tensor_calls == 0 and prelude.total_time == 0.0:
        prelude = None
    level_tuple = tuple(levels)
    return CompiledPlan(
        kind=getattr(rtype, "name", type(rtype).__name__),
        rows=tuple(rows),
        sqrt_m=s,
        ell=ell,
        prelude=prelude,
        levels=level_tuple,
        reload_words=tuple(reloads),
        coalesced=_coalesce(prelude, level_tuple, ell),
        stats=stats,
    )


class PlanCache:
    """An LRU cache of :class:`CompiledPlan` keyed on
    ``(kind, rows tuple, machine.config_key())``.

    Hit/miss/eviction counters are cumulative over the cache's lifetime;
    consumers (e.g. :class:`~repro.serve.engine.ServingEngine`) report
    per-run deltas.  One cache may safely serve many machines — the
    config fingerprint in the key keeps their plans apart, and the
    ledger-binding guard makes a mis-keyed replay an error rather than
    silent corruption.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, CompiledPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(kind: str, rows: Sequence[int], machine: TCUMachine) -> tuple:
        return (str(kind), tuple(int(r) for r in rows), machine.config_key())

    def get(self, key: tuple) -> CompiledPlan | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, compiled: CompiledPlan) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compile(
        self, rtype: Plannable, machine: TCUMachine, rows: Sequence[int]
    ) -> CompiledPlan:
        """The hot-path entry point: one dict probe on a hit, one
        compile + insert on a miss."""
        key = self.key(getattr(rtype, "name", type(rtype).__name__), rows, machine)
        compiled = self.get(key)
        if compiled is None:
            compiled = compile_plan(rtype, machine, rows)
            self.put(key, compiled)
        return compiled

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, float]:
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
