"""Discrete Fourier Transform on the TCU (Theorem 7, Section 4.5).

The Cooley-Tukey decomposition with radix ``n1 = sqrt(m)``: arrange the
input vector as an ``n1 x n2`` matrix X in row-major order
(``n2 = n/sqrt(m)``), replace each column by its size-``n1`` DFT — a single
*tall* tensor product ``X^T @ W_{sqrt(m)}`` where the Fourier matrix
stays resident — multiply by twiddle factors, recurse on the rows, and
read the result in column-major order.  The recurrence

    T(n) = sqrt(m) T(n / sqrt(m)) + O(n + l),   T(n) = O(m + l) for n <= m

solves to ``T(n) = O((n + l) log_m n)``.

All transforms here are *batched*: :func:`batched_dft` transforms every
row of a ``(batch, size)`` matrix at once, which keeps the left operand
of every tensor call tall (the Lemma 1 trick that the stencil algorithm
relies on to amortise latency).  The model assumes the unit handles
complex words (Section 4.5); set ``complex_cost_factor=4`` on the
machine to charge the 4-real-product emulation instead.

Sizes must factor into ``sqrt(m)``-smooth products: every recursion
level needs ``sqrt(m) | size`` until ``size <= sqrt(m)``.  Powers of two
(with a power-of-two ``sqrt(m)``) always work.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.machine import TCUMachine, placeholder
from ..matmul.dense import matmul

__all__ = [
    "dft_matrix",
    "dft",
    "idft",
    "batched_dft",
    "batched_idft",
    "dft_recursion_depth",
]


@lru_cache(maxsize=64)
def _dft_matrix_cached(size: int) -> np.ndarray:
    r = np.arange(size)
    return np.exp(-2j * np.pi * np.outer(r, r) / size)


def dft_matrix(size: int) -> np.ndarray:
    """The symmetric Fourier matrix ``W[r, c] = exp(-2*pi*i*r*c/size)``."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    return _dft_matrix_cached(size)


def dft_recursion_depth(n: int, m: int) -> int:
    """Recursion levels Theorem 7's algorithm uses for an n-point DFT
    (the ``log_m n`` factor, with the paper's ``n <= m`` base case)."""
    import math

    s = math.isqrt(m)
    depth = 1
    while n > m:
        n //= s
        depth += 1
    return depth


def batched_dft(
    tcu: TCUMachine, X: np.ndarray, *, plan: bool = True, split: str | int = "auto"
) -> np.ndarray:
    """DFT of every row of a ``(batch, size)`` complex matrix.

    Implements the Theorem 7 recursion; the batch dimension rides along
    in the tall operand of every tensor call, so transforming B vectors
    costs ``O((B*n + l) log_m n)`` — not B times the latency.

    Each recursion level's product goes through the plan/execute layer
    when ``plan`` is true (the default; levels are sequential because of
    the twiddle pass, so the planner works within one level at a time);
    ``plan=False`` is the eager escape hatch, threaded down to
    :func:`repro.matmul.dense.matmul`; ``split`` is forwarded to the
    planner at every level (``"auto"`` lets merged tall transforms
    scale across parallel units, ``1`` pins the legacy schedule).
    """
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError(f"batched_dft expects a 2-D (batch, size) array, got {X.shape}")
    if tcu.execute == "cost-only":
        # only the shape matters; casting would materialise a full-size
        # complex copy of what may be an O(1)-storage placeholder
        X = placeholder(X.shape, np.complex128)
    else:
        X = np.asarray(X, dtype=np.complex128)
    B, size = X.shape
    if size == 0 or B == 0:
        return X.copy()
    s = tcu.sqrt_m
    if size <= s:
        W = dft_matrix(size)
        tcu.charge_cpu(size * size)  # constructing/loading the base Fourier matrix
        return matmul(tcu, X, W, plan=plan, split=split)
    if size % s:
        raise ValueError(
            f"DFT size {size} is not sqrt(m)={s}-smooth; Theorem 7 requires "
            "sqrt(m) | size at every recursion level (use power-of-two sizes)"
        )
    n1, n2 = s, size // s
    cost_only = tcu.execute == "cost-only"

    # Column DFTs: view each row as an n1 x n2 matrix; its columns,
    # transposed, form a tall (B*n2) x n1 operand against W_{n1}.
    # The strided re-arrangements are index arithmetic in the RAM model
    # (a real implementation fuses them into the next pass), so only
    # the twiddle multiplication is charged per element per level.
    if cost_only:
        cols = placeholder((B * n2, n1), np.complex128)
    else:
        cols = X.reshape(B, n1, n2).transpose(0, 2, 1).reshape(B * n2, n1)
    tcu.charge_cpu(n1 * n1)
    # row b*n2+c holds DFT of column c
    G = matmul(tcu, cols, dft_matrix(n1), plan=plan, split=split)

    # Twiddle factors: entry (r=p, c) of each n1 x n2 matrix gets
    # exp(-2*pi*i * p*c / size).
    tcu.charge_cpu(B * size)
    if cost_only:
        batched_dft(tcu, placeholder((B * n1, n2), np.complex128), plan=plan, split=split)
        return placeholder((B, size), np.complex128)
    c_idx = np.tile(np.arange(n2), B)[:, None]
    p_idx = np.arange(n1)[None, :]
    G = G * np.exp(-2j * np.pi * (c_idx * p_idx) / size)

    # Row DFTs: rows of the n1 x n2 matrices, batch B*n1, size n2.
    rows = G.reshape(B, n2, n1).transpose(0, 2, 1).reshape(B * n1, n2)
    F = batched_dft(tcu, rows, plan=plan, split=split)

    # Read out column-major: y[q*n1 + p] = F[p, q].
    out = F.reshape(B, n1, n2).transpose(0, 2, 1).reshape(B, size)
    return out


def batched_idft(
    tcu: TCUMachine, X: np.ndarray, *, plan: bool = True, split: str | int = "auto"
) -> np.ndarray:
    """Inverse DFT of every row (conjugation trick; same cost bound)."""
    X = np.asarray(X)
    if X.ndim != 2:
        raise ValueError(f"batched_idft expects a 2-D array, got {X.shape}")
    if tcu.execute != "cost-only":
        X = np.asarray(X, dtype=np.complex128)
    size = X.shape[1]
    if size == 0:
        return np.zeros(X.shape, dtype=np.complex128)
    if tcu.execute == "cost-only":
        batched_dft(tcu, placeholder(X.shape, np.complex128), plan=plan, split=split)
        tcu.charge_cpu(X.size)
        return placeholder(X.shape, np.complex128)
    out = np.conj(batched_dft(tcu, np.conj(X), plan=plan, split=split)) / size
    tcu.charge_cpu(X.size)
    return out


def dft(tcu: TCUMachine, x: np.ndarray, *, plan: bool = True) -> np.ndarray:
    """DFT of a single n-point vector in ``O((n + l) log_m n)`` model time."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"dft expects a 1-D vector, got shape {x.shape}")
    return batched_dft(tcu, x[None, :], plan=plan)[0]


def idft(tcu: TCUMachine, y: np.ndarray, *, plan: bool = True) -> np.ndarray:
    """Inverse DFT of a single vector."""
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"idft expects a 1-D vector, got shape {y.shape}")
    return batched_idft(tcu, y[None, :], plan=plan)[0]
