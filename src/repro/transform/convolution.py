"""Circular convolution via the TCU DFT (convolution theorem).

These are the primitives the stencil algorithm of Section 4.6 builds
on: 1-D and 2-D circular convolutions evaluated as
``IDFT( DFT(a) * DFT(b) )``, with every transform batched so a stack of
T independent convolutions against one common kernel costs
``O((T*S^2 + l) log_m S)`` — not T separate latencies (Lemma 1's tall
left-matrix trick).

The centred-kernel helpers implement the paper's correlation-style
convention (footnote 2): a kernel ``W`` of odd side ``2k+1`` is placed
circularly around offset 0 so that

    out[i] = sum_{|t| <= k}  in[(i + t) mod S] * W[k + t]

holds for every position — the exact form the unrolled-stencil identity
of Section 4.6 needs.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import TCUMachine, placeholder
from .dft import batched_dft, batched_idft

__all__ = [
    "circular_convolve",
    "batched_circular_convolve2d",
    "embed_centered_kernel_1d",
    "embed_centered_kernel_2d",
    "reversed_embedded_kernel_2d",
    "dft2",
    "idft2",
]


def circular_convolve(
    tcu: TCUMachine,
    a: np.ndarray,
    b: np.ndarray,
    *,
    plan: bool = True,
    split: str | int = "auto",
) -> np.ndarray:
    """Standard circular convolution ``c[i] = sum_j a[j] b[(i-j) mod n]``."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 1 or b.ndim != 1 or a.shape != b.shape:
        raise ValueError(
            f"circular_convolve expects equal-length vectors, got {a.shape}, {b.shape}"
        )
    fa = batched_dft(tcu, a[None, :], plan=plan, split=split)
    fb = batched_dft(tcu, b[None, :], plan=plan, split=split)
    cost_only = tcu.execute == "cost-only"
    prod = placeholder(fa.shape, np.complex128) if cost_only else fa * fb
    tcu.charge_cpu(a.size)
    out = batched_idft(tcu, prod, plan=plan, split=split)[0]
    if not (np.iscomplexobj(a) or np.iscomplexobj(b)):
        # real inputs give a real result (dtype preserved in cost-only
        # so downstream consumers see the same array kind)
        out = placeholder(out.shape, np.float64) if cost_only else out.real
        tcu.charge_cpu(a.size)
    return out


def dft2(
    tcu: TCUMachine, X: np.ndarray, *, plan: bool = True, split: str | int = "auto"
) -> np.ndarray:
    """2-D DFT of a ``(batch, S, S)`` stack: row transforms then column
    transforms, each as one batched (tall) 1-D DFT."""
    X = np.asarray(X)
    if X.ndim != 3 or X.shape[1] != X.shape[2]:
        raise ValueError(f"dft2 expects a (batch, S, S) stack, got {X.shape}")
    T, S, _ = X.shape
    if tcu.execute == "cost-only":
        # shape-only: two batched transform passes, no re-arrangements
        batched_dft(tcu, placeholder((T * S, S), np.complex128), plan=plan, split=split)
        batched_dft(tcu, placeholder((T * S, S), np.complex128), plan=plan, split=split)
        return placeholder((T, S, S), np.complex128)
    X = np.asarray(X, dtype=np.complex128)
    # axis re-arrangements are index arithmetic (fused in a RAM
    # implementation); the transform passes below carry the cost.
    rows = batched_dft(tcu, X.reshape(T * S, S), plan=plan, split=split).reshape(T, S, S)
    cols = rows.transpose(0, 2, 1).reshape(T * S, S)
    out = batched_dft(tcu, cols, plan=plan, split=split).reshape(T, S, S).transpose(0, 2, 1)
    return out


def idft2(
    tcu: TCUMachine, X: np.ndarray, *, plan: bool = True, split: str | int = "auto"
) -> np.ndarray:
    """Inverse 2-D DFT of a ``(batch, S, S)`` stack."""
    X = np.asarray(X)
    if X.ndim != 3 or X.shape[1] != X.shape[2]:
        raise ValueError(f"idft2 expects a (batch, S, S) stack, got {X.shape}")
    T, S, _ = X.shape
    if tcu.execute == "cost-only":
        batched_idft(tcu, placeholder((T * S, S), np.complex128), plan=plan, split=split)
        batched_idft(tcu, placeholder((T * S, S), np.complex128), plan=plan, split=split)
        return placeholder((T, S, S), np.complex128)
    X = np.asarray(X, dtype=np.complex128)
    rows = batched_idft(tcu, X.reshape(T * S, S), plan=plan, split=split).reshape(T, S, S)
    cols = rows.transpose(0, 2, 1).reshape(T * S, S)
    out = batched_idft(tcu, cols, plan=plan, split=split).reshape(T, S, S).transpose(0, 2, 1)
    return out


def embed_centered_kernel_1d(W: np.ndarray, size: int) -> np.ndarray:
    """Embed an odd-length kernel circularly around offset 0.

    Produces ``ker`` of length ``size`` with ``ker[t mod size] = W[k + t]``
    for ``|t| <= k``, so circular convolution with the *index-reversed*
    ker realises ``out[i] = sum_t in[i+t] W[k+t]``.
    """
    W = np.asarray(W)
    if W.ndim != 1 or W.size % 2 == 0:
        raise ValueError(f"kernel must be 1-D of odd length, got shape {W.shape}")
    k = W.size // 2
    if size < W.size:
        raise ValueError(f"size {size} too small for kernel of half-width {k}")
    ker = np.zeros(size, dtype=W.dtype)
    for t in range(-k, k + 1):
        ker[t % size] = W[k + t]
    return ker


def embed_centered_kernel_2d(W: np.ndarray, size: int) -> np.ndarray:
    """2-D analogue of :func:`embed_centered_kernel_1d` for odd-side kernels."""
    W = np.asarray(W)
    if W.ndim != 2 or W.shape[0] != W.shape[1] or W.shape[0] % 2 == 0:
        raise ValueError(f"kernel must be square with odd side, got {W.shape}")
    k = W.shape[0] // 2
    if size < W.shape[0]:
        raise ValueError(f"size {size} too small for kernel of half-width {k}")
    ker = np.zeros((size, size), dtype=W.dtype)
    for t in range(-k, k + 1):
        for u in range(-k, k + 1):
            ker[t % size, u % size] = W[k + t, k + u]
    return ker


def reversed_embedded_kernel_2d(kernel: np.ndarray, size: int) -> np.ndarray:
    """The index-reversed circular embedding of a centred odd-side kernel.

    ``out[i] = sum_t in[i+t] W[k+t]`` is circular convolution with the
    index-reversed embedded kernel: build ``ker[-t, -u] = W[k+t, k+u]``.
    Pure data movement (the caller charges the embedding cost); shared
    by :func:`batched_circular_convolve2d` and the serving layer's
    planned stencil lowering.
    """
    embedded = embed_centered_kernel_2d(np.asarray(kernel), size)
    reversed_ker = np.zeros_like(embedded)
    idx = (-np.arange(size)) % size
    reversed_ker[np.ix_(idx, idx)] = embedded
    return reversed_ker


def batched_circular_convolve2d(
    tcu: TCUMachine,
    tiles: np.ndarray,
    kernel: np.ndarray,
    *,
    plan: bool = True,
    split: str | int = "auto",
) -> np.ndarray:
    """Correlate every ``S x S`` tile with a centred odd-side kernel.

    Parameters
    ----------
    tiles:
        ``(T, S, S)`` stack.
    kernel:
        ``(2k+1) x (2k+1)`` weight matrix ``W``; the result satisfies

        ``out[t, i, j] = sum_{|a|,|b| <= k} tiles[t, (i+a)%S, (j+b)%S] * W[k+a, k+b]``.

    One forward 2-D DFT of the stack, one of the kernel, a pointwise
    product and one inverse transform — all batched.
    """
    tiles = np.asarray(tiles)
    if tiles.ndim != 3 or tiles.shape[1] != tiles.shape[2]:
        raise ValueError(f"tiles must be (T, S, S), got {tiles.shape}")
    S = tiles.shape[1]
    reversed_ker = reversed_embedded_kernel_2d(kernel, S)
    tcu.charge_cpu(2 * S * S)

    cost_only = tcu.execute == "cost-only"
    f_tiles = dft2(tcu, tiles, plan=plan, split=split)
    f_ker = dft2(tcu, reversed_ker[None, :, :], plan=plan, split=split)[0]
    if cost_only:
        prod = placeholder(f_tiles.shape, np.complex128)
    else:
        prod = f_tiles * f_ker[None, :, :]
    tcu.charge_cpu(tiles.size)
    out = idft2(tcu, prod, plan=plan, split=split)
    if not (np.iscomplexobj(tiles) or np.iscomplexobj(kernel)):
        # real inputs give a real result (dtype preserved in cost-only)
        out = placeholder(out.shape, np.float64) if cost_only else out.real
        tcu.charge_cpu(tiles.size)
    return out
