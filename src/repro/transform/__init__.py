"""Spectral algorithms on the (m, l)-TCU (Sections 4.5-4.6)."""

from .convolution import (
    batched_circular_convolve2d,
    circular_convolve,
    dft2,
    embed_centered_kernel_1d,
    embed_centered_kernel_2d,
    idft2,
)
from .dft import (
    batched_dft,
    batched_idft,
    dft,
    dft_matrix,
    dft_recursion_depth,
    idft,
)
from .stencil import (
    HEAT_3X3,
    heat_equation_weights,
    stencil_direct,
    stencil_tcu,
    unrolled_weights,
    unrolled_weights_direct,
)
from .stencil1d import stencil1d_direct, stencil1d_tcu, unrolled_weights_1d

__all__ = [
    "dft",
    "idft",
    "batched_dft",
    "batched_idft",
    "dft_matrix",
    "dft_recursion_depth",
    "circular_convolve",
    "batched_circular_convolve2d",
    "dft2",
    "idft2",
    "embed_centered_kernel_1d",
    "embed_centered_kernel_2d",
    "stencil_direct",
    "stencil_tcu",
    "unrolled_weights",
    "unrolled_weights_direct",
    "heat_equation_weights",
    "HEAT_3X3",
    "stencil1d_direct",
    "stencil1d_tcu",
    "unrolled_weights_1d",
]
