"""Linear stencil computations on the TCU (Theorem 8, Lemmas 1-2).

A linear (n, k)-stencil evolves a ``sqrt(n) x sqrt(n)`` matrix for k
sweeps, each cell becoming a fixed linear combination of its 3x3
neighbourhood (e.g. the discretised 2-D heat equation).  The evolution
is over the zero-extended plane: cells outside the input grid start at
zero and evolve too (that is the semantics under which the paper's
unrolled identity ``A_k[i,j] = sum_{|a|,|b|<=k} W[k+a, k+b] A[i+a, j+b]``
holds); the output is read back on the original grid.

The TCU algorithm (Lemma 1):

1. unroll the k sweeps into one ``(2k+1) x (2k+1)`` weight matrix W —
   computed by Lemma 2 as the k-th power of the one-step kernel
   polynomial via squaring, each squaring a TCU convolution, in
   ``O(k^2 log_m k + l log k)`` time;
2. split the input into ``k x k`` tiles; the 3x3 block of neighbouring
   tiles (a ``3k x 3k`` window) determines each output tile;
3. correlate every window with W by one *batched* FFT convolution —
   all ``Theta(n/k^2)`` tile transforms ride in the same tall tensor
   operands, so the whole stencil costs

       T(n, k) = O( n log_m k + l log k ).

The direct baseline (:func:`stencil_direct`) performs the k sweeps
explicitly in ``Theta(n k)`` RAM time and is the correctness oracle.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import TCUMachine
from .convolution import batched_circular_convolve2d, dft2, idft2

__all__ = [
    "stencil_direct",
    "stencil_tcu",
    "unrolled_weights",
    "unrolled_weights_direct",
    "heat_equation_weights",
    "window_geometry",
    "extract_windows",
    "assemble_tiles",
    "HEAT_3X3",
]


def heat_equation_weights(
    alpha: float = 0.1, dt: float = 1.0, dx: float = 1.0, dy: float = 1.0
) -> np.ndarray:
    """The 3x3 kernel of the discretised 2-D heat equation (Section 4.6)."""
    rx = alpha * dt / (dx * dx)
    ry = alpha * dt / (dy * dy)
    W = np.zeros((3, 3))
    W[1, 1] = 1.0 - 2.0 * rx - 2.0 * ry
    W[0, 1] = rx  # A[x-1, y]
    W[2, 1] = rx  # A[x+1, y]
    W[1, 0] = ry  # A[x, y-1]
    W[1, 2] = ry  # A[x, y+1]
    return W


HEAT_3X3 = heat_equation_weights()


def _check_kernel(weights: np.ndarray) -> np.ndarray:
    W = np.asarray(weights, dtype=np.float64)
    if W.shape != (3, 3):
        raise ValueError(f"one-step stencil kernel must be 3x3, got {W.shape}")
    return W


def stencil_direct(
    tcu: TCUMachine, A: np.ndarray, weights: np.ndarray, k: int
) -> np.ndarray:
    """k explicit sweeps over the zero-extended plane; Theta(n*k) RAM time.

    The working array is padded by k on each side so the evolving halo
    never reaches the boundary (influence spreads one cell per sweep).
    """
    W = _check_kernel(weights)
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"stencil input must be 2-D, got {A.ndim}-D")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return A.copy()
    rows, cols = A.shape
    cur = np.zeros((rows + 2 * k, cols + 2 * k))
    cur[k : k + rows, k : k + cols] = A
    tcu.charge_cpu(cur.size)
    for _ in range(k):
        nxt = np.zeros_like(cur)
        # update function f: sum of the 9 shifted neighbourhood terms
        for a in (-1, 0, 1):
            for b in (-1, 0, 1):
                w = W[1 + a, 1 + b]
                if w == 0.0:
                    continue
                src = cur[
                    max(0, a) : cur.shape[0] + min(0, a),
                    max(0, b) : cur.shape[1] + min(0, b),
                ]
                nxt[
                    max(0, -a) : cur.shape[0] + min(0, -a),
                    max(0, -b) : cur.shape[1] + min(0, -b),
                ] += w * src
        tcu.charge_cpu(9 * cur.size)
        cur = nxt
    return cur[k : k + rows, k : k + cols]


def unrolled_weights_direct(
    tcu: TCUMachine, weights: np.ndarray, k: int
) -> np.ndarray:
    """Lemma 2's trivial O(k^3) unrolling: k successive 3x3 correlations."""
    W = _check_kernel(weights)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    out = np.zeros((1, 1))
    out[0, 0] = 1.0
    for _step in range(k):
        side = out.shape[0] + 2
        nxt = np.zeros((side, side))
        for a in (-1, 0, 1):
            for b in (-1, 0, 1):
                nxt[
                    1 + a : 1 + a + out.shape[0], 1 + b : 1 + b + out.shape[1]
                ] += W[1 + a, 1 + b] * out
        tcu.charge_cpu(9 * side * side)
        out = nxt
    return out


def _next_fft_size(minimum: int, sqrt_m: int) -> int:
    """Smallest power of two >= minimum that the TCU DFT accepts.

    When sqrt(m) is a power of two every power of two works; otherwise
    sizes <= sqrt(m) always work, and larger sizes must be sqrt(m)-smooth
    — we multiply by sqrt(m) until past the minimum in that case.
    """
    if sqrt_m & (sqrt_m - 1) == 0:
        size = 1
        while size < minimum:
            size *= 2
        return size
    size = 1
    while size < minimum:
        size *= sqrt_m
    return size


def _convolve_squares(
    tcu: TCUMachine,
    P: np.ndarray,
    Q: np.ndarray,
    *,
    plan: bool = True,
    split: str | int = "auto",
) -> np.ndarray:
    """Full linear 2-D convolution of two centred odd-side coefficient
    arrays (a bivariate polynomial product).

    Both operands are treated as coefficient arrays with the origin at
    index [0, 0]; the product is their linear convolution, of side
    ``p + q - 1``, which is again the centred array of the product
    polynomial.  Computed via one circular TCU convolution at
    ``S = next_fft_size(p + q - 1)`` — no wraparound since both factors
    fit strictly inside S — or directly in ``O(p^2 q^2)`` RAM work when
    the operands are small enough that the transform constant loses.
    """
    p, q = P.shape[0], Q.shape[0]
    side = p + q - 1
    # Direct convolution wins below the transform's constant overhead.
    if p * p * q * q <= 32 * side * side:
        out = np.zeros((side, side))
        for a in range(p):
            for b in range(p):
                if P[a, b] != 0.0:
                    out[a : a + q, b : b + q] += P[a, b] * Q
        tcu.charge_cpu(p * p * q * q)
        return out
    S = _next_fft_size(side, tcu.sqrt_m)
    Pg = np.zeros((1, S, S))
    Qg = np.zeros((1, S, S))
    Pg[0, :p, :p] = P
    Qg[0, :q, :q] = Q
    tcu.charge_cpu(2 * S * S)
    prod = dft2(tcu, Pg, plan=plan, split=split) * dft2(tcu, Qg, plan=plan, split=split)
    tcu.charge_cpu(S * S)
    out = idft2(tcu, prod, plan=plan, split=split)[0].real
    tcu.charge_cpu(S * S)
    return np.ascontiguousarray(out[:side, :side])


def unrolled_weights(
    tcu: TCUMachine,
    weights: np.ndarray,
    k: int,
    *,
    plan: bool = True,
    split: str | int = "auto",
) -> np.ndarray:
    """Lemma 2: the (2k+1) x (2k+1) unrolled weight matrix W = P^k.

    The one-step kernel is a bivariate polynomial P(x, y); W collects
    the coefficients of P^k, computed by repeated squaring where each
    polynomial product is a TCU convolution of geometrically growing
    size — ``O(k^2 log_m k + l log k)`` model time.  The squarings are
    inherently sequential (each feeds the next), so the plan/execute
    layer works within one convolution at a time; ``plan=False`` runs
    every transform eagerly.
    """
    W = _check_kernel(weights)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    # Exponentiation by squaring over centred 2-D coefficient arrays.
    result: np.ndarray | None = None
    base = W
    e = k
    while e > 0:
        if e & 1:
            result = (
                base.copy()
                if result is None
                else _convolve_squares(tcu, result, base, plan=plan, split=split)
            )
        e >>= 1
        if e:
            base = _convolve_squares(tcu, base, base, plan=plan, split=split)
    assert result is not None
    expected = 2 * k + 1
    if result.shape[0] != expected:  # pragma: no cover - defensive
        raise AssertionError(
            f"unrolled kernel has side {result.shape[0]}, expected {expected}"
        )
    return result


def window_geometry(
    rows: int, cols: int, k: int, sqrt_m: int
) -> tuple[int, int, int, int]:
    """Tile/window geometry of the Theorem 8 decomposition.

    The paper uses k x k tiles inside 3k x 3k windows (overlap factor
    9); we keep the same asymptotics but take the FFT size S first and
    let the output tile fill everything the k-halo leaves free,
    ``t = S - 2k``, shrinking the overlap factor to ``(S/t)^2`` (< 2 for
    S >= 6k).  S is also capped near the input size so small grids get a
    single window.  Returns ``(S, t, rb, cb)``: the FFT side, the output
    tile side, and the tile-block counts per grid dimension.  Shared by
    :func:`stencil_tcu` and the serving layer's planned lowering, so the
    two decompose (hence charge) identically.
    """
    cap = _next_fft_size(max(rows, cols) + 2 * k, sqrt_m)
    best = None
    S = _next_fft_size(2 * k + 1, sqrt_m)
    while True:
        t_cand = S - 2 * k
        if t_cand >= 1:
            area = (-(-rows // t_cand)) * (-(-cols // t_cand)) * S * S
            if best is None or area < best[0]:
                best = (area, S, t_cand)
        if S >= cap:
            break
        S = _next_fft_size(S + 1, sqrt_m)
    assert best is not None
    _, S, t = best
    return S, t, -(-rows // t), -(-cols // t)


def extract_windows(
    grid: np.ndarray, S: int, t: int, k: int, rb: int, cb: int
) -> np.ndarray:
    """Gather the (rb*cb, S, S) halo windows of a padded grid.

    Window (r, c) covers grid rows ``[r*t - k, r*t + t + k)`` — exactly
    S rows — so output cell x of the tile sits at window index ``k + x``
    and its k-halo never wraps.  Pure data movement; the caller charges.
    """
    rpad, cpad = grid.shape
    windows = np.zeros((rb * cb, S, S))
    for r in range(rb):
        for c in range(cb):
            r0 = max(0, r * t - k)
            r1 = min(rpad, r * t + t + k)
            c0 = max(0, c * t - k)
            c1 = min(cpad, c * t + t + k)
            dst_r = r0 - (r * t - k)
            dst_c = c0 - (c * t - k)
            windows[
                r * cb + c, dst_r : dst_r + (r1 - r0), dst_c : dst_c + (c1 - c0)
            ] = grid[r0:r1, c0:c1]
    return windows


def assemble_tiles(
    conv: np.ndarray, t: int, k: int, rb: int, cb: int
) -> np.ndarray:
    """Scatter the convolved windows' interior tiles back to a grid
    (the inverse of :func:`extract_windows`, dropping the halos)."""
    out = np.zeros((rb * t, cb * t))
    for r in range(rb):
        for c in range(cb):
            tile = conv[r * cb + c, k : k + t, k : k + t]
            out[r * t : (r + 1) * t, c * t : (c + 1) * t] = tile
    return out


def stencil_tcu(
    tcu: TCUMachine,
    A: np.ndarray,
    weights: np.ndarray,
    k: int,
    *,
    precomputed_W: np.ndarray | None = None,
    plan: bool = True,
    split: str | int = "auto",
) -> np.ndarray:
    """Theorem 8: evolve a linear stencil k sweeps in ``O(n log_m k + l log k)``.

    Parameters
    ----------
    A:
        The ``sqrt(n) x sqrt(n)`` initial grid (any rectangle works; it
        is padded to a multiple of k per side).
    weights:
        The 3x3 one-step kernel.
    k:
        Number of sweeps (>= 1).
    precomputed_W:
        Skip Lemma 2 and use this unrolled ``(2k+1) x (2k+1)`` kernel
        (the ablation benches use it to separate the two phases).
    plan:
        Route every transform product through the plan/execute layer
        (default); ``False`` is the eager escape hatch, threaded down
        through the convolution and DFT layers.
    split:
        Planner split policy, threaded down the same path (``"auto"``
        scales merged transform streams across parallel units; ``1``
        pins the legacy one-call-per-group schedule).
    """
    Wstep = _check_kernel(weights)
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError(f"stencil input must be 2-D, got {A.ndim}-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    if precomputed_W is not None:
        W = precomputed_W
    else:
        W = unrolled_weights(tcu, Wstep, k, plan=plan, split=split)
    if W.shape != (2 * k + 1, 2 * k + 1):
        raise ValueError(
            f"unrolled kernel must be {(2*k+1, 2*k+1)}, got {W.shape}"
        )

    rows, cols = A.shape
    S, t, rb, cb = window_geometry(rows, cols, k, tcu.sqrt_m)
    rpad, cpad = rb * t, cb * t
    grid = np.zeros((rpad, cpad))
    grid[:rows, :cols] = A
    tcu.charge_cpu(rpad * cpad)

    T = rb * cb
    windows = extract_windows(grid, S, t, k, rb, cb)
    tcu.charge_cpu(T * S * S)

    # One batched correlation of all windows against W (Lemma 1).
    conv = batched_circular_convolve2d(tcu, windows, W, plan=plan, split=split)

    out = assemble_tiles(conv, t, k, rb, cb)
    tcu.charge_cpu(rpad * cpad)
    return out[:rows, :cols]
