"""One-dimensional linear stencils — the paper's d = O(1) generality.

Section 4.6 states that all its stencil techniques "extend to any
d = O(1)"; this module is that claim exercised at d = 1.  A linear
(n, k)-stencil over a length-n vector evolves each cell from its
{-1, 0, +1} neighbourhood for k sweeps; unrolling gives a (2k+1)-tap
kernel (Lemma 2, via 1-D polynomial powering on the TCU DFT), and the
evolution is Theta(n/k) batched circular convolutions of windows of
FFT size S with payload t = S - 2k (Lemma 1), for

    T(n, k) = O( n log_m k + l log k )

model time — the same shape as the 2-D Theorem 8.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import TCUMachine
from .convolution import embed_centered_kernel_1d
from .dft import batched_dft, batched_idft
from .stencil import _next_fft_size

__all__ = ["stencil1d_direct", "stencil1d_tcu", "unrolled_weights_1d"]


def _check_kernel(weights: np.ndarray) -> np.ndarray:
    W = np.asarray(weights, dtype=np.float64)
    if W.shape != (3,):
        raise ValueError(f"one-step 1-D stencil kernel must have 3 taps, got {W.shape}")
    return W


def stencil1d_direct(
    tcu: TCUMachine, x: np.ndarray, weights: np.ndarray, k: int
) -> np.ndarray:
    """k explicit sweeps over the zero-extended line; Theta(nk) RAM time."""
    W = _check_kernel(weights)
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"stencil input must be 1-D, got {x.ndim}-D")
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        return x.copy()
    n = x.size
    cur = np.zeros(n + 2 * k)
    cur[k : k + n] = x
    tcu.charge_cpu(cur.size)
    for _ in range(k):
        nxt = W[1] * cur
        nxt[:-1] += W[2] * cur[1:]  # right neighbour feeds the left cell
        nxt[1:] += W[0] * cur[:-1]
        tcu.charge_cpu(3 * cur.size)
        cur = nxt
    return cur[k : k + n]


def unrolled_weights_1d(tcu: TCUMachine, weights: np.ndarray, k: int) -> np.ndarray:
    """Lemma 2 at d = 1: the (2k+1)-tap unrolled kernel, by squaring
    with 1-D TCU convolutions (linear convolution at FFT size)."""
    W = _check_kernel(weights)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    def poly_mul(P: np.ndarray, Q: np.ndarray) -> np.ndarray:
        out_len = P.size + Q.size - 1
        # direct convolution wins below the transform constant
        if P.size * Q.size <= 32 * out_len:
            out = np.zeros(out_len)
            for i, v in enumerate(P):
                if v != 0.0:
                    out[i : i + Q.size] += v * Q
            tcu.charge_cpu(P.size * Q.size)
            return out
        S = _next_fft_size(out_len, tcu.sqrt_m)
        Pg = np.zeros((1, S), dtype=np.complex128)
        Qg = np.zeros((1, S), dtype=np.complex128)
        Pg[0, : P.size] = P
        Qg[0, : Q.size] = Q
        tcu.charge_cpu(2 * S)
        prod = batched_dft(tcu, Pg) * batched_dft(tcu, Qg)
        tcu.charge_cpu(S)
        return batched_idft(tcu, prod)[0].real[:out_len].copy()

    result: np.ndarray | None = None
    base = W.copy()
    e = k
    while e > 0:
        if e & 1:
            result = base.copy() if result is None else poly_mul(result, base)
        e >>= 1
        if e:
            base = poly_mul(base, base)
    assert result is not None and result.size == 2 * k + 1
    return result


def stencil1d_tcu(
    tcu: TCUMachine,
    x: np.ndarray,
    weights: np.ndarray,
    k: int,
    *,
    precomputed_W: np.ndarray | None = None,
) -> np.ndarray:
    """Theorem 8 at d = 1: evolve k sweeps in O(n log_m k + l log k)."""
    Wstep = _check_kernel(weights)
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"stencil input must be 1-D, got {x.ndim}-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    W = precomputed_W if precomputed_W is not None else unrolled_weights_1d(tcu, Wstep, k)
    if W.shape != (2 * k + 1,):
        raise ValueError(f"unrolled kernel must have {2*k+1} taps, got {W.shape}")
    n = x.size

    # window geometry: FFT size S, payload t = S - 2k per window
    cap = _next_fft_size(n + 2 * k, tcu.sqrt_m)
    best = None
    S = _next_fft_size(2 * k + 1, tcu.sqrt_m)
    while True:
        t_cand = S - 2 * k
        if t_cand >= 1:
            cost = (-(-n // t_cand)) * S
            if best is None or cost < best[0]:
                best = (cost, S, t_cand)
        if S >= cap:
            break
        S = _next_fft_size(S + 1, tcu.sqrt_m)
    assert best is not None
    _, S, t = best
    blocks = -(-n // t)
    padded = blocks * t
    grid = np.zeros(padded)
    grid[:n] = x
    tcu.charge_cpu(padded)

    windows = np.zeros((blocks, S))
    for b in range(blocks):
        lo = max(0, b * t - k)
        hi = min(padded, b * t + t + k)
        windows[b, lo - (b * t - k) : lo - (b * t - k) + (hi - lo)] = grid[lo:hi]
    tcu.charge_cpu(blocks * S)

    # correlation with the centred kernel: out[i] = sum_t in[i+t] W[k+t]
    embedded = embed_centered_kernel_1d(W, S)
    reversed_ker = embedded[(-np.arange(S)) % S]
    tcu.charge_cpu(2 * S)
    f_win = batched_dft(tcu, windows.astype(np.complex128))
    f_ker = batched_dft(tcu, reversed_ker[None, :].astype(np.complex128))[0]
    conv = batched_idft(tcu, f_win * f_ker[None, :]).real
    tcu.charge_cpu(windows.size)

    out = conv[:, k : k + t].reshape(-1)[:n]
    tcu.charge_cpu(n)
    return np.ascontiguousarray(out)
