"""Gaussian elimination without pivoting on the TCU (Theorem 4, Figure 4).

The forward phase of GE on a ``sqrt(n) x sqrt(n)`` system is blocked
into ``sqrt(m) x sqrt(m)`` tiles and driven by four kernels, exactly as
in Figure 4 of the paper:

* ``A(X)``        -- eliminate within the diagonal block;
* ``B(X, Y, X')`` -- update a pivot-row block ``X = X_kj`` using the
  diagonal block ``Y = X_kk``, and emit the *negated, pivot-scaled*
  copy ``X'_j`` that the trailing update needs;
* ``C(X, Y)``     -- update a pivot-column block ``X = X_ik``;
* ``D(X, Y, Z)``  -- the trailing update ``X_ij += X_ik * X'_j`` — the
  only kernel executed on the tensor unit.

For each ``j`` the block ``X'_j`` is loaded once as the resident weight
matrix while the entire sub-column of ``X_ik`` blocks (contiguous rows
``(k+1)*sqrt(m) .. sqrt(n)``) streams through as a tall left operand,
giving Theorem 4's bound

    T(n) = Theta( n^{3/2}/sqrt(m) + (n/m) l + n sqrt(m) ),

which collapses to the optimal dense-MM cost once ``sqrt(n) >= m``.

Scalar kernels A/B/C are vectorised over (i, j) per pivot step but
charged at their true RAM-model cost Theta(m^{3/2}) per block.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import TCUMachine
from ..matmul.schedule import ceil_to_multiple

__all__ = ["ge_forward", "ge_solve", "back_substitute"]


def _kernel_A(tcu: TCUMachine, X: np.ndarray) -> None:
    """Within-block elimination (Figure 4, function A), in place."""
    s = X.shape[0]
    for k in range(s - 1):
        pivot = X[k, k]
        if pivot == 0:
            raise ZeroDivisionError(
                "zero pivot encountered: Gaussian elimination without pivoting "
                "requires a matrix with non-zero leading minors"
            )
        X[k + 1 :, k + 1 :] -= np.outer(X[k + 1 :, k], X[k, k + 1 :]) / pivot
        tcu.charge_cpu((s - 1 - k) * (s - 1 - k) * 3)


def _kernel_B(tcu: TCUMachine, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Pivot-row update (Figure 4, function B), in place; returns X'_j."""
    s = X.shape[0]
    for k in range(s - 1):
        X[k + 1 :, :] -= np.outer(Y[k + 1 :, k], X[k, :]) / Y[k, k]
        tcu.charge_cpu((s - 1 - k) * s * 3)
    Xp = -X / np.diag(Y)[:, None]
    tcu.charge_cpu(2 * s * s)
    return Xp


def _kernel_C(tcu: TCUMachine, X: np.ndarray, Y: np.ndarray) -> None:
    """Pivot-column update (Figure 4, function C), in place."""
    s = X.shape[0]
    for k in range(s):
        X[:, k + 1 :] -= np.outer(X[:, k], Y[k, k + 1 :]) / Y[k, k]
        tcu.charge_cpu(s * (s - 1 - k) * 3)


def ge_forward(tcu: TCUMachine, X: np.ndarray, *, overwrite: bool = False) -> np.ndarray:
    """Forward phase of Gaussian elimination without pivoting (Figure 4).

    Returns the matrix after elimination; its upper triangle is the
    upper-triangular system U (entries below the diagonal are the
    intermediate values the blocked schedule leaves behind, matching the
    unblocked Figure 2 loop which also never touches them).

    The input side need not divide by ``sqrt(m)``: the matrix is padded
    with an identity block, which eliminates trivially and is cropped
    from the result.
    """
    if tcu.execute == "cost-only":
        raise ValueError(
            "Gaussian elimination divides by the pivot values it computes, "
            "so execute='cost-only' cannot reproduce its charges; use a "
            "numeric machine"
        )
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != X.shape[1]:
        raise ValueError(f"ge_forward expects a square matrix, got {X.shape}")
    n_side = X.shape[0]
    s = tcu.sqrt_m
    padded = ceil_to_multiple(n_side, s)
    if padded != n_side:
        work = np.eye(padded, dtype=np.float64)
        work[:n_side, :n_side] = X
        tcu.charge_cpu(padded * padded)
    else:
        work = X if overwrite else X.copy()
    nb = padded // s

    for k in range(nb):
        kk = slice(k * s, (k + 1) * s)
        Xkk = work[kk, kk]
        _kernel_A(tcu, Xkk)
        xprimes: dict[int, np.ndarray] = {}
        for j in range(k + 1, nb):
            jj = slice(j * s, (j + 1) * s)
            xprimes[j] = _kernel_B(tcu, work[kk, jj], Xkk)
        for i in range(k + 1, nb):
            ii = slice(i * s, (i + 1) * s)
            _kernel_C(tcu, work[ii, kk], Xkk)
        if k + 1 < nb:
            below = slice((k + 1) * s, padded)
            tall = work[below, kk]  # all X_ik blocks, contiguous rows
            for j in range(k + 1, nb):
                jj = slice(j * s, (j + 1) * s)
                # X'_j resident in the unit; the sub-column of X_ik
                # blocks streams through as one tall call (Figure 4,
                # lines 8-10).
                update = tcu.mm(tall, xprimes[j])
                work[below, jj] += update
                tcu.charge_cpu((padded - (k + 1) * s) * s)
    return work[:n_side, :n_side]


def back_substitute(tcu: TCUMachine, U: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Solve ``triu(U) x = y`` by back substitution (Theta(r^2) RAM work)."""
    U = np.asarray(U, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    r = y.shape[0]
    if U.shape[0] < r or U.shape[1] < r:
        raise ValueError(f"U of shape {U.shape} too small for {r} unknowns")
    x = np.zeros(r)
    for i in range(r - 1, -1, -1):
        acc = y[i] - U[i, i + 1 : r] @ x[i + 1 :]
        if U[i, i] == 0:
            raise ZeroDivisionError(f"zero diagonal entry at row {i}")
        x[i] = acc / U[i, i]
        tcu.charge_cpu(2 * (r - i))
    return x


def ge_solve(tcu: TCUMachine, A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` via the paper's augmented-matrix formulation.

    Builds the ``r x r`` augmented matrix of Section 4.2 (``r - 1``
    equations, last column b, last row zero), runs the Figure 4 forward
    phase, then back-substitutes (the Theta(r^2) second phase).
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"A must be square, got {A.shape}")
    if b.shape != (A.shape[0],):
        raise ValueError(f"b of shape {b.shape} does not match A {A.shape}")
    r = A.shape[0] + 1
    c = np.zeros((r, r))
    c[: r - 1, : r - 1] = A
    c[: r - 1, r - 1] = b
    # The paper's last row is all zeros and never pivots (Figure 2 stops
    # at k = sqrt(n) - 2).  The blocked kernels sweep every row, so give
    # the inert row a unit pivot: its off-diagonals are zero, hence it
    # eliminates nothing and is ignored by back substitution.
    c[r - 1, r - 1] = 1.0
    tcu.charge_cpu(r * r)
    elim = ge_forward(tcu, c, overwrite=True)
    return back_substitute(tcu, elim[: r - 1, : r - 1], elim[: r - 1, r - 1])
