"""Linear-system algorithms on the (m, l)-TCU (Section 4.2)."""

from .gaussian import back_substitute, ge_forward, ge_solve

__all__ = ["ge_forward", "ge_solve", "back_substitute"]
