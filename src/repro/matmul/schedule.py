"""Tiling and padding helpers shared by the TCU matrix algorithms.

The tensor-unit primitive only accepts operands whose widths are exactly
``sqrt(m)``; every higher-level algorithm therefore pads its matrices to
the unit grid and iterates over ``sqrt(m)``-wide strips and
``sqrt(m) x sqrt(m)`` blocks.  Padding work is RAM-model work and is
charged to the ledger by the callers (one unit per word written).
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

__all__ = [
    "ceil_to_multiple",
    "pad_matrix",
    "block_view",
    "strip_view",
    "padded_copy_cost",
    "theorem2_tasks",
]


def ceil_to_multiple(value: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` that is >= ``value`` (and >= multiple)."""
    if multiple < 1:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    if value <= 0:
        return multiple
    return ((value + multiple - 1) // multiple) * multiple


def pad_matrix(A: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Zero-pad a 2-D array up to ``rows x cols`` (no-op copy-free when
    already that shape)."""
    A = np.asarray(A)
    if A.ndim != 2:
        raise ValueError(f"expected a 2-D array, got {A.ndim}-D")
    r, c = A.shape
    if r > rows or c > cols:
        raise ValueError(f"cannot pad {A.shape} down to ({rows}, {cols})")
    if (r, c) == (rows, cols):
        return A
    out = np.zeros((rows, cols), dtype=A.dtype)
    out[:r, :c] = A
    return out


def padded_copy_cost(A: np.ndarray, rows: int, cols: int) -> int:
    """RAM-model cost of materialising the padded copy (0 when no copy)."""
    r, c = A.shape
    if (r, c) == (rows, cols):
        return 0
    return rows * cols


def block_view(A: np.ndarray, s: int) -> Iterator[tuple[int, int, np.ndarray]]:
    """Iterate ``(i, j, block)`` over the ``s x s`` blocks of ``A``.

    ``A``'s dimensions must already be multiples of ``s``; blocks are
    views (no copies), in row-major block order.
    """
    rows, cols = A.shape
    if rows % s or cols % s:
        raise ValueError(f"shape {A.shape} is not a multiple of block side {s}")
    for i in range(rows // s):
        for j in range(cols // s):
            yield i, j, A[i * s : (i + 1) * s, j * s : (j + 1) * s]


def strip_view(A: np.ndarray, s: int) -> Iterator[tuple[int, np.ndarray]]:
    """Iterate ``(i, strip)`` over the ``s``-wide column strips of ``A``."""
    rows, cols = A.shape
    if cols % s:
        raise ValueError(f"width {cols} is not a multiple of strip width {s}")
    for i in range(cols // s):
        yield i, A[:, i * s : (i + 1) * s]


def grid_shape(rows: int, cols: int, s: int) -> tuple[int, int]:
    """Number of ``s x s`` blocks per dimension after padding."""
    return math.ceil(max(rows, 1) / s), math.ceil(max(cols, 1) / s)


def theorem2_tasks(
    Ap: np.ndarray, Bp: np.ndarray, s: int
) -> Iterator[tuple[int, int, np.ndarray, np.ndarray]]:
    """The Theorem 2 call schedule as data: ``(j, i, strip, block)``.

    Yields one task per ``C_{i,j} = A_i B_{i,j}`` product of the padded
    operands — the tall column strip ``A_i`` (a view) against the
    resident block ``B_{i,j}`` — in output-column-major order, the order
    both the eager executor and the lazy program builder issue them in.
    """
    p_pad, q_pad = Ap.shape
    q2, r_pad = Bp.shape
    if q_pad != q2 or q_pad % s or r_pad % s or p_pad < s:
        raise ValueError(
            f"operands {Ap.shape} @ {Bp.shape} are not padded to the sqrt(m)={s} grid"
        )
    for j in range(r_pad // s):
        for i in range(q_pad // s):
            yield (
                j,
                i,
                Ap[:, i * s : (i + 1) * s],
                Bp[i * s : (i + 1) * s, j * s : (j + 1) * s],
            )
