"""Strassen-like recursive matrix multiplication on the TCU (Theorem 1).

A *Strassen-like algorithm* (Ballard et al., as used by the paper) has a
base case that multiplies two ``sqrt(n0) x sqrt(n0)`` matrices with
``p0`` element multiplications plus ``O(n0)`` additions; recursing on
block matrices gives running time ``O(n^{omega0})`` with
``omega0 = log_{n0} p0`` (areas, so omega0 = omega/2).

Theorem 1: end the recursion once a subproblem fits the tensor unit —
the paper recurses while ``n > m * n0`` and solves the base case with
the blocked Theorem 2 schedule — giving TCU time

    T(n) = O( (n / m)^{omega0} * (m + l) ).

:class:`BilinearAlgorithm` describes the bilinear form explicitly, so
the classical 2x2 algorithm (n0 = 4, p0 = 8, omega0 = 3/2) and Strassen
(n0 = 4, p0 = 7, omega0 = log4 7 ~ 1.404) share one recursion engine;
any other (n0, p0) scheme can be plugged in the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from ..core.machine import TCUMachine
from ..core.program import Lazy, TensorProgram, run_program
from .dense import matmul as dense_matmul
from .dense import matmul_lazy
from .schedule import ceil_to_multiple, pad_matrix

__all__ = [
    "BilinearAlgorithm",
    "CLASSICAL_2X2",
    "STRASSEN_2X2",
    "strassen_like_mm",
    "strassen_like_lazy",
    "default_cutoff",
    "recursion_depth",
]

Coeffs = Mapping[tuple[int, int], float]


@dataclass(frozen=True)
class BilinearAlgorithm:
    """An explicit bilinear matrix-multiplication scheme.

    Attributes
    ----------
    name:
        Human-readable identifier.
    block:
        Split factor ``b``: operands are viewed as ``b x b`` block
        matrices, so the paper's base-case *area* is ``n0 = b**2``.
    products:
        For each of the ``p0`` products, a pair ``(a_coeffs, b_coeffs)``
        of sparse linear combinations over the operand blocks, e.g.
        ``({(0, 0): 1, (1, 1): 1}, {(0, 0): 1, (1, 1): 1})`` for
        Strassen's M1.
    c_terms:
        For each output block ``(i, j)``, the linear combination of
        products that forms it, as ``((product_index, coefficient), ...)``.
    """

    name: str
    block: int
    products: tuple[tuple[Coeffs, Coeffs], ...]
    c_terms: Mapping[tuple[int, int], Sequence[tuple[int, float]]]

    @property
    def n0(self) -> int:
        """Base-case problem *area* (the paper's n0)."""
        return self.block * self.block

    @property
    def p0(self) -> int:
        """Element multiplications per recursion step."""
        return len(self.products)

    @property
    def omega0(self) -> float:
        """The exponent ``log_{n0} p0`` (area convention; = omega/2)."""
        return math.log(self.p0) / math.log(self.n0)

    def validate(self) -> None:
        """Sanity-check block indices; raises ValueError on a bad scheme."""
        b = self.block
        for a_c, b_c in self.products:
            for (i, j) in list(a_c) + list(b_c):
                if not (0 <= i < b and 0 <= j < b):
                    raise ValueError(f"block index ({i},{j}) out of range for b={b}")
        for (i, j), terms in self.c_terms.items():
            if not (0 <= i < b and 0 <= j < b):
                raise ValueError(f"output block ({i},{j}) out of range for b={b}")
            for idx, _ in terms:
                if not (0 <= idx < self.p0):
                    raise ValueError(f"product index {idx} out of range")


CLASSICAL_2X2 = BilinearAlgorithm(
    name="classical",
    block=2,
    products=tuple(
        ({(i, k): 1}, {(k, j): 1}) for i in range(2) for j in range(2) for k in range(2)
    ),
    # products are ordered (i, j, k) row-major: index = 4*i + 2*j + k
    c_terms={
        (i, j): tuple((4 * i + 2 * j + k, 1) for k in range(2))
        for i in range(2)
        for j in range(2)
    },
)

STRASSEN_2X2 = BilinearAlgorithm(
    name="strassen",
    block=2,
    products=(
        ({(0, 0): 1, (1, 1): 1}, {(0, 0): 1, (1, 1): 1}),  # M1
        ({(1, 0): 1, (1, 1): 1}, {(0, 0): 1}),  # M2
        ({(0, 0): 1}, {(0, 1): 1, (1, 1): -1}),  # M3
        ({(1, 1): 1}, {(1, 0): 1, (0, 0): -1}),  # M4
        ({(0, 0): 1, (0, 1): 1}, {(1, 1): 1}),  # M5
        ({(1, 0): 1, (0, 0): -1}, {(0, 0): 1, (0, 1): 1}),  # M6
        ({(0, 1): 1, (1, 1): -1}, {(1, 0): 1, (1, 1): 1}),  # M7
    ),
    c_terms={
        (0, 0): ((0, 1), (3, 1), (4, -1), (6, 1)),
        (0, 1): ((2, 1), (4, 1)),
        (1, 0): ((1, 1), (3, 1)),
        (1, 1): ((0, 1), (1, -1), (2, 1), (5, 1)),
    },
)


def default_cutoff(tcu: TCUMachine, algorithm: BilinearAlgorithm) -> int:
    """Largest base-case side: recurse while the *area* exceeds ``m * n0``
    (the paper's recursion boundary), i.e. while side > sqrt(m * n0)."""
    side = math.isqrt(tcu.m * algorithm.n0)
    return max(side, tcu.sqrt_m, algorithm.block)


def recursion_depth(side: int, cutoff: int, block: int) -> int:
    """Levels of recursion :func:`strassen_like_mm` performs for a
    ``side x side`` product (0 when the base case fires immediately)."""
    depth = 0
    while side > cutoff:
        side = ceil_to_multiple(side, block) // block
        depth += 1
    return depth


def _combine(
    tcu: TCUMachine,
    blocks: list[list[np.ndarray]],
    coeffs: Coeffs,
    side: int,
    dtype: np.dtype,
) -> np.ndarray:
    """Form a linear combination of operand blocks, charging one RAM
    unit per word touched."""
    out = np.zeros((side, side), dtype=dtype)
    for (i, j), coef in coeffs.items():
        if coef == 1:
            out += blocks[i][j]
        elif coef == -1:
            out -= blocks[i][j]
        else:
            out += coef * blocks[i][j]
        tcu.charge_cpu(side * side)
    return out


def _validated(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    algorithm: BilinearAlgorithm,
    cutoff: int | None,
) -> tuple[np.ndarray, np.ndarray, int]:
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or A.shape != B.shape or A.shape[0] != A.shape[1]:
        raise ValueError(
            f"strassen_like_mm expects equal square operands, got {A.shape} and {B.shape}"
        )
    algorithm.validate()
    if cutoff is None:
        cutoff = default_cutoff(tcu, algorithm)
    if cutoff < algorithm.block:
        raise ValueError(f"cutoff must be >= block={algorithm.block}")
    return A, B, cutoff


def strassen_like_mm(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    *,
    algorithm: BilinearAlgorithm = STRASSEN_2X2,
    cutoff: int | None = None,
    plan: bool = True,
) -> np.ndarray:
    """Theorem 1: recursive Strassen-like product with a TCU base case.

    ``A`` and ``B`` must be square and of equal side; the recursion pads
    each level to a multiple of ``algorithm.block`` (cost charged) and
    switches to the Theorem 2 blocked schedule once the side is at most
    ``cutoff`` (default: the paper's ``sqrt(m * n0)`` boundary).

    With ``plan=True`` (default) the recursion *builds* all its leaf
    Theorem 2 schedules into one :class:`TensorProgram` — the leaves'
    operands are pure CPU combinations of the inputs, so every leaf call
    is independent and lands in a single plan level, batched on parallel
    machines — then executes the program once and assembles the result
    bottom-up.  ``plan=False`` runs the classic eager recursion; the two
    charge the ledger identically on a sequential machine.
    """
    A, B, cutoff = _validated(tcu, A, B, algorithm, cutoff)
    if not plan:
        return _recurse(tcu, A, B, algorithm, cutoff)
    program = TensorProgram()
    lazy = _recurse_lazy(tcu, program, A, B, algorithm, cutoff)
    run_program(program, tcu)
    return lazy.result()


def strassen_like_lazy(
    tcu: TCUMachine,
    program: TensorProgram,
    A: np.ndarray,
    B: np.ndarray,
    *,
    algorithm: BilinearAlgorithm = STRASSEN_2X2,
    cutoff: int | None = None,
) -> Lazy:
    """Append a Theorem 1 recursion to a caller-owned program.

    The operand combinations are charged immediately (they are RAM
    work); the leaf tensor calls join ``program`` and run when the
    caller executes it, after which the returned
    :class:`~repro.core.program.Lazy` assembles the product.
    """
    A, B, cutoff = _validated(tcu, A, B, algorithm, cutoff)
    return _recurse_lazy(tcu, program, A, B, algorithm, cutoff)


def _recurse(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    alg: BilinearAlgorithm,
    cutoff: int,
) -> np.ndarray:
    side = A.shape[0]
    if side <= cutoff:
        return dense_matmul(tcu, A, B, plan=False)
    b = alg.block
    padded = ceil_to_multiple(side, b)
    if padded != side:
        tcu.charge_cpu(2 * padded * padded)
        A = pad_matrix(A, padded, padded)
        B = pad_matrix(B, padded, padded)
    sub = padded // b
    blocksA = [[A[i * sub : (i + 1) * sub, j * sub : (j + 1) * sub] for j in range(b)] for i in range(b)]
    blocksB = [[B[i * sub : (i + 1) * sub, j * sub : (j + 1) * sub] for j in range(b)] for i in range(b)]
    dtype = np.result_type(A.dtype, B.dtype)

    prods: list[np.ndarray] = []
    for a_coeffs, b_coeffs in alg.products:
        left = _combine(tcu, blocksA, a_coeffs, sub, dtype)
        right = _combine(tcu, blocksB, b_coeffs, sub, dtype)
        prods.append(_recurse(tcu, left, right, alg, cutoff))

    C = np.zeros((padded, padded), dtype=dtype)
    for (i, j), terms in alg.c_terms.items():
        out = C[i * sub : (i + 1) * sub, j * sub : (j + 1) * sub]
        for idx, coef in terms:
            if coef == 1:
                out += prods[idx]
            elif coef == -1:
                out -= prods[idx]
            else:
                out += coef * prods[idx]
            tcu.charge_cpu(sub * sub)
    return C[:side, :side]


def _recurse_lazy(
    tcu: TCUMachine,
    program: TensorProgram,
    A: np.ndarray,
    B: np.ndarray,
    alg: BilinearAlgorithm,
    cutoff: int,
) -> Lazy:
    """Build the recursion's leaf schedules into ``program``.

    Operand combinations happen (and are charged) during the build —
    they never depend on a tensor result, so every leaf ``mm`` node is
    dependency-free and the planner sees the whole recursion as one flat
    level of independent calls.  The returned :class:`Lazy` performs the
    bottom-up ``C`` assembly (charged as in the eager path) once the
    program has run.
    """
    side = A.shape[0]
    if side <= cutoff:
        return matmul_lazy(tcu, program, A, B)
    b = alg.block
    padded = ceil_to_multiple(side, b)
    if padded != side:
        tcu.charge_cpu(2 * padded * padded)
        A = pad_matrix(A, padded, padded)
        B = pad_matrix(B, padded, padded)
    sub = padded // b
    blocksA = [[A[i * sub : (i + 1) * sub, j * sub : (j + 1) * sub] for j in range(b)] for i in range(b)]
    blocksB = [[B[i * sub : (i + 1) * sub, j * sub : (j + 1) * sub] for j in range(b)] for i in range(b)]
    dtype = np.result_type(A.dtype, B.dtype)

    lazies: list[Lazy] = []
    for a_coeffs, b_coeffs in alg.products:
        left = _combine(tcu, blocksA, a_coeffs, sub, dtype)
        right = _combine(tcu, blocksB, b_coeffs, sub, dtype)
        lazies.append(_recurse_lazy(tcu, program, left, right, alg, cutoff))

    def assemble() -> np.ndarray:
        prods = [lazy.result() for lazy in lazies]
        C = np.zeros((padded, padded), dtype=dtype)
        for (i, j), terms in alg.c_terms.items():
            out = C[i * sub : (i + 1) * sub, j * sub : (j + 1) * sub]
            for idx, coef in terms:
                if coef == 1:
                    out += prods[idx]
                elif coef == -1:
                    out -= prods[idx]
                else:
                    out += coef * prods[idx]
                tcu.charge_cpu(sub * sub)
        return C[:side, :side]

    return Lazy(assemble)
