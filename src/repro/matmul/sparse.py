"""Output-sensitive sparse matrix multiplication on the TCU (Theorem 3).

The paper adapts Jacob-Stoeckel fast output-sensitive multiplication:
compress the rows of A and the columns of B from ``sqrt(n)`` down to
``O(sqrt(Z))`` with hashing, multiply the compressed *dense* matrices
(a ``sqrt(Z) x sqrt(n)`` by ``sqrt(n) x sqrt(Z)`` product) with the
Strassen-like TCU algorithm of Theorem 1, and recover the at most ``Z``
non-zero output entries.  With a balanced output this runs in

    T(n, Z, I) = O( sqrt(n/Z) * (Z/m)^{omega0} * (m + l) + I ).

This module implements the compression as a count-sketch with index
weightings (Pagh-style): each round draws fresh row/column hash
functions into ``R = Theta(sqrt(Z))`` buckets and computes four
compressed products (plain, row-index-weighted, column-index-weighted,
and randomly-weighted for verification).  Singleton buckets yield an
output entry whose indices are read off the weighted/plain ratios and
validated against the verification sketch; recovered entries are
subtracted and the procedure *peels* until the residual sketch is zero.
When ``Z`` is not supplied the bucket count doubles on stall, so the
algorithm is output-sensitive without being told Z.

Model-cost accounting matches the paper's algorithm (sparse
scatter-adds cost O(I); the dense compressed products are charged by
the Theorem 1/2 machinery); the NumPy realisation also materialises
dense R x sqrt(n) operands, which is an artefact of the simulation, not
of the model algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..core.machine import TCUMachine
from .dense import matmul as dense_matmul
from .schedule import ceil_to_multiple, pad_matrix
from .strassen import STRASSEN_2X2, BilinearAlgorithm, strassen_like_mm

__all__ = ["sparse_mm", "SparseProductStats", "SparseRecoveryError"]


class SparseRecoveryError(RuntimeError):
    """Peeling failed to drain the residual sketch within the round budget."""


@dataclass
class SparseProductStats:
    """Diagnostics of one :func:`sparse_mm` run."""

    rounds: int = 0
    final_buckets: int = 0
    recovered: int = 0
    input_nnz: int = 0
    used_dense_fallback: bool = False


def _to_coo(M) -> sp.coo_matrix:
    if sp.issparse(M):
        return M.tocoo()
    arr = np.asarray(M)
    if arr.ndim != 2:
        raise ValueError("operands must be 2-D")
    return sp.coo_matrix(arr)


def _compressed_product(
    tcu: TCUMachine,
    L: np.ndarray,
    Rm: np.ndarray,
    algorithm: BilinearAlgorithm,
) -> np.ndarray:
    """Dense ``R x n`` by ``n x R`` product as sqrt(n)/R square
    Strassen-like products of side R (the Theorem 3 decomposition).

    When R is close to the Strassen recursion's own base-case boundary
    the recursion would only add combination overhead, so small
    compressed products go straight to the Theorem 2 blocked schedule —
    the asymptotics of Theorem 3 concern large Z (R = Theta(sqrt(Z))).
    """
    from .strassen import default_cutoff

    R = L.shape[0]
    n = L.shape[1]
    if R <= 4 * default_cutoff(tcu, algorithm):
        return dense_matmul(tcu, L, Rm)
    n_pad = ceil_to_multiple(n, R)
    if n_pad != n:
        tcu.charge_cpu(2 * R * n_pad)
        L = pad_matrix(L, R, n_pad)
        Rm = pad_matrix(Rm, n_pad, R)
    out = np.zeros((R, R), dtype=np.result_type(L.dtype, Rm.dtype))
    for k in range(n_pad // R):
        blockL = L[:, k * R : (k + 1) * R]
        blockR = Rm[k * R : (k + 1) * R, :]
        out += strassen_like_mm(tcu, blockL, blockR, algorithm=algorithm)
        tcu.charge_cpu(R * R)
    return out


def sparse_mm(
    tcu: TCUMachine,
    A,
    B,
    *,
    z_bound: int | None = None,
    seed: int = 0,
    algorithm: BilinearAlgorithm = STRASSEN_2X2,
    max_rounds: int = 48,
    return_stats: bool = False,
    fallback_dense: bool = True,
):
    """Sparse ``C = A @ B`` with the Theorem 3 compressed algorithm.

    Parameters
    ----------
    tcu:
        The executing machine.
    A, B:
        Square ``sqrt(n) x sqrt(n)`` operands (NumPy arrays or SciPy
        sparse matrices) with matching sides.
    z_bound:
        Optional upper bound on the output non-zeros Z; when omitted the
        bucket count starts at ``Theta(sqrt(max(m, I)))`` and doubles on
        stall (output sensitivity without knowing Z).
    seed:
        Seed for the hash functions and verification weights.
    algorithm:
        The Strassen-like scheme used for the compressed dense core.
    max_rounds:
        Peeling-round budget before declaring failure.
    return_stats:
        Also return a :class:`SparseProductStats`.
    fallback_dense:
        On peeling failure fall back to the dense Theorem 2 product
        (charged to the same ledger) instead of raising.

    Returns
    -------
    ``scipy.sparse.csr_matrix`` (and optionally the stats record).
    """
    Ac = _to_coo(A)
    Bc = _to_coo(B)
    if Ac.shape[0] != Ac.shape[1] or Ac.shape != Bc.shape:
        raise ValueError(
            f"sparse_mm expects equal square operands, got {Ac.shape} and {Bc.shape}"
        )
    side = Ac.shape[0]
    stats = SparseProductStats(input_nnz=int(Ac.nnz + Bc.nnz))
    rng = np.random.default_rng(seed)

    if Ac.nnz == 0 or Bc.nnz == 0:
        empty = sp.csr_matrix((side, side))
        return (empty, stats) if return_stats else empty

    is_integer = np.issubdtype(Ac.dtype, np.integer) and np.issubdtype(
        Bc.dtype, np.integer
    )
    Ad = Ac.astype(np.float64)
    Bd = Bc.astype(np.float64)
    # scale for float tolerance checks
    scale = max(
        1.0,
        float(np.abs(Ad.data).max(initial=0.0))
        * float(np.abs(Bd.data).max(initial=0.0))
        * side,
    )
    tol = 1e-9 * scale

    if z_bound is not None:
        buckets = max(4, 2 * math.isqrt(max(z_bound, 1)) + 2)
    else:
        guess = max(tcu.m, stats.input_nnz, 16)
        buckets = max(4, 2 * math.isqrt(guess) + 2)

    recovered: dict[tuple[int, int], float] = {}
    stalls = 0
    for round_no in range(max_rounds):
        stats.rounds = round_no + 1
        stats.final_buckets = buckets
        hr = rng.integers(0, buckets, size=side)
        hc = rng.integers(0, buckets, size=side)
        vr = rng.integers(1, 1 << 20, size=side).astype(np.float64)
        vc = rng.integers(1, 1 << 20, size=side).astype(np.float64)
        wr = np.arange(1, side + 1, dtype=np.float64)
        wc = np.arange(1, side + 1, dtype=np.float64)

        # Compressed left/right operands (O(I) scatter-adds in the model).
        L0 = np.zeros((buckets, side))
        np.add.at(L0, (hr[Ad.row], Ad.col), Ad.data)
        R0 = np.zeros((side, buckets))
        np.add.at(R0, (Bd.row, hc[Bd.col]), Bd.data)
        tcu.charge_cpu(Ad.nnz + Bd.nnz)

        # Plain sketch first: if the residual is already empty this
        # round needs no index-recovery products at all.
        P0 = _compressed_product(tcu, L0, R0, algorithm)
        for (i, j), val in recovered.items():
            P0[hr[i], hc[j]] -= val
        tcu.charge_cpu(len(recovered))
        nz = np.argwhere(np.abs(P0) > tol)
        tcu.charge_cpu(buckets * buckets)
        if nz.size == 0:
            break  # residual drained: recovery complete

        # Index-weighted and verification sketches.
        Lw = np.zeros((buckets, side))
        Lv = np.zeros((buckets, side))
        np.add.at(Lw, (hr[Ad.row], Ad.col), Ad.data * wr[Ad.row])
        np.add.at(Lv, (hr[Ad.row], Ad.col), Ad.data * vr[Ad.row])
        Rw = np.zeros((side, buckets))
        Rv = np.zeros((side, buckets))
        np.add.at(Rw, (Bd.row, hc[Bd.col]), Bd.data * wc[Bd.col])
        np.add.at(Rv, (Bd.row, hc[Bd.col]), Bd.data * vc[Bd.col])
        tcu.charge_cpu(2 * (Ad.nnz + Bd.nnz))

        Pr = _compressed_product(tcu, Lw, R0, algorithm)
        Pc = _compressed_product(tcu, L0, Rw, algorithm)
        Pv = _compressed_product(tcu, Lv, Rv, algorithm)
        for (i, j), val in recovered.items():
            br, bc = hr[i], hc[j]
            Pr[br, bc] -= val * wr[i]
            Pc[br, bc] -= val * wc[j]
            Pv[br, bc] -= val * vr[i] * vc[j]
        tcu.charge_cpu(3 * len(recovered))

        progressed = False
        for br, bc in nz:
            v = P0[br, bc]
            fi = Pr[br, bc] / v - 1.0
            fj = Pc[br, bc] / v - 1.0
            i = int(round(fi))
            j = int(round(fj))
            if abs(fi - i) > 1e-6 or abs(fj - j) > 1e-6:
                continue  # bucket collision: ratios are not indices
            if not (0 <= i < side and 0 <= j < side):
                continue
            if hr[i] != br or hc[j] != bc:
                continue
            if abs(Pv[br, bc] - v * vr[i] * vc[j]) > max(tol, 1e-6 * abs(v) * vr[i] * vc[j]):
                continue  # verification sketch disagrees: collision
            recovered[(i, j)] = recovered.get((i, j), 0.0) + v
            if abs(recovered[(i, j)]) <= tol:
                del recovered[(i, j)]
            progressed = True
        tcu.charge_cpu(len(nz))

        if not progressed:
            stalls += 1
            if stalls >= 2:
                buckets *= 2
                stalls = 0
    else:
        if not fallback_dense:
            raise SparseRecoveryError(
                f"failed to recover the product within {max_rounds} rounds"
            )
        stats.used_dense_fallback = True
        dense = dense_matmul(tcu, Ad.toarray(), Bd.toarray())
        tcu.charge_cpu(side * side)
        out = sp.csr_matrix(dense)
        if is_integer:
            out = sp.csr_matrix(np.rint(dense).astype(np.int64))
        stats.recovered = int(out.nnz)
        return (out, stats) if return_stats else out

    stats.recovered = len(recovered)
    if recovered:
        rows, cols, vals = zip(*((i, j, v) for (i, j), v in recovered.items()), strict=True)
        data = np.asarray(vals)
        if is_integer:
            data = np.rint(data).astype(np.int64)
        out = sp.csr_matrix((data, (rows, cols)), shape=(side, side))
    else:
        out = sp.csr_matrix((side, side))
    return (out, stats) if return_stats else out
