"""Dense matrix multiplication on the (m, l)-TCU (Theorem 2, Corollary 1).

Theorem 2's algorithm: split the left matrix A into ``sqrt(m)``-wide
*tall* vertical strips ``A_i`` and the right matrix B into
``sqrt(m) x sqrt(m)`` blocks ``B_{i,j}``.  Each ``C_{i,j} = A_i B_{i,j}``
is one tensor call on a tall operand (cost ``p * sqrt(m) + l``), and the
output strip ``C_j = sum_i C_{i,j}`` needs only additions.  For square
``sqrt(n) x sqrt(n)`` inputs this gives the semiring-optimal

    Theta( n^{3/2} / sqrt(m)  +  (n/m) * l )

model time; :func:`matmul` generalises the same schedule to arbitrary
``p x q`` times ``q x r`` shapes, which also yields Corollary 1's bound
``Theta(rn/sqrt(m) + (r*sqrt(n)/m) l)`` for ``sqrt(n) x r`` by
``r x sqrt(n)`` products.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import TCUMachine
from .schedule import ceil_to_multiple, pad_matrix, padded_copy_cost

__all__ = [
    "matmul",
    "square_mm",
    "rectangular_mm",
    "tensor_call_count",
]


def matmul(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    *,
    charge_padding: bool = True,
) -> np.ndarray:
    """``C = A @ B`` for arbitrary 2-D shapes via the Theorem 2 schedule.

    Parameters
    ----------
    tcu:
        The machine executing (and billing) the computation.
    A, B:
        ``p x q`` and ``q x r`` arrays over a common dtype family.
    charge_padding:
        Charge the RAM-model cost of materialising padded copies (on by
        default; disable only inside algorithms that pre-pad).

    Notes
    -----
    The right operand block ``B_{i,j}`` is loaded once per tensor call
    while the *whole* height-``p`` strip of A streams through — the
    asymmetric behaviour of Section 3 (property 3).  Output additions
    are charged one RAM unit per word.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("matmul expects 2-D operands")
    p, q = A.shape
    q2, r = B.shape
    if q != q2:
        raise ValueError(f"inner dimensions disagree: {A.shape} @ {B.shape}")
    s = tcu.sqrt_m
    if p == 0 or q == 0 or r == 0:
        return np.zeros((p, r), dtype=np.result_type(A.dtype, B.dtype))

    p_pad = max(p, s)
    q_pad = ceil_to_multiple(q, s)
    r_pad = ceil_to_multiple(r, s)
    if charge_padding:
        tcu.charge_cpu(
            padded_copy_cost(A, p_pad, q_pad) + padded_copy_cost(B, q_pad, r_pad)
        )
    Ap = pad_matrix(A, p_pad, q_pad)
    Bp = pad_matrix(B, q_pad, r_pad)

    out_dtype = np.result_type(Ap.dtype, Bp.dtype)
    C = np.zeros((p_pad, r_pad), dtype=out_dtype)
    for j in range(r_pad // s):
        col = slice(j * s, (j + 1) * s)
        for i in range(q_pad // s):
            row = slice(i * s, (i + 1) * s)
            # One tall tensor call: the full-height strip A_i against
            # the resident block B_{i,j}.
            partial = tcu.mm(Ap[:, row], Bp[row, col])
            C[:, col] += partial
            tcu.charge_cpu(p_pad * s)  # the C_{i,j} accumulation
    return C[:p, :r]


def square_mm(tcu: TCUMachine, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Theorem 2 specialised to square operands (shape-checked)."""
    A = np.asarray(A)
    B = np.asarray(B)
    if A.shape != B.shape or A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(
            f"square_mm expects equal square operands, got {A.shape} and {B.shape}"
        )
    return matmul(tcu, A, B)


def rectangular_mm(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    *,
    algorithm=None,
) -> np.ndarray:
    """Corollary 1: multiply ``sqrt(n) x r`` by ``r x sqrt(n)``.

    With ``algorithm=None`` this is the Theorem 2 schedule (semiring
    cost ``rn/sqrt(m) + (r sqrt(n)/m) l``).  Passing a
    :class:`~repro.matmul.strassen.BilinearAlgorithm` instead decomposes
    the product into ``t x t`` squares with ``t = min(sqrt(n), r)`` and
    runs the Strassen-like recursion of Theorem 1 on each square, as the
    corollary's proof prescribes.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} @ {B.shape}")
    if algorithm is None:
        return matmul(tcu, A, B)

    from .strassen import strassen_like_mm

    p, q = A.shape
    _, r = B.shape
    t = min(p, q, r)
    t_pad = max(t, 1)
    p_pad = ceil_to_multiple(p, t_pad)
    q_pad = ceil_to_multiple(q, t_pad)
    r_pad = ceil_to_multiple(r, t_pad)
    tcu.charge_cpu(
        padded_copy_cost(A, p_pad, q_pad) + padded_copy_cost(B, q_pad, r_pad)
    )
    Ap = pad_matrix(A, p_pad, q_pad)
    Bp = pad_matrix(B, q_pad, r_pad)
    C = np.zeros((p_pad, r_pad), dtype=np.result_type(Ap.dtype, Bp.dtype))
    for bi in range(p_pad // t_pad):
        for bj in range(r_pad // t_pad):
            acc = C[bi * t_pad : (bi + 1) * t_pad, bj * t_pad : (bj + 1) * t_pad]
            for bk in range(q_pad // t_pad):
                blockA = Ap[bi * t_pad : (bi + 1) * t_pad, bk * t_pad : (bk + 1) * t_pad]
                blockB = Bp[bk * t_pad : (bk + 1) * t_pad, bj * t_pad : (bj + 1) * t_pad]
                acc += strassen_like_mm(tcu, blockA, blockB, algorithm=algorithm)
                tcu.charge_cpu(t_pad * t_pad)
    return C[:p, :r]


def tensor_call_count(p: int, q: int, r: int, sqrt_m: int) -> int:
    """Number of tensor calls the Theorem 2 schedule issues for
    ``p x q @ q x r`` (used by tests to pin the accounting down)."""
    q_pad = ceil_to_multiple(q, sqrt_m)
    r_pad = ceil_to_multiple(r, sqrt_m)
    return (q_pad // sqrt_m) * (r_pad // sqrt_m)
