"""Dense matrix multiplication on the (m, l)-TCU (Theorem 2, Corollary 1).

Theorem 2's algorithm: split the left matrix A into ``sqrt(m)``-wide
*tall* vertical strips ``A_i`` and the right matrix B into
``sqrt(m) x sqrt(m)`` blocks ``B_{i,j}``.  Each ``C_{i,j} = A_i B_{i,j}``
is one tensor call on a tall operand (cost ``p * sqrt(m) + l``), and the
output strip ``C_j = sum_i C_{i,j}`` needs only additions.  For square
``sqrt(n) x sqrt(n)`` inputs this gives the semiring-optimal

    Theta( n^{3/2} / sqrt(m)  +  (n/m) * l )

model time; :func:`matmul` generalises the same schedule to arbitrary
``p x q`` times ``q x r`` shapes, which also yields Corollary 1's bound
``Theta(rn/sqrt(m) + (r*sqrt(n)/m) l)`` for ``sqrt(n) x r`` by
``r x sqrt(n)`` products.

Plan/execute split
------------------
By default (``plan=True``) the schedule is *built* as a lazy
:class:`~repro.core.program.TensorProgram` — ``mm`` nodes for the
``C_{i,j}`` products, ``add`` nodes for the strip reductions — and
executed through :func:`~repro.core.program.run_program`.  For a single
product the planned charges are identical to the eager ones (there is
nothing to merge inside one Theorem 2 grid), but the planner batches
each DAG level on a :class:`~repro.core.parallel.ParallelTCUMachine`
and, across products sharing a resident block (see :func:`matmul_lazy`),
merges calls so k products pay one latency.  ``plan=False`` is the
eager escape hatch that executes each call as it is produced.
"""

from __future__ import annotations

import numpy as np

from ..core.machine import TCUMachine, placeholder
from ..core.parallel import ParallelTCUMachine
from ..core.program import Lazy, TensorProgram, run_program
from .schedule import ceil_to_multiple, pad_matrix, padded_copy_cost, theorem2_tasks

__all__ = [
    "matmul",
    "matmul_lazy",
    "square_mm",
    "rectangular_mm",
    "tensor_call_count",
]


def _check_operands(A: np.ndarray, B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("matmul expects 2-D operands")
    if A.shape[1] != B.shape[0]:
        raise ValueError(f"inner dimensions disagree: {A.shape} @ {B.shape}")
    return A, B


def _pad_operands(
    tcu: TCUMachine, A: np.ndarray, B: np.ndarray, charge_padding: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Pad both operands to the tensor-unit grid, charging the copies."""
    p, q = A.shape
    _, r = B.shape
    s = tcu.sqrt_m
    p_pad = max(p, s)
    q_pad = ceil_to_multiple(q, s)
    r_pad = ceil_to_multiple(r, s)
    if charge_padding:
        tcu.charge_cpu(
            padded_copy_cost(A, p_pad, q_pad) + padded_copy_cost(B, q_pad, r_pad)
        )
    return pad_matrix(A, p_pad, q_pad), pad_matrix(B, q_pad, r_pad)


def _emit_theorem2(
    tcu: TCUMachine, program: TensorProgram, Ap: np.ndarray, Bp: np.ndarray
) -> Lazy:
    """Append the Theorem 2 schedule for padded operands to ``program``.

    One ``mm`` node per grid product, one ``add`` node per output
    column; the returned :class:`Lazy` assembles the padded result after
    the program has executed.  Charges match the eager loop exactly
    (each ``add`` term costs one RAM unit per word, like the eager
    ``C_j += C_{i,j}`` accumulation).
    """
    s = tcu.sqrt_m
    p_pad = Ap.shape[0]
    r_pad = Bp.shape[1]
    partials: dict[int, list] = {}
    for j, _, strip, block in theorem2_tasks(Ap, Bp, s):
        partials.setdefault(j, []).append(program.mm(strip, block))
    columns = [program.add(partials[j]) for j in range(r_pad // s)]

    def assemble() -> np.ndarray:
        C = np.zeros((p_pad, r_pad), dtype=np.result_type(Ap.dtype, Bp.dtype))
        for j, col in enumerate(columns):
            C[:, j * s : (j + 1) * s] = col.result()
        return C

    return Lazy(assemble)


def _charge_theorem2_grid(tcu: TCUMachine, p_pad: int, kq: int, kr: int, dtype) -> None:
    """Charge the whole Theorem 2 grid — ``kq * kr`` tall calls of
    ``p_pad`` rows (the machine's bulk grid rule) plus the per-partial
    strip accumulations — exactly as the per-task loop would."""
    tcu.charge_mm_grid(p_pad, kq * kr, dtype)
    tcu.charge_cpu(kq * kr * p_pad * tcu.sqrt_m)  # the C_{i,j} accumulations


def _matmul_fused(tcu: TCUMachine, Ap: np.ndarray, Bp: np.ndarray) -> np.ndarray:
    """The Theorem 2 strip-by-block grid as one fused contraction.

    The strips ``A_i`` and blocks ``B_{i,j}`` are strided views of the
    padded operands, so the whole grid is a single tensordot (which
    lowers to one GEMM) — the per-call products and the ``sum_i C_{i,j}``
    strip accumulations fuse into it.  Charges are identical to issuing
    the ``kq * kr`` calls through :meth:`TCUMachine.mm` one by one.
    """
    s = tcu.sqrt_m
    p_pad, q_pad = Ap.shape
    r_pad = Bp.shape[1]
    kq, kr = q_pad // s, r_pad // s
    dtype = np.result_type(Ap.dtype, Bp.dtype)
    _charge_theorem2_grid(tcu, p_pad, kq, kr, dtype)
    strips = Ap.reshape(p_pad, kq, s).transpose(1, 0, 2)  # (i, p, k) views
    blocks = Bp.reshape(kq, s, kr, s).transpose(0, 2, 1, 3)  # (i, j, k, t)
    C = np.tensordot(strips, blocks, axes=((0, 2), (0, 2)))  # (p, j, t)
    return C.reshape(p_pad, r_pad)


def matmul(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    *,
    charge_padding: bool = True,
    plan: bool = True,
    split: str | int = "auto",
) -> np.ndarray:
    """``C = A @ B`` for arbitrary 2-D shapes via the Theorem 2 schedule.

    Parameters
    ----------
    tcu:
        The machine executing (and billing) the computation.
    A, B:
        ``p x q`` and ``q x r`` arrays over a common dtype family.
    charge_padding:
        Charge the RAM-model cost of materialising padded copies (on by
        default; disable only inside algorithms that pre-pad).
    plan:
        Dispatch the whole schedule through the fused grid kernel (the
        default): one vectorised ledger charge and one stacked numpy
        contraction for the entire strip-by-block grid, cost-identical
        to the eager loop.  Machines the fused kernel cannot express
        exactly (parallel batch accounting, hardware row bounds that
        split the stream, the systolic backend, quantised kernels) fall
        back to the planned :class:`~repro.core.program.TensorProgram`
        path.  ``False`` executes each tensor call eagerly as the
        schedule produces it.
    split:
        Forwarded to :func:`~repro.core.program.plan_program` on the
        planned path: ``"auto"`` (default) lets the cost model split
        merged tall calls across parallel units, ``1`` pins the legacy
        one-call-per-group schedule, an explicit ``s`` forces ``s``
        chunks per group.  Serial machines and the fused direct path
        are unaffected (splitting is the identity there).

    On a machine with ``execute="cost-only"`` the product is never
    computed: the schedule's exact model cost is charged from shapes
    alone and an O(1)-storage placeholder is returned, so sweeps can run
    at ledger speed on operands that are themselves placeholders.

    Notes
    -----
    The right operand block ``B_{i,j}`` is loaded once per tensor call
    while the *whole* height-``p`` strip of A streams through — the
    asymmetric behaviour of Section 3 (property 3).  Output additions
    are charged one RAM unit per word.
    """
    A, B = _check_operands(A, B)
    p, q = A.shape
    _, r = B.shape
    if p == 0 or q == 0 or r == 0:
        return np.zeros((p, r), dtype=np.result_type(A.dtype, B.dtype))
    s = tcu.sqrt_m
    p_pad = max(p, s)
    q_pad = ceil_to_multiple(q, s)
    r_pad = ceil_to_multiple(r, s)
    cost_only = tcu.execute == "cost-only"
    direct = (
        plan
        and not isinstance(tcu, ParallelTCUMachine)
        and (tcu.max_rows is None or p_pad <= tcu.max_rows)
        # machines that restrict the call interface itself (the weak
        # model's square-only mm) must keep validating every call
        and type(tcu).mm is TCUMachine.mm
        # the fused contraction sums partials before any value exists to
        # check, so overflow-checked machines take the program path
        # (whose grid primitive checks every stacked product)
        and not tcu.check_overflow
        and (cost_only or tcu.fusable)
    )

    if direct and cost_only:
        # never materialise the padded copies: charge the schedule from
        # shapes alone (the operands may themselves be placeholders)
        if charge_padding:
            tcu.charge_cpu(
                padded_copy_cost(A, p_pad, q_pad) + padded_copy_cost(B, q_pad, r_pad)
            )
        dtype = np.result_type(A.dtype, B.dtype)
        _charge_theorem2_grid(tcu, p_pad, q_pad // s, r_pad // s, dtype)
        return placeholder((p, r), dtype)

    Ap, Bp = _pad_operands(tcu, A, B, charge_padding)

    if direct:
        return _matmul_fused(tcu, Ap, Bp)[:p, :r]

    if plan:
        program = TensorProgram()
        lazy = _emit_theorem2(tcu, program, Ap, Bp)
        run_program(program, tcu, split=split)
        return lazy.result()[:p, :r]

    out_dtype = np.result_type(Ap.dtype, Bp.dtype)
    C = np.zeros((Ap.shape[0], Bp.shape[1]), dtype=out_dtype)
    for j, _, strip, block in theorem2_tasks(Ap, Bp, s):
        # One tall tensor call: the full-height strip A_i against the
        # resident block B_{i,j}.
        partial = tcu.mm(strip, block)
        C[:, j * s : (j + 1) * s] += partial
        tcu.charge_cpu(Ap.shape[0] * s)  # the C_{i,j} accumulation
    return C[:p, :r]


def matmul_lazy(
    tcu: TCUMachine,
    program: TensorProgram,
    A: np.ndarray,
    B: np.ndarray,
    *,
    charge_padding: bool = True,
) -> Lazy:
    """Append a Theorem 2 product to a caller-owned program.

    This is how independent products join one plan: every product built
    into the same program is planned together, so calls that share a
    resident right-hand block merge into one tall call (one latency for
    all of them) and each DAG level batches on parallel machines.  The
    caller must :func:`~repro.core.program.run_program` the program
    before reading the returned :class:`~repro.core.program.Lazy`.

    Padding copies are charged at build time (set ``charge_padding``
    False when operands are pre-padded).  Note the planner merges by
    buffer identity: pass the *same* ``B`` object (already padded if
    padding would be needed) to every product that should share its
    residency.
    """
    A, B = _check_operands(A, B)
    p, q = A.shape
    _, r = B.shape
    if p == 0 or q == 0 or r == 0:
        empty = np.zeros((p, r), dtype=np.result_type(A.dtype, B.dtype))
        return Lazy(lambda: empty)
    Ap, Bp = _pad_operands(tcu, A, B, charge_padding)
    lazy = _emit_theorem2(tcu, program, Ap, Bp)
    return Lazy(lambda: lazy.result()[:p, :r])


def square_mm(tcu: TCUMachine, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Theorem 2 specialised to square operands (shape-checked)."""
    A = np.asarray(A)
    B = np.asarray(B)
    if A.shape != B.shape or A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(
            f"square_mm expects equal square operands, got {A.shape} and {B.shape}"
        )
    return matmul(tcu, A, B)


def rectangular_mm(
    tcu: TCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    *,
    algorithm=None,
    plan: bool = True,
) -> np.ndarray:
    """Corollary 1: multiply ``sqrt(n) x r`` by ``r x sqrt(n)``.

    With ``algorithm=None`` this is the Theorem 2 schedule (semiring
    cost ``rn/sqrt(m) + (r sqrt(n)/m) l``).  Passing a
    :class:`~repro.matmul.strassen.BilinearAlgorithm` instead decomposes
    the product into ``t x t`` squares with ``t = min(sqrt(n), r)`` and
    runs the Strassen-like recursion of Theorem 1 on each square, as the
    corollary's proof prescribes.  With ``plan=True`` all the square
    subproducts' leaf calls join one program and are planned together.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} @ {B.shape}")
    if algorithm is None:
        return matmul(tcu, A, B, plan=plan)

    from .strassen import default_cutoff, strassen_like_lazy, strassen_like_mm

    p, q = A.shape
    _, r = B.shape
    t = min(p, q, r)
    t_pad = max(t, 1)
    p_pad = ceil_to_multiple(p, t_pad)
    q_pad = ceil_to_multiple(q, t_pad)
    r_pad = ceil_to_multiple(r, t_pad)
    tcu.charge_cpu(
        padded_copy_cost(A, p_pad, q_pad) + padded_copy_cost(B, q_pad, r_pad)
    )
    Ap = pad_matrix(A, p_pad, q_pad)
    Bp = pad_matrix(B, q_pad, r_pad)
    C = np.zeros((p_pad, r_pad), dtype=np.result_type(Ap.dtype, Bp.dtype))

    if plan:
        # All t x t subproducts are independent: build their recursions
        # into one shared program so every leaf call is planned (and on
        # parallel machines batched) together.
        program = TensorProgram()
        cutoff = default_cutoff(tcu, algorithm)
        tasks = []
        for bi in range(p_pad // t_pad):
            for bj in range(r_pad // t_pad):
                for bk in range(q_pad // t_pad):
                    blockA = Ap[
                        bi * t_pad : (bi + 1) * t_pad, bk * t_pad : (bk + 1) * t_pad
                    ]
                    blockB = Bp[
                        bk * t_pad : (bk + 1) * t_pad, bj * t_pad : (bj + 1) * t_pad
                    ]
                    lazy = strassen_like_lazy(
                        tcu, program, blockA, blockB, algorithm=algorithm, cutoff=cutoff
                    )
                    tasks.append((bi, bj, lazy))
        run_program(program, tcu)
        for bi, bj, lazy in tasks:
            acc = C[bi * t_pad : (bi + 1) * t_pad, bj * t_pad : (bj + 1) * t_pad]
            acc += lazy.result()
            tcu.charge_cpu(t_pad * t_pad)
        return C[:p, :r]

    for bi in range(p_pad // t_pad):
        for bj in range(r_pad // t_pad):
            acc = C[bi * t_pad : (bi + 1) * t_pad, bj * t_pad : (bj + 1) * t_pad]
            for bk in range(q_pad // t_pad):
                blockA = Ap[bi * t_pad : (bi + 1) * t_pad, bk * t_pad : (bk + 1) * t_pad]
                blockB = Bp[bk * t_pad : (bk + 1) * t_pad, bj * t_pad : (bj + 1) * t_pad]
                acc += strassen_like_mm(tcu, blockA, blockB, algorithm=algorithm, plan=False)
                tcu.charge_cpu(t_pad * t_pad)
    return C[:p, :r]


def tensor_call_count(p: int, q: int, r: int, sqrt_m: int) -> int:
    """Number of tensor calls the Theorem 2 schedule issues for
    ``p x q @ q x r`` (used by tests to pin the accounting down)."""
    q_pad = ceil_to_multiple(q, sqrt_m)
    r_pad = ceil_to_multiple(r, sqrt_m)
    return (q_pad // sqrt_m) * (r_pad // sqrt_m)
