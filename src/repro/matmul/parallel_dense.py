"""Dense MM on parallel tensor units (extension of Theorem 2).

The Theorem 2 schedule's ``C_{i,j} = A_i B_{i,j}`` products are
pairwise independent, so on a p-unit machine (§6 open question) they
can be batched: expected model time

    T(n, p) ~ n^{3/2} / (p sqrt(m))  +  (n / (p m)) l

until the call count ``n/m`` drops below p, after which extra units are
idle.  The reduction ``C_j = sum_i C_{i,j}`` stays CPU work, exactly as
in the sequential schedule.

The batch is priced by :meth:`~repro.core.parallel.ParallelTCUMachine.
mm_batch` from the machine's *own* per-call costs, so row-bounded,
complex-cost, systolic and overflow-checked machines charge (and
compute) exactly what a serial loop of ``mm`` calls would — only the
clock advances by the scheduled makespan instead of the serial sum.
"""

from __future__ import annotations

import numpy as np

from ..core.parallel import ParallelTCUMachine
from .schedule import ceil_to_multiple, pad_matrix, padded_copy_cost

__all__ = ["parallel_matmul", "predicted_parallel_time"]


def predicted_parallel_time(n: float, m: float, ell: float, p: int) -> float:
    """The parallel extension's cost shape (calls floor at 1 per unit)."""
    import math

    calls = max(n / m, 1.0)
    waves = max(calls / p, 1.0)
    per_call = math.sqrt(n) * math.sqrt(m) + ell
    return waves * per_call


def parallel_matmul(
    ptcu: ParallelTCUMachine,
    A: np.ndarray,
    B: np.ndarray,
    *,
    charge_padding: bool = True,
) -> np.ndarray:
    """``C = A @ B`` with all Theorem 2 grid products issued as one batch."""
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise ValueError(f"incompatible shapes {A.shape} @ {B.shape}")
    p_rows, q = A.shape
    _, r = B.shape
    s = ptcu.sqrt_m
    if p_rows == 0 or q == 0 or r == 0:
        return np.zeros((p_rows, r), dtype=np.result_type(A.dtype, B.dtype))

    p_pad = max(p_rows, s)
    q_pad = ceil_to_multiple(q, s)
    r_pad = ceil_to_multiple(r, s)
    if charge_padding:
        ptcu.charge_cpu(
            padded_copy_cost(A, p_pad, q_pad) + padded_copy_cost(B, q_pad, r_pad)
        )
    Ap = pad_matrix(A, p_pad, q_pad)
    Bp = pad_matrix(B, q_pad, r_pad)

    jobs = []
    coords = []
    for j in range(r_pad // s):
        for i in range(q_pad // s):
            jobs.append(
                (Ap[:, i * s : (i + 1) * s], Bp[i * s : (i + 1) * s, j * s : (j + 1) * s])
            )
            coords.append(j)
    results = ptcu.mm_batch(jobs)

    C = np.zeros((p_pad, r_pad), dtype=np.result_type(Ap.dtype, Bp.dtype))
    for j, partial in zip(coords, results, strict=True):
        C[:, j * s : (j + 1) * s] += partial
        ptcu.charge_cpu(p_pad * s)
    return C[:p_rows, :r]
