"""Matrix multiplication on the (m, l)-TCU.

* :mod:`repro.matmul.dense`    -- Theorem 2 blocked schedule, Corollary 1
* :mod:`repro.matmul.strassen` -- Theorem 1 Strassen-like recursion
* :mod:`repro.matmul.sparse`   -- Theorem 3 output-sensitive product
* :mod:`repro.matmul.schedule` -- tiling/padding helpers
"""

from .dense import matmul, matmul_lazy, rectangular_mm, square_mm, tensor_call_count
from .parallel_dense import parallel_matmul, predicted_parallel_time
from .schedule import block_view, ceil_to_multiple, pad_matrix, strip_view, theorem2_tasks
from .sparse import SparseProductStats, SparseRecoveryError, sparse_mm
from .strassen import (
    CLASSICAL_2X2,
    STRASSEN_2X2,
    BilinearAlgorithm,
    default_cutoff,
    recursion_depth,
    strassen_like_lazy,
    strassen_like_mm,
)

__all__ = [
    "matmul",
    "matmul_lazy",
    "square_mm",
    "rectangular_mm",
    "tensor_call_count",
    "parallel_matmul",
    "predicted_parallel_time",
    "sparse_mm",
    "SparseProductStats",
    "SparseRecoveryError",
    "BilinearAlgorithm",
    "CLASSICAL_2X2",
    "STRASSEN_2X2",
    "strassen_like_mm",
    "strassen_like_lazy",
    "default_cutoff",
    "recursion_depth",
    "pad_matrix",
    "ceil_to_multiple",
    "block_view",
    "strip_view",
    "theorem2_tasks",
]
