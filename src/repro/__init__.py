"""tcu-model: reproduction of "A Computational Model for Tensor Core Units"
(Chowdhury, Silvestri, Vella — SPAA 2020).

The package simulates the paper's (m, l)-TCU machine — a RAM model with
a tensor unit multiplying ``n x sqrt(m)`` by ``sqrt(m) x sqrt(m)``
matrices in ``n*sqrt(m) + l`` model time — and implements every
algorithm the paper designs for it, with exact model-time accounting so
each theorem's cost bound can be measured.

Quickstart
----------
>>> import numpy as np
>>> from repro import TCUMachine, matmul
>>> tcu = TCUMachine(m=16, ell=4)
>>> A = np.arange(36.0).reshape(6, 6); B = np.eye(6)
>>> C = matmul(tcu, A, B)
>>> bool(np.array_equal(C, A)), tcu.ledger.tensor_calls > 0
(True, True)

Subpackages
-----------
core      the machine, ledger, systolic-array simulator, presets
matmul    dense / Strassen-like / sparse multiplication (Thms 1-3)
linalg    Gaussian elimination (Thm 4)
graph     transitive closure, Seidel APSD (Thms 5-6)
transform DFT, convolution, stencils (Thms 7-8)
arith     integer multiplication, polynomial evaluation (Thms 9-11)
extmem    external-memory model and the Theorem 12 simulation
analysis  theorem cost formulas, curve fitting, tables
baselines RAM-model reference implementations
serve     online inference serving: arrivals, dynamic batching, SLOs
"""

from .core import (
    PRESETS,
    TEST_UNIT,
    TPU_V1,
    VOLTA_TC,
    BatchStats,
    CompiledCursor,
    CompiledPlan,
    CostLedger,
    ExecutionCursor,
    MachineSpec,
    ParallelTCUMachine,
    Plan,
    PlanCache,
    PlanStats,
    QuantizedTCUMachine,
    Schedule,
    SystolicArray,
    TCUMachine,
    TensorProgram,
    TensorShapeError,
    WeakTCUMachine,
    available_schedulers,
    compile_plan,
    get_scheduler,
    placeholder,
    run_program,
    schedule_batch,
)
from .matmul import (
    CLASSICAL_2X2,
    STRASSEN_2X2,
    BilinearAlgorithm,
    matmul,
    matmul_lazy,
    parallel_matmul,
    rectangular_mm,
    sparse_mm,
    square_mm,
    strassen_like_mm,
)
from .serve import (
    BurstyWorkload,
    ClassMetrics,
    ClosedLoopWorkload,
    DiurnalWorkload,
    MixedWorkload,
    PoissonWorkload,
    Request,
    ServeMetrics,
    ServeResult,
    ServingEngine,
    TraceWorkload,
    compute_metrics,
    replay_batches,
)

__version__ = "1.1.0"

__all__ = [
    "TCUMachine",
    "WeakTCUMachine",
    "ParallelTCUMachine",
    "QuantizedTCUMachine",
    "BatchStats",
    "Schedule",
    "schedule_batch",
    "get_scheduler",
    "available_schedulers",
    "placeholder",
    "parallel_matmul",
    "CostLedger",
    "SystolicArray",
    "TensorShapeError",
    "MachineSpec",
    "TPU_V1",
    "VOLTA_TC",
    "TEST_UNIT",
    "PRESETS",
    "matmul",
    "matmul_lazy",
    "TensorProgram",
    "Plan",
    "PlanStats",
    "run_program",
    "square_mm",
    "rectangular_mm",
    "sparse_mm",
    "strassen_like_mm",
    "BilinearAlgorithm",
    "CLASSICAL_2X2",
    "STRASSEN_2X2",
    "ServingEngine",
    "ServeResult",
    "ServeMetrics",
    "Request",
    "PoissonWorkload",
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "TraceWorkload",
    "DiurnalWorkload",
    "MixedWorkload",
    "ClassMetrics",
    "ExecutionCursor",
    "CompiledCursor",
    "CompiledPlan",
    "PlanCache",
    "compile_plan",
    "compute_metrics",
    "replay_batches",
    "__version__",
]
