"""SLO-facing metrics for a served run.

Turns a :class:`~repro.serve.engine.ServeResult` into the numbers a
capacity planner asks for: throughput, the latency distribution
(p50/p95/p99), SLO attainment and goodput, engine utilisation, and —
on multi-unit machines with a full call trace — the per-tensor-unit
busy shares recovered from the ledger's ``unit_id`` column.

All quantities are in model time (the ledger clock), so two runs on
different hosts produce identical metrics for identical (workload,
machine, policy) triples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.parallel import ParallelTCUMachine
from .engine import ServeResult

__all__ = ["ServeMetrics", "compute_metrics"]


@dataclass(frozen=True)
class ServeMetrics:
    """Aggregate serving statistics for one run.

    Attributes
    ----------
    requests, batches:
        Completed requests and executed batches.
    clock:
        Final engine clock (model time of the last completion).
    throughput:
        Completed requests per unit of model time.
    latency_mean / latency_p50 / latency_p95 / latency_p99 / latency_max:
        The end-to-end (wait + service) latency distribution.
    wait_mean, service_mean:
        Mean queueing delay and mean in-machine time per request.
    batch_size_mean:
        Requests per executed batch.
    slo:
        The latency objective the SLO numbers were computed against:
        the caller's fallback if given, else the single distinct
        per-request objective (``None`` when objectives were absent or
        mixed — attainment/goodput still reflect the per-request ones).
    slo_attainment:
        Fraction of requests whose latency met their objective.
    goodput:
        SLO-meeting completions per unit of model time.
    utilization:
        Engine busy fraction: busy time / final clock.
    unit_busy_share:
        Per-tensor-unit busy fraction of the clock, recovered from the
        trace's ``unit_id`` column (key ``-1`` collects serially issued
        calls).  ``None`` unless the machine is a
        :class:`~repro.core.parallel.ParallelTCUMachine` with a full
        call trace.
    kind_time:
        Model time charged per request kind *during this run* (the
        engine snapshots its ``serve:<kind>`` ledger sections per run,
        so reusing one machine across serves never double-counts).
    """

    requests: int
    batches: int
    clock: float
    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    wait_mean: float
    service_mean: float
    batch_size_mean: float
    slo: float | None
    slo_attainment: float | None
    goodput: float | None
    utilization: float
    unit_busy_share: dict[int, float] | None
    kind_time: dict[str, float]


def _unit_busy_share(result: ServeResult) -> dict[int, float] | None:
    machine = result.machine
    if not isinstance(machine, ParallelTCUMachine):
        return None
    ledger = machine.ledger
    if ledger.trace_calls is not True or result.clock <= 0:
        return None
    units = ledger.calls.unit_ids()[result.trace_start : result.trace_end]
    times = ledger.calls.as_arrays()[2][result.trace_start : result.trace_end]
    if units.size == 0:
        return {}
    busy: dict[int, float] = {}
    for unit in np.unique(units):
        busy[int(unit)] = float(times[units == unit].sum()) / result.clock
    return busy


def compute_metrics(result: ServeResult, *, slo: float | None = None) -> ServeMetrics:
    """Summarise a served run; ``slo`` is the fallback latency objective
    for requests that did not carry their own."""
    n = len(result.requests)
    clock = result.clock
    if n == 0:
        return ServeMetrics(
            requests=0,
            batches=0,
            clock=0.0,
            throughput=0.0,
            latency_mean=0.0,
            latency_p50=0.0,
            latency_p95=0.0,
            latency_p99=0.0,
            latency_max=0.0,
            wait_mean=0.0,
            service_mean=0.0,
            batch_size_mean=0.0,
            slo=slo,
            slo_attainment=None,
            goodput=None,
            utilization=0.0,
            unit_busy_share=None,
            kind_time={},
        )
    latencies = np.array([r.latency for r in result.requests])
    waits = np.array([r.wait for r in result.requests])
    p50, p95, p99 = np.percentile(latencies, [50.0, 95.0, 99.0])

    objectives = np.array(
        [r.slo if r.slo is not None else (slo if slo is not None else np.nan)
         for r in result.requests]
    )
    with_slo = ~np.isnan(objectives)
    effective_slo = slo
    if with_slo.any():
        met = int((latencies[with_slo] <= objectives[with_slo]).sum())
        attainment = met / int(with_slo.sum())
        goodput = met / clock if clock else 0.0
        if effective_slo is None:
            distinct = np.unique(objectives[with_slo])
            if distinct.size == 1:
                effective_slo = float(distinct[0])
    else:
        attainment = None
        goodput = None

    return ServeMetrics(
        requests=n,
        batches=len(result.batches),
        clock=clock,
        throughput=n / clock if clock else 0.0,
        latency_mean=float(latencies.mean()),
        latency_p50=float(p50),
        latency_p95=float(p95),
        latency_p99=float(p99),
        latency_max=float(latencies.max()),
        wait_mean=float(waits.mean()),
        service_mean=float((latencies - waits).mean()),
        batch_size_mean=n / len(result.batches) if result.batches else 0.0,
        slo=effective_slo,
        slo_attainment=attainment,
        goodput=goodput,
        utilization=result.busy_time / clock if clock else 0.0,
        unit_busy_share=_unit_busy_share(result),
        kind_time=dict(sorted(result.kind_time.items())),
    )
