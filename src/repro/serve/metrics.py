"""SLO-facing metrics for a served run.

Turns a :class:`~repro.serve.engine.ServeResult` into the numbers a
capacity planner asks for: throughput, the latency distribution
(p50/p95/p99), SLO attainment and goodput, shed rate, preemption and
reload-cost counters, engine utilisation, per-priority-class breakdowns
(:class:`ClassMetrics`), and — on multi-unit machines with a full call
trace — the per-tensor-unit busy shares recovered from the ledger's
``unit_id`` column.

All quantities are in model time (the ledger clock), so two runs on
different hosts produce identical metrics for identical (workload,
machine, policy) triples.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.parallel import ParallelTCUMachine
from .engine import ServeResult

__all__ = ["ServeMetrics", "ClassMetrics", "compute_metrics"]


@dataclass(frozen=True)
class ClassMetrics:
    """Serving statistics for one priority class.

    Attributes
    ----------
    priority:
        The class's priority value (higher = more urgent).
    requests, shed:
        Completed and admission-shed requests of the class.
    shed_rate:
        ``shed / (requests + shed)``.
    latency_p50 / latency_p99:
        The class's end-to-end latency percentiles.
    slo_attainment:
        Fraction of the class's completions that met their objective
        (``None`` when no request carried one).
    goodput:
        The class's SLO-meeting completions per unit of model time.
    abandoned:
        Requests of the class the engine gave up on (retry budget
        exhausted, or deadline-based abandonment).
    availability:
        ``requests / (requests + abandoned)`` — completions over
        everything the class committed to service (``None`` when the
        class never entered service).
    retries:
        Retry attempts the class's completed batches made.
    wasted_time:
        Model time the class's completed batches charged for work that
        produced no surviving results.
    recovery_time_mean:
        Mean model time from a batch's first fault to its completion,
        over the class's faulted batches (0 when none faulted).
    """

    priority: int
    requests: int
    shed: int
    shed_rate: float
    latency_p50: float
    latency_p99: float
    slo_attainment: float | None
    goodput: float | None
    abandoned: int = 0
    availability: float | None = None
    retries: int = 0
    wasted_time: float = 0.0
    recovery_time_mean: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready dict of every field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ClassMetrics:
        """Inverse of :meth:`to_dict` (accepts a JSON-decoded dict)."""
        return cls(**data)


@dataclass(frozen=True)
class ServeMetrics:
    """Aggregate serving statistics for one run.

    Attributes
    ----------
    requests, batches:
        Completed requests and executed batches.
    clock:
        Final engine clock (model time of the last completion).
    throughput:
        Completed requests per unit of model time.
    latency_mean / latency_p50 / latency_p95 / latency_p99 / latency_max:
        The end-to-end (wait + service) latency distribution.
    wait_mean, service_mean:
        Mean queueing delay and mean in-machine time per request.
    batch_size_mean:
        Requests per executed batch.
    slo:
        The latency objective the SLO numbers were computed against:
        the caller's fallback if given, else the single distinct
        per-request objective (``None`` when objectives were absent or
        mixed — attainment/goodput still reflect the per-request ones).
    slo_attainment:
        Fraction of requests whose latency met their objective.
    goodput:
        SLO-meeting completions per unit of model time.
    shed, shed_rate:
        Requests refused by the admission policy, and their fraction of
        all offered requests.
    preemptions:
        Batch checkpoints taken (a batch preempted twice counts twice).
    reload_time:
        Model time the run spent re-loading resident blocks on resume
        (the ledger's ``reload`` column for this run).
    utilization:
        Engine busy fraction: busy time / final clock.
    unit_busy_share:
        Per-tensor-unit busy fraction of the clock, recovered from the
        trace's ``unit_id`` column (key ``-1`` collects serially issued
        calls).  ``None`` unless the machine is a
        :class:`~repro.core.parallel.ParallelTCUMachine` with a full
        call trace.
    kind_time:
        Model time charged per request kind *during this run* (the
        engine snapshots its ``serve:<kind>`` ledger sections per run,
        so reusing one machine across serves never double-counts).
    cache_hits / cache_misses / cache_size:
        Plan-cache lookup counters for this run and the cache's size
        after it (all zero when the engine served without a cache).
    cache_hit_rate:
        ``hits / (hits + misses)``, or ``None`` when the run performed
        no cache lookups.
    abandoned:
        Requests the engine gave up on (retry budget exhausted, or
        deadline-based abandonment).
    availability:
        ``requests / (requests + abandoned)`` — completions over
        everything that entered service (``None`` when nothing did).
    faults, retries, degraded:
        Injected fault events, retry attempts scheduled, and batches
        re-planned onto the degraded variant.
    wasted_time, wasted_ratio:
        Model time charged for work that produced no surviving results,
        and its fraction of the run's total charged time.
    recovery_time_mean:
        Mean model time from a batch's first fault to its completion,
        over faulted batches (0 when none faulted).
    per_class:
        One :class:`ClassMetrics` per priority class seen in the run
        (completed, shed or abandoned), keyed by priority.
    """

    requests: int
    batches: int
    clock: float
    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    wait_mean: float
    service_mean: float
    batch_size_mean: float
    slo: float | None
    slo_attainment: float | None
    goodput: float | None
    utilization: float
    unit_busy_share: dict[int, float] | None
    kind_time: dict[str, float]
    shed: int = 0
    shed_rate: float = 0.0
    preemptions: int = 0
    reload_time: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_size: int = 0
    cache_hit_rate: float | None = None
    abandoned: int = 0
    availability: float | None = None
    faults: int = 0
    retries: int = 0
    degraded: int = 0
    wasted_time: float = 0.0
    wasted_ratio: float = 0.0
    recovery_time_mean: float = 0.0
    per_class: dict[int, ClassMetrics] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready dict of every field.

        Integer-keyed maps (``per_class``, ``unit_busy_share``) are
        re-keyed by *string* — JSON objects only key by string, so this
        makes a ``dumps``/``loads`` round trip the identity on the dict
        form; :meth:`from_dict` restores the integer keys.
        """
        data = asdict(self)
        data["per_class"] = {str(k): v for k, v in data["per_class"].items()}
        if data["unit_busy_share"] is not None:
            data["unit_busy_share"] = {
                str(k): v for k, v in data["unit_busy_share"].items()
            }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> ServeMetrics:
        """Inverse of :meth:`to_dict` (accepts a JSON-decoded dict):
        ``ServeMetrics.from_dict(json.loads(json.dumps(m.to_dict())))``
        equals ``m`` exactly."""
        data = dict(data)
        data["per_class"] = {
            int(k): v if isinstance(v, ClassMetrics) else ClassMetrics(**v)
            for k, v in data.get("per_class", {}).items()
        }
        share = data.get("unit_busy_share")
        if share is not None:
            data["unit_busy_share"] = {int(k): float(v) for k, v in share.items()}
        return cls(**data)


def _unit_busy_share(result: ServeResult) -> dict[int, float] | None:
    machine = result.machine
    if not isinstance(machine, ParallelTCUMachine):
        return None
    ledger = machine.ledger
    if ledger.trace_calls is not True or result.clock <= 0:
        return None
    units = ledger.calls.unit_ids()[result.trace_start : result.trace_end]
    times = ledger.calls.as_arrays()[2][result.trace_start : result.trace_end]
    if units.size == 0:
        return {}
    busy: dict[int, float] = {}
    for unit in np.unique(units):
        busy[int(unit)] = float(times[units == unit].sum()) / result.clock
    return busy


def _slo_stats(
    latencies: np.ndarray, objectives: np.ndarray, clock: float
) -> tuple[float | None, float | None]:
    """(attainment, goodput) against per-request objectives (NaN = none)."""
    with_slo = ~np.isnan(objectives)
    if not with_slo.any():
        return None, None
    met = int((latencies[with_slo] <= objectives[with_slo]).sum())
    attainment = met / int(with_slo.sum())
    goodput = met / clock if clock else 0.0
    return attainment, goodput


def compute_metrics(result: ServeResult, *, slo: float | None = None) -> ServeMetrics:
    """Summarise a served run; ``slo`` is the fallback latency objective
    for requests that did not carry their own."""
    n = len(result.requests)
    clock = result.clock
    shed_by_class: dict[int, int] = {}
    for req in result.shed:
        shed_by_class[req.priority] = shed_by_class.get(req.priority, 0) + 1
    abandoned_by_class: dict[int, int] = {}
    for req in result.abandoned:
        abandoned_by_class[req.priority] = (
            abandoned_by_class.get(req.priority, 0) + 1
        )
    faulted = [b for b in result.batches if b.faults > 0]
    recovery_mean = (
        float(np.mean([b.recovery_time for b in faulted])) if faulted else 0.0
    )
    if n == 0:
        # classes that only ever shed (or abandoned) still get their
        # breakdown — the total-overload case is exactly what admission
        # and availability studies measure
        empty_classes = {
            priority: ClassMetrics(
                priority=priority,
                requests=0,
                shed=shed_by_class.get(priority, 0),
                shed_rate=1.0 if shed_by_class.get(priority, 0) else 0.0,
                latency_p50=0.0,
                latency_p99=0.0,
                slo_attainment=None,
                goodput=None,
                abandoned=abandoned_by_class.get(priority, 0),
                availability=0.0 if abandoned_by_class.get(priority, 0) else None,
            )
            for priority in sorted(set(shed_by_class) | set(abandoned_by_class))
        }
        return ServeMetrics(
            requests=0,
            batches=0,
            clock=0.0,
            throughput=0.0,
            latency_mean=0.0,
            latency_p50=0.0,
            latency_p95=0.0,
            latency_p99=0.0,
            latency_max=0.0,
            wait_mean=0.0,
            service_mean=0.0,
            batch_size_mean=0.0,
            slo=slo,
            slo_attainment=None,
            goodput=None,
            utilization=0.0,
            unit_busy_share=None,
            kind_time={},
            shed=len(result.shed),
            shed_rate=result.shed_rate,
            preemptions=result.preemptions,
            reload_time=result.reload_time,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            cache_size=result.cache_size,
            cache_hit_rate=result.cache_hit_rate,
            abandoned=len(result.abandoned),
            availability=result.availability,
            faults=result.faults,
            retries=result.retries,
            degraded=result.degraded,
            wasted_time=result.wasted_time,
            wasted_ratio=result.wasted_ratio,
            recovery_time_mean=recovery_mean,
            per_class=empty_classes,
        )
    latencies = np.array([r.latency for r in result.requests])
    waits = np.array([r.wait for r in result.requests])
    priorities = np.array([r.priority for r in result.requests])
    p50, p95, p99 = np.percentile(latencies, [50.0, 95.0, 99.0])

    objectives = np.array(
        [r.slo if r.slo is not None else (slo if slo is not None else np.nan)
         for r in result.requests]
    )
    attainment, goodput = _slo_stats(latencies, objectives, clock)
    effective_slo = slo
    with_slo = ~np.isnan(objectives)
    if effective_slo is None and with_slo.any():
        distinct = np.unique(objectives[with_slo])
        if distinct.size == 1:
            effective_slo = float(distinct[0])

    per_class: dict[int, ClassMetrics] = {}
    classes = (
        set(priorities.tolist()) | set(shed_by_class) | set(abandoned_by_class)
    )
    for priority in sorted(classes):
        mask = priorities == priority
        count = int(mask.sum())
        cls_shed = shed_by_class.get(priority, 0)
        cls_abandoned = abandoned_by_class.get(priority, 0)
        if count:
            cls_lat = latencies[mask]
            cls_p50, cls_p99 = np.percentile(cls_lat, [50.0, 99.0])
            cls_att, cls_good = _slo_stats(cls_lat, objectives[mask], clock)
        else:
            cls_p50 = cls_p99 = 0.0
            cls_att = cls_good = None
        cls_batches = [b for b in result.batches if b.priority == priority]
        cls_faulted = [b for b in cls_batches if b.faults > 0]
        per_class[int(priority)] = ClassMetrics(
            priority=int(priority),
            requests=count,
            shed=cls_shed,
            shed_rate=cls_shed / (count + cls_shed) if count + cls_shed else 0.0,
            latency_p50=float(cls_p50),
            latency_p99=float(cls_p99),
            slo_attainment=cls_att,
            goodput=cls_good,
            abandoned=cls_abandoned,
            availability=(
                count / (count + cls_abandoned) if count + cls_abandoned else None
            ),
            retries=sum(len(b.retry_at) for b in cls_batches),
            wasted_time=float(sum(b.wasted_time for b in cls_batches)),
            recovery_time_mean=(
                float(np.mean([b.recovery_time for b in cls_faulted]))
                if cls_faulted
                else 0.0
            ),
        )

    return ServeMetrics(
        requests=n,
        batches=len(result.batches),
        clock=clock,
        throughput=n / clock if clock else 0.0,
        latency_mean=float(latencies.mean()),
        latency_p50=float(p50),
        latency_p95=float(p95),
        latency_p99=float(p99),
        latency_max=float(latencies.max()),
        wait_mean=float(waits.mean()),
        service_mean=float((latencies - waits).mean()),
        batch_size_mean=n / len(result.batches) if result.batches else 0.0,
        slo=effective_slo,
        slo_attainment=attainment,
        goodput=goodput,
        utilization=result.busy_time / clock if clock else 0.0,
        unit_busy_share=_unit_busy_share(result),
        kind_time=dict(sorted(result.kind_time.items())),
        shed=len(result.shed),
        shed_rate=result.shed_rate,
        preemptions=result.preemptions,
        reload_time=result.reload_time,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        cache_size=result.cache_size,
        cache_hit_rate=result.cache_hit_rate,
        abandoned=len(result.abandoned),
        availability=result.availability,
        faults=result.faults,
        retries=result.retries,
        degraded=result.degraded,
        wasted_time=result.wasted_time,
        wasted_ratio=result.wasted_ratio,
        recovery_time_mean=recovery_mean,
        per_class=per_class,
    )
