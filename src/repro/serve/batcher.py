"""Dynamic-batching policies — when does a queue become a batch?

The paper's cost model makes the trade-off exact: a tensor call costs
``n*sqrt(m) + l``, so serving requests one-by-one pays the invocation
latency ``l`` per request while a batch of k pays it once per call —
but every queued request *waits* for the batch to form.  A batching
policy is the rule that resolves this tension; this module owns it,
decoupled from the engine, behind the same name registry idiom as
:mod:`repro.core.scheduling`.

Policies
--------
``continuous``
    Release whenever the engine is free and the queue is non-empty,
    taking everything queued (up to ``max_size``) — continuous batching
    as modern serving stacks practice it.  ``max_size=1`` degenerates
    to no batching at all (the size-1 baseline the benches compare
    against).
``size``
    Size-triggered: hold the queue until ``size`` requests are waiting,
    then release exactly that many.  Maximises amortisation, unbounded
    wait at low load (the engine's drain flag flushes the remainder
    when the arrival stream ends).
``timeout``
    Deadline-triggered: release when the *oldest* queued request has
    waited ``timeout`` model-time units, or earlier if ``max_size``
    requests accumulate.  The classic bounded-wait compromise.

The engine calls :meth:`BatchPolicy.release_time` with the current
model clock whenever the machine is idle; the returned time is the
earliest the policy would release a batch from that queue *assuming no
further arrivals* (``inf`` for "not without more requests").  New
arrivals re-trigger the question, so policies stay pure functions of
the queue state.

Queues are keyed per *class* — a ``(priority, kind)`` pair — and
:func:`priority_release` is the engine's selection rule over them:
earliest release first, priority breaking ties (so a single-class run
reduces exactly to the PR4 FIFO selection), restrictable to classes
above a priority floor (how the preemption check asks "would a
strictly more urgent batch release right now?").
"""

from __future__ import annotations

import math
from collections import deque

from .workload import Request

__all__ = [
    "BatchPolicy",
    "ContinuousBatcher",
    "SizeBatcher",
    "TimeoutBatcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
    "priority_release",
]


class BatchPolicy:
    """Base class: decide when a kind's FIFO queue releases a batch.

    Policies are stateless (configuration only); all queue state lives
    in the engine, so one policy instance can drive many engines.
    """

    name = "abstract"
    max_size: int = 2**31

    def release_time(self, queue: deque[Request], now: float, draining: bool) -> float:
        """Earliest model time a batch should launch from ``queue``,
        assuming no further arrivals; ``math.inf`` for "not yet".

        ``draining`` is set by the engine once the arrival stream is
        exhausted and nothing is in flight — every policy must release
        a non-empty queue then, or the simulation could not terminate.
        """
        raise NotImplementedError

    def take(self, queue: deque[Request], now: float) -> list[Request]:
        """Pop and return the batch to launch now (FIFO prefix)."""
        count = min(len(queue), self.max_size)
        return [queue.popleft() for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ContinuousBatcher(BatchPolicy):
    """Serve whatever is queued the moment the engine is free."""

    name = "continuous"

    def __init__(self, max_size: int = 64) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = int(max_size)

    def release_time(self, queue: deque[Request], now: float, draining: bool) -> float:
        return now if queue else math.inf


class SizeBatcher(BatchPolicy):
    """Hold the queue until ``size`` requests are waiting."""

    name = "size"

    def __init__(self, size: int = 16) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = int(size)
        self.max_size = int(size)

    def release_time(self, queue: deque[Request], now: float, draining: bool) -> float:
        if not queue:
            return math.inf
        if len(queue) >= self.size or draining:
            return now
        return math.inf


class TimeoutBatcher(BatchPolicy):
    """Bounded wait: release when the head request has aged ``timeout``
    (or ``max_size`` requests accumulate, whichever happens first)."""

    name = "timeout"

    def __init__(self, timeout: float = 1024.0, max_size: int = 64) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.timeout = float(timeout)
        self.max_size = int(max_size)

    def release_time(self, queue: deque[Request], now: float, draining: bool) -> float:
        if not queue:
            return math.inf
        if len(queue) >= self.max_size or draining:
            return now
        return max(now, queue[0].arrival + self.timeout)


def priority_release(
    queues: dict[tuple[int, str], deque[Request]],
    policy: BatchPolicy,
    now: float,
    draining: bool,
    *,
    above: int | None = None,
) -> tuple[float, int, float, tuple[int, str]] | None:
    """The engine's priority-aware release selection over class queues.

    ``queues`` maps ``(priority, kind)`` to that class's FIFO queue.
    Returns the best candidate as ``(release, priority, head_arrival,
    key)`` — minimal by ``(release, -priority, head_arrival, kind)``,
    i.e. earliest release first, higher class winning ties, oldest head
    request then kind name as the final tie-breaks (exactly the PR4
    rule when every request shares one priority) — or ``None`` when no
    queue would ever release.  With ``above`` set, only classes of
    strictly higher priority are considered (the preemption question).
    """
    best: tuple[float, int, float, str] | None = None
    best_key: tuple[int, str] | None = None
    for key, queue in queues.items():
        priority, kind = key
        if not queue:
            continue
        if above is not None and priority <= above:
            continue
        release = policy.release_time(queue, now, draining)
        if release == math.inf:
            continue
        candidate = (release, -priority, queue[0].arrival, kind)
        if best is None or candidate < best:
            best = candidate
            best_key = key
    if best is None or best_key is None:
        return None
    return best[0], -best[1], best[2], best_key


_REGISTRY: dict[str, BatchPolicy] = {}


def register_batcher(policy: BatchPolicy) -> BatchPolicy:
    """Add a policy instance to the name registry (last write wins)."""
    _REGISTRY[policy.name] = policy
    return policy


for _policy in (ContinuousBatcher(), SizeBatcher(), TimeoutBatcher()):
    register_batcher(_policy)


def available_batchers() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def get_batcher(policy: str | BatchPolicy) -> BatchPolicy:
    """Resolve a policy by name (or pass an instance through)."""
    if isinstance(policy, BatchPolicy):
        return policy
    try:
        return _REGISTRY[policy]
    except KeyError:
        raise ValueError(
            f"unknown batching policy {policy!r}; available: {available_batchers()}"
        ) from None
