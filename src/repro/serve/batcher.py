"""Dynamic-batching policies — when does a queue become a batch?

The paper's cost model makes the trade-off exact: a tensor call costs
``n*sqrt(m) + l``, so serving requests one-by-one pays the invocation
latency ``l`` per request while a batch of k pays it once per call —
but every queued request *waits* for the batch to form.  A batching
policy is the rule that resolves this tension; this module owns it,
decoupled from the engine, behind the same name registry idiom as
:mod:`repro.core.scheduling`.

Policies
--------
``continuous``
    Release whenever the engine is free and the queue is non-empty,
    taking everything queued (up to ``max_size``) — continuous batching
    as modern serving stacks practice it.  ``max_size=1`` degenerates
    to no batching at all (the size-1 baseline the benches compare
    against).
``size``
    Size-triggered: hold the queue until ``size`` requests are waiting,
    then release exactly that many.  Maximises amortisation, unbounded
    wait at low load (the engine's drain flag flushes the remainder
    when the arrival stream ends).
``timeout``
    Deadline-triggered: release when the *oldest* queued request has
    waited ``timeout`` model-time units, or earlier if ``max_size``
    requests accumulate.  The classic bounded-wait compromise.

The engine calls :meth:`BatchPolicy.release_time` with the current
model clock whenever the machine is idle; the returned time is the
earliest the policy would release a batch from that queue *assuming no
further arrivals* (``inf`` for "not without more requests").  New
arrivals re-trigger the question, so policies stay pure functions of
the queue state.
"""

from __future__ import annotations

import math
from collections import deque

from .workload import Request

__all__ = [
    "BatchPolicy",
    "ContinuousBatcher",
    "SizeBatcher",
    "TimeoutBatcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
]


class BatchPolicy:
    """Base class: decide when a kind's FIFO queue releases a batch.

    Policies are stateless (configuration only); all queue state lives
    in the engine, so one policy instance can drive many engines.
    """

    name = "abstract"
    max_size: int = 2**31

    def release_time(self, queue: deque, now: float, draining: bool) -> float:
        """Earliest model time a batch should launch from ``queue``,
        assuming no further arrivals; ``math.inf`` for "not yet".

        ``draining`` is set by the engine once the arrival stream is
        exhausted and nothing is in flight — every policy must release
        a non-empty queue then, or the simulation could not terminate.
        """
        raise NotImplementedError

    def take(self, queue: deque, now: float) -> list[Request]:
        """Pop and return the batch to launch now (FIFO prefix)."""
        count = min(len(queue), self.max_size)
        return [queue.popleft() for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class ContinuousBatcher(BatchPolicy):
    """Serve whatever is queued the moment the engine is free."""

    name = "continuous"

    def __init__(self, max_size: int = 64) -> None:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.max_size = int(max_size)

    def release_time(self, queue: deque, now: float, draining: bool) -> float:
        return now if queue else math.inf


class SizeBatcher(BatchPolicy):
    """Hold the queue until ``size`` requests are waiting."""

    name = "size"

    def __init__(self, size: int = 16) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = int(size)
        self.max_size = int(size)

    def release_time(self, queue: deque, now: float, draining: bool) -> float:
        if not queue:
            return math.inf
        if len(queue) >= self.size or draining:
            return now
        return math.inf


class TimeoutBatcher(BatchPolicy):
    """Bounded wait: release when the head request has aged ``timeout``
    (or ``max_size`` requests accumulate, whichever happens first)."""

    name = "timeout"

    def __init__(self, timeout: float = 1024.0, max_size: int = 64) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        self.timeout = float(timeout)
        self.max_size = int(max_size)

    def release_time(self, queue: deque, now: float, draining: bool) -> float:
        if not queue:
            return math.inf
        if len(queue) >= self.max_size or draining:
            return now
        return max(now, queue[0].arrival + self.timeout)


_REGISTRY: dict[str, BatchPolicy] = {}


def register_batcher(policy: BatchPolicy) -> BatchPolicy:
    """Add a policy instance to the name registry (last write wins)."""
    _REGISTRY[policy.name] = policy
    return policy


for _policy in (ContinuousBatcher(), SizeBatcher(), TimeoutBatcher()):
    register_batcher(_policy)


def available_batchers() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def get_batcher(policy: str | BatchPolicy) -> BatchPolicy:
    """Resolve a policy by name (or pass an instance through)."""
    if isinstance(policy, BatchPolicy):
        return policy
    try:
        return _REGISTRY[policy]
    except KeyError:
        raise ValueError(
            f"unknown batching policy {policy!r}; available: {available_batchers()}"
        ) from None
