"""The serving engine: a preemptible event kernel over the ledger clock.

:class:`ServingEngine` turns the repo's offline machinery into an
online simulator: requests arrive (from a :class:`~repro.serve.workload.Workload`),
pass an :class:`~repro.serve.admission.AdmissionPolicy` (or are shed),
queue per *class* — a ``(priority, kind)`` pair — are grouped by a
:class:`~repro.serve.batcher.BatchPolicy`, and each released batch is
lowered through its request type's :meth:`~repro.serve.workload.RequestType.plan`
and executed **level by level** on an
:class:`~repro.core.program.ExecutionCursor`.  The simulated clock is
the model clock: every segment of a batch's execution advances the
engine clock by exactly the span of
:attr:`~repro.core.ledger.CostLedger.clock` it charges, so on a
:class:`~repro.core.parallel.ParallelTCUMachine` the clock advances by
scheduled makespans while the call trace keeps the true per-call
hardware work — the PR3 invariant, now driven by live traffic.

The loop is a discrete-event kernel over three event kinds, processed
in deterministic order (level-complete before arrival before release at
equal times, matching the run-to-completion engine's tie-breaks):

* **arrival** — the next request of the merged open-loop/injected
  stream joins its class queue, or is shed by the admission policy;
* **release** — a class queue whose batching policy fires becomes a
  running batch (earliest release first, higher class on ties; see
  :func:`~repro.serve.batcher.priority_release`);
* **level-complete** — the running cursor finished a level.  If the
  plan is exhausted the batch completes; otherwise, with preemption
  enabled, a strictly-higher-priority release due *now* checkpoints the
  batch at this boundary (its op values persist; nothing is charged)
  and the suspended cursor rejoins the scheduler.  Resuming later
  re-loads the remaining levels' resident blocks through the ledger's
  ``reload`` category (:meth:`~repro.core.program.ExecutionCursor.charge_reload`)
  — checkpoint/restore is never free.

Request types whose :meth:`plan` returns ``None`` (legacy/opaque
``serve`` implementations) execute atomically: correct, but never
preempted.

Three conservation properties pin the engine to the offline model (see
:meth:`ServeResult.check_conservation` and the replay tests):

* **Clock conservation.**  Each request's completion equals its batch's
  finish; for unpreempted batches ``finish = launch + service`` holds
  bit-exactly; the engine's busy time is the ledger-clock span of the
  whole run; and the final clock is the last completion.
* **Work conservation.**  A request type's model cost depends only on
  the batch's shapes, so replaying the recorded :class:`BatchRecord`
  stream through :func:`replay_batches` on *any* equivalently
  parameterised machine reproduces the served run's per-shape tensor
  and latency charges bit-identically.
* **Preemption conservation.**  A preempted run's charges equal the
  uninterrupted replay plus *exactly* the ledgered reload charges:
  suspension moves work in time, and the only extra cost is the
  explicitly priced resident-block re-load.

With preemption disabled and admission unbounded the kernel reproduces
the PR4 run-to-completion engine bit-identically (per-shape charges,
completions, clock) — pinned by ``tests/serve/test_preemption.py``.

Quickstart::

    >>> from repro.core.machine import TCUMachine
    >>> from repro.serve import PoissonWorkload, ServingEngine
    >>> machine = TCUMachine(m=16, ell=64.0)
    >>> wl = PoissonWorkload(rate=1e-4, total=32, kind="matmul", rows=8, seed=1)
    >>> result = ServingEngine(machine, batcher="continuous").serve(wl)
    >>> result.completed, result.clock > 0
    (32, True)
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from itertools import count

import numpy as np

from ..core.ledger import CostLedger
from ..core.machine import TCUMachine
from ..core.plan_cache import PlanCache
from ..core.program import CompiledCursor, ExecutionCursor
from ..obs.tracer import Tracer
from .admission import AdmissionPolicy, get_admission
from .batcher import BatchPolicy, get_batcher, priority_release
from .faults import (
    Degrader,
    FaultEvent,
    FaultInjector,
    RetryPolicy,
    get_fault_injector,
    get_retry_policy,
)
from .workload import Request, Workload, get_request_type

__all__ = ["ServingEngine", "ServeResult", "BatchRecord", "ServeError", "replay_batches"]


class ServeError(RuntimeError):
    """Raised on invalid serving states (non-monotone arrivals, a policy
    refusing to drain, a violated conservation invariant)."""


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """One executed batch: its composition and its place on the clock.

    The ``(kind, rows)`` pair is a complete recipe for re-executing the
    batch — request types charge from shapes alone — so a list of these
    records is an exact replay script for the whole served run (the
    replay pays no ``reload``: it runs uninterrupted).

    ``service`` is the total model time the machine spent on the batch,
    including any reload overhead (broken out in ``reload_time``);
    ``finish`` is the absolute completion clock.  For an unpreempted
    batch ``finish == launch + service`` bit-exactly; a preempted batch
    additionally sat suspended for ``finish - launch - service``.

    Under fault injection a batch may take several *attempts*:
    ``attempt_spans`` records the model time each attempt charged (they
    sum to ``service`` — failed work is real work), ``wasted_time`` is
    the portion of ``service`` that produced no surviving results,
    ``faults`` counts the fault events the batch absorbed, ``retry_at``
    the clock times its retries started, and ``first_failure`` the time
    its first fault surfaced (``recovery_time`` measures failure to
    finish).  ``degraded`` names the cheaper variant the batch was
    re-planned onto (``None`` when served at full fidelity; degraded
    ``rows`` are the rows actually executed, which a degraded batch's
    requests did not originally ask for).
    """

    index: int
    kind: str
    rids: tuple[int, ...]
    rows: tuple[int, ...]
    launch: float
    service: float
    priority: int = 0
    preemptions: int = 0
    reload_time: float = 0.0
    resumes: tuple[float, ...] = ()
    finish: float = math.nan
    attempts: int = 1
    attempt_spans: tuple[float, ...] = ()
    wasted_time: float = 0.0
    faults: int = 0
    retry_at: tuple[float, ...] = ()
    first_failure: float = math.nan
    degraded: str | None = None

    @property
    def size(self) -> int:
        return len(self.rids)

    @property
    def completion(self) -> float:
        if math.isnan(self.finish):
            return self.launch + self.service
        return self.finish

    @property
    def suspended_time(self) -> float:
        """Model time the batch sat checkpointed between its segments."""
        return self.completion - self.launch - self.service

    @property
    def recovery_time(self) -> float:
        """Model time from the batch's first fault to its completion
        (0 for batches that never failed)."""
        if math.isnan(self.first_failure):
            return 0.0
        return self.completion - self.first_failure

    def to_dict(self) -> dict:
        """JSON-ready view: tuples become lists, NaN sentinels ``None``."""
        return {
            "index": self.index,
            "kind": self.kind,
            "rids": list(self.rids),
            "rows": list(self.rows),
            "launch": self.launch,
            "service": self.service,
            "priority": self.priority,
            "preemptions": self.preemptions,
            "reload_time": self.reload_time,
            "resumes": list(self.resumes),
            "finish": None if math.isnan(self.finish) else self.finish,
            "attempts": self.attempts,
            "attempt_spans": list(self.attempt_spans),
            "wasted_time": self.wasted_time,
            "faults": self.faults,
            "retry_at": list(self.retry_at),
            "first_failure": (
                None if math.isnan(self.first_failure) else self.first_failure
            ),
            "degraded": self.degraded,
        }


@dataclass
class ServeResult:
    """Everything a served run produced: per-request records, per-batch
    records, shed requests, and the run-level clock accounting."""

    requests: list[Request]
    batches: list[BatchRecord]
    clock: float
    busy_time: float
    ledger_time: float
    policy: str
    machine: TCUMachine
    trace_start: int = 0
    trace_end: int = 0
    kind_time: dict[str, float] = field(default_factory=dict)
    shed: list[Request] = field(default_factory=list)
    preemptions: int = 0
    reload_time: float = 0.0
    admission: str = "unbounded"
    preempt: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cache_size: int = 0
    abandoned: list[Request] = field(default_factory=list)
    wasted_time: float = 0.0
    faults: int = 0
    fault_events: list[FaultEvent] = field(default_factory=list)
    retries: int = 0
    degraded: int = 0
    injector: str = "none"
    recovery: str = "checkpoint"
    retry_policy: str = "no-retry"

    @property
    def completed(self) -> int:
        return len(self.requests)

    @property
    def useful_time(self) -> float:
        """Charged time that produced surviving results:
        ``ledger_time - wasted_time - reload_time``."""
        return self.ledger_time - self.wasted_time - self.reload_time

    @property
    def wasted_ratio(self) -> float:
        """Fraction of the run's charged time that was wasted work."""
        return self.wasted_time / self.ledger_time if self.ledger_time else 0.0

    @property
    def availability(self) -> float | None:
        """Completions over everything the engine committed to serve
        (completed + abandoned; shed requests never entered service).
        ``None`` when nothing entered service."""
        entered = len(self.requests) + len(self.abandoned)
        return len(self.requests) / entered if entered else None

    @property
    def cache_lookups(self) -> int:
        """Plan-cache lookups this run made (0 when caching is off)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float | None:
        """Hit fraction of this run's plan-cache lookups (``None`` when
        the run made none — numeric machines, caching disabled)."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else None

    @property
    def offered(self) -> int:
        """Requests that arrived at the engine (completed + shed +
        abandoned)."""
        return len(self.requests) + len(self.shed) + len(self.abandoned)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests the admission policy refused."""
        offered = self.offered
        return len(self.shed) / offered if offered else 0.0

    def to_dict(self) -> dict:
        """JSON-ready view of the whole run — requests, batches, shed and
        abandoned records, fault events and the run-level accounting —
        so results ship in one artifact bundle next to traces and
        metrics.  The machine is identified by its config fingerprint
        (:meth:`~repro.core.machine.TCUMachine.config_key`), not
        embedded; derived quantities (rates, ``useful_time``…) are
        properties and recompute from the stored fields.  Strict JSON:
        NaN sentinels serialise as ``null``.
        """
        return {
            "requests": [r.to_dict() for r in self.requests],
            "batches": [b.to_dict() for b in self.batches],
            "clock": self.clock,
            "busy_time": self.busy_time,
            "ledger_time": self.ledger_time,
            "policy": self.policy,
            "machine": list(self.machine.config_key()),
            "trace_start": self.trace_start,
            "trace_end": self.trace_end,
            "kind_time": dict(self.kind_time),
            "shed": [r.to_dict() for r in self.shed],
            "preemptions": self.preemptions,
            "reload_time": self.reload_time,
            "admission": self.admission,
            "preempt": self.preempt,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_size": self.cache_size,
            "abandoned": [r.to_dict() for r in self.abandoned],
            "wasted_time": self.wasted_time,
            "faults": self.faults,
            "fault_events": [
                {
                    "kind": e.kind,
                    "batch": e.batch,
                    "level": e.level,
                    "attempt": e.attempt,
                    "clock": e.clock,
                }
                for e in self.fault_events
            ],
            "retries": self.retries,
            "degraded": self.degraded,
            "injector": self.injector,
            "recovery": self.recovery,
            "retry_policy": self.retry_policy,
        }

    def check_conservation(self, rel_tol: float = 1e-9) -> None:
        """Verify the engine-clock invariants; raises :class:`ServeError`.

        Every equality is checked to ``rel_tol`` (``math.isclose`` with
        matching absolute tolerance), so externally post-processed
        results can be validated under float round-off:

        * every request completed, launched at/after its arrival, and
          its completion matches its batch's ``finish``; for an
          unpreempted batch ``finish = launch + service``, for a
          preempted one ``finish >= launch + service`` (the gap is the
          suspended time) and its reloads are non-negative;
        * shed requests were never launched, and completed + shed
          accounts for every offered request;
        * with zero preemptions batches are serial: each launch at/after
          the previous completion (the PR4 invariant);
        * the busy time (sum of segment spans) matches the ledger-clock
          span of the run, per-batch reloads sum to the run's ledgered
          reload time (abandoned batches may hold the remainder), and
          the final clock is the last completion;
        * the identity sum(latency) = sum(wait) + sum over batches of
          ``size * (finish - launch)`` holds (up to float accumulation);
        * fault accounting conserves: ``total = useful + wasted +
          reload`` (``useful_time`` is non-negative), every batch's
          attempt spans sum to its service span, batches that never
          faulted carry no waste, a zero-fault run carries none at all,
          per-batch waste sums to the run's (abandoned batches hold the
          remainder), and abandoned requests never completed.

        All fault invariants hold vacuously on degenerate runs (zero
        requests, all shed, all abandoned).
        """

        def close(a: float, b: float) -> bool:
            return math.isclose(a, b, rel_tol=rel_tol, abs_tol=rel_tol)

        def allclose(a: np.ndarray, b) -> np.ndarray:
            # element-wise math.isclose with matching absolute tolerance
            return np.isclose(a, b, rtol=rel_tol, atol=rel_tol)

        # columnar views of the per-request / per-batch records: the
        # invariants below check whole arrays at once, and only on a
        # violation fall back to a scan for the offending record
        index_of = {b.index: i for i, b in enumerate(self.batches)}
        n = len(self.requests)
        arrivals = np.fromiter((r.arrival for r in self.requests), float, n)
        launches = np.fromiter((r.launch for r in self.requests), float, n)
        completions = np.fromiter((r.completion for r in self.requests), float, n)
        req_batch = np.fromiter(
            (index_of.get(r.batch, -1) for r in self.requests), np.int64, n
        )
        k = len(self.batches)
        b_launch = np.fromiter((b.launch for b in self.batches), float, k)
        b_service = np.fromiter((b.service for b in self.batches), float, k)
        b_finish = np.fromiter((b.completion for b in self.batches), float, k)
        b_reload = np.fromiter((b.reload_time for b in self.batches), float, k)
        b_size = np.fromiter((b.size for b in self.batches), np.int64, k)
        b_preempted = np.fromiter((b.preemptions for b in self.batches), np.int64, k)
        b_faults = np.fromiter((b.faults for b in self.batches), np.int64, k)
        b_wasted = np.fromiter((b.wasted_time for b in self.batches), float, k)

        if np.isnan(completions).any():
            bad = self.requests[int(np.isnan(completions).argmax())]
            raise ServeError(f"request {bad.rid} never completed")
        if (launches < arrivals).any():
            bad = self.requests[int((launches < arrivals).argmax())]
            raise ServeError(
                f"request {bad.rid} launched at {bad.launch} before its "
                f"arrival {bad.arrival}"
            )
        if (req_batch < 0).any():
            bad = self.requests[int((req_batch < 0).argmax())]
            raise ServeError(f"request {bad.rid} has no batch record")
        matched = allclose(completions, b_finish[req_batch]) if n else np.ones(0, bool)
        if not matched.all():
            bad = self.requests[int((~matched).argmax())]
            raise ServeError(
                f"request {bad.rid} completion {bad.completion} != its "
                f"batch's finish {b_finish[index_of[bad.batch]]}"
            )
        for req in self.shed:
            if req.done or not math.isnan(req.launch):
                raise ServeError(f"shed request {req.rid} was served anyway")

        if (b_reload < 0).any():
            bad = self.batches[int((b_reload < 0).argmax())]
            raise ServeError(f"batch {bad.index} has negative reload time")
        serial_span = b_launch + b_service
        unpreempted_ok = (
            allclose(b_finish, serial_span) | (b_preempted > 0) | (b_faults > 0)
        )
        if not unpreempted_ok.all():
            bad = self.batches[int((~unpreempted_ok).argmax())]
            raise ServeError(
                f"unpreempted batch {bad.index} finish {bad.completion} "
                f"!= launch+service {bad.launch + bad.service}"
            )
        preempted_ok = (
            ((b_preempted == 0) & (b_faults == 0))
            | (b_finish >= serial_span)
            | allclose(b_finish, serial_span)
        )
        if not preempted_ok.all():
            bad = self.batches[int((~preempted_ok).argmax())]
            raise ServeError(
                f"preempted batch {bad.index} finished at {bad.completion}, "
                f"before its {bad.service} of service could fit"
            )
        if self.preemptions == 0 and self.faults == 0 and k:
            prev = np.concatenate(([0.0], b_finish[:-1]))
            serial_ok = (b_launch >= prev) | allclose(b_launch, prev)
            if not serial_ok.all():
                bad = self.batches[int((~serial_ok).argmax())]
                raise ServeError(
                    f"batch {bad.index} launched at {bad.launch} while the "
                    f"engine was busy until {prev[int((~serial_ok).argmax())]}"
                )
        if k:
            last = float(b_finish.max())
            if not close(self.clock, last):
                raise ServeError(
                    f"final clock {self.clock} != last completion {last}"
                )
        if not close(self.busy_time, self.ledger_time):
            raise ServeError(
                f"busy time {self.busy_time} diverged from the ledger-clock "
                f"span {self.ledger_time}"
            )
        total_reload = float(b_reload.sum())
        if self.abandoned:
            # abandoned batches left no record; their reloads stay on
            # the ledger, so the recorded batches can only hold a part
            if total_reload > self.reload_time * (1 + rel_tol) + rel_tol:
                raise ServeError(
                    f"per-batch reloads {total_reload} exceed the run's "
                    f"ledgered reload time {self.reload_time}"
                )
        elif not close(total_reload, self.reload_time):
            raise ServeError(
                f"per-batch reloads {total_reload} != the run's ledgered "
                f"reload time {self.reload_time}"
            )
        total_latency = float((completions - arrivals).sum())
        total_wait = float((launches - arrivals).sum())
        total_span = float((b_size * (b_finish - b_launch)).sum())
        if not close(total_latency, total_wait + total_span):
            raise ServeError(
                f"sum(latency)={total_latency} != sum(wait)+sum(size*span)="
                f"{total_wait + total_span}"
            )

        # fault accounting: total = useful + wasted + reload
        for req in self.abandoned:
            if req.done:
                raise ServeError(f"abandoned request {req.rid} completed anyway")
        if self.wasted_time < 0:
            raise ServeError(f"negative wasted time {self.wasted_time}")
        if self.useful_time < -rel_tol * max(1.0, self.ledger_time):
            raise ServeError(
                f"useful time {self.useful_time} is negative: wasted "
                f"{self.wasted_time} + reload {self.reload_time} exceed "
                f"the ledger span {self.ledger_time}"
            )
        if self.faults == 0 and not close(self.wasted_time, 0.0):
            raise ServeError(
                f"zero-fault run carries {self.wasted_time} of wasted time"
            )
        if (b_wasted < 0).any():
            bad = self.batches[int((b_wasted < 0).argmax())]
            raise ServeError(f"batch {bad.index} has negative wasted time")
        faultless_waste = (b_faults == 0) & ~allclose(b_wasted, 0.0)
        if faultless_waste.any():
            bad = self.batches[int(faultless_waste.argmax())]
            raise ServeError(
                f"batch {bad.index} never faulted but wasted {bad.wasted_time}"
            )
        total_wasted = float(b_wasted.sum())
        if self.abandoned:
            if total_wasted > self.wasted_time * (1 + rel_tol) + rel_tol:
                raise ServeError(
                    f"per-batch waste {total_wasted} exceeds the run's "
                    f"wasted time {self.wasted_time}"
                )
        elif not close(total_wasted, self.wasted_time):
            raise ServeError(
                f"per-batch waste {total_wasted} != the run's wasted "
                f"time {self.wasted_time}"
            )
        for batch in self.batches:
            if not batch.attempt_spans:
                continue
            if len(batch.attempt_spans) != batch.attempts:
                raise ServeError(
                    f"batch {batch.index} records {batch.attempts} attempts "
                    f"but {len(batch.attempt_spans)} attempt spans"
                )
            attempt_sum = float(sum(batch.attempt_spans))
            if not close(attempt_sum, batch.service):
                raise ServeError(
                    f"batch {batch.index} attempt spans sum to {attempt_sum} "
                    f"!= its service {batch.service}"
                )


class _Run:
    """An in-flight batch: its requests, cursor and clock bookkeeping.

    ``seg_clock``/``seg_base`` anchor the current execution segment on
    the engine and ledger clocks; ``boundary`` is the absolute engine
    time of the last executed level's completion.  A batch's completion
    is always computed as ``seg_clock + (ledger now - seg_base)`` — for
    a single-segment batch that is bit-identical to the old engine's
    ``launch + stopwatch span``.
    """

    __slots__ = (
        "index",
        "kind",
        "priority",
        "requests",
        "cursor",
        "launch",
        "seg_clock",
        "seg_base",
        "boundary",
        "service",
        "reload",
        "preemptions",
        "resumes",
        "rows",
        "rtype",
        "exec_machine",
        "atomic",
        "pending_fail",
        "last_span",
        "ready_at",
        "retry_pending",
        "degrade_pending",
        "degraded",
        "attempt_span",
        "attempt_reload",
        "attempt_spans",
        "retry_at",
        "wasted",
        "faults",
        "first_failure",
        "trace_mark",
    )

    def __init__(
        self, index: int, kind: str, priority: int, requests: list[Request], launch: float
    ) -> None:
        self.index = index
        self.kind = kind
        self.priority = priority
        self.requests = requests
        self.cursor: ExecutionCursor | CompiledCursor | None = None
        self.launch = launch
        self.seg_clock = launch
        self.seg_base = 0.0
        self.boundary = launch
        self.service = 0.0
        self.reload = 0.0
        self.preemptions = 0
        self.resumes: list[float] = []
        # fault-tolerance bookkeeping (inert on a zero-fault run)
        self.rows: list[int] = []
        self.rtype = None
        self.exec_machine: TCUMachine | None = None
        self.atomic = False
        self.pending_fail: str | None = None
        self.last_span = 0.0
        self.ready_at = 0.0
        self.retry_pending = False
        self.degrade_pending = False
        self.degraded: str | None = None
        self.attempt_span = 0.0
        self.attempt_reload = 0.0
        self.attempt_spans: list[float] = []
        self.retry_at: list[float] = []
        self.wasted = 0.0
        self.faults = 0
        self.first_failure = math.nan
        self.trace_mark = 0  # call-trace cursor for per-level unit lanes


class ServingEngine:
    """One machine, one batching policy, one admission policy.

    Parameters
    ----------
    machine:
        The (m, l)-TCU (or parallel machine) that executes batches.
    batcher:
        A :class:`~repro.serve.batcher.BatchPolicy` (or registered
        name) deciding when a class queue becomes a batch.
    admission:
        An :class:`~repro.serve.admission.AdmissionPolicy` (or name)
        consulted at every arrival; refusals are shed, not queued.
    preempt:
        Enable priority preemption: a strictly-higher-class release due
        at a running batch's level boundary checkpoints the batch there
        and resumes it later, paying the ledgered ``reload`` charge.
        Off by default — the engine is then bit-identical to the PR4
        run-to-completion loop.
    faults:
        A :class:`~repro.serve.faults.FaultInjector` (or registered
        name) drawing per-level faults and unit crashes from its own
        seeded streams.  ``None`` (default) or an inactive injector
        (``"none"``, or ``"seeded"`` with all rates zero) keeps the
        exact zero-fault code path — bit-identical to no injector.
    retry:
        A :class:`~repro.serve.faults.RetryPolicy` (or name) governing
        how many attempts a failed batch gets and the backoff between
        them.  Default ``"no-retry"``: any failure abandons the batch.
    recovery:
        ``"checkpoint"`` (default) resumes a failed cursor from its
        last completed level, paying the ledgered reload and wasting
        only the failed level; ``"restart"`` rewinds to level 0 and
        wastes the whole attempt.  Atomic (plan-less) batches always
        restart — there is no checkpoint to resume.
    degrade:
        A :class:`~repro.serve.faults.Degrader`, or ``None`` (default).
        When set, a batch that keeps failing (or whose deadline the
        next backoff would blow) is re-planned onto the cheaper
        variant on its next retry.
    abandon:
        Abandon batches whose every request's deadline has already
        passed when they would launch or retry (their charges stay on
        the ledger as wasted work).  Off by default; retry-budget
        exhaustion abandons regardless.
    plan_cache:
        Plan caching for the execution hot path.  ``None`` (default)
        auto-enables a fresh :class:`~repro.core.plan_cache.PlanCache`
        on cost-only machines and disables it on numeric ones (replay
        charges costs but produces no values); ``False`` disables
        caching unconditionally; ``True`` requests a fresh cache; a
        :class:`PlanCache` instance is used as-is (and may be shared
        across engines — the config fingerprint in its key keeps
        differently parameterised machines apart).  Explicitly
        requesting a cache on a numeric machine is a :class:`ValueError`.
    tracer:
        A :class:`~repro.obs.tracer.Tracer`, or ``None`` (default).
        When set, :meth:`serve` emits request/segment/level/fault spans
        and registry metrics, all timestamped on the simulated clock —
        charges, clock and results are bit-identical to an untraced
        run.  ``None`` keeps the exact untraced code path.  A tracer
        with ``detail="level"`` forces stepwise execution so per-level
        spans are always recorded (stepwise replay is charge-identical;
        only event granularity changes).

    With caching active, each batch's ``(kind, rows)`` is compiled once
    into a frozen charge tensor and replayed thereafter as one bulk
    ledger operation per level (or one per *batch* when the whole plan
    coalesces) — bit-identical charges, clock and preemption behaviour
    to live execution, at a fraction of the Python cost.
    """

    def __init__(
        self,
        machine: TCUMachine,
        batcher: str | BatchPolicy = "continuous",
        *,
        admission: str | AdmissionPolicy = "unbounded",
        preempt: bool = False,
        faults: str | FaultInjector | None = None,
        retry: str | RetryPolicy = "no-retry",
        recovery: str = "checkpoint",
        degrade: Degrader | None = None,
        abandon: bool = False,
        plan_cache: PlanCache | bool | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.machine = machine
        self.batcher = get_batcher(batcher)
        self.admission = get_admission(admission)
        self.preempt = bool(preempt)
        self.faults = None if faults is None else get_fault_injector(faults)
        self.retry = get_retry_policy(retry)
        if recovery not in ("checkpoint", "restart"):
            raise ValueError(
                f"unknown recovery policy {recovery!r}; "
                "choose 'checkpoint' or 'restart'"
            )
        self.recovery = recovery
        if degrade is not None and not isinstance(degrade, Degrader):
            raise ValueError(f"degrade must be a Degrader or None, got {degrade!r}")
        self.degrade = degrade
        self.abandon = bool(abandon)
        cost_only = machine.execute == "cost-only"
        if plan_cache is None:
            self.plan_cache = PlanCache() if cost_only else None
        elif plan_cache is False:
            self.plan_cache = None
        else:
            if not cost_only:
                raise ValueError(
                    "plan caching replays charges without producing values; "
                    'it requires a machine with execute="cost-only"'
                )
            self.plan_cache = PlanCache() if plan_cache is True else plan_cache
        if tracer is not None and not isinstance(tracer, Tracer):
            raise ValueError(f"tracer must be a Tracer or None, got {tracer!r}")
        self.tracer = tracer

    def serve(
        self, workload: Workload, *, validate: bool = True, seed: int | None = None
    ) -> ServeResult:
        machine = self.machine
        ledger = machine.ledger
        policy = self.batcher
        admission = self.admission
        injector = self.faults
        retry = self.retry
        degrader = self.degrade
        # one top-level seed reproduces the whole faulty run: it splits
        # into independent workload and fault streams, so changing the
        # fault seed never shifts an arrival (and vice versa)
        if seed is not None:
            wl_state, fault_state = np.random.SeedSequence(int(seed)).generate_state(2)
            workload.reseed(int(wl_state))
            if injector is not None:
                injector.reseed(int(fault_state))
        if injector is not None:
            injector.begin_run()
        fault_active = injector is not None and injector.active
        tr = self.tracer
        tracing = tr is not None
        # an inactive injector must not perturb the event kernel at all:
        # stepwise execution is forced only when faults can actually
        # fire (or a tracer explicitly asks for per-level spans —
        # stepwise replay is charge-identical, see CompiledCursor)
        stepwise = self.preempt or fault_active or (tracing and tr.detail == "level")
        queues: dict[tuple[int, str], deque[Request]] = {}
        injected: list[tuple[float, int, Request]] = []
        seq = count()
        base = iter(workload.requests())
        base_head = next(base, None)
        last_arrival = -math.inf

        def next_arrival_time() -> float:
            bt = base_head.arrival if base_head is not None else math.inf
            it = injected[0][0] if injected else math.inf
            return min(bt, it)

        def pop_arrival() -> Request:
            nonlocal base_head, last_arrival
            bt = base_head.arrival if base_head is not None else math.inf
            it = injected[0][0] if injected else math.inf
            if bt <= it:
                req = base_head
                base_head = next(base, None)
            else:
                req = heapq.heappop(injected)[2]
            if req.arrival < last_arrival:
                raise ServeError(
                    f"arrival stream is not time-ordered: {req.arrival} after "
                    f"{last_arrival}"
                )
            last_arrival = req.arrival
            return req

        clock = 0.0
        completion_clock = 0.0
        running: _Run | None = None
        suspended: list[_Run] = []
        finished: list[Request] = []
        shed: list[Request] = []
        abandoned: list[Request] = []
        fault_events: list[FaultEvent] = []
        down_until = 0.0  # unit under repair until this model time
        retries_total = 0
        degraded_total = 0
        wasted_total = 0.0
        degraded_machine: TCUMachine | None = None  # lazy quantized twin
        batches: list[BatchRecord | None] = []
        trace_start = len(ledger.calls) if ledger.trace_calls is True else 0
        ledger_start = ledger.clock
        reload_start = ledger.reload_time
        busy_time = 0.0
        preemptions_total = 0
        # per-run section baselines: ledger sections are cumulative over
        # the machine's lifetime, results report only this run's share
        kind_base: dict[str, float] = {}
        rtypes: dict[str, object] = {}  # per-run registry memo
        cache = self.plan_cache
        cache_hits_start = cache.hits if cache is not None else 0
        cache_misses_start = cache.misses if cache is not None else 0

        # telemetry plumbing: metric handles are resolved once, every
        # emission below sits behind `if tracing` so tracer=None keeps
        # the untraced hot path (one falsy branch per event)
        sampler = tr.sampler if tracing else None
        sampling = sampler is not None
        queued_now = 0
        if tracing:
            reg = tr.registry
            g_queue = reg.gauge("queue_depth", "requests waiting in class queues")
            g_inflight = reg.gauge("in_flight_rows", "rows of the running batch")
            g_avail = reg.gauge(
                "availability", "completed over completed + abandoned"
            )
            g_cache = reg.gauge("cache_hit_rate", "plan-cache hit fraction, this run")
            c_completed = reg.counter("requests_completed")
            c_shed = reg.counter("requests_shed")
            c_abandoned = reg.counter("requests_abandoned")
            c_preempt = reg.counter("preemptions")
            c_faults = reg.counter("faults")
            c_retries = reg.counter("retries")
            h_latency = reg.histogram(
                "request_latency",
                tuple(10.0**k for k in range(-3, 10)),
                "end-to-end request latency (model time)",
            )
            slo_stats: dict[int, list[int]] = {}  # priority -> [hits, total]
            full_trace = ledger.trace_calls is True
            # the per-request completion loop is the one traced path that
            # scales with the stream, not with batches/faults: pre-bind
            # its callees and append request rows directly in the
            # tracer's documented tuple layout
            observe_latency = h_latency.observe
            request_rows_append = tr.requests.append

        def note_availability() -> None:
            entered = len(finished) + len(abandoned)
            if entered:
                g_avail.set(len(finished) / entered)

        def admit(req: Request) -> None:
            nonlocal queued_now
            key = (req.priority, req.kind)
            queue = queues.setdefault(key, deque())
            if admission.admit(req, queue, clock):
                queue.append(req)
                if tracing:
                    queued_now += 1
                    if sampling:
                        g_queue.set(queued_now)
            else:
                shed.append(req)
                if tracing:
                    c_shed.inc()
                    tr.request_shed(
                        req.rid, req.kind, req.priority, req.arrival, ts=clock
                    )

        def set_boundary(run: _Run) -> None:
            run.boundary = run.seg_clock + (ledger.clock - run.seg_base)

        def up_time(t: float) -> float:
            """Earliest model time >= ``t`` the unit is up, consuming
            every crash window due by then.  Called only on *committed*
            action times — consuming windows while merely evaluating
            candidates would corrupt the renewal stream."""
            nonlocal down_until
            t = max(t, down_until)
            while injector.next_crash() <= t:
                crash_at, up = injector.take_crash()
                if tracing:
                    tr.down(start=crash_at, end=up)
                down_until = max(down_until, up)
                t = max(t, down_until)
            return t

        def add_wasted(run: _Run, span: float) -> None:
            nonlocal wasted_total
            if span <= 0.0:
                return
            ledger.attribute_wasted(span)
            run.wasted += span
            wasted_total += span

        def exec_unit(run: _Run) -> None:
            """Execute one unit of work — a level (stepwise) or the whole
            remaining plan — drawing this unit's fault before running it.

            With preemption off and no active injector nothing can
            interrupt a running batch (releases happen only at idle), so
            the cursor runs to exhaustion in one event — on a cached
            plan that is a single coalesced bulk charge.  Stepwise
            execution keeps level boundaries visible to the kernel, for
            preemption and for faults alike.
            """
            nonlocal down_until
            factor, corrupt = (1.0, False)
            if fault_active:
                factor, corrupt = injector.draw_level()
            span_base = ledger.clock
            with ledger.section(f"serve:{run.kind}"):
                if run.cursor is not None:
                    if stepwise:
                        run.cursor.step()
                    else:
                        run.cursor.run()
                else:
                    run.rtype.serve(run.exec_machine, run.rows)  # atomic
                if factor > 1.0:
                    # straggler: the level really ran factor-x slower;
                    # the surplus is charged (cpu) but the level still
                    # completes, so it is useful work, not waste
                    ledger.charge_cpu((factor - 1.0) * (ledger.clock - span_base))
            run.last_span = ledger.clock - span_base
            set_boundary(run)
            if fault_active:
                crashed = False
                while injector.next_crash() <= run.boundary:
                    crash_at, up = injector.take_crash()
                    if tracing:
                        tr.down(start=crash_at, end=up)
                    down_until = max(down_until, up)
                    crashed = True
                run.pending_fail = (
                    "crash" if crashed else "transient" if corrupt else None
                )

        def build_cursor(run: _Run, exec_machine: TCUMachine, rows: list[int]) -> None:
            """(Re)plan the batch on ``exec_machine`` — at launch, or at
            a degraded retry (a re-plan can never checkpoint-resume)."""
            run.exec_machine = exec_machine
            run.rows = rows
            run.atomic = False
            run.cursor = None
            with ledger.section(f"serve:{run.kind}"):
                if cache is not None:
                    compiled = cache.get_or_compile(run.rtype, exec_machine, rows)
                    run.cursor = CompiledCursor(compiled, exec_machine)
                else:
                    plan = run.rtype.plan(exec_machine, rows)
                    if plan is None:
                        run.atomic = True  # legacy serve(): no checkpoints
                    elif plan.levels:
                        run.cursor = ExecutionCursor(plan, exec_machine)
            if tracing and stepwise and run.cursor is not None:
                attach_level_observer(run)

        def attach_level_observer(run: _Run) -> None:
            """Wire the cursor's observer hook to per-level trace spans.

            Level endpoints are mapped through the segment anchor
            (``seg_clock + charged-so-far``), i.e. derived from the same
            ledger deltas the engine clock advances by; ``trace_mark``
            slices the call trace to tag the level with the tensor
            units that executed it (full-trace ledgers only).
            """
            cursor = run.cursor
            run.trace_mark = len(ledger.calls)

            def observe(level: int, elapsed: float) -> None:
                lvl_end = run.seg_clock + (ledger.clock - run.seg_base)
                lvl_start = lvl_end - elapsed
                units: tuple[int, ...] = ()
                if full_trace:
                    mark = len(ledger.calls)
                    lo = run.trace_mark
                    if mark > lo:
                        lane_ids = ledger.calls.unit_ids()[lo:mark]
                        units = tuple(np.unique(lane_ids).tolist())
                    run.trace_mark = mark
                tr.level_span(run.index, level, units, start=lvl_start, end=lvl_end)

            cursor.observer = observe

        def launch(key: tuple[int, str], release: float) -> None:
            nonlocal clock, running
            priority, kind = key
            clock = max(clock, release)
            batch = policy.take(queues[key], clock)
            if not batch:
                raise ServeError(f"policy {policy.name!r} released an empty batch")
            if tracing:
                nonlocal queued_now
                queued_now -= len(batch)
                if sampling:
                    g_queue.set(queued_now)
            if self.abandon:
                live: list[Request] = []
                for req in batch:
                    if req.deadline is not None and req.deadline <= clock:
                        abandoned.append(req)
                        if tracing:
                            c_abandoned.inc()
                            tr.request_abandoned(
                                req.rid,
                                req.kind,
                                req.priority,
                                req.arrival,
                                req.launch,
                                -1,
                                ts=clock,
                            )
                    else:
                        live.append(req)
                if not live:
                    if sampling:
                        note_availability()
                    return
                batch = live
            rtype = rtypes.get(kind)
            if rtype is None:
                rtype = rtypes[kind] = get_request_type(kind)
                kind_base[kind] = ledger.section_time(f"serve:{kind}")
            run = _Run(len(batches), kind, priority, batch, clock)
            run.rtype = rtype
            batches.append(None)  # slot: filled by complete()
            for req in batch:
                req.launch = clock
                req.batch = run.index
            run.seg_base = ledger.clock
            build_cursor(run, machine, [r.rows for r in batch])
            if sampling:
                g_inflight.set(sum(run.rows))
                if cache is not None:
                    lookups = (
                        cache.hits + cache.misses
                        - cache_hits_start - cache_misses_start
                    )
                    if lookups:
                        g_cache.set((cache.hits - cache_hits_start) / lookups)
            if run.cursor is not None or run.atomic:
                exec_unit(run)
            else:
                set_boundary(run)  # empty plan: completes instantly
            running = run

        def charge_resume_reload(run: _Run) -> None:
            with ledger.section(f"serve:{run.kind}"):
                reload = run.cursor.charge_reload()
                run.reload += reload
                run.attempt_reload += reload
            if tracing and reload:
                tr.reload_event(run.index, reload, ts=clock)

        def resume(run: _Run, at: float) -> None:
            nonlocal clock, running, degraded_machine, degraded_total
            clock = max(clock, at)
            run.seg_clock = clock
            run.seg_base = ledger.clock
            if tracing:
                run.trace_mark = len(ledger.calls)
                if sampling:
                    g_inflight.set(sum(run.rows))
            if not run.retry_pending:
                # preemption resume: the PR5 path, bit-identical when
                # no fault machinery is configured
                run.resumes.append(clock)
                if tracing:
                    tr.instant("resume", ts=clock, batch=run.index)
                charge_resume_reload(run)
                exec_unit(run)
                running = run
                return
            run.retry_pending = False
            run.ready_at = 0.0
            run.retry_at.append(clock)
            if tracing:
                retry_no = len(run.retry_at)
                tr.instant(
                    "retry", ts=clock, batch=run.index, detail=f"attempt {retry_no}"
                )
            if run.degrade_pending:
                run.degrade_pending = False
                degraded_total += 1
                if degrader.mode == "quantize":
                    if degraded_machine is None:
                        degraded_machine = degrader.quantized_twin(machine)
                    run.degraded = f"quantize:{degrader.precision}"
                    build_cursor(run, degraded_machine, run.rows)
                else:
                    run.degraded = "rows"
                    build_cursor(run, machine, degrader.degraded_rows(run.rows))
                if tracing:
                    tr.instant(
                        f"degrade:{run.degraded}", ts=clock, batch=run.index
                    )
            elif (
                self.recovery == "checkpoint"
                and run.cursor is not None
                and run.cursor.next_level > 0
            ):
                # resuming mid-plan re-loads the remaining resident
                # blocks, exactly as a preemption resume does; a restart
                # (or a failure on the very first level) has no resident
                # state to re-load and pays only the re-run levels
                charge_resume_reload(run)
            if run.cursor is not None or run.atomic:
                exec_unit(run)
            else:
                set_boundary(run)
            running = run

        def advance(run: _Run) -> None:
            exec_unit(run)

        def close_segment(run: _Run) -> None:
            nonlocal busy_time
            span = ledger.clock - run.seg_base
            run.service += span
            run.attempt_span += span
            busy_time += span
            if tracing:
                # the exact float close_segment just folded into
                # busy_time, in the same order: trace segments sum to
                # the run's busy time bit-exactly
                tr.segment(
                    run.index, run.kind, run.priority,
                    start=run.seg_clock, dur=span,
                )

        def suspend(run: _Run) -> None:
            nonlocal running, preemptions_total
            close_segment(run)
            run.preemptions += 1
            preemptions_total += 1
            suspended.append(run)
            running = None
            if tracing:
                c_preempt.inc()
                if sampling:
                    g_inflight.set(0)
                tr.instant("preempt", ts=clock, batch=run.index)

        def abandon_run(run: _Run) -> None:
            # everything the batch charged, minus its separately
            # accounted reloads and what is already attributed, is waste:
            # an abandoned batch produced nothing
            add_wasted(run, run.service - run.reload - run.wasted)
            abandoned.extend(run.requests)
            if tracing:
                c_abandoned.inc(len(run.requests))
                for req in run.requests:
                    tr.request_abandoned(
                        req.rid, req.kind, req.priority,
                        req.arrival, req.launch, run.index,
                        ts=clock,
                    )
                if sampling:
                    note_availability()

        def park(run: _Run, ready_at: float) -> None:
            nonlocal retries_total
            run.retry_pending = True
            run.ready_at = ready_at
            retries_total += 1
            suspended.append(run)
            if tracing:
                c_retries.inc()
                tr.wait(
                    run.index, run.kind, run.priority, start=clock, end=ready_at
                )

        def fail(run: _Run) -> None:
            nonlocal running
            fkind = run.pending_fail
            run.pending_fail = None
            close_segment(run)
            run.faults += 1
            if math.isnan(run.first_failure):
                run.first_failure = clock
            level = -1 if run.cursor is None else run.cursor.next_level - 1
            run.attempt_spans.append(run.attempt_span)
            attempt = len(run.attempt_spans)
            fault_events.append(FaultEvent(fkind, run.index, level, attempt, clock))
            running = None
            if tracing:
                c_faults.inc()
                if sampling:
                    g_inflight.set(0)
                tr.instant(
                    f"fault:{fkind}",
                    ts=clock,
                    batch=run.index,
                    detail=f"level {level}, attempt {attempt}",
                )
            if attempt >= retry.max_attempts:
                abandon_run(run)
                return
            delay = retry.delay(attempt + 1)
            if self.abandon and all(
                r.deadline is not None and r.deadline <= clock
                for r in run.requests
            ):
                abandon_run(run)
                return
            if degrader is not None and run.degraded is None and not run.degrade_pending:
                pressure = any(
                    r.deadline is not None and clock + delay >= r.deadline
                    for r in run.requests
                )
                if degrader.wants(attempt, pressure):
                    run.degrade_pending = True
            if (
                run.cursor is not None
                and self.recovery == "checkpoint"
                and not run.degrade_pending
            ):
                # only the failed level is lost; completed levels stand
                add_wasted(run, run.last_span)
                run.cursor.rewind(run.cursor.next_level - 1)
            else:
                # restart (or imminent re-plan): the whole attempt is
                # lost, except its reloads, which sit in their own bucket
                add_wasted(run, run.attempt_span - run.attempt_reload)
                if run.cursor is not None:
                    run.cursor.rewind(0)
            run.attempt_span = 0.0
            run.attempt_reload = 0.0
            park(run, clock + delay)

        def complete(run: _Run) -> None:
            nonlocal running, completion_clock
            close_segment(run)
            finish = run.boundary
            completion_clock = max(completion_clock, finish)
            spans = (
                (*run.attempt_spans, run.attempt_span) if fault_active else ()
            )
            batches[run.index] = BatchRecord(
                index=run.index,
                kind=run.kind,
                rids=tuple(r.rid for r in run.requests),
                rows=tuple(run.rows),
                launch=run.launch,
                service=run.service,
                priority=run.priority,
                preemptions=run.preemptions,
                reload_time=run.reload,
                resumes=tuple(run.resumes),
                finish=finish,
                attempts=len(spans) if spans else 1,
                attempt_spans=spans,
                wasted_time=run.wasted,
                faults=run.faults,
                retry_at=tuple(run.retry_at),
                first_failure=run.first_failure,
                degraded=run.degraded,
            )
            for req in run.requests:
                req.completion = finish
                finished.append(req)
                for new in workload.on_complete(req, finish):
                    heapq.heappush(injected, (new.arrival, next(seq), new))
            running = None
            if tracing:
                c_completed.inc(len(run.requests))
                if sampling:
                    g_inflight.set(0)
                for req in run.requests:
                    latency = finish - req.arrival
                    if sampling:
                        observe_latency(latency)
                    met = None if req.slo is None else latency <= req.slo
                    request_rows_append(
                        (req.rid, req.kind, req.priority, "done",
                         req.arrival, req.launch, finish, run.index, met)
                    )
                    if met is not None:
                        tr.observe_slo(req.priority, met, ts=finish)
                        stats = slo_stats.setdefault(req.priority, [0, 0])
                        stats[0] += met
                        stats[1] += 1
                        if sampling:
                            reg.gauge(
                                "slo_attainment",
                                labels={"class": str(req.priority)},
                            ).set(stats[0] / stats[1])
                tr.batch_done(
                    run.index, run.kind, run.priority, len(run.requests),
                    run.service, run.reload, run.wasted, run.faults,
                    launch=run.launch, ts=finish,
                )
                if sampling:
                    note_availability()

        if tracing:
            tr.bind_ledger(ledger)
        try:
            while True:
                na = next_arrival_time()
                if sampling and sampler.due(clock):
                    sampler.sample(reg, ts=clock)
                if running is not None:
                    # level-complete vs arrival, boundary first at equal
                    # times (the PR4 completion/arrival tie-break); every
                    # arrival due strictly before the boundary is admitted
                    # in one pump instead of a full event-loop turn each
                    boundary = running.boundary
                    while na < boundary:
                        clock = na
                        admit(pop_arrival())
                        na = next_arrival_time()
                    clock = boundary
                    run = running
                    if run.pending_fail is not None:
                        # the just-executed unit was lost: account, rewind,
                        # and (budget permitting) schedule the retry
                        fail(run)
                    elif run.cursor is None or run.cursor.done:
                        complete(run)
                    else:
                        contender = None
                        if self.preempt:
                            contender = priority_release(
                                queues, policy, clock, False, above=run.priority
                            )
                            if contender is not None and contender[0] > clock:
                                contender = None  # due later: keep running
                        if contender is not None:
                            suspend(run)
                        else:
                            advance(run)
                    continue

                # machine idle: resume / release selection.  Candidates are
                # ordered by (release, -priority, action rank, tie-break);
                # a suspended batch resumes at `clock` and outranks a fresh
                # launch of its own class at the same instant.  A retrying
                # batch is not ready before its backoff expires, and nothing
                # starts while the unit is down — both terms are 0 on a
                # zero-fault run, so the keys collapse to the PR5 ones.
                draining = na == math.inf
                best: tuple | None = None
                if suspended:
                    bi = min(
                        range(len(suspended)),
                        key=lambda i: (
                            max(clock, suspended[i].ready_at, down_until),
                            -suspended[i].priority,
                            i,
                        ),
                    )
                    ready = max(clock, suspended[bi].ready_at, down_until)
                    best = (ready, -suspended[bi].priority, 0, bi, ("resume", bi))
                released = priority_release(queues, policy, clock, draining)
                if released is not None:
                    release, priority, head_arrival, key = released
                    candidate = (
                        max(release, down_until),
                        -priority,
                        1,
                        (head_arrival, key[1]),
                        ("launch", key),
                    )
                    if best is None or candidate[:4] < best[:4]:
                        best = candidate

                # strict <: an arrival at the release instant is admitted
                # first, so simultaneous arrivals batch together instead of
                # splitting into a size-1 batch plus a remainder
                if best is not None and best[0] < na:
                    when = best[0]
                    if fault_active:
                        # commit point: consume crash windows due by now; a
                        # repair may push the action past the next arrival,
                        # in which case the arrival goes first
                        when = up_time(when)
                        if na <= when and na < math.inf:
                            clock = na
                            admit(pop_arrival())
                            continue
                    action, payload = best[4]
                    if action == "resume":
                        resume(suspended.pop(payload), when)
                    else:
                        launch(payload, when)
                elif na < math.inf:
                    clock = na
                    admit(pop_arrival())
                else:
                    stranded = sum(len(q) for q in queues.values())
                    if stranded:
                        raise ServeError(
                            f"policy {policy.name!r} refused to drain "
                            f"{stranded} queued request(s)"
                        )
                    break
        finally:
            # the charge hook must never outlive the run: the
            # machine's ledger may be reused by later serves
            if tracing:
                tr.unbind_ledger(ledger)
        if sampling:
            sampler.sample(reg, ts=clock, force=True)
        elif tracing:
            # without a sampler no one observes intermediate gauge or
            # histogram state, so the hot path skips those updates;
            # record the end-of-run values now so the final registry
            # snapshot matches a sampled run's last row (bucket counts
            # exactly; the histogram sum up to float association)
            h_latency.observe_many(
                [req.completion - req.arrival for req in finished]
            )
            g_queue.set(queued_now)
            g_inflight.set(0)
            note_availability()
            if cache is not None:
                lookups = (
                    cache.hits + cache.misses
                    - cache_hits_start - cache_misses_start
                )
                if lookups:
                    g_cache.set((cache.hits - cache_hits_start) / lookups)
            for priority, stats in slo_stats.items():
                reg.gauge(
                    "slo_attainment", labels={"class": str(priority)}
                ).set(stats[0] / stats[1])

        result = ServeResult(
            requests=finished,
            batches=[b for b in batches if b is not None],
            clock=completion_clock if batches else 0.0,
            busy_time=busy_time,
            ledger_time=ledger.clock - ledger_start,
            policy=policy.name,
            machine=machine,
            trace_start=trace_start,
            trace_end=len(ledger.calls) if ledger.trace_calls is True else 0,
            kind_time={
                kind: ledger.section_time(f"serve:{kind}") - base_time
                for kind, base_time in kind_base.items()
            },
            shed=shed,
            preemptions=preemptions_total,
            reload_time=ledger.reload_time - reload_start,
            admission=admission.name,
            preempt=self.preempt,
            cache_hits=(cache.hits - cache_hits_start) if cache is not None else 0,
            cache_misses=(
                (cache.misses - cache_misses_start) if cache is not None else 0
            ),
            cache_size=len(cache) if cache is not None else 0,
            abandoned=abandoned,
            wasted_time=wasted_total,
            faults=len(fault_events),
            fault_events=fault_events,
            retries=retries_total,
            degraded=degraded_total,
            injector=injector.name if injector is not None else "none",
            recovery=self.recovery,
            retry_policy=retry.name,
        )
        if validate:
            result.check_conservation()
        return result


def replay_batches(
    batches: list[BatchRecord], machine: TCUMachine
) -> CostLedger:
    """Re-execute a served run's batches, in order, on ``machine``.

    Because request types charge from shapes alone, the replayed
    ledger's *hardware work* — per-shape call totals, call count, and
    (on serial machines) the tensor/latency time columns — is
    bit-identical to the served run's, whatever mix of numeric,
    cost-only, serial or multi-unit machines the two sides use.  A
    replay runs every batch uninterrupted, so it never pays ``reload``:
    a preempted run's total charges exceed its replay by exactly the
    served run's ledgered reload time — the preemption-conservation
    gate.

    Returns the machine's ledger for inspection.
    """
    for batch in batches:
        get_request_type(batch.kind).serve(machine, batch.rows)
    return machine.ledger
