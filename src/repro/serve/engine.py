"""The serving engine: a preemptible event kernel over the ledger clock.

:class:`ServingEngine` turns the repo's offline machinery into an
online simulator: requests arrive (from a :class:`~repro.serve.workload.Workload`),
pass an :class:`~repro.serve.admission.AdmissionPolicy` (or are shed),
queue per *class* — a ``(priority, kind)`` pair — are grouped by a
:class:`~repro.serve.batcher.BatchPolicy`, and each released batch is
lowered through its request type's :meth:`~repro.serve.workload.RequestType.plan`
and executed **level by level** on an
:class:`~repro.core.program.ExecutionCursor`.  The simulated clock is
the model clock: every segment of a batch's execution advances the
engine clock by exactly the span of
:attr:`~repro.core.ledger.CostLedger.clock` it charges, so on a
:class:`~repro.core.parallel.ParallelTCUMachine` the clock advances by
scheduled makespans while the call trace keeps the true per-call
hardware work — the PR3 invariant, now driven by live traffic.

The loop is a discrete-event kernel over three event kinds, processed
in deterministic order (level-complete before arrival before release at
equal times, matching the run-to-completion engine's tie-breaks):

* **arrival** — the next request of the merged open-loop/injected
  stream joins its class queue, or is shed by the admission policy;
* **release** — a class queue whose batching policy fires becomes a
  running batch (earliest release first, higher class on ties; see
  :func:`~repro.serve.batcher.priority_release`);
* **level-complete** — the running cursor finished a level.  If the
  plan is exhausted the batch completes; otherwise, with preemption
  enabled, a strictly-higher-priority release due *now* checkpoints the
  batch at this boundary (its op values persist; nothing is charged)
  and the suspended cursor rejoins the scheduler.  Resuming later
  re-loads the remaining levels' resident blocks through the ledger's
  ``reload`` category (:meth:`~repro.core.program.ExecutionCursor.charge_reload`)
  — checkpoint/restore is never free.

Request types whose :meth:`plan` returns ``None`` (legacy/opaque
``serve`` implementations) execute atomically: correct, but never
preempted.

Three conservation properties pin the engine to the offline model (see
:meth:`ServeResult.check_conservation` and the replay tests):

* **Clock conservation.**  Each request's completion equals its batch's
  finish; for unpreempted batches ``finish = launch + service`` holds
  bit-exactly; the engine's busy time is the ledger-clock span of the
  whole run; and the final clock is the last completion.
* **Work conservation.**  A request type's model cost depends only on
  the batch's shapes, so replaying the recorded :class:`BatchRecord`
  stream through :func:`replay_batches` on *any* equivalently
  parameterised machine reproduces the served run's per-shape tensor
  and latency charges bit-identically.
* **Preemption conservation.**  A preempted run's charges equal the
  uninterrupted replay plus *exactly* the ledgered reload charges:
  suspension moves work in time, and the only extra cost is the
  explicitly priced resident-block re-load.

With preemption disabled and admission unbounded the kernel reproduces
the PR4 run-to-completion engine bit-identically (per-shape charges,
completions, clock) — pinned by ``tests/serve/test_preemption.py``.

Quickstart::

    >>> from repro.core.machine import TCUMachine
    >>> from repro.serve import PoissonWorkload, ServingEngine
    >>> machine = TCUMachine(m=16, ell=64.0)
    >>> wl = PoissonWorkload(rate=1e-4, total=32, kind="matmul", rows=8, seed=1)
    >>> result = ServingEngine(machine, batcher="continuous").serve(wl)
    >>> result.completed, result.clock > 0
    (32, True)
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from itertools import count

import numpy as np

from ..core.ledger import CostLedger
from ..core.machine import TCUMachine
from ..core.plan_cache import PlanCache
from ..core.program import CompiledCursor, ExecutionCursor
from .admission import AdmissionPolicy, get_admission
from .batcher import BatchPolicy, get_batcher, priority_release
from .workload import Request, Workload, get_request_type

__all__ = ["ServingEngine", "ServeResult", "BatchRecord", "ServeError", "replay_batches"]


class ServeError(RuntimeError):
    """Raised on invalid serving states (non-monotone arrivals, a policy
    refusing to drain, a violated conservation invariant)."""


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """One executed batch: its composition and its place on the clock.

    The ``(kind, rows)`` pair is a complete recipe for re-executing the
    batch — request types charge from shapes alone — so a list of these
    records is an exact replay script for the whole served run (the
    replay pays no ``reload``: it runs uninterrupted).

    ``service`` is the total model time the machine spent on the batch,
    including any reload overhead (broken out in ``reload_time``);
    ``finish`` is the absolute completion clock.  For an unpreempted
    batch ``finish == launch + service`` bit-exactly; a preempted batch
    additionally sat suspended for ``finish - launch - service``.
    """

    index: int
    kind: str
    rids: tuple[int, ...]
    rows: tuple[int, ...]
    launch: float
    service: float
    priority: int = 0
    preemptions: int = 0
    reload_time: float = 0.0
    resumes: tuple[float, ...] = ()
    finish: float = math.nan

    @property
    def size(self) -> int:
        return len(self.rids)

    @property
    def completion(self) -> float:
        if math.isnan(self.finish):
            return self.launch + self.service
        return self.finish

    @property
    def suspended_time(self) -> float:
        """Model time the batch sat checkpointed between its segments."""
        return self.completion - self.launch - self.service


@dataclass
class ServeResult:
    """Everything a served run produced: per-request records, per-batch
    records, shed requests, and the run-level clock accounting."""

    requests: list[Request]
    batches: list[BatchRecord]
    clock: float
    busy_time: float
    ledger_time: float
    policy: str
    machine: TCUMachine
    trace_start: int = 0
    trace_end: int = 0
    kind_time: dict[str, float] = field(default_factory=dict)
    shed: list[Request] = field(default_factory=list)
    preemptions: int = 0
    reload_time: float = 0.0
    admission: str = "unbounded"
    preempt: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cache_size: int = 0

    @property
    def completed(self) -> int:
        return len(self.requests)

    @property
    def cache_lookups(self) -> int:
        """Plan-cache lookups this run made (0 when caching is off)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float | None:
        """Hit fraction of this run's plan-cache lookups (``None`` when
        the run made none — numeric machines, caching disabled)."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else None

    @property
    def offered(self) -> int:
        """Requests that arrived at the engine (completed + shed)."""
        return len(self.requests) + len(self.shed)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests the admission policy refused."""
        offered = self.offered
        return len(self.shed) / offered if offered else 0.0

    def check_conservation(self, rel_tol: float = 1e-9) -> None:
        """Verify the engine-clock invariants; raises :class:`ServeError`.

        Every equality is checked to ``rel_tol`` (``math.isclose`` with
        matching absolute tolerance), so externally post-processed
        results can be validated under float round-off:

        * every request completed, launched at/after its arrival, and
          its completion matches its batch's ``finish``; for an
          unpreempted batch ``finish = launch + service``, for a
          preempted one ``finish >= launch + service`` (the gap is the
          suspended time) and its reloads are non-negative;
        * shed requests were never launched, and completed + shed
          accounts for every offered request;
        * with zero preemptions batches are serial: each launch at/after
          the previous completion (the PR4 invariant);
        * the busy time (sum of segment spans) matches the ledger-clock
          span of the run, per-batch reloads sum to the run's ledgered
          reload time, and the final clock is the last completion;
        * the identity sum(latency) = sum(wait) + sum over batches of
          ``size * (finish - launch)`` holds (up to float accumulation).
        """

        def close(a: float, b: float) -> bool:
            return math.isclose(a, b, rel_tol=rel_tol, abs_tol=rel_tol)

        def allclose(a: np.ndarray, b) -> np.ndarray:
            # element-wise math.isclose with matching absolute tolerance
            return np.isclose(a, b, rtol=rel_tol, atol=rel_tol)

        # columnar views of the per-request / per-batch records: the
        # invariants below check whole arrays at once, and only on a
        # violation fall back to a scan for the offending record
        index_of = {b.index: i for i, b in enumerate(self.batches)}
        n = len(self.requests)
        arrivals = np.fromiter((r.arrival for r in self.requests), float, n)
        launches = np.fromiter((r.launch for r in self.requests), float, n)
        completions = np.fromiter((r.completion for r in self.requests), float, n)
        req_batch = np.fromiter(
            (index_of.get(r.batch, -1) for r in self.requests), np.int64, n
        )
        k = len(self.batches)
        b_launch = np.fromiter((b.launch for b in self.batches), float, k)
        b_service = np.fromiter((b.service for b in self.batches), float, k)
        b_finish = np.fromiter((b.completion for b in self.batches), float, k)
        b_reload = np.fromiter((b.reload_time for b in self.batches), float, k)
        b_size = np.fromiter((b.size for b in self.batches), np.int64, k)
        b_preempted = np.fromiter((b.preemptions for b in self.batches), np.int64, k)

        if np.isnan(completions).any():
            bad = self.requests[int(np.isnan(completions).argmax())]
            raise ServeError(f"request {bad.rid} never completed")
        if (launches < arrivals).any():
            bad = self.requests[int((launches < arrivals).argmax())]
            raise ServeError(
                f"request {bad.rid} launched at {bad.launch} before its "
                f"arrival {bad.arrival}"
            )
        if (req_batch < 0).any():
            bad = self.requests[int((req_batch < 0).argmax())]
            raise ServeError(f"request {bad.rid} has no batch record")
        matched = allclose(completions, b_finish[req_batch]) if n else np.ones(0, bool)
        if not matched.all():
            bad = self.requests[int((~matched).argmax())]
            raise ServeError(
                f"request {bad.rid} completion {bad.completion} != its "
                f"batch's finish {b_finish[index_of[bad.batch]]}"
            )
        for req in self.shed:
            if req.done or not math.isnan(req.launch):
                raise ServeError(f"shed request {req.rid} was served anyway")

        if (b_reload < 0).any():
            bad = self.batches[int((b_reload < 0).argmax())]
            raise ServeError(f"batch {bad.index} has negative reload time")
        serial_span = b_launch + b_service
        unpreempted_ok = allclose(b_finish, serial_span) | (b_preempted > 0)
        if not unpreempted_ok.all():
            bad = self.batches[int((~unpreempted_ok).argmax())]
            raise ServeError(
                f"unpreempted batch {bad.index} finish {bad.completion} "
                f"!= launch+service {bad.launch + bad.service}"
            )
        preempted_ok = (
            (b_preempted == 0)
            | (b_finish >= serial_span)
            | allclose(b_finish, serial_span)
        )
        if not preempted_ok.all():
            bad = self.batches[int((~preempted_ok).argmax())]
            raise ServeError(
                f"preempted batch {bad.index} finished at {bad.completion}, "
                f"before its {bad.service} of service could fit"
            )
        if self.preemptions == 0 and k:
            prev = np.concatenate(([0.0], b_finish[:-1]))
            serial_ok = (b_launch >= prev) | allclose(b_launch, prev)
            if not serial_ok.all():
                bad = self.batches[int((~serial_ok).argmax())]
                raise ServeError(
                    f"batch {bad.index} launched at {bad.launch} while the "
                    f"engine was busy until {prev[int((~serial_ok).argmax())]}"
                )
        if k:
            last = float(b_finish.max())
            if not close(self.clock, last):
                raise ServeError(
                    f"final clock {self.clock} != last completion {last}"
                )
        if not close(self.busy_time, self.ledger_time):
            raise ServeError(
                f"busy time {self.busy_time} diverged from the ledger-clock "
                f"span {self.ledger_time}"
            )
        total_reload = float(b_reload.sum())
        if not close(total_reload, self.reload_time):
            raise ServeError(
                f"per-batch reloads {total_reload} != the run's ledgered "
                f"reload time {self.reload_time}"
            )
        total_latency = float((completions - arrivals).sum())
        total_wait = float((launches - arrivals).sum())
        total_span = float((b_size * (b_finish - b_launch)).sum())
        if not close(total_latency, total_wait + total_span):
            raise ServeError(
                f"sum(latency)={total_latency} != sum(wait)+sum(size*span)="
                f"{total_wait + total_span}"
            )


class _Run:
    """An in-flight batch: its requests, cursor and clock bookkeeping.

    ``seg_clock``/``seg_base`` anchor the current execution segment on
    the engine and ledger clocks; ``boundary`` is the absolute engine
    time of the last executed level's completion.  A batch's completion
    is always computed as ``seg_clock + (ledger now - seg_base)`` — for
    a single-segment batch that is bit-identical to the old engine's
    ``launch + stopwatch span``.
    """

    __slots__ = (
        "index",
        "kind",
        "priority",
        "requests",
        "cursor",
        "launch",
        "seg_clock",
        "seg_base",
        "boundary",
        "service",
        "reload",
        "preemptions",
        "resumes",
    )

    def __init__(
        self, index: int, kind: str, priority: int, requests: list[Request], launch: float
    ) -> None:
        self.index = index
        self.kind = kind
        self.priority = priority
        self.requests = requests
        self.cursor: ExecutionCursor | CompiledCursor | None = None
        self.launch = launch
        self.seg_clock = launch
        self.seg_base = 0.0
        self.boundary = launch
        self.service = 0.0
        self.reload = 0.0
        self.preemptions = 0
        self.resumes: list[float] = []


class ServingEngine:
    """One machine, one batching policy, one admission policy.

    Parameters
    ----------
    machine:
        The (m, l)-TCU (or parallel machine) that executes batches.
    batcher:
        A :class:`~repro.serve.batcher.BatchPolicy` (or registered
        name) deciding when a class queue becomes a batch.
    admission:
        An :class:`~repro.serve.admission.AdmissionPolicy` (or name)
        consulted at every arrival; refusals are shed, not queued.
    preempt:
        Enable priority preemption: a strictly-higher-class release due
        at a running batch's level boundary checkpoints the batch there
        and resumes it later, paying the ledgered ``reload`` charge.
        Off by default — the engine is then bit-identical to the PR4
        run-to-completion loop.
    plan_cache:
        Plan caching for the execution hot path.  ``None`` (default)
        auto-enables a fresh :class:`~repro.core.plan_cache.PlanCache`
        on cost-only machines and disables it on numeric ones (replay
        charges costs but produces no values); ``False`` disables
        caching unconditionally; ``True`` requests a fresh cache; a
        :class:`PlanCache` instance is used as-is (and may be shared
        across engines — the config fingerprint in its key keeps
        differently parameterised machines apart).  Explicitly
        requesting a cache on a numeric machine is a :class:`ValueError`.

    With caching active, each batch's ``(kind, rows)`` is compiled once
    into a frozen charge tensor and replayed thereafter as one bulk
    ledger operation per level (or one per *batch* when the whole plan
    coalesces) — bit-identical charges, clock and preemption behaviour
    to live execution, at a fraction of the Python cost.
    """

    def __init__(
        self,
        machine: TCUMachine,
        batcher: str | BatchPolicy = "continuous",
        *,
        admission: str | AdmissionPolicy = "unbounded",
        preempt: bool = False,
        plan_cache: PlanCache | bool | None = None,
    ) -> None:
        self.machine = machine
        self.batcher = get_batcher(batcher)
        self.admission = get_admission(admission)
        self.preempt = bool(preempt)
        cost_only = machine.execute == "cost-only"
        if plan_cache is None:
            self.plan_cache = PlanCache() if cost_only else None
        elif plan_cache is False:
            self.plan_cache = None
        else:
            if not cost_only:
                raise ValueError(
                    "plan caching replays charges without producing values; "
                    'it requires a machine with execute="cost-only"'
                )
            self.plan_cache = PlanCache() if plan_cache is True else plan_cache

    def serve(self, workload: Workload, *, validate: bool = True) -> ServeResult:
        machine = self.machine
        ledger = machine.ledger
        policy = self.batcher
        admission = self.admission
        queues: dict[tuple[int, str], deque[Request]] = {}
        injected: list[tuple[float, int, Request]] = []
        seq = count()
        base = iter(workload.requests())
        base_head = next(base, None)
        last_arrival = -math.inf

        def next_arrival_time() -> float:
            bt = base_head.arrival if base_head is not None else math.inf
            it = injected[0][0] if injected else math.inf
            return min(bt, it)

        def pop_arrival() -> Request:
            nonlocal base_head, last_arrival
            bt = base_head.arrival if base_head is not None else math.inf
            it = injected[0][0] if injected else math.inf
            if bt <= it:
                req = base_head
                base_head = next(base, None)
            else:
                req = heapq.heappop(injected)[2]
            if req.arrival < last_arrival:
                raise ServeError(
                    f"arrival stream is not time-ordered: {req.arrival} after "
                    f"{last_arrival}"
                )
            last_arrival = req.arrival
            return req

        clock = 0.0
        completion_clock = 0.0
        running: _Run | None = None
        suspended: list[_Run] = []
        finished: list[Request] = []
        shed: list[Request] = []
        batches: list[BatchRecord | None] = []
        trace_start = len(ledger.calls) if ledger.trace_calls is True else 0
        ledger_start = ledger.clock
        reload_start = ledger.reload_time
        busy_time = 0.0
        preemptions_total = 0
        # per-run section baselines: ledger sections are cumulative over
        # the machine's lifetime, results report only this run's share
        kind_base: dict[str, float] = {}
        rtypes: dict[str, object] = {}  # per-run registry memo
        cache = self.plan_cache
        cache_hits_start = cache.hits if cache is not None else 0
        cache_misses_start = cache.misses if cache is not None else 0

        def admit(req: Request) -> None:
            key = (req.priority, req.kind)
            queue = queues.setdefault(key, deque())
            if admission.admit(req, queue, clock):
                queue.append(req)
            else:
                shed.append(req)

        def set_boundary(run: _Run) -> None:
            run.boundary = run.seg_clock + (ledger.clock - run.seg_base)

        def launch(key: tuple[int, str], release: float) -> None:
            nonlocal clock, running
            priority, kind = key
            clock = max(clock, release)
            batch = policy.take(queues[key], clock)
            if not batch:
                raise ServeError(f"policy {policy.name!r} released an empty batch")
            rtype = rtypes.get(kind)
            if rtype is None:
                rtype = rtypes[kind] = get_request_type(kind)
                kind_base[kind] = ledger.section_time(f"serve:{kind}")
            run = _Run(len(batches), kind, priority, batch, clock)
            batches.append(None)  # slot: filled by complete()
            for req in batch:
                req.launch = clock
                req.batch = run.index
            run.seg_base = ledger.clock
            rows = [r.rows for r in batch]
            # With preemption off nothing can interrupt a running batch
            # (releases happen only at idle), so the cursor runs to
            # exhaustion in one event — on a cached plan that is a
            # single coalesced bulk charge.  With preemption on, step
            # level-by-level so boundaries stay visible to the kernel.
            with ledger.section(f"serve:{kind}"):
                if cache is not None:
                    compiled = cache.get_or_compile(rtype, machine, rows)
                    run.cursor = CompiledCursor(compiled, machine)
                    if self.preempt:
                        run.cursor.step()
                    else:
                        run.cursor.run()
                else:
                    plan = rtype.plan(machine, rows)
                    if plan is None:
                        rtype.serve(machine, rows)  # atomic: no checkpoints
                    elif plan.levels:
                        run.cursor = ExecutionCursor(plan, machine)
                        if self.preempt:
                            run.cursor.step()
                        else:
                            run.cursor.run()
            set_boundary(run)
            running = run

        def resume(run: _Run) -> None:
            nonlocal running
            run.seg_clock = clock
            run.seg_base = ledger.clock
            run.resumes.append(clock)
            with ledger.section(f"serve:{run.kind}"):
                run.reload += run.cursor.charge_reload()
                run.cursor.step()
            set_boundary(run)
            running = run

        def advance(run: _Run) -> None:
            with ledger.section(f"serve:{run.kind}"):
                run.cursor.step()
            set_boundary(run)

        def close_segment(run: _Run) -> None:
            nonlocal busy_time
            span = ledger.clock - run.seg_base
            run.service += span
            busy_time += span

        def suspend(run: _Run) -> None:
            nonlocal running, preemptions_total
            close_segment(run)
            run.preemptions += 1
            preemptions_total += 1
            suspended.append(run)
            running = None

        def complete(run: _Run) -> None:
            nonlocal running, completion_clock
            close_segment(run)
            finish = run.boundary
            completion_clock = max(completion_clock, finish)
            batches[run.index] = BatchRecord(
                index=run.index,
                kind=run.kind,
                rids=tuple(r.rid for r in run.requests),
                rows=tuple(r.rows for r in run.requests),
                launch=run.launch,
                service=run.service,
                priority=run.priority,
                preemptions=run.preemptions,
                reload_time=run.reload,
                resumes=tuple(run.resumes),
                finish=finish,
            )
            for req in run.requests:
                req.completion = finish
                finished.append(req)
                for new in workload.on_complete(req, finish):
                    heapq.heappush(injected, (new.arrival, next(seq), new))
            running = None

        while True:
            na = next_arrival_time()
            if running is not None:
                # level-complete vs arrival, boundary first at equal
                # times (the PR4 completion/arrival tie-break); every
                # arrival due strictly before the boundary is admitted
                # in one pump instead of a full event-loop turn each
                boundary = running.boundary
                while na < boundary:
                    clock = na
                    admit(pop_arrival())
                    na = next_arrival_time()
                clock = boundary
                run = running
                if run.cursor is None or run.cursor.done:
                    complete(run)
                else:
                    contender = None
                    if self.preempt:
                        contender = priority_release(
                            queues, policy, clock, False, above=run.priority
                        )
                        if contender is not None and contender[0] > clock:
                            contender = None  # due later: keep running
                    if contender is not None:
                        suspend(run)
                    else:
                        advance(run)
                continue

            # machine idle: resume / release selection.  Candidates are
            # ordered by (release, -priority, action rank, tie-break);
            # a suspended batch resumes at `clock` and outranks a fresh
            # launch of its own class at the same instant.
            draining = na == math.inf
            best: tuple | None = None
            if suspended:
                bi = min(range(len(suspended)), key=lambda i: (-suspended[i].priority, i))
                best = (clock, -suspended[bi].priority, 0, bi, ("resume", bi))
            released = priority_release(queues, policy, clock, draining)
            if released is not None:
                release, priority, head_arrival, key = released
                candidate = (
                    release,
                    -priority,
                    1,
                    (head_arrival, key[1]),
                    ("launch", key),
                )
                if best is None or candidate[:4] < best[:4]:
                    best = candidate

            # strict <: an arrival at the release instant is admitted
            # first, so simultaneous arrivals batch together instead of
            # splitting into a size-1 batch plus a remainder
            if best is not None and best[0] < na:
                action, payload = best[4]
                if action == "resume":
                    resume(suspended.pop(payload))
                else:
                    launch(payload, best[0])
            elif na < math.inf:
                clock = na
                admit(pop_arrival())
            else:
                stranded = sum(len(q) for q in queues.values())
                if stranded:
                    raise ServeError(
                        f"policy {policy.name!r} refused to drain "
                        f"{stranded} queued request(s)"
                    )
                break

        result = ServeResult(
            requests=finished,
            batches=[b for b in batches if b is not None],
            clock=completion_clock if batches else 0.0,
            busy_time=busy_time,
            ledger_time=ledger.clock - ledger_start,
            policy=policy.name,
            machine=machine,
            trace_start=trace_start,
            trace_end=len(ledger.calls) if ledger.trace_calls is True else 0,
            kind_time={
                kind: ledger.section_time(f"serve:{kind}") - base_time
                for kind, base_time in kind_base.items()
            },
            shed=shed,
            preemptions=preemptions_total,
            reload_time=ledger.reload_time - reload_start,
            admission=admission.name,
            preempt=self.preempt,
            cache_hits=(cache.hits - cache_hits_start) if cache is not None else 0,
            cache_misses=(
                (cache.misses - cache_misses_start) if cache is not None else 0
            ),
            cache_size=len(cache) if cache is not None else 0,
        )
        if validate:
            result.check_conservation()
        return result


def replay_batches(
    batches: list[BatchRecord], machine: TCUMachine
) -> CostLedger:
    """Re-execute a served run's batches, in order, on ``machine``.

    Because request types charge from shapes alone, the replayed
    ledger's *hardware work* — per-shape call totals, call count, and
    (on serial machines) the tensor/latency time columns — is
    bit-identical to the served run's, whatever mix of numeric,
    cost-only, serial or multi-unit machines the two sides use.  A
    replay runs every batch uninterrupted, so it never pays ``reload``:
    a preempted run's total charges exceed its replay by exactly the
    served run's ledgered reload time — the preemption-conservation
    gate.

    Returns the machine's ledger for inspection.
    """
    for batch in batches:
        get_request_type(batch.kind).serve(machine, batch.rows)
    return machine.ledger
