"""The serving engine: a discrete-event loop over the ledger clock.

:class:`ServingEngine` turns the repo's offline machinery into an
online simulator: requests arrive (from a :class:`~repro.serve.workload.Workload`),
queue per kind, are grouped by a :class:`~repro.serve.batcher.BatchPolicy`,
and each released batch is executed on the engine's machine through the
request type's ordinary planned kernels.  The simulated clock is the
model clock: a batch's service time is the span of
:attr:`~repro.core.ledger.CostLedger.clock` its execution charges
(measured with :meth:`~repro.core.ledger.CostLedger.stopwatch`), so on
a :class:`~repro.core.parallel.ParallelTCUMachine` the clock advances
by scheduled makespans while the call trace keeps the true per-call
hardware work — exactly the PR3 invariant, now driven by live traffic.

Two conservation properties pin the engine to the offline model (see
:meth:`ServeResult.check_conservation` and the replay tests):

* **Clock conservation.**  Batches execute back-to-back on one engine:
  every launch is at or after the previous completion, each request's
  completion is bit-identical to its batch's ``launch + service``, the
  engine's busy time is the ledger-clock span of the whole run, and the
  final clock is the last completion.
* **Work conservation.**  A request type's model cost depends only on
  the batch's shapes, so replaying the recorded
  :class:`BatchRecord` stream through :func:`replay_batches` on *any*
  equivalently-parameterised machine — serial, parallel via
  :meth:`~repro.core.parallel.ParallelTCUMachine.mm_batch`, numeric or
  cost-only — reproduces the served run's per-shape tensor and latency
  charges bit-identically.

Quickstart::

    >>> from repro.core.machine import TCUMachine
    >>> from repro.serve import PoissonWorkload, ServingEngine
    >>> machine = TCUMachine(m=16, ell=64.0)
    >>> wl = PoissonWorkload(rate=1e-4, total=32, kind="matmul", rows=8, seed=1)
    >>> result = ServingEngine(machine, batcher="continuous").serve(wl)
    >>> result.completed, result.clock > 0
    (32, True)
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from itertools import count

from ..core.ledger import CostLedger
from ..core.machine import TCUMachine
from .batcher import BatchPolicy, get_batcher
from .workload import Request, Workload, get_request_type

__all__ = ["ServingEngine", "ServeResult", "BatchRecord", "ServeError", "replay_batches"]


class ServeError(RuntimeError):
    """Raised on invalid serving states (non-monotone arrivals, a policy
    refusing to drain, a violated conservation invariant)."""


@dataclass(frozen=True, slots=True)
class BatchRecord:
    """One executed batch: its composition and its place on the clock.

    The ``(kind, rows)`` pair is a complete recipe for re-executing the
    batch — request types charge from shapes alone — so a list of these
    records is an exact replay script for the whole served run.
    """

    index: int
    kind: str
    rids: tuple[int, ...]
    rows: tuple[int, ...]
    launch: float
    service: float

    @property
    def size(self) -> int:
        return len(self.rids)

    @property
    def completion(self) -> float:
        return self.launch + self.service


@dataclass
class ServeResult:
    """Everything a served run produced: per-request records, per-batch
    records, and the run-level clock accounting."""

    requests: list[Request]
    batches: list[BatchRecord]
    clock: float
    busy_time: float
    ledger_time: float
    policy: str
    machine: TCUMachine
    trace_start: int = 0
    trace_end: int = 0
    kind_time: dict[str, float] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.requests)

    def check_conservation(self, rel_tol: float = 1e-9) -> None:
        """Verify the engine-clock invariants; raises :class:`ServeError`.

        * every request completed, launched at/after arrival, and its
          completion is *bit-identical* to its batch's
          ``launch + service``;
        * batches are serial: each launch >= the previous completion;
        * the busy time (sum of services) matches the ledger-clock span
          of the run, and the final clock is the last completion;
        * the per-request identity sum(latency) = sum(wait) + sum over
          batches of size * service holds (up to float accumulation).
        """
        by_index = {b.index: b for b in self.batches}
        for req in self.requests:
            if not req.done:
                raise ServeError(f"request {req.rid} never completed")
            if req.launch < req.arrival:
                raise ServeError(
                    f"request {req.rid} launched at {req.launch} before its "
                    f"arrival {req.arrival}"
                )
            batch = by_index.get(req.batch)
            if batch is None:
                raise ServeError(f"request {req.rid} has no batch record")
            if req.completion != batch.launch + batch.service:
                raise ServeError(
                    f"request {req.rid} completion {req.completion} != its "
                    f"batch's launch+service {batch.launch + batch.service}"
                )
        prev_completion = 0.0
        for batch in self.batches:
            if batch.launch < prev_completion:
                raise ServeError(
                    f"batch {batch.index} launched at {batch.launch} while the "
                    f"engine was busy until {prev_completion}"
                )
            prev_completion = batch.completion
        if self.batches and self.clock != self.batches[-1].completion:
            raise ServeError(
                f"final clock {self.clock} != last completion "
                f"{self.batches[-1].completion}"
            )
        if not math.isclose(
            self.busy_time, self.ledger_time, rel_tol=rel_tol, abs_tol=rel_tol
        ):
            raise ServeError(
                f"busy time {self.busy_time} diverged from the ledger-clock "
                f"span {self.ledger_time}"
            )
        total_latency = sum(r.latency for r in self.requests)
        total_wait = sum(r.wait for r in self.requests)
        total_service = sum(b.size * b.service for b in self.batches)
        if not math.isclose(
            total_latency,
            total_wait + total_service,
            rel_tol=rel_tol,
            abs_tol=rel_tol,
        ):
            raise ServeError(
                f"sum(latency)={total_latency} != sum(wait)+sum(size*service)="
                f"{total_wait + total_service}"
            )


class ServingEngine:
    """One machine, one batching policy, serving a workload to completion.

    The event loop advances the simulated clock over exactly three event
    kinds — request arrival, batch release, batch completion — and asks
    the policy for the next release time whenever the machine is idle.
    Batches execute back-to-back (the machine serves one batch at a
    time; parallelism lives *inside* a batch, across the machine's
    tensor units).
    """

    def __init__(self, machine: TCUMachine, batcher: str | BatchPolicy = "continuous") -> None:
        self.machine = machine
        self.batcher = get_batcher(batcher)

    def serve(self, workload: Workload, *, validate: bool = True) -> ServeResult:
        machine = self.machine
        ledger = machine.ledger
        policy = self.batcher
        queues: dict[str, deque[Request]] = {}
        injected: list[tuple[float, int, Request]] = []
        seq = count()
        base = iter(workload.requests())
        base_head = next(base, None)
        last_arrival = -math.inf

        def next_arrival_time() -> float:
            bt = base_head.arrival if base_head is not None else math.inf
            it = injected[0][0] if injected else math.inf
            return min(bt, it)

        def pop_arrival() -> Request:
            nonlocal base_head, last_arrival
            bt = base_head.arrival if base_head is not None else math.inf
            it = injected[0][0] if injected else math.inf
            if bt <= it:
                req = base_head
                base_head = next(base, None)
            else:
                req = heapq.heappop(injected)[2]
            if req.arrival < last_arrival:
                raise ServeError(
                    f"arrival stream is not time-ordered: {req.arrival} after "
                    f"{last_arrival}"
                )
            last_arrival = req.arrival
            return req

        clock = 0.0
        active: list[Request] | None = None
        busy_until = math.inf
        finished: list[Request] = []
        batches: list[BatchRecord] = []
        trace_start = len(ledger.calls) if ledger.trace_calls is True else 0
        ledger_start = ledger.clock
        busy_time = 0.0
        # per-run section baselines: ledger sections are cumulative over
        # the machine's lifetime, results report only this run's share
        kind_base: dict[str, float] = {}

        while True:
            na = next_arrival_time()
            if active is not None:
                # one event: whichever of completion / arrival is sooner
                if busy_until <= na:
                    clock = busy_until
                    for req in active:
                        req.completion = clock
                        finished.append(req)
                        for new in workload.on_complete(req, clock):
                            heapq.heappush(injected, (new.arrival, next(seq), new))
                    active = None
                else:
                    clock = na
                    req = pop_arrival()
                    queues.setdefault(req.kind, deque()).append(req)
                continue

            # machine idle: earliest release across the kind queues,
            # tie-broken by oldest head request then kind name
            draining = na == math.inf
            best: tuple[float, float, str] | None = None
            for kind, queue in queues.items():
                if not queue:
                    continue
                release = policy.release_time(queue, clock, draining)
                if release == math.inf:
                    continue
                candidate = (release, queue[0].arrival, kind)
                if best is None or candidate < best:
                    best = candidate

            # strict <: an arrival at the release instant is admitted
            # first, so simultaneous arrivals batch together instead of
            # splitting into a size-1 batch plus a remainder
            if best is not None and best[0] < na:
                release, _, kind = best
                clock = max(clock, release)
                batch = policy.take(queues[kind], clock)
                if not batch:
                    raise ServeError(f"policy {policy.name!r} released an empty batch")
                rtype = get_request_type(kind)
                kind_base.setdefault(kind, ledger.section_time(f"serve:{kind}"))
                with ledger.stopwatch() as span, ledger.section(f"serve:{kind}"):
                    rtype.serve(machine, [r.rows for r in batch])
                service = span.elapsed
                record = BatchRecord(
                    index=len(batches),
                    kind=kind,
                    rids=tuple(r.rid for r in batch),
                    rows=tuple(r.rows for r in batch),
                    launch=clock,
                    service=service,
                )
                batches.append(record)
                for req in batch:
                    req.launch = clock
                    req.batch = record.index
                busy_until = clock + service
                busy_time += service
                active = batch
            elif na < math.inf:
                clock = na
                req = pop_arrival()
                queues.setdefault(req.kind, deque()).append(req)
            else:
                stranded = sum(len(q) for q in queues.values())
                if stranded:
                    raise ServeError(
                        f"policy {policy.name!r} refused to drain "
                        f"{stranded} queued request(s)"
                    )
                break

        result = ServeResult(
            requests=finished,
            batches=batches,
            clock=clock if batches else 0.0,
            busy_time=busy_time,
            ledger_time=ledger.clock - ledger_start,
            policy=policy.name,
            machine=machine,
            trace_start=trace_start,
            trace_end=len(ledger.calls) if ledger.trace_calls is True else 0,
            kind_time={
                kind: ledger.section_time(f"serve:{kind}") - base
                for kind, base in kind_base.items()
            },
        )
        if validate:
            result.check_conservation()
        return result


def replay_batches(
    batches: list[BatchRecord], machine: TCUMachine
) -> CostLedger:
    """Re-execute a served run's batches, in order, on ``machine``.

    Because request types charge from shapes alone, the replayed
    ledger's *hardware work* — per-shape call totals, call count, and
    (on serial machines) the tensor/latency time columns — is
    bit-identical to the served run's, whatever mix of numeric,
    cost-only, serial or multi-unit machines the two sides use.  This
    is the serving layer's equivalent of the batch-vs-serial parity the
    scheduler tests pin: dynamic batching changes *when* work happens,
    never *how much*.

    Returns the machine's ledger for inspection.
    """
    for batch in batches:
        get_request_type(batch.kind).serve(machine, batch.rows)
    return machine.ledger
