"""Deterministic fault injection for the serving engine.

The serving stack through PR 6 assumes the hardware never fails; this
module gives the engine something to recover from, without giving up
the repo's reproducibility discipline.  A :class:`FaultInjector` draws
every fault event from its own seeded RNG streams — entirely separate
from the workload's arrival streams — so a faulty run is bit-replayable
from the pair ``(workload seed, fault seed)`` alone.

Three fault species are modelled, matching what TPU pods and GPU
clusters actually see (§3.1 scales):

* **transient call failures** — a planned level executes but its result
  is corrupt (an ECC hiccup, a flaky interconnect read): the level's
  charges stay on the ledger as wasted work and the level must re-run;
* **unit crashes** — an MTBF/MTTR renewal process: the unit dies at an
  exponentially distributed time, killing whatever level was in flight,
  and stays down for an exponentially distributed repair interval
  during which nothing launches or resumes;
* **stragglers** — a per-level slowdown: with probability
  ``straggle_rate`` a level costs ``straggle_factor``x its model time
  (the extra is charged as ``cpu`` time — the machine really spent it,
  and the level still completes, so it is useful work, not waste).

The crash process draws from a *separate* substream of the injector's
seed than the per-level draws, so the crash timeline is a property of
the seed alone — it does not shift when a different workload executes a
different number of levels.

:class:`RetryPolicy` (none / fixed / exponential backoff with a cap and
a per-request retry budget) and :class:`Degrader` (graceful degradation
onto a cheaper variant — fewer rows, or a quantized preset via
:mod:`repro.core.quantize`) live here too.  Injectors and retry
policies follow the same name-registry idiom as the batchers,
admissions and schedulers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.machine import TCUMachine
from ..core.quantize import QuantizedTCUMachine

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "NoFaultInjector",
    "SeededFaultInjector",
    "register_fault_injector",
    "get_fault_injector",
    "available_fault_injectors",
    "RetryPolicy",
    "NoRetry",
    "FixedRetry",
    "ExponentialRetry",
    "register_retry_policy",
    "get_retry_policy",
    "available_retry_policies",
    "Degrader",
]


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault, as the engine recorded it.

    ``kind`` is ``"transient"`` or ``"crash"``; ``level`` is the plan
    level that was lost (``-1`` for an atomic batch); ``attempt`` is the
    1-based attempt number that failed; ``clock`` is the engine time the
    failure surfaced (the failed level's boundary).
    """

    kind: str
    batch: int
    level: int
    attempt: int
    clock: float


# ----------------------------------------------------------------------
# fault injectors
# ----------------------------------------------------------------------
class FaultInjector:
    """Base class: decide, per executed level, what goes wrong.

    The engine consults the injector at exactly three points, all
    deterministic given the event order:

    * :meth:`draw_level` — once per level (or per atomic batch) *before*
      execution: returns ``(straggle_factor, transient_failure)``;
    * :meth:`next_crash` / :meth:`take_crash` — the crash renewal
      process, peeked against level boundaries and idle launch times and
      consumed window by window (a crash can never occur while the unit
      is already down: the next failure is drawn from the repair time).

    ``active`` is False for injectors that can never produce an event;
    the engine then takes the exact zero-fault code path, so an inert
    injector is bit-identical to no injector at all.
    """

    name = "abstract"

    @property
    def active(self) -> bool:
        return True

    def reseed(self, seed: int) -> None:
        """Replace the injector's seed (used by the engine's top-level
        ``seed`` splitting); takes effect at the next :meth:`begin_run`."""

    def begin_run(self) -> None:
        """Re-arm every RNG stream from the stored seed.  Called by the
        engine at the start of each serve, so consecutive serves with
        one injector replay identical fault timelines."""

    def draw_level(self) -> tuple[float, bool]:
        """Fault draws for the next executed level: ``(factor, fail)``."""
        return 1.0, False

    def next_crash(self) -> float:
        """Absolute model time of the next unit crash (``inf`` = never).
        Peeking never consumes the draw."""
        return math.inf

    def take_crash(self) -> tuple[float, float]:
        """Consume the pending crash: returns ``(crash_time, up_time)``
        and advances the renewal process past the repair interval."""
        raise RuntimeError(f"injector {self.name!r} has no crash process")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoFaultInjector(FaultInjector):
    """The do-nothing injector: never fails, never consumes randomness.

    ``active`` is False, so an engine configured with it takes the
    zero-fault code path bit-identically to no injector at all — the
    parity gate ``bench_faults.py`` pins.
    """

    name = "none"

    @property
    def active(self) -> bool:
        return False


class SeededFaultInjector(FaultInjector):
    """All three fault species, drawn from seeded independent streams.

    Parameters
    ----------
    fail_rate:
        Per-level probability of a transient call failure, in
        ``[0, 1)`` (1 would re-run a level forever).
    mtbf, mttr:
        Mean time between unit crashes and mean time to repair, in
        model-time units.  ``mtbf=None`` (default) disables crashes;
        when set, ``mttr`` must be set too, and both must be positive.
    straggle_rate, straggle_factor:
        Per-level probability of a straggler and its cost multiplier
        (``factor >= 1``; the extra ``(factor-1) * level_time`` is
        charged as cpu time).
    seed:
        The fault seed.  :meth:`begin_run` splits it into two
        independent substreams (per-level draws vs the crash renewal
        process) via :class:`numpy.random.SeedSequence`, so the crash
        timeline does not depend on how many levels a workload executes.
    """

    name = "seeded"

    def __init__(
        self,
        *,
        fail_rate: float = 0.0,
        mtbf: float | None = None,
        mttr: float | None = None,
        straggle_rate: float = 0.0,
        straggle_factor: float = 2.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= fail_rate < 1.0:
            raise ValueError(f"fail_rate must be in [0, 1), got {fail_rate}")
        if (mtbf is None) != (mttr is None):
            raise ValueError("mtbf and mttr must be set together (or both None)")
        if mtbf is not None and mtbf <= 0:
            raise ValueError(f"mtbf must be > 0, got {mtbf}")
        if mttr is not None and mttr <= 0:
            raise ValueError(f"mttr must be > 0, got {mttr}")
        if not 0.0 <= straggle_rate <= 1.0:
            raise ValueError(f"straggle_rate must be in [0, 1], got {straggle_rate}")
        if straggle_factor < 1.0:
            raise ValueError(f"straggle_factor must be >= 1, got {straggle_factor}")
        self.fail_rate = float(fail_rate)
        self.mtbf = None if mtbf is None else float(mtbf)
        self.mttr = None if mttr is None else float(mttr)
        self.straggle_rate = float(straggle_rate)
        self.straggle_factor = float(straggle_factor)
        self.seed = int(seed)
        self.begin_run()

    @property
    def active(self) -> bool:
        return (
            self.fail_rate > 0.0
            or self.mtbf is not None
            or self.straggle_rate > 0.0
        )

    def reseed(self, seed: int) -> None:
        self.seed = int(seed)

    def begin_run(self) -> None:
        level_ss, crash_ss = np.random.SeedSequence(self.seed).spawn(2)
        self._level_rng = np.random.default_rng(level_ss)
        self._crash_rng = np.random.default_rng(crash_ss)
        if self.mtbf is None:
            self._next_crash = math.inf
        else:
            self._next_crash = float(self._crash_rng.exponential(self.mtbf))

    def draw_level(self) -> tuple[float, bool]:
        u_straggle, u_fail = self._level_rng.random(2)
        factor = self.straggle_factor if u_straggle < self.straggle_rate else 1.0
        return factor, bool(u_fail < self.fail_rate)

    def next_crash(self) -> float:
        return self._next_crash

    def take_crash(self) -> tuple[float, float]:
        crash = self._next_crash
        if not math.isfinite(crash):
            raise RuntimeError("no pending crash to take")
        up = crash + float(self._crash_rng.exponential(self.mttr))
        self._next_crash = up + float(self._crash_rng.exponential(self.mtbf))
        return crash, up

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(fail_rate={self.fail_rate}, mtbf={self.mtbf}, "
            f"mttr={self.mttr}, straggle_rate={self.straggle_rate}, seed={self.seed})"
        )


_INJECTORS: dict[str, FaultInjector] = {}


def register_fault_injector(injector: FaultInjector) -> FaultInjector:
    """Add an injector instance to the name registry (last write wins)."""
    _INJECTORS[injector.name] = injector
    return injector


for _inj in (NoFaultInjector(), SeededFaultInjector()):
    register_fault_injector(_inj)


def available_fault_injectors() -> tuple[str, ...]:
    """Registered injector names, in registration order."""
    return tuple(_INJECTORS)


def get_fault_injector(injector: str | FaultInjector) -> FaultInjector:
    """Resolve an injector by name (or pass an instance through)."""
    if isinstance(injector, FaultInjector):
        return injector
    try:
        return _INJECTORS[injector]
    except KeyError:
        raise ValueError(
            f"unknown fault injector {injector!r}; available: "
            f"{available_fault_injectors()}"
        ) from None


# ----------------------------------------------------------------------
# retry policies
# ----------------------------------------------------------------------
class RetryPolicy:
    """Base class: how many attempts a batch gets, and the backoff
    between them.

    ``max_attempts`` is the per-request retry budget (attempt 1 is the
    initial try); :meth:`delay` returns the backoff before the given
    1-based attempt (called with ``attempt >= 2``).  Policies are
    stateless configuration, shared freely across engines.
    """

    name = "abstract"
    max_attempts: int = 1

    def delay(self, attempt: int) -> float:
        """Model-time backoff before ``attempt`` (2 = first retry)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class NoRetry(RetryPolicy):
    """One attempt only: any failure abandons the batch."""

    name = "no-retry"
    max_attempts = 1

    def delay(self, attempt: int) -> float:
        raise RuntimeError("no-retry never schedules a retry")


class FixedRetry(RetryPolicy):
    """A constant backoff between attempts."""

    name = "fixed"

    def __init__(self, delay: float = 0.0, *, max_attempts: int = 3) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self._delay = float(delay)
        self.max_attempts = int(max_attempts)

    def delay(self, attempt: int) -> float:
        return self._delay


class ExponentialRetry(RetryPolicy):
    """Exponential backoff: ``base * factor**(attempt-2)``, capped.

    The first retry (attempt 2) waits ``base``; each further retry
    multiplies by ``factor`` up to ``cap``.
    """

    name = "exponential"

    def __init__(
        self,
        base: float = 0.0,
        *,
        factor: float = 2.0,
        cap: float = math.inf,
        max_attempts: int = 4,
    ) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if cap < 0:
            raise ValueError(f"cap must be >= 0, got {cap}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.max_attempts = int(max_attempts)

    def delay(self, attempt: int) -> float:
        return min(self.cap, self.base * self.factor ** max(attempt - 2, 0))


_RETRIES: dict[str, RetryPolicy] = {}


def register_retry_policy(policy: RetryPolicy) -> RetryPolicy:
    """Add a retry policy instance to the name registry (last write wins)."""
    _RETRIES[policy.name] = policy
    return policy


for _pol in (NoRetry(), FixedRetry(), ExponentialRetry()):
    register_retry_policy(_pol)


def available_retry_policies() -> tuple[str, ...]:
    """Registered retry-policy names, in registration order."""
    return tuple(_RETRIES)


def get_retry_policy(policy: str | RetryPolicy) -> RetryPolicy:
    """Resolve a retry policy by name (or pass an instance through)."""
    if isinstance(policy, RetryPolicy):
        return policy
    try:
        return _RETRIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown retry policy {policy!r}; available: "
            f"{available_retry_policies()}"
        ) from None


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class Degrader:
    """Re-plan a repeatedly failing batch onto a cheaper variant.

    Degradation fires after ``after_attempts`` failed attempts, or (with
    ``on_deadline_pressure``) as soon as a failure plus the pending
    backoff would blow a request's deadline — the engine then rebuilds
    the batch's plan on the degraded variant and restarts it (a re-plan
    can never checkpoint-resume: the old plan's levels no longer apply).

    Modes
    -----
    ``rows``
        Serve ``max(min_rows, floor(rows * rows_factor))`` rows per
        request — the classic quality knob: less work per request,
        answers for a subset (top-k truncation, lower resolution).
    ``quantize``
        Re-plan onto a :class:`~repro.core.quantize.QuantizedTCUMachine`
        twin of the engine's machine with ``ell`` scaled by
        ``ell_factor`` — the degraded service loads ``precision``-packed
        weights (int8 words are a quarter of fp32), so every call pays a
        proportionally smaller invocation latency.  The twin shares the
        primary machine's ledger, so the engine clock and all
        conservation checks span both.
    """

    def __init__(
        self,
        *,
        after_attempts: int = 2,
        mode: str = "rows",
        rows_factor: float = 0.5,
        min_rows: int = 1,
        precision: str = "int8",
        ell_factor: float = 0.25,
        on_deadline_pressure: bool = True,
    ) -> None:
        if after_attempts < 1:
            raise ValueError(f"after_attempts must be >= 1, got {after_attempts}")
        if mode not in ("rows", "quantize"):
            raise ValueError(f"unknown degrade mode {mode!r}; choose 'rows' or 'quantize'")
        if not 0.0 < rows_factor < 1.0:
            raise ValueError(f"rows_factor must be in (0, 1), got {rows_factor}")
        if min_rows < 1:
            raise ValueError(f"min_rows must be >= 1, got {min_rows}")
        if not 0.0 < ell_factor <= 1.0:
            raise ValueError(f"ell_factor must be in (0, 1], got {ell_factor}")
        self.after_attempts = int(after_attempts)
        self.mode = mode
        self.rows_factor = float(rows_factor)
        self.min_rows = int(min_rows)
        self.precision = precision
        self.ell_factor = float(ell_factor)
        self.on_deadline_pressure = bool(on_deadline_pressure)

    def wants(self, failed_attempts: int, deadline_pressure: bool) -> bool:
        """Should a batch with this failure history degrade now?"""
        if failed_attempts >= self.after_attempts:
            return True
        return self.on_deadline_pressure and deadline_pressure

    def degraded_rows(self, rows: list[int]) -> list[int]:
        return [max(self.min_rows, int(r * self.rows_factor)) for r in rows]

    def quantized_twin(self, machine: TCUMachine) -> QuantizedTCUMachine:
        """The cheaper serving variant: a quantized machine sharing
        ``machine``'s ledger (one clock, one conservation check), with
        the invocation latency scaled by ``ell_factor``."""
        return QuantizedTCUMachine(
            machine.m,
            machine.ell * self.ell_factor,
            precision=self.precision,
            kappa=machine.kappa,
            max_rows=machine.max_rows,
            complex_cost_factor=machine.complex_cost_factor,
            backend=machine.backend,
            execute=machine.execute,
            check_overflow=machine.check_overflow,
            ledger=machine.ledger,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Degrader(after_attempts={self.after_attempts}, mode={self.mode!r})"
        )
