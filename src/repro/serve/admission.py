"""Admission control — who gets to queue at all?

At overload an unbounded engine queues without limit: every latency
percentile diverges and nothing useful is measured.  Admission policies
are the engine's front door: each arriving request is offered to the
policy *before* it joins its class queue, and a refusal sheds it (the
request never launches, is reported in
:attr:`~repro.serve.engine.ServeResult.shed`, and counts into the shed
rate next to goodput — ROADMAP's "admission control / load shedding").

Policies follow the same name-registry idiom as
:mod:`repro.serve.batcher` and :mod:`repro.core.scheduling`:

``unbounded``
    Admit everything (the PR4 behaviour, and the default).
``queue-cap``
    Admit while the request's class queue holds fewer than ``cap``
    requests — the classic bounded-buffer drop-tail.
``deadline``
    Deadline-aware reject: admit only requests whose absolute
    :attr:`~repro.serve.workload.Request.deadline` is still feasible
    under a per-request service estimate — the predicted completion is
    ``clock + est_service * (queued_ahead + 1)``.  Requests without a
    deadline are always admitted.

Policies are pure functions of (request, queue, clock), so a served run
replays bit-identically.
"""

from __future__ import annotations

from collections import deque

from .workload import Request

__all__ = [
    "AdmissionPolicy",
    "UnboundedAdmission",
    "QueueCapAdmission",
    "DeadlineAdmission",
    "register_admission",
    "get_admission",
    "available_admissions",
]


class AdmissionPolicy:
    """Base class: decide whether an arriving request may queue.

    Policies are stateless (configuration only); all queue state lives
    in the engine, so one policy instance can drive many engines.
    """

    name = "abstract"

    def admit(self, request: Request, queue: deque[Request], clock: float) -> bool:
        """True to enqueue ``request``, False to shed it.  ``queue`` is
        the request's own class queue as it stands at arrival time."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class UnboundedAdmission(AdmissionPolicy):
    """Admit everything (the queue may grow without bound)."""

    name = "unbounded"

    def admit(self, request: Request, queue: deque[Request], clock: float) -> bool:
        return True


class QueueCapAdmission(AdmissionPolicy):
    """Drop-tail at a per-class queue depth of ``cap``."""

    name = "queue-cap"

    def __init__(self, cap: int = 64) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = int(cap)

    def admit(self, request: Request, queue: deque[Request], clock: float) -> bool:
        return len(queue) < self.cap


class DeadlineAdmission(AdmissionPolicy):
    """Reject requests whose deadline is already infeasible at arrival.

    ``est_service`` is the policy's per-request service estimate (model
    time); the predicted completion of an arriving request behind
    ``len(queue)`` queued peers is ``clock + est_service * (len(queue)
    + 1)``.  Admit when that meets the request's absolute deadline, or
    when the request carries none.  A measured estimate (e.g.
    :func:`repro.serve.scenarios.size1_capacity`) keeps the policy
    honest as charging rules evolve.
    """

    name = "deadline"

    def __init__(self, est_service: float = 0.0) -> None:
        if est_service < 0:
            raise ValueError(f"est_service must be >= 0, got {est_service}")
        self.est_service = float(est_service)

    def admit(self, request: Request, queue: deque[Request], clock: float) -> bool:
        if request.deadline is None:
            return True
        predicted = clock + self.est_service * (len(queue) + 1)
        return predicted <= request.deadline


_REGISTRY: dict[str, AdmissionPolicy] = {}


def register_admission(policy: AdmissionPolicy) -> AdmissionPolicy:
    """Add a policy instance to the name registry (last write wins)."""
    _REGISTRY[policy.name] = policy
    return policy


for _policy in (UnboundedAdmission(), QueueCapAdmission(), DeadlineAdmission()):
    register_admission(_policy)


def available_admissions() -> tuple[str, ...]:
    """Registered policy names, in registration order."""
    return tuple(_REGISTRY)


def get_admission(policy: str | AdmissionPolicy) -> AdmissionPolicy:
    """Resolve a policy by name (or pass an instance through)."""
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        return _REGISTRY[policy]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {policy!r}; available: {available_admissions()}"
        ) from None
