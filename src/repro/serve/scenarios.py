"""Reusable serving scenarios shared by benchmarks and examples.

The TPUv1 MLP scenario is the paper's own serving story (§2.2: the TPU
exists to serve MLP inference; §3.1: its per-call latency is enormous),
so both ``benchmarks/bench_serving.py`` and ``examples/serving_sim.py``
sweep it.  Defining the request type and its measured size-1 capacity
once keeps the CI gate and the documented walkthrough from drifting
apart.
"""

from __future__ import annotations

from ..core.presets import TPU_V1, MachineSpec
from .workload import (
    MLPRequestType,
    RequestType,
    get_request_type,
    register_request_type,
)

__all__ = ["TPU_MLP_NAME", "tpu_mlp_request_type", "size1_capacity"]

TPU_MLP_NAME = "mlp-256-tpu"


def tpu_mlp_request_type() -> RequestType:
    """The §2.2 TPU serving workload: a 2-layer 256-wide MLP whose every
    layer is exactly one resident 256x256 block on the TPUv1 preset
    (sqrt(m)=256).  Registered on first use; idempotent."""
    try:
        return get_request_type(TPU_MLP_NAME)
    except ValueError:
        return register_request_type(
            MLPRequestType(name=TPU_MLP_NAME, dims=(256, 256, 256), default_rows=256)
        )


def size1_capacity(
    rtype: RequestType | None = None,
    spec: MachineSpec = TPU_V1,
    rows: int = 256,
) -> float:
    """Model time one unbatched request costs on ``spec`` — *measured*
    (a single size-1 serve on a cost-only machine), so offered-load
    sweeps track any change to the request dims, the preset's ``ell``
    or the charging rules instead of a hand-derived constant."""
    machine = spec.create(execute="cost-only", trace_calls=False)
    (rtype or tpu_mlp_request_type()).serve(machine, [rows])
    return machine.ledger.total_time
