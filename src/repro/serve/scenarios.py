"""Reusable serving scenarios shared by benchmarks and examples.

The TPUv1 MLP scenario is the paper's own serving story (§2.2: the TPU
exists to serve MLP inference; §3.1: its per-call latency is enormous),
so both ``benchmarks/bench_serving.py`` and ``examples/serving_sim.py``
sweep it.  Defining the request type and its measured size-1 capacity
once keeps the CI gate and the documented walkthrough from drifting
apart.

:func:`interactive_batch_mix` is the PR5 two-class scenario — tiny
high-priority interactive requests sharing the TPU with huge
low-priority bulk batches on a deep MLP — shared by
``benchmarks/bench_preemption.py`` (the preemption-beats-FIFO p99
gate) and the ``examples/serving_sim.py`` overload demo.
"""

from __future__ import annotations

from ..core.presets import TPU_V1, MachineSpec
from .faults import SeededFaultInjector
from .workload import (
    MixedWorkload,
    MLPRequestType,
    PoissonWorkload,
    RequestType,
    get_request_type,
    register_request_type,
)

__all__ = [
    "TPU_MLP_NAME",
    "TPU_BULK_MLP_NAME",
    "tpu_mlp_request_type",
    "tpu_bulk_mlp_request_type",
    "size1_capacity",
    "interactive_batch_mix",
    "chaos_injector",
]

TPU_MLP_NAME = "mlp-256-tpu"
TPU_BULK_MLP_NAME = "mlp-256x8-tpu"


def tpu_mlp_request_type() -> RequestType:
    """The §2.2 TPU serving workload: a 2-layer 256-wide MLP whose every
    layer is exactly one resident 256x256 block on the TPUv1 preset
    (sqrt(m)=256).  Registered on first use; idempotent."""
    try:
        return get_request_type(TPU_MLP_NAME)
    except ValueError:
        return register_request_type(
            MLPRequestType(name=TPU_MLP_NAME, dims=(256, 256, 256), default_rows=256)
        )


def size1_capacity(
    rtype: RequestType | None = None,
    spec: MachineSpec = TPU_V1,
    rows: int = 256,
) -> float:
    """Model time one unbatched request costs on ``spec`` — *measured*
    (a single size-1 serve on a cost-only machine), so offered-load
    sweeps track any change to the request dims, the preset's ``ell``
    or the charging rules instead of a hand-derived constant."""
    machine = spec.create(execute="cost-only", trace_calls=False)
    (rtype or tpu_mlp_request_type()).serve(machine, [rows])
    return machine.ledger.total_time


def tpu_bulk_mlp_request_type() -> RequestType:
    """The bulk (analytics) tenant: an 8-layer 256-wide MLP.

    Every layer is one resident 256x256 block on the TPUv1 preset, so a
    bulk batch's plan has ~3 levels per layer — over twenty level
    boundaries where the engine can checkpoint it.  Registered on first
    use; idempotent."""
    try:
        return get_request_type(TPU_BULK_MLP_NAME)
    except ValueError:
        return register_request_type(
            MLPRequestType(name=TPU_BULK_MLP_NAME, dims=(256,) * 9, default_rows=2048)
        )


# register the TPU kinds at import so workloads can name them directly
# (``PoissonWorkload(kind="mlp-256-tpu")`` without calling the factory)
tpu_mlp_request_type()
tpu_bulk_mlp_request_type()


def interactive_batch_mix(
    interactive_total: int = 600,
    batch_total: int = 8,
    *,
    interactive_load: float = 0.35,
    batch_rows: int = 4096,
    interactive_slo: float | None = None,
    seed: int = 0,
) -> MixedWorkload:
    """The two-class TPUv1 overload scenario: interactive vs batch.

    Priority-2 interactive requests (the §2.2 online MLP, 256 rows
    each, offered at ``interactive_load`` of the unit's size-1
    capacity) share the machine with priority-0 bulk jobs — huge
    ``batch_rows``-row forward passes through the 8-layer MLP, arriving
    slowly enough that roughly ``batch_total`` of them spread across
    the interactive horizon.  Without preemption every interactive
    request that lands behind a bulk batch waits its full multi-layer
    service; with preemption it waits at most one level boundary plus
    the ledgered reload.  The default interactive SLO is four size-1
    service times.
    """
    cap = size1_capacity()
    if interactive_slo is None:
        interactive_slo = 4.0 * cap
    interactive_rate = interactive_load / cap
    horizon = interactive_total / interactive_rate
    interactive = PoissonWorkload(
        rate=interactive_rate,
        total=interactive_total,
        kind=tpu_mlp_request_type().name,
        rows=256,
        slo=interactive_slo,
        priority=2,
        seed=seed,
    )
    bulk = PoissonWorkload(
        rate=max(batch_total, 1) / horizon,
        total=batch_total,
        kind=tpu_bulk_mlp_request_type().name,
        rows=batch_rows,
        priority=0,
        seed=seed + 1,
    )
    return MixedWorkload(interactive, bulk)


def chaos_injector(
    *,
    fail_rate: float = 0.02,
    crash_every: float | None = 50.0,
    repair_for: float = 2.0,
    straggle_rate: float = 0.05,
    straggle_factor: float = 2.0,
    seed: int = 0,
) -> SeededFaultInjector:
    """A TPUv1-scaled fault injector for the two-class chaos scenario.

    MTBF/MTTR are expressed in *size-1 service times* of the §2.2 MLP
    (``crash_every`` / ``repair_for`` multiples of
    :func:`size1_capacity`), so the crash pressure tracks the preset's
    cost model instead of a hand-picked absolute number.
    ``crash_every=None`` disables crashes.  Shared by
    ``benchmarks/bench_faults.py`` and the ``examples/serving_sim.py``
    fault demo so gate and walkthrough see the same chaos.
    """
    cap = size1_capacity()
    return SeededFaultInjector(
        fail_rate=fail_rate,
        mtbf=None if crash_every is None else crash_every * cap,
        mttr=None if crash_every is None else repair_for * cap,
        straggle_rate=straggle_rate,
        straggle_factor=straggle_factor,
        seed=seed,
    )
