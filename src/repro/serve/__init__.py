"""Online inference serving on the (m, l)-TCU — arrivals, dynamic
batching, execution, SLO metrics.

The paper's cost model prices every tensor call at ``n*sqrt(m) + l``;
its algorithms win by amortising the invocation latency ``l`` over
taller calls.  Online serving faces the same trade-off *in time*:
batching requests amortises ``l`` but makes early arrivals wait.  This
package is a discrete-event simulator for that tension, layered
entirely on the existing machine stack:

* :mod:`repro.serve.workload`  -- requests, request types (MLP, dense
  matmul, DFT, stencil — all lowering through the planned kernels),
  and seeded arrival processes (Poisson, bursty MMPP, closed-loop);
* :mod:`repro.serve.batcher`   -- pluggable dynamic-batching policies
  (continuous, size-triggered, timeout) behind a name registry;
* :mod:`repro.serve.engine`    -- the event loop: queues -> batches ->
  :class:`~repro.core.machine.TCUMachine` /
  :class:`~repro.core.parallel.ParallelTCUMachine` execution, with the
  simulated clock driven by the :class:`~repro.core.ledger.CostLedger`
  and an exact batch-replay harness;
* :mod:`repro.serve.metrics`   -- throughput, p50/p95/p99 latency, SLO
  goodput, engine and per-unit utilisation.
"""

from .batcher import (
    BatchPolicy,
    ContinuousBatcher,
    SizeBatcher,
    TimeoutBatcher,
    available_batchers,
    get_batcher,
    register_batcher,
)
from .engine import BatchRecord, ServeError, ServeResult, ServingEngine, replay_batches
from .metrics import ServeMetrics, compute_metrics
from .scenarios import size1_capacity, tpu_mlp_request_type
from .workload import (
    BurstyWorkload,
    ClosedLoopWorkload,
    DFTRequestType,
    MatmulRequestType,
    MLPRequestType,
    PoissonWorkload,
    Request,
    RequestType,
    StencilRequestType,
    Workload,
    available_request_types,
    get_request_type,
    register_request_type,
)

__all__ = [
    "Request",
    "RequestType",
    "MatmulRequestType",
    "MLPRequestType",
    "DFTRequestType",
    "StencilRequestType",
    "register_request_type",
    "get_request_type",
    "available_request_types",
    "Workload",
    "PoissonWorkload",
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "BatchPolicy",
    "ContinuousBatcher",
    "SizeBatcher",
    "TimeoutBatcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
    "ServingEngine",
    "ServeResult",
    "BatchRecord",
    "ServeError",
    "replay_batches",
    "ServeMetrics",
    "compute_metrics",
    "size1_capacity",
    "tpu_mlp_request_type",
]
