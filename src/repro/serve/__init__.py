"""Online inference serving on the (m, l)-TCU — arrivals, admission,
dynamic batching, preemptible execution, SLO metrics.

The paper's cost model prices every tensor call at ``n*sqrt(m) + l``;
its algorithms win by amortising the invocation latency ``l`` over
taller calls.  Online serving faces the same trade-off *in time*:
batching requests amortises ``l`` but makes early arrivals wait — and a
long batch holding the machine makes latency-critical requests wait
behind it.  This package is a discrete-event simulator for both
tensions, layered entirely on the existing machine stack:

* :mod:`repro.serve.workload`  -- requests (with priority classes and
  deadlines), request types that lower whole batches into explicit
  :class:`~repro.core.program.Plan` objects (MLP, dense matmul, DFT —
  all through the planned kernels), and seeded arrival processes
  (Poisson, bursty MMPP, closed-loop, recorded traces, diurnal
  envelopes, multi-class mixes);
* :mod:`repro.serve.admission` -- pluggable admission control
  (unbounded, queue-cap drop, deadline-aware reject) behind a name
  registry, with shed requests reported next to goodput;
* :mod:`repro.serve.batcher`   -- pluggable dynamic-batching policies
  (continuous, size-triggered, timeout) and the priority-aware release
  selection over per-class queues;
* :mod:`repro.serve.engine`    -- the event kernel: arrivals ->
  admission -> class queues -> preemptible level-granular execution on
  :class:`~repro.core.machine.TCUMachine` /
  :class:`~repro.core.parallel.ParallelTCUMachine`, with the simulated
  clock driven by the :class:`~repro.core.ledger.CostLedger`, resume
  costs charged through the ledger's ``reload`` category, an exact
  batch-replay harness, and (on cost-only machines) a
  :class:`~repro.core.plan_cache.PlanCache` hot path that replays
  frozen per-level charge columns instead of re-planning each batch;
* :mod:`repro.serve.metrics`   -- throughput, p50/p95/p99 latency, SLO
  goodput, shed rate, preemption/reload counters, per-class
  breakdowns, engine and per-unit utilisation, availability and
  wasted-work accounting;
* :mod:`repro.serve.faults`    -- seeded deterministic fault injection
  (transient call failures, MTBF/MTTR unit crashes, stragglers),
  retry policies with backoff, and graceful degradation onto cheaper
  variants (fewer rows, or a quantized machine twin) — every faulty
  run bit-replayable from ``(workload seed, fault seed)``.

Observability rides on top: pass a :class:`~repro.obs.Tracer` to
:class:`ServingEngine` and the run emits request/batch/level spans,
fault instants and time-series metric samples, all timestamped on the
ledger clock — export via :mod:`repro.obs` (Perfetto/Chrome trace
JSON, Prometheus text) with zero cost and bit-identical charges when
no tracer is attached.
"""

from ..obs import (
    MetricsRegistry,
    Sampler,
    SloBurnMonitor,
    Tracer,
    chrome_trace_json,
    prometheus_text,
    to_chrome_trace,
    write_chrome_trace,
)

from ..core.plan_cache import CompiledPlan, PlanCache, compile_plan
from .admission import (
    AdmissionPolicy,
    DeadlineAdmission,
    QueueCapAdmission,
    UnboundedAdmission,
    available_admissions,
    get_admission,
    register_admission,
)
from .batcher import (
    BatchPolicy,
    ContinuousBatcher,
    SizeBatcher,
    TimeoutBatcher,
    available_batchers,
    get_batcher,
    priority_release,
    register_batcher,
)
from .engine import BatchRecord, ServeError, ServeResult, ServingEngine, replay_batches
from .faults import (
    Degrader,
    ExponentialRetry,
    FaultEvent,
    FaultInjector,
    FixedRetry,
    NoFaultInjector,
    NoRetry,
    RetryPolicy,
    SeededFaultInjector,
    available_fault_injectors,
    available_retry_policies,
    get_fault_injector,
    get_retry_policy,
    register_fault_injector,
    register_retry_policy,
)
from .metrics import ClassMetrics, ServeMetrics, compute_metrics
from .scenarios import (
    chaos_injector,
    interactive_batch_mix,
    size1_capacity,
    tpu_mlp_request_type,
)
from .workload import (
    BurstyWorkload,
    ClosedLoopWorkload,
    DFTRequestType,
    DiurnalWorkload,
    MatmulRequestType,
    MixedWorkload,
    MLPRequestType,
    PoissonWorkload,
    Request,
    RequestType,
    StencilRequestType,
    TraceWorkload,
    Workload,
    available_request_types,
    get_request_type,
    register_request_type,
)

__all__ = [
    "Request",
    "RequestType",
    "MatmulRequestType",
    "MLPRequestType",
    "DFTRequestType",
    "StencilRequestType",
    "register_request_type",
    "get_request_type",
    "available_request_types",
    "Workload",
    "PoissonWorkload",
    "BurstyWorkload",
    "ClosedLoopWorkload",
    "TraceWorkload",
    "DiurnalWorkload",
    "MixedWorkload",
    "AdmissionPolicy",
    "UnboundedAdmission",
    "QueueCapAdmission",
    "DeadlineAdmission",
    "register_admission",
    "get_admission",
    "available_admissions",
    "BatchPolicy",
    "ContinuousBatcher",
    "SizeBatcher",
    "TimeoutBatcher",
    "register_batcher",
    "get_batcher",
    "available_batchers",
    "priority_release",
    "ServingEngine",
    "ServeResult",
    "BatchRecord",
    "ServeError",
    "replay_batches",
    "ServeMetrics",
    "ClassMetrics",
    "compute_metrics",
    "FaultEvent",
    "FaultInjector",
    "NoFaultInjector",
    "SeededFaultInjector",
    "register_fault_injector",
    "get_fault_injector",
    "available_fault_injectors",
    "RetryPolicy",
    "NoRetry",
    "FixedRetry",
    "ExponentialRetry",
    "register_retry_policy",
    "get_retry_policy",
    "available_retry_policies",
    "Degrader",
    "size1_capacity",
    "tpu_mlp_request_type",
    "interactive_batch_mix",
    "chaos_injector",
    "PlanCache",
    "CompiledPlan",
    "compile_plan",
    "Tracer",
    "MetricsRegistry",
    "Sampler",
    "SloBurnMonitor",
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "prometheus_text",
]
