"""Trace and metrics exporters: Perfetto/Chrome trace JSON, Prometheus.

:func:`to_chrome_trace` renders a :class:`~repro.obs.tracer.Tracer`
into the Chrome trace-event JSON format, which the Perfetto UI
(https://ui.perfetto.dev) opens directly:

* one process per view — ``priority classes`` (execution segments,
  backoff waits per class lane), ``tensor units`` (per-level spans on
  the unit that executed them), ``requests`` (async queued→done spans,
  one track per request id), ``faults & alerts`` (instant events for
  preemptions, faults, retries, degradations, SLO alerts, crash-repair
  windows) and ``metrics`` (counter tracks from the sampler);
* timestamps are the simulated ledger clock verbatim — the trace of a
  seeded run is **byte-identical across replays**
  (:func:`chrome_trace_json` serialises with sorted keys and no
  whitespace to make that checkable with ``==``).

:func:`prometheus_text` renders a
:class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
exposition format (``# HELP``/``# TYPE`` plus samples; histograms
expand to cumulative ``_bucket``/``_sum``/``_count`` series).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .metrics import Histogram, MetricsRegistry
from .spans import ObsError
from .tracer import Tracer

__all__ = [
    "to_chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
]

# process ids of the export views (arbitrary but stable)
_PID_CLASSES = 1
_PID_UNITS = 2
_PID_REQUESTS = 3
_PID_EVENTS = 4
_PID_METRICS = 5

_PROCESS_NAMES = {
    _PID_CLASSES: "priority classes",
    _PID_UNITS: "tensor units",
    _PID_REQUESTS: "requests",
    _PID_EVENTS: "faults & alerts",
    _PID_METRICS: "metrics",
}


def to_chrome_trace(tracer: Tracer, *, label: str = "serve") -> dict:
    """Render ``tracer`` as a Chrome trace-event dict (see module doc)."""
    events: list[dict] = []
    threads: dict[tuple[int, int], str] = {}

    def complete(
        name: str, cat: str, start: float, dur: float, pid: int, tid: int, **args
    ) -> None:
        events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )

    # -- priority-class lanes: execution segments + backoff waits ------
    for batch, kind, prio, start, dur in tracer.segments:
        threads.setdefault((_PID_CLASSES, prio), f"class p{prio}")
        complete(f"{kind}#b{batch}", "exec", start, dur, _PID_CLASSES, prio, batch=batch)
    for batch, kind, prio, start, end in tracer.waits:
        threads.setdefault((_PID_CLASSES, prio), f"class p{prio}")
        complete(
            f"{kind}#b{batch} backoff",
            "backoff",
            start,
            end - start,
            _PID_CLASSES,
            prio,
            batch=batch,
        )

    # -- tensor-unit lanes: per-level spans (stepwise runs); fall back
    # to mirroring segments on the serial lane so the view never blanks
    if tracer.levels:
        for batch, level, units, start, end in tracer.levels:
            for unit in units if units else (-1,):
                tid = unit + 1  # unit -1 (serial) renders as tid 0
                threads.setdefault(
                    (_PID_UNITS, tid), "serial" if unit < 0 else f"unit {unit}"
                )
                complete(
                    f"b{batch}/L{level}",
                    "level",
                    start,
                    end - start,
                    _PID_UNITS,
                    tid,
                    batch=batch,
                    level=level,
                )
    else:
        threads.setdefault((_PID_UNITS, 0), "serial")
        for batch, kind, prio, start, dur in tracer.segments:
            complete(f"{kind}#b{batch}", "exec", start, dur, _PID_UNITS, 0, batch=batch)

    # -- request lifecycle: async spans, one track per request id ------
    for rid, kind, prio, outcome, arrival, launch, finish, batch, met in (
        tracer.requests
    ):
        threads.setdefault((_PID_REQUESTS, prio), f"class p{prio}")
        if outcome == "shed":
            events.append(
                {
                    "name": f"{kind}#r{rid} shed",
                    "cat": "request",
                    "ph": "i",
                    "s": "t",
                    "ts": arrival,
                    "pid": _PID_REQUESTS,
                    "tid": prio,
                    "args": {"rid": rid},
                }
            )
            continue
        args = {"rid": rid, "batch": batch, "outcome": outcome}
        if met is not None:
            args["slo_met"] = met
        for ph, ts in (("b", arrival), ("e", finish)):
            events.append(
                {
                    "name": f"{kind}#r{rid}",
                    "cat": "request",
                    "ph": ph,
                    "id": rid,
                    "ts": ts,
                    "pid": _PID_REQUESTS,
                    "tid": prio,
                    "args": args if ph == "b" else {},
                }
            )

    # -- faults & alerts: instants + crash-repair windows --------------
    threads.setdefault((_PID_EVENTS, 0), "events")
    for name, ts, batch, detail in tracer.instants:
        args: dict[str, object] = {"batch": batch}
        if detail:
            args["detail"] = detail
        events.append(
            {
                "name": name,
                "cat": "fault" if not name.startswith("alert:") else "alert",
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": _PID_EVENTS,
                "tid": 0,
                "args": args,
            }
        )
    if tracer.downs:
        threads.setdefault((_PID_EVENTS, 1), "unit repair")
        for start, end in tracer.downs:
            complete("unit down", "down", start, end - start, _PID_EVENTS, 1)

    # -- metrics: counter tracks from the sampler ----------------------
    if tracer.sampler is not None:
        for ts, snap in tracer.sampler.rows:
            for full_name, value in snap.items():
                events.append(
                    {
                        "name": full_name,
                        "ph": "C",
                        "ts": ts,
                        "pid": _PID_METRICS,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )

    meta: list[dict] = []
    for pid, pname in _PROCESS_NAMES.items():
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{label}: {pname}"},
            }
        )
    for (pid, tid), tname in sorted(threads.items()):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def chrome_trace_json(tracer: Tracer, *, label: str = "serve") -> str:
    """Deterministic serialisation: sorted keys, no whitespace — equal
    traces compare equal as strings (the replay-identity gate)."""
    return json.dumps(
        to_chrome_trace(tracer, label=label), sort_keys=True, separators=(",", ":")
    )


def write_chrome_trace(tracer: Tracer, path: str | Path, *, label: str = "serve") -> Path:
    """Write the Perfetto-loadable trace JSON to ``path`` and return it."""
    out = Path(path)
    out.write_text(chrome_trace_json(tracer, label=label))
    return out


_PHASES = {"X", "i", "b", "e", "M", "C"}


def validate_chrome_trace(trace: dict) -> None:
    """Schema-check a trace dict; raises :class:`ObsError` on the first
    violation.  Covers the subset of the trace-event format the
    exporter emits (and Perfetto requires to render it)."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ObsError("trace must be a dict with a 'traceEvents' list")
    if not isinstance(trace["traceEvents"], list):
        raise ObsError("'traceEvents' must be a list")
    for i, ev in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ObsError(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise ObsError(f"{where} has unknown phase {ph!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ObsError(f"{where} is missing a name")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                raise ObsError(f"{where} is missing integer {field!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            raise ObsError(f"{where} has invalid ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
                raise ObsError(f"{where} has invalid dur {dur!r}")
        if ph in ("b", "e") and "id" not in ev:
            raise ObsError(f"{where} async event is missing an id")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            raise ObsError(f"{where} instant has invalid scope {ev.get('s')!r}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise ObsError(f"{where} counter needs numeric args")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        raise ObsError(f"trace is not JSON-serialisable: {exc}") from exc


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry, *, ts: float | None = None) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    ``ts``, when given, stamps every sample with the (simulated)
    timestamp — truncated to an integer, as the format requires.
    """
    stamp = f" {int(ts)}" if ts is not None else ""
    lines: list[str] = []
    seen_header: set[str] = set()
    for metric in registry:
        if metric.name not in seen_header:
            seen_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            base = metric.name
            labels = dict(metric.labels)
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts, strict=False):
                cumulative += count
                le = {**labels, "le": _fmt(bound)}
                body = ",".join(f'{k}="{v}"' for k, v in sorted(le.items()))
                lines.append(f"{base}_bucket{{{body}}} {cumulative}{stamp}")
            body = ",".join(
                f'{k}="{v}"' for k, v in sorted({**labels, "le": "+Inf"}.items())
            )
            lines.append(f"{base}_bucket{{{body}}} {metric.count}{stamp}")
            suffix = (
                "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            lines.append(f"{base}_sum{suffix} {_fmt(metric.sum)}{stamp}")
            lines.append(f"{base}_count{suffix} {metric.count}{stamp}")
        else:
            value = metric.value  # type: ignore[attr-defined]
            lines.append(f"{metric.full_name} {_fmt(value)}{stamp}")
    return "\n".join(lines) + "\n"
