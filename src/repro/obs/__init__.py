"""``repro.obs`` — deterministic telemetry on the ledger clock.

Span tracing, a metrics registry with simulated-time sampling and SLO
burn-rate monitors, and exporters (Perfetto/Chrome trace JSON,
Prometheus text exposition).  Because every timestamp is the ledger
clock, a traced run is bit-replayable: same seeds, byte-identical
trace.  See :class:`~repro.obs.tracer.Tracer` for the entry point and
:class:`~repro.serve.engine.ServingEngine` (``tracer=`` keyword) for
the wiring.
"""

from .exporters import (
    chrome_trace_json,
    prometheus_text,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sampler import Sampler, SloBurnMonitor
from .spans import Instant, ObsError, Span
from .tracer import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "ObsError",
    "Sampler",
    "SloBurnMonitor",
    "Span",
    "Tracer",
    "chrome_trace_json",
    "prometheus_text",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
