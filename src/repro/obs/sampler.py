"""Simulated-clock time-series sampling and SLO burn-rate monitoring.

Real metric pipelines scrape on a wall-clock interval, which makes two
runs of the same workload produce different time series.  Here the
clock is the ledger, so the :class:`Sampler` grid is part of the model:
the engine offers the sampler every event timestamp and the sampler
records a registry snapshot at the first event on or after each grid
point — a pure function of the run, bit-identical across replays.

:class:`SloBurnMonitor` is the alerting half: it watches per-request
SLO outcomes over a sliding window of simulated time and fires a
``firing``/``resolved`` transition when the error-budget burn rate
crosses its threshold — the standard SRE burn-rate alert, made
deterministic.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .metrics import MetricsRegistry
from .spans import ObsError

__all__ = ["Sampler", "SloBurnMonitor"]


class Sampler:
    """Snapshot a :class:`MetricsRegistry` on a fixed simulated-time grid.

    ``every`` is the grid pitch.  The engine calls :meth:`due` (cheap)
    on every event and :meth:`sample` when it returns true; sampling at
    clock ``t`` records ``(t, registry.snapshot())`` and advances the
    next grid point past ``t``.  Event-driven scraping means sample
    times land *on events*, never between them — there is nothing to
    observe while the model clock is not advancing.
    """

    def __init__(self, every: float) -> None:
        if every <= 0:
            raise ObsError(f"sample interval must be positive, got {every}")
        self.every = float(every)
        self.rows: list[tuple[float, dict[str, float]]] = []
        self._next = 0.0

    def due(self, clock: float) -> bool:
        return clock >= self._next

    def sample(
        self, registry: MetricsRegistry, *, ts: float, force: bool = False
    ) -> None:
        if not force and ts < self._next:
            return
        self.rows.append((ts, registry.snapshot()))
        nxt = self._next
        while nxt <= ts:
            nxt += self.every
        self._next = nxt

    # -- analysis ------------------------------------------------------
    def series(self, full_name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` columns for one metric (missing samples —
        before the metric existed — read 0)."""
        times = np.fromiter((t for t, _ in self.rows), float, len(self.rows))
        values = np.fromiter(
            (snap.get(full_name, 0.0) for _, snap in self.rows),
            float,
            len(self.rows),
        )
        return times, values

    def windowed_rate(
        self, full_name: str, window: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample increase of a cumulative metric over the trailing
        ``window`` of simulated time, divided by the window — the
        sliding-window rate a dashboard would plot for a counter."""
        if window <= 0:
            raise ObsError(f"window must be positive, got {window}")
        times, values = self.series(full_name)
        if times.size == 0:
            return times, values
        # value at the window's left edge: the last sample at or before
        # t - window (0 before the first sample)
        left = np.searchsorted(times, times - window, side="right") - 1
        base = np.where(left >= 0, values[np.maximum(left, 0)], 0.0)
        return times, (values - base) / window


class SloBurnMonitor:
    """Deterministic error-budget burn-rate alerting.

    With an SLO target of ``target`` (e.g. 0.95 attainment), the error
    budget is ``1 - target``.  Over a sliding window of simulated time
    the observed miss fraction divided by the budget is the *burn rate*
    (1.0 = exactly spending budget, >1 = burning it down).  The monitor
    fires when the rate sits at or above ``threshold`` once at least
    ``min_count`` requests are in the window, and resolves when it
    drops back below — each transition is returned (and traced by the
    :class:`~repro.obs.tracer.Tracer` as an alert instant).

    ``priority``, when set, restricts the monitor to one request class.
    """

    def __init__(
        self,
        name: str,
        *,
        target: float,
        window: float,
        threshold: float = 1.0,
        priority: int | None = None,
        min_count: int = 8,
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ObsError(f"SLO target must be in (0, 1), got {target}")
        if window <= 0:
            raise ObsError(f"window must be positive, got {window}")
        if threshold <= 0:
            raise ObsError(f"threshold must be positive, got {threshold}")
        self.name = name
        self.target = float(target)
        self.window = float(window)
        self.threshold = float(threshold)
        self.priority = priority
        self.min_count = int(min_count)
        self.firing = False
        self._events: deque[tuple[float, bool]] = deque()
        self._misses = 0

    def observe(self, met: bool, *, ts: float) -> tuple[str, float, float] | None:
        """Record one SLO outcome at simulated time ``ts``; returns
        ``(state, burn_rate, attainment)`` on a firing/resolved
        transition, ``None`` otherwise."""
        events = self._events
        horizon = ts - self.window
        while events and events[0][0] <= horizon:
            _, old_met = events.popleft()
            if not old_met:
                self._misses -= 1
        events.append((ts, met))
        if not met:
            self._misses += 1
        count = len(events)
        if count < self.min_count:
            return None
        miss_rate = self._misses / count
        burn = miss_rate / (1.0 - self.target)
        now_firing = burn >= self.threshold
        if now_firing == self.firing:
            return None
        self.firing = now_firing
        state = "firing" if now_firing else "resolved"
        return (state, burn, 1.0 - miss_rate)
