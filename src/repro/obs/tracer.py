"""The span tracer: request-scoped telemetry on the ledger clock.

A :class:`Tracer` is handed to :class:`~repro.serve.engine.ServingEngine`
(``tracer=`` keyword) and filled in during :meth:`serve`.  Every
timestamp it stores is read off the simulated clock — the ledger — so
the trace is a deterministic artifact of ``(workload seed, fault
seed)``: two replays produce byte-identical exports.  With
``tracer=None`` (the default) the engine takes the exact untraced code
path, bit-identical to previous revisions.

Hot-path design: emission methods append small tuples to per-category
lists (requests, segments, levels, batch rows, waits, instants…).
Nothing is formatted, no objects are built, and no clock is *computed*
— callers pass timestamps they already hold (the ``OBS001`` lint rule
enforces that those are names bound from the ledger clock, not
recomputed expressions).  The structured :class:`~repro.obs.spans.Span`
view is materialised only on demand (:meth:`spans`, exporters).

Detail levels
-------------

``detail="auto"`` (default) records request lifecycle, execution
segments, batch accounting and fault events — everything needed to
reconcile against the ledger identity — and per-*level* spans whenever
the engine is already executing stepwise (preemption or active fault
injection).  ``detail="level"`` forces stepwise execution so level
spans (with their tensor-unit lanes) are always recorded; charges are
bit-identical either way (stepwise parity is a standing engine gate),
only the event granularity changes.

Reconciliation
--------------

Segment durations are stored as the *exact* floats the engine adds to
its busy time, in the same order, so ``sum(tracer segment durs) ==
result.busy_time`` holds bit-exactly — and likewise per batch against
``BatchRecord.service``.  Batch rows carry the ledgered
``service``/``reload``/``wasted`` split, closing the loop with the
accounting identity ``total = useful + wasted + reload``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .sampler import Sampler, SloBurnMonitor
from .spans import Instant, ObsError, Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.ledger import CostLedger

__all__ = ["Tracer"]

_DETAILS = ("auto", "level")

#: ledger charge categories mirrored into registry counters
_CHARGE_CATEGORIES = ("tensor", "cpu", "reload", "wasted")


class Tracer:
    """Collects spans, instants, metrics and alerts for one served run.

    Parameters
    ----------
    detail:
        ``"auto"`` (default) or ``"level"`` — see the module docstring.
    sample_every:
        Simulated-time pitch for registry snapshots (``None`` disables
        sampling).
    monitors:
        :class:`~repro.obs.sampler.SloBurnMonitor` instances fed every
        SLO outcome; their firing/resolved transitions land in
        :attr:`alerts` and as trace instants.
    registry:
        An existing :class:`MetricsRegistry` to write into (a fresh one
        by default).

    A tracer records one run; hand a fresh instance to each
    :meth:`~repro.serve.engine.ServingEngine.serve` call.
    """

    def __init__(
        self,
        *,
        detail: str = "auto",
        sample_every: float | None = None,
        monitors: tuple[SloBurnMonitor, ...] | list[SloBurnMonitor] = (),
        registry: MetricsRegistry | None = None,
    ) -> None:
        if detail not in _DETAILS:
            raise ObsError(f"unknown detail {detail!r}; choose one of {_DETAILS}")
        self.detail = detail
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sampler = Sampler(sample_every) if sample_every is not None else None
        self.monitors = tuple(monitors)
        # columnar event stores — one tuple append per event
        self.requests: list[tuple] = []  # (rid, kind, prio, outcome, arrival, launch, finish, batch, met)
        self.segments: list[tuple] = []  # (batch, kind, prio, start, dur)
        self.levels: list[tuple] = []  # (batch, level, units, start, end)
        self.batch_rows: list[tuple] = []  # (batch, kind, prio, size, launch, finish, service, reload, wasted, faults)
        self.waits: list[tuple] = []  # (batch, kind, prio, start, end)
        self.downs: list[tuple] = []  # (start, end)
        self.reloads: list[tuple] = []  # (batch, ts, amount)
        self.instants: list[tuple] = []  # (name, ts, batch, detail)
        self.alerts: list[tuple] = []  # (monitor, state, ts, burn, attainment)
        # (totals, counters) while a samplerless ledger hook is bound
        self._pending_charges: tuple[dict, dict] | None = None

    # -- request lifecycle --------------------------------------------
    def request_done(
        self,
        rid: int,
        kind: str,
        priority: int,
        arrival: float,
        launch: float,
        batch: int,
        *,
        ts: float,
        met: bool | None = None,
    ) -> None:
        self.requests.append(
            (rid, kind, priority, "done", arrival, launch, ts, batch, met)
        )

    def request_shed(
        self, rid: int, kind: str, priority: int, arrival: float, *, ts: float
    ) -> None:
        self.requests.append(
            (rid, kind, priority, "shed", arrival, math.nan, ts, -1, None)
        )

    def request_abandoned(
        self,
        rid: int,
        kind: str,
        priority: int,
        arrival: float,
        launch: float,
        batch: int,
        *,
        ts: float,
    ) -> None:
        self.requests.append(
            (rid, kind, priority, "abandoned", arrival, launch, ts, batch, None)
        )

    # -- execution ----------------------------------------------------
    def segment(
        self, batch: int, kind: str, priority: int, *, start: float, dur: float
    ) -> None:
        self.segments.append((batch, kind, priority, start, dur))

    def level_span(
        self,
        batch: int,
        level: int,
        units: tuple[int, ...],
        *,
        start: float,
        end: float,
    ) -> None:
        self.levels.append((batch, level, units, start, end))

    def batch_done(
        self,
        batch: int,
        kind: str,
        priority: int,
        size: int,
        service: float,
        reload: float,
        wasted: float,
        faults: int,
        *,
        launch: float,
        ts: float,
    ) -> None:
        self.batch_rows.append(
            (batch, kind, priority, size, launch, ts, service, reload, wasted, faults)
        )

    # -- faults -------------------------------------------------------
    def wait(
        self, batch: int, kind: str, priority: int, *, start: float, end: float
    ) -> None:
        self.waits.append((batch, kind, priority, start, end))

    def down(self, *, start: float, end: float) -> None:
        self.downs.append((start, end))

    def reload_event(self, batch: int, amount: float, *, ts: float) -> None:
        self.reloads.append((batch, ts, amount))

    def instant(
        self, name: str, *, ts: float, batch: int = -1, detail: str = ""
    ) -> None:
        self.instants.append((name, ts, batch, detail))

    # -- SLO monitoring -----------------------------------------------
    def observe_slo(self, priority: int, met: bool, *, ts: float) -> None:
        for monitor in self.monitors:
            if monitor.priority is not None and monitor.priority != priority:
                continue
            fired = monitor.observe(met, ts=ts)
            if fired is not None:
                state, burn, attainment = fired
                self.alerts.append((monitor.name, state, ts, burn, attainment))
                self.instants.append(
                    (
                        f"alert:{monitor.name}:{state}",
                        ts,
                        -1,
                        f"burn={burn:.3f} attainment={attainment:.3f}",
                    )
                )

    # -- ledger hook --------------------------------------------------
    def bind_ledger(self, ledger: CostLedger) -> None:
        """Mirror the ledger's charge stream into registry counters
        (``ledger_tensor_time``, ``ledger_cpu_time``, …).  The hook only
        observes — charges and clock are untouched."""
        if ledger.on_charge is not None:
            raise ObsError("ledger already carries a charge hook")
        counters = {
            cat: self.registry.counter(
                f"ledger_{cat}_time", f"cumulative ledger {cat} charges"
            )
            for cat in _CHARGE_CATEGORIES
        }
        if self.sampler is None:
            # nobody reads the counters mid-run without a sampler, so
            # accumulate in a plain dict and flush on unbind — same
            # sequential addition order, so the flushed values are
            # bit-identical to per-charge counter updates
            totals = dict.fromkeys(_CHARGE_CATEGORIES, 0.0)

            def hook(category: str, amount: float, _t=totals) -> None:
                _t[category] += amount

            self._pending_charges = (totals, counters)
        else:

            def hook(category: str, amount: float, _c=counters) -> None:
                _c[category].value += amount

            self._pending_charges = None
        ledger.on_charge = hook

    def unbind_ledger(self, ledger: CostLedger) -> None:
        ledger.on_charge = None
        if self._pending_charges is not None:
            totals, counters = self._pending_charges
            for cat, amount in totals.items():
                counters[cat].value += amount
            self._pending_charges = None

    # -- reconciliation -----------------------------------------------
    def exec_time(self) -> float:
        """Sum of segment durations, in emission order — bit-identical
        to the engine's ``busy_time`` left-fold."""
        total = 0.0
        for row in self.segments:
            total += row[4]
        return total

    def exec_time_by_batch(self) -> dict[int, float]:
        """Per-batch segment-duration sums (same fold order as the
        engine's ``run.service`` accumulation — bit-exact per batch)."""
        out: dict[int, float] = {}
        for batch, _, _, _, dur in self.segments:
            out[batch] = out.get(batch, 0.0) + dur
        return out

    def span_totals(self) -> dict[str, float]:
        """Run-level totals from the *completed-batch* rows:
        ``exec`` (all segments, including abandoned batches'),
        ``service``/``reload``/``wasted`` (completed batches), and
        ``useful`` per the ledger identity."""
        service = reload = wasted = 0.0
        for row in self.batch_rows:
            service += row[6]
            reload += row[7]
            wasted += row[8]
        return {
            "exec": self.exec_time(),
            "service": service,
            "reload": reload,
            "wasted": wasted,
            "useful": service - reload - wasted,
        }

    def events_total(self) -> int:
        """Total stored events across every category (overhead gauge)."""
        return (
            len(self.requests)
            + len(self.segments)
            + len(self.levels)
            + len(self.batch_rows)
            + len(self.waits)
            + len(self.downs)
            + len(self.reloads)
            + len(self.instants)
            + len(self.alerts)
        )

    # -- materialised views -------------------------------------------
    def spans(self) -> list[Span]:
        """Structured :class:`Span` view of every stored interval."""
        out: list[Span] = []
        for rid, kind, prio, outcome, arrival, launch, finish, batch, met in (
            self.requests
        ):
            if outcome == "shed" or math.isnan(launch):
                continue
            out.append(
                Span(
                    name=f"{kind}#r{rid}",
                    cat="queue",
                    start=arrival,
                    dur=launch - arrival,
                    lane=f"class p{prio}",
                    args={"outcome": outcome, "batch": batch, "met": met},
                )
            )
        for batch, kind, prio, start, dur in self.segments:
            out.append(
                Span(
                    name=f"{kind}#b{batch}",
                    cat="exec",
                    start=start,
                    dur=dur,
                    lane=f"class p{prio}",
                    args={"batch": batch},
                )
            )
        for batch, level, units, start, end in self.levels:
            lanes = units if units else (-1,)
            for unit in lanes:
                out.append(
                    Span(
                        name=f"b{batch}/L{level}",
                        cat="level",
                        start=start,
                        dur=end - start,
                        lane="serial" if unit < 0 else f"unit {unit}",
                        args={"batch": batch, "level": level},
                    )
                )
        for batch, kind, prio, start, end in self.waits:
            out.append(
                Span(
                    name=f"{kind}#b{batch} backoff",
                    cat="backoff",
                    start=start,
                    dur=end - start,
                    lane=f"class p{prio}",
                    args={"batch": batch},
                )
            )
        for start, end in self.downs:
            out.append(
                Span(
                    name="unit down",
                    cat="down",
                    start=start,
                    dur=end - start,
                    lane="faults",
                )
            )
        return out

    def instant_events(self) -> list[Instant]:
        """Structured :class:`Instant` view (fault/preempt/retry/alert)."""
        out = [
            Instant(name=name, ts=ts, lane="faults", args={"batch": batch, "detail": d})
            for name, ts, batch, d in self.instants
        ]
        for monitor, state, ts, burn, attainment in self.alerts:
            out.append(
                Instant(
                    name=f"slo:{monitor}",
                    ts=ts,
                    lane="alerts",
                    args={"state": state, "burn": burn, "attainment": attainment},
                )
            )
        return out
