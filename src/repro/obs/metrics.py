"""Name-registered counters, gauges and histograms.

A :class:`MetricsRegistry` is the single mutable store the serving
engine (and any other instrumented layer) writes into; the
:class:`~repro.obs.sampler.Sampler` snapshots it on the simulated clock
and :func:`~repro.obs.exporters.prometheus_text` renders it in the
Prometheus text exposition format.  All updates are plain attribute
arithmetic — no wall clock, no locks, no background threads — so a
metrics stream is as deterministic as the ledger that drives it.

Metrics follow Prometheus semantics: counters only go up, gauges go
anywhere, histograms bucket observations under fixed upper bounds.
Labels are a frozen ``dict[str, str]`` fixed at registration; a metric
is keyed by its full name (``name{k="v",...}``), so the same base name
may carry several label sets (e.g. per-priority SLO attainment).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from .spans import ObsError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _full_name(name: str, labels: dict[str, str] | None) -> str:
    if not labels:
        return name
    body = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{body}}}"


class _Metric:
    """Common identity: base name, rendered full name, help text."""

    __slots__ = ("name", "full_name", "help", "labels")

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ObsError(f"invalid metric name {name!r}")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.full_name = _full_name(name, labels)
        self.help = help


class Counter(_Metric):
    """A monotonically non-decreasing accumulator."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.full_name} cannot decrease by {amount}")
        self.value += amount


class Gauge(_Metric):
    """A value that can be set to anything at any time."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Metric):
    """Fixed-bucket histogram (Prometheus ``le`` semantics: cumulative
    on export, stored per-bucket here; the ``+Inf`` bucket is implicit).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...],
        help: str = "",
        labels: dict[str, str] | None = None,
    ) -> None:
        super().__init__(name, help, labels)
        if not bounds or list(bounds) != sorted(bounds):
            raise ObsError(
                f"histogram {name!r} needs sorted, non-empty bucket bounds"
            )
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values) -> None:
        """Vectorised bulk observation: same buckets and count as one
        :meth:`observe` per value (``sum`` may differ in the last float
        bits — numpy reduces in a different association order)."""
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        bins = np.bincount(
            np.searchsorted(self.bounds, arr, side="left"),
            minlength=len(self.counts),
        )
        self.counts = [c + int(b) for c, b in zip(self.counts, bins, strict=True)]
        self.sum += float(arr.sum())
        self.count += arr.size

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile (the upper bound of the bucket the
        q-th observation falls in; ``inf`` for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


class MetricsRegistry:
    """The name → metric table telemetry writes into.

    ``counter``/``gauge``/``histogram`` are get-or-create: re-requesting
    an existing full name returns the live instance (so instrumented
    code never needs to thread metric handles around), but re-requesting
    it as a *different* type is an :class:`ObsError`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration --------------------------------------------------
    def _get_or_create(self, cls: type, key: str, factory) -> _Metric:
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif not isinstance(metric, cls):
            raise ObsError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        key = _full_name(name, labels)
        metric = self._get_or_create(Counter, key, lambda: Counter(name, help, labels))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        key = _full_name(name, labels)
        metric = self._get_or_create(Gauge, key, lambda: Gauge(name, help, labels))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...],
        help: str = "",
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        key = _full_name(name, labels)
        metric = self._get_or_create(
            Histogram, key, lambda: Histogram(name, bounds, help, labels)
        )
        assert isinstance(metric, Histogram)
        return metric

    # -- access --------------------------------------------------------
    def get(self, full_name: str) -> _Metric:
        try:
            return self._metrics[full_name]
        except KeyError:
            raise ValueError(
                f"unknown metric {full_name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def snapshot(self) -> dict[str, float]:
        """Scalar view of every metric, keyed by full name (histograms
        contribute ``_count`` and ``_sum``).  Key order is sorted, so a
        snapshot stream serialises deterministically."""
        out: dict[str, float] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                out[metric.full_name + "_count"] = float(metric.count)
                out[metric.full_name + "_sum"] = metric.sum
            else:
                out[metric.full_name] = metric.value  # type: ignore[attr-defined]
        return out
