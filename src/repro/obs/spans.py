"""Span and instant records for the deterministic telemetry layer.

The tracer's hot path stores plain tuples (one append per event); the
dataclasses here are the *materialised* view — built on demand when a
trace is inspected or exported.  Everything is timestamped on the
simulated ledger clock, so a trace is a pure function of
``(workload seed, fault seed)`` and replays bit-identically.

Span categories mirror the ledger's accounting identity
``total = useful + wasted + reload``:

* ``exec`` — a contiguous execution segment of a batch (its duration is
  the exact ledger-clock span the segment charged);
* ``level`` — one plan level inside a segment (stepwise runs only),
  tagged with the tensor units that executed its calls;
* ``queue`` — a request's wait between arrival and launch;
* ``backoff`` — a failed batch's retry wait window;
* ``down`` — a crash-repair window during which nothing launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ObsError", "Span", "Instant"]


class ObsError(RuntimeError):
    """Raised on invalid telemetry states (bad metric registrations,
    malformed traces, reconciliation failures)."""


@dataclass(frozen=True, slots=True)
class Span:
    """A closed interval on the simulated clock.

    ``lane`` is the export track the span renders on (a priority class
    or a tensor unit); ``args`` carries free-form annotations.
    """

    name: str
    cat: str
    start: float
    dur: float
    lane: str = ""
    args: dict[str, object] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.dur


@dataclass(frozen=True, slots=True)
class Instant:
    """A zero-duration event on the simulated clock (fault, preemption,
    retry, degradation, alert)."""

    name: str
    ts: float
    lane: str = ""
    args: dict[str, object] = field(default_factory=dict)
